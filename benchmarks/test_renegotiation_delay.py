"""Extension: the effect of renegotiation delay (Section III-C's open
question).

"The performance of applications with online RCBR decreases with an
increase in latency ... This can be compensated for by increasing the
end-system buffer or by asking for more bandwidth than needed ...
Offline applications are insensitive to path latency because they can
compensate for an increased latency by initiating renegotiation earlier."

The paper provides no numbers; this benchmark does.  We sweep the
renegotiation round-trip delay and measure, for the trace's optimal
schedule: (a) the extra end-system buffer an *online* source needs,
(b) the loss it suffers if the buffer stays at 300 kb, and (c) that both
vanish for an *offline* source leading by the round trip.
"""

from __future__ import annotations

import pytest

from benchmarks._common import (
    BUFFER_BITS,
    fmt,
    once,
    optimal_schedule,
    print_table,
    scale,
    starwars_trace,
)
from repro.core.latency import latency_sweep

DELAYS = (0.0, 0.01, 0.05, 0.2, 0.5, 2.0)  # seconds of signaling RTT


@pytest.fixture(scope="module")
def workload():
    return starwars_trace().aggregate(scale().dp_frames_per_slot)


@pytest.fixture(scope="module")
def schedule():
    return optimal_schedule()


def test_renegotiation_delay_cost(benchmark, workload, schedule):
    def run():
        online = latency_sweep(
            workload, schedule, DELAYS, buffer_bits=BUFFER_BITS
        )
        offline = latency_sweep(
            workload, schedule, DELAYS,
            lead_equals_delay=True, buffer_bits=BUFFER_BITS,
        )
        return online, offline

    online, offline = once(benchmark, run)

    print_table(
        "Renegotiation delay: online (lead 0) vs offline (lead = delay)",
        ["RTT (s)", "online buffer (kb)", "online loss @300kb",
         "offline buffer (kb)", "offline loss @300kb"],
        [
            [fmt(on.delay, 2), fmt(on.max_buffer / 1000, 1),
             fmt(on.loss_fraction_at_bound),
             fmt(off.max_buffer / 1000, 1),
             fmt(off.loss_fraction_at_bound)]
            for on, off in zip(online, offline)
        ],
    )

    # Online: buffer need grows monotonically with delay and materially
    # exceeds the design point at large RTTs.
    buffers = [impact.max_buffer for impact in online]
    assert all(a <= b + 1e-6 for a, b in zip(buffers, buffers[1:]))
    assert buffers[-1] > 1.2 * BUFFER_BITS
    # At a 300 kb buffer, a large delay costs real loss.
    assert online[-1].loss_fraction_at_bound > 1e-4

    # Millisecond-class RTTs (the realistic regime for the paper's
    # "a few milliseconds away" NIU) cost at most a slot or two of
    # peak-rate backlog: the optimal schedule rides the buffer bound
    # exactly, so *any* delay overflows a little, but the overhang is
    # bounded by the transition burst, far from the seconds-long RTT
    # blow-up.
    slot_burst = workload.peak_rate * workload.slot_duration
    assert online[1].max_buffer <= BUFFER_BITS + 3 * slot_burst
    assert online[1].max_buffer < 0.5 * online[-1].max_buffer

    # Offline compensation removes the cost at every delay.
    for impact in offline:
        assert impact.max_buffer <= BUFFER_BITS + 1e-6
        assert impact.loss_fraction_at_bound == 0.0
