"""Declarative scenario suite: competing RCBR flows over
multi-bottleneck topologies with hostile cross-traffic.

A :class:`ScenarioSpec` names a topology (links with capacities and
delays), flow groups binding traffic sources to routes, and background
cross-traffic that consumes link capacity as a time-varying non-RCBR
process.  :func:`get_scenario` resolves the built-in roster
(:data:`SCENARIO_NAMES`); :func:`run_scenario` executes a spec on the
serving stack and returns a :class:`ScenarioResult` whose fingerprint
is byte-identical for the same spec and seed.  See DESIGN.md §16.
"""

from repro.scenarios.registry import SCENARIO_NAMES, get_scenario
from repro.scenarios.runtime import (
    BACKGROUND_VCI,
    GROUP_STRIDE,
    ScenarioGateway,
    ScenarioHarness,
    ScenarioResult,
    run_scenario,
    scenario_fingerprint,
)
from repro.scenarios.spec import (
    SCENARIO_SOURCE_NAMES,
    BackgroundSpec,
    FlowGroupSpec,
    LinkSpec,
    ScenarioSpec,
)

__all__ = [
    "BACKGROUND_VCI",
    "GROUP_STRIDE",
    "SCENARIO_NAMES",
    "SCENARIO_SOURCE_NAMES",
    "BackgroundSpec",
    "FlowGroupSpec",
    "LinkSpec",
    "ScenarioGateway",
    "ScenarioHarness",
    "ScenarioResult",
    "ScenarioSpec",
    "get_scenario",
    "run_scenario",
    "scenario_fingerprint",
]
