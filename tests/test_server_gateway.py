"""The RCBR gateway: determinism, accounting, and overload behaviour."""

import math

import pytest

from repro.server import RcbrGateway, ServerConfig, serve
from repro.server.bench import run_server_benchmark
from repro.traffic.starwars import generate_starwars_trace


@pytest.fixture(scope="module")
def workload():
    return generate_starwars_trace(num_frames=400, seed=1995).as_workload()


def config(workload, **overrides):
    defaults = dict(
        capacity=40 * workload.mean_rate,
        load=0.8,
        controller="always",
        seed=11,
        initial_calls=8,
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


class TestDeterminism:
    def test_same_seed_bit_identical(self, workload):
        def fingerprint():
            report = serve(
                workload,
                config(workload),
                duration=6.0,
                snapshot_every=1.0,
            )
            return report.fingerprint, report.final.canonical()

        assert fingerprint() == fingerprint()

    def test_different_seed_diverges(self, workload):
        reports = [
            serve(workload, config(workload, seed=seed), duration=6.0,
                  snapshot_every=1.0)
            for seed in (1, 2)
        ]
        assert reports[0].fingerprint != reports[1].fingerprint

    def test_resumed_run_matches_single_run(self, workload):
        single = serve(workload, config(workload), duration=8.0)

        gateway = RcbrGateway(workload, config(workload))
        gateway.run(4.0)
        resumed = gateway.run(4.0)

        one, two = single.final, resumed.final
        assert one.time == two.time
        for field in (
            "active_calls", "arrivals", "blocked", "admitted", "departed",
            "abandoned", "reneg_requests", "reneg_denied", "cells_sent",
            "buffer_bits", "reserved_rate", "bits_lost_link",
        ):
            assert getattr(one, field) == getattr(two, field), field


class TestAccounting:
    def test_counter_invariants(self, workload):
        report = serve(
            workload, config(workload, seed=3), duration=10.0,
            snapshot_every=2.0,
        )
        previous = None
        for snapshot in report.snapshots:
            assert snapshot.arrivals == snapshot.blocked + snapshot.admitted
            assert snapshot.departed == snapshot.completed + snapshot.abandoned
            assert (
                snapshot.active_calls
                == snapshot.admitted - snapshot.departed
            )
            assert snapshot.reneg_denied <= snapshot.reneg_requests
            assert snapshot.injected_denials <= snapshot.reneg_denied
            assert 0.0 <= snapshot.utilization <= 1.0 + 1e-9
            if previous is not None:
                assert snapshot.time > previous.time
                for field in ("arrivals", "admitted", "departed",
                              "reneg_requests", "cells_sent"):
                    assert getattr(snapshot, field) >= getattr(previous, field)
            previous = snapshot

    def test_snapshot_cadence(self, workload):
        report = serve(
            workload, config(workload), duration=5.0, snapshot_every=1.0
        )
        assert len(report.snapshots) == 5
        times = [snapshot.time for snapshot in report.snapshots]
        for expected, actual in zip([1.0, 2.0, 3.0, 4.0, 5.0], times):
            assert actual == pytest.approx(expected, abs=workload.slot_duration)
        assert report.epochs == int(
            math.ceil(5.0 / workload.slot_duration - 1e-9)
        )

    def test_unconstrained_link_never_denies(self, workload):
        report = serve(
            workload,
            config(workload, capacity=5_000 * workload.mean_rate, load=0.0,
                   initial_calls=12),
            duration=6.0,
        )
        final = report.final
        assert final.reneg_requests > 0
        assert final.reneg_denied == 0
        assert final.link_shortfalls == 0
        assert final.bits_lost_link == 0.0


class TestOverload:
    def test_always_admit_overload_produces_shortfalls(self, workload):
        report = serve(
            workload,
            config(workload, capacity=3 * workload.mean_rate, load=0.0,
                   initial_calls=30, seed=5),
            duration=6.0,
        )
        gateway_final = report.final
        assert gateway_final.reneg_denied > 0
        assert gateway_final.bits_lost_link > 0.0
        assert gateway_final.utilization <= 1.0 + 1e-9

    def test_cac_blocks_under_overload(self, workload):
        report = serve(
            workload,
            config(workload, capacity=5 * workload.mean_rate, load=3.0,
                   controller="perfect", initial_calls=0, seed=9,
                   mean_holding=4.0),
            duration=20.0,
        )
        final = report.final
        assert final.blocked > 0
        assert final.arrivals == final.blocked + final.admitted

    def test_memoryless_admits_empty_system(self, workload):
        report = serve(
            workload,
            config(workload, controller="memoryless", load=1.0,
                   initial_calls=0, seed=4, mean_holding=4.0),
            duration=8.0,
        )
        assert report.final.admitted > 0


class TestConfig:
    def test_validation(self, workload):
        with pytest.raises(ValueError):
            ServerConfig(capacity=0.0)
        with pytest.raises(ValueError):
            ServerConfig(capacity=1e6, controller="nope")
        with pytest.raises(ValueError):
            ServerConfig(capacity=1e6, load=-0.1)
        with pytest.raises(ValueError):
            ServerConfig(capacity=1e6, abandon_after=0)
        with pytest.raises(ValueError):
            ServerConfig(capacity=1e6, upstream_headroom=0.5)

    def test_run_validation(self, workload):
        gateway = RcbrGateway(workload, config(workload))
        with pytest.raises(ValueError):
            gateway.run(0.0)
        with pytest.raises(ValueError):
            gateway.run(1.0, snapshot_every=-1.0)

    def test_report_round_trips_to_dict(self, workload):
        report = serve(workload, config(workload), duration=2.0,
                       snapshot_every=1.0)
        payload = report.to_dict()
        assert payload["config"]["controller"] == "always"
        assert payload["fingerprint"] == report.fingerprint
        assert len(payload["snapshots"]) == len(report.snapshots)
        assert payload["final"]["active_calls"] == report.final.active_calls


class TestBenchmark:
    def test_small_benchmark_records(self, workload, tmp_path):
        out = tmp_path / "BENCH_server.json"
        result = run_server_benchmark(
            num_calls=200, epochs=4, warmup_epochs=2, seed=0,
            workload=workload, out=out,
        )
        assert result["num_calls"] == 200
        assert result["run_seconds"] > 0
        assert result["call_epochs_per_second"] > 0
        assert out.exists()
        text = out.read_text()
        assert "realtime_factor" in text
        assert "server/run" in text

    def test_benchmark_validation(self, workload):
        with pytest.raises(ValueError):
            run_server_benchmark(num_calls=0, workload=workload)
        with pytest.raises(ValueError):
            run_server_benchmark(num_calls=1, epochs=0, workload=workload)

    def test_history_appends_across_runs(self, workload, tmp_path):
        import json

        from repro.server.bench import load_bench_history

        out = tmp_path / "BENCH_server.json"
        for _ in range(2):
            run_server_benchmark(
                num_calls=200, epochs=4, warmup_epochs=2, seed=0,
                workload=workload, out=out,
            )
        history = load_bench_history(out)
        assert len(history) == 2
        for leg in history:
            assert leg["num_calls"] == 200
            assert leg["shards"] == 0
            assert leg["call_epochs_per_second"] > 0
        # A pre-history artifact (single run in "context") still yields
        # a one-leg history, so old committed baselines keep gating.
        legacy = tmp_path / "legacy.json"
        legacy.write_text(json.dumps({
            "context": {"num_calls": 200, "shards": 0,
                        "call_epochs_per_second": 1000.0},
        }))
        assert len(load_bench_history(legacy)) == 1

    def test_perf_gate(self, workload, tmp_path):
        from repro.server.bench import check_perf_regression

        out = tmp_path / "BENCH_server.json"
        result = run_server_benchmark(
            num_calls=200, epochs=4, warmup_epochs=2, seed=0,
            workload=workload, out=out,
        )
        # Same run vs its own leg: ratio 1.0, passes.
        gate = check_perf_regression(result, out, threshold=0.2)
        assert gate["ok"] and gate["ratio"] == pytest.approx(1.0)
        # A >20% drop against the committed leg fails.
        slow = dict(result)
        slow["call_epochs_per_second"] = (
            result["call_epochs_per_second"] * 0.5
        )
        gate = check_perf_regression(slow, out, threshold=0.2)
        assert not gate["ok"]
        assert gate["ratio"] == pytest.approx(0.5)
        # No leg of the same (num_calls, shards) shape: vacuous pass.
        other = dict(result)
        other["num_calls"] = 999
        gate = check_perf_regression(other, out, threshold=0.2)
        assert gate["ok"] and gate["baseline"] is None
