"""The batched renegotiation kernel: the one implementation of eqs. 6-8.

Every consumer of the paper's causal AR(1) + dual-threshold heuristic —
the scalar :class:`~repro.core.online.OnlineScheduler` (a fleet of one),
the vectorized :class:`~repro.server.fleet.CallFleet` (the gateway's
50k-call hot path), and through them every sweep cell and benchmark —
drives this kernel.  It owns, in exactly one place:

* the **AR(1) estimator** with the additive ``q/T`` flush-term
  correction (eq. 6)::

      r_hat(t) = eta * r_hat(t-1) + (1 - eta) * x(t)
      candidate = quantize(r_hat(t) + q(t) / T)

  (the flush term is applied on top of the recursion rather than fed
  back into it, which would inflate its steady-state contribution by
  ``1/(1 - eta)`` and grossly over-allocate);
* the **eq.-7 quantiser** — round the estimate *up* to the bandwidth
  granularity grid, guarded by :data:`QUANTIZE_EPSILON` — in both its
  scalar (:func:`quantize`) and whole-array (inside :meth:`step`) forms;
* the **eq.-8 threshold test** — signal only when the buffer crossed a
  threshold in the direction of the rate change::

      wants = (q > B_h and r_new > r) or (q < B_l and r_new < r)

* finite-buffer **overflow accounting** (``bits_lost``) and the
  panic-**drain** semantics used by the recovery policies
  (:mod:`repro.faults.recovery`): a draining call sheds the slot's
  arrivals at the source (counted as lost) while the buffer keeps
  draining, and the AR(1) estimator still sees the true incoming rate.

The kernel performs one *slot* of the heuristic for a whole
structure-of-arrays state block per call: one buffer update, one AR(1)
update, one quantization, one threshold test, each a fixed number of
whole-array numpy operations with no per-call Python loop.  Bit-identity
is part of the contract: a batch of one stepped slot-by-slot produces
exactly the float sequence the pre-refactor scalar scheduler produced
(``tests/test_core_kernel.py`` locks this against a frozen golden
reference), and calls in a batch never perturb each other's streams.

What the kernel does *not* do is grant rates: it reports who wants to
renegotiate and at what quantized candidate, and the caller — scalar
scheduler, gateway, fault harness — decides what is granted, applying
recovery policies, signaling-path outcomes, or fault injections before
writing the new rate back into :attr:`KernelState.rate`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - type-only (core.online imports us)
    from repro.core.online import OnlineParams

#: Guard subtracted before ``ceil`` in eq. 7's quantiser so an estimate
#: sitting exactly on a grid line is not bumped to the next level by
#: float dust.  This module is the constant's single home; the legacy
#: ``repro.core.online.QUANTIZE_EPSILON`` and
#: ``repro.server.fleet.QUANTIZE_EPSILON`` names are deprecated
#: re-exports of this value.
QUANTIZE_EPSILON = 1e-12


def quantize(
    rate_estimate: float,
    granularity: float,
    max_rate: Optional[float] = None,
) -> float:
    """eq. 7, scalar form: round the estimate *up* to the granularity grid.

    Bit-identical to the whole-array quantiser inside
    :meth:`RenegotiationKernel.step` (same :data:`QUANTIZE_EPSILON`
    guard, same operation order); ``tests/test_core_kernel.py`` checks
    the two agree float-for-float.
    """
    quantized = (
        math.ceil(max(0.0, rate_estimate) / granularity - QUANTIZE_EPSILON)
        * granularity
    )
    if max_rate is not None:
        quantized = min(quantized, max_rate)
    return quantized


class KernelState:
    """Structure-of-arrays per-call state advanced by the kernel.

    Three float64 columns — the currently reserved ``rate``, the AR(1)
    ``estimate``, and the playout ``buffer`` occupancy in bits — plus the
    cumulative ``bits_lost`` accounting (finite-buffer overflow and
    drain-shed arrivals).  Unused pool slots must hold exact zeros in
    every column; a zero row steps to a zero row, so whole-array
    reductions over the block stay exact and no post-step masking is
    needed.  Scratch arrays for the step's intermediates live here too,
    so steady-state stepping allocates nothing.
    """

    __slots__ = (
        "rate",
        "estimate",
        "buffer",
        "bits_lost",
        "bits_downgraded",
        "_candidate",
        "_scratch",
        "_wants",
        "_wants_down",
        "_cmp",
    )

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.rate = np.zeros(capacity)
        self.estimate = np.zeros(capacity)
        self.buffer = np.zeros(capacity)
        self.bits_lost = 0.0
        self.bits_downgraded = 0.0
        self._candidate = np.empty(capacity)
        self._scratch = np.empty(capacity)
        self._wants = np.empty(capacity, dtype=bool)
        self._wants_down = np.empty(capacity, dtype=bool)
        self._cmp = np.empty(capacity, dtype=bool)

    @property
    def capacity(self) -> int:
        return int(self.rate.size)

    def grow(self, new_capacity: int) -> None:
        """Reallocate to ``new_capacity`` slots, zero-filling the tail."""
        if new_capacity < self.capacity:
            raise ValueError("KernelState can only grow")
        for name in ("rate", "estimate", "buffer"):
            column = getattr(self, name)
            grown = np.zeros(new_capacity)
            grown[: column.size] = column
            setattr(self, name, grown)
        self._candidate = np.empty(new_capacity)
        self._scratch = np.empty(new_capacity)
        self._wants = np.empty(new_capacity, dtype=bool)
        self._wants_down = np.empty(new_capacity, dtype=bool)
        self._cmp = np.empty(new_capacity, dtype=bool)

    def clear_slot(self, index: int) -> None:
        """Return one slot to the exact-zero resting state."""
        self.rate[index] = 0.0
        self.estimate[index] = 0.0
        self.buffer[index] = 0.0

    # -- checkpointing --------------------------------------------------
    def state_dict(self) -> dict:
        """Export the persistent columns and ledgers (scratch excluded)."""
        return {
            "rate": self.rate.copy(),
            "estimate": self.estimate.copy(),
            "buffer": self.buffer.copy(),
            "bits_lost": self.bits_lost,
            "bits_downgraded": self.bits_downgraded,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` export, writing columns in place.

        In-place writes matter: the sharded fleet points these columns at
        a process-shared block, and rebinding the attributes would break
        the sharing.  The current capacity must already cover the saved
        columns (the fleet grows itself before delegating here).
        """
        saved = np.asarray(state["rate"])
        if saved.size > self.capacity:
            raise ValueError(
                f"kernel state holds {saved.size} slots but capacity is "
                f"{self.capacity}; grow before loading"
            )
        for name in ("rate", "estimate", "buffer"):
            column = getattr(self, name)
            column[:] = 0.0
            column[: saved.size] = np.asarray(state[name])
        self.bits_lost = float(state["bits_lost"])
        self.bits_downgraded = float(state["bits_downgraded"])


class KernelStateView:
    """A zero-copy window onto a contiguous range of kernel state columns.

    The sharded gateway partitions one full-size :class:`KernelState`
    block across worker processes; each worker steps its own contiguous
    slice through :meth:`RenegotiationKernel.step` via one of these
    views.  Because every step operation is elementwise, stepping a
    slice produces bit-for-bit the floats the whole-array step produces
    for those rows — which is the sharded runtime's determinism anchor.

    The persistent columns (``rate``/``estimate``/``buffer``, plus the
    observable ``_candidate``/``_wants`` outputs) are typically slices
    of process-shared arrays; the private scratch
    (``_scratch``/``_wants_down``/``_cmp``) can be worker-local
    buffers.  Views are meant to be stepped in *deferred accounting*
    mode (``excess_out``/``raw_arrivals_out``/``scaled_arrivals_out``),
    so their ``bits_lost``/``bits_downgraded`` floats stay untouched;
    the coordinator merges the deferred columns into the authoritative
    :class:`KernelState` through :func:`merge_deferred_step`.
    """

    __slots__ = (
        "rate",
        "estimate",
        "buffer",
        "bits_lost",
        "bits_downgraded",
        "_candidate",
        "_scratch",
        "_wants",
        "_wants_down",
        "_cmp",
    )

    def __init__(
        self,
        rate: np.ndarray,
        estimate: np.ndarray,
        buffer: np.ndarray,
        candidate: np.ndarray,
        scratch: np.ndarray,
        wants: np.ndarray,
        wants_down: np.ndarray,
        cmp: np.ndarray,
    ) -> None:
        self.rate = rate
        self.estimate = estimate
        self.buffer = buffer
        self.bits_lost = 0.0
        self.bits_downgraded = 0.0
        self._candidate = candidate
        self._scratch = scratch
        self._wants = wants
        self._wants_down = wants_down
        self._cmp = cmp

    @property
    def capacity(self) -> int:
        return int(self.rate.size)


def merge_deferred_step(
    state: KernelState,
    excess: Optional[np.ndarray] = None,
    raw_arrivals: Optional[np.ndarray] = None,
    scaled_arrivals: Optional[np.ndarray] = None,
) -> None:
    """Fold one epoch's deferred accounting columns into ``state``.

    The counterpart of :meth:`RenegotiationKernel.step`'s
    ``excess_out``/``raw_arrivals_out``/``scaled_arrivals_out`` mode:
    shard workers write the per-slot overflow excess and the raw/scaled
    downgrade arrivals into full-size shared columns, and the
    coordinator calls this once per epoch over the *whole* columns —
    the reductions then run over arrays of exactly the shape and
    content the unsharded step reduces, so ``bits_lost`` and
    ``bits_downgraded`` accumulate bit-identically.  This function
    lives here because the shed-accounting arithmetic, like the rest of
    eqs. 6-8, has exactly one home.
    """
    if excess is not None:
        lost = float(excess.sum())
        if lost > 0.0:
            state.bits_lost += lost
    if raw_arrivals is not None:
        if scaled_arrivals is None:
            raise ValueError(
                "raw_arrivals and scaled_arrivals must be given together"
            )
        state.bits_downgraded += float(
            raw_arrivals.sum() - scaled_arrivals.sum()
        )


class RenegotiationKernel:
    """One vectorized slot-step of the heuristic over a state block."""

    def __init__(
        self,
        params: "OnlineParams",
        slot_duration: float,
        buffer_size: Optional[float] = None,
    ) -> None:
        if slot_duration <= 0:
            raise ValueError("slot_duration must be positive")
        if buffer_size is not None and buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        self.params = params
        self.slot_duration = float(slot_duration)
        self.buffer_size = buffer_size
        #: T in seconds: the flush term adds the bandwidth needed to
        #: empty the current buffer within this horizon.
        self.time_constant = params.time_constant_slots * self.slot_duration

    def new_state(self, capacity: int = 1) -> KernelState:
        return KernelState(capacity)

    def quantize(self, rate_estimate: float) -> float:
        """Scalar eq.-7 quantiser with this kernel's grid and cap."""
        return quantize(
            rate_estimate, self.params.granularity, self.params.max_rate
        )

    def initial_rate(self, first_slot_bits: float) -> float:
        """The causal setup-time rate: the first slot's rate, quantised.

        Causal schedulers cannot peek at the mean; the paper's setup
        choice is the opening slot's arrival rate rounded to the grid.
        """
        return self.quantize(first_slot_bits / self.slot_duration)

    def step(
        self,
        state: "KernelState | KernelStateView",
        arrivals: np.ndarray,
        drain: Optional[np.ndarray] = None,
        downgrade: Optional[np.ndarray] = None,
        excess_out: Optional[np.ndarray] = None,
        raw_arrivals_out: Optional[np.ndarray] = None,
        scaled_arrivals_out: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Advance every call in ``state`` through one slot of arrivals.

        ``arrivals`` holds bits arriving this slot per pool slot, already
        gathered and masked by the caller (inactive slots must carry
        exact zeros).  ``drain``, if given, is a boolean mask of calls in
        panic-drain mode: their arrivals are shed at the source (counted
        in ``state.bits_lost``) while the buffer keeps draining, but the
        AR(1) estimator still sees the true incoming rate.

        ``downgrade``, if given, is a per-slot array of resolution scale
        factors in ``(0, 1]`` (1.0 = full resolution).  The overload
        control plane uses it to walk classes of calls down a resolution
        ladder: a downgraded source re-encodes at lower fidelity, so its
        arrivals shrink *before* the buffer update and the AR(1)
        estimator tracks the reduced rate — unlike ``drain``, which
        sheds at the source while the estimator still sees the true
        rate.  The bits removed by downgrading are controlled, policy-
        requested shedding and accumulate in ``state.bits_downgraded``,
        separate from the uncontrolled overflow/drain losses in
        ``state.bits_lost``.  ``downgrade=None`` performs zero extra
        array operations, keeping the undowngraded path bit-identical.

        **Deferred accounting** (the sharded runtime's worker mode):
        with ``excess_out``, the per-slot overflow excess is written to
        that array instead of being summed into ``state.bits_lost``
        (the buffer is still clamped — a no-overflow clamp is a
        bit-exact no-op); with ``raw_arrivals_out``/
        ``scaled_arrivals_out``, the pre- and post-downgrade arrivals
        are written out instead of accruing ``state.bits_downgraded``.
        A coordinator holding every shard's columns then performs the
        reductions once, over full-size arrays, via
        :func:`merge_deferred_step` — reproducing the unsharded
        accumulation order bit for bit.  Deferred mode cannot be
        combined with ``drain`` (drain-shed accounting is summed
        in-step).

        Returns ``(wants, candidates)``: the raw eq.-8 crossing mask and
        the full quantised eq.-7 candidate array.  Both are views of
        state-owned scratch, valid until the next ``step`` call; the
        caller layers its own eligibility masks (active calls, requests
        already in flight) on top and writes granted rates back into
        ``state.rate``.  The state block is updated in place and
        ``state.bits_lost`` accumulates overflow plus drain-shed bits.
        """
        params = self.params
        rate = state.rate
        buffer_level = state.buffer
        estimate = state.estimate
        candidate = state._candidate
        scratch = state._scratch
        wants = state._wants
        wants_down = state._wants_down
        compare = state._cmp
        if drain is not None and (
            excess_out is not None or raw_arrivals_out is not None
        ):
            raise ValueError("drain cannot be combined with deferred outputs")

        # Resolution downgrade: the source encodes at a fraction of full
        # fidelity, so every consumer below (buffer, estimator, drain)
        # sees the reduced arrivals.  ``_candidate`` is free scratch
        # until eq. 7 overwrites it, well after the last read of
        # ``arrivals``.
        if downgrade is not None:
            if scaled_arrivals_out is not None:
                raw_arrivals_out[:] = arrivals
                np.multiply(arrivals, downgrade, out=scaled_arrivals_out)
                arrivals = scaled_arrivals_out
            else:
                np.multiply(arrivals, downgrade, out=candidate)
                state.bits_downgraded += float(
                    arrivals.sum() - candidate.sum()
                )
                arrivals = candidate

        # Buffer update: q = max(0, (q + a) - r * slot), the adds and
        # subtracts associating exactly as in the original scalar loop.
        # A draining call adds nothing (its arrivals are shed and
        # counted lost) and keeps serving its backlog.
        if drain is None:
            np.add(buffer_level, arrivals, out=buffer_level)
        else:
            np.multiply(arrivals, drain, out=scratch)
            shed = float(scratch.sum())
            state.bits_lost += shed
            np.subtract(arrivals, scratch, out=scratch)
            np.add(buffer_level, scratch, out=buffer_level)
        np.multiply(rate, self.slot_duration, out=scratch)
        np.subtract(buffer_level, scratch, out=buffer_level)
        np.maximum(buffer_level, 0.0, out=buffer_level)

        # Finite-buffer overflow: bits beyond the playout buffer are
        # lost, not queued (drained calls only shrank, so they clamp to
        # a no-op exactly as the scalar loop's branch structure did).
        if self.buffer_size is not None:
            np.subtract(buffer_level, self.buffer_size, out=scratch)
            np.maximum(scratch, 0.0, out=scratch)
            if excess_out is not None:
                excess_out[:] = scratch
                np.minimum(
                    buffer_level, self.buffer_size, out=buffer_level
                )
            else:
                lost = float(scratch.sum())
                if lost > 0.0:
                    state.bits_lost += lost
                    np.minimum(
                        buffer_level, self.buffer_size, out=buffer_level
                    )

        # eq. 6: the AR(1) update on the true incoming rate.
        np.divide(arrivals, self.slot_duration, out=scratch)
        np.multiply(estimate, params.ar_coefficient, out=estimate)
        scratch *= 1.0 - params.ar_coefficient
        np.add(estimate, scratch, out=estimate)

        # eq. 7: flush-term correction, then quantise up to the grid.
        np.divide(buffer_level, self.time_constant, out=candidate)
        np.add(estimate, candidate, out=candidate)
        np.maximum(candidate, 0.0, out=candidate)
        candidate /= params.granularity
        candidate -= QUANTIZE_EPSILON
        np.ceil(candidate, out=candidate)
        candidate *= params.granularity
        if params.max_rate is not None:
            np.minimum(candidate, params.max_rate, out=candidate)

        # eq. 8: a crossing counts only in the direction of the change.
        np.greater(buffer_level, params.high_threshold, out=wants)
        np.greater(candidate, rate, out=compare)
        wants &= compare
        np.less(buffer_level, params.low_threshold, out=wants_down)
        np.less(candidate, rate, out=compare)
        wants_down &= compare
        wants |= wants_down
        return wants, candidate
