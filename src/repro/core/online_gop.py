"""GOP-aware causal renegotiation (the paper's suggested improvement).

Section IV-B closes with: "the prediction quality could be improved by
taking into account the inherent frame structure of MPEG encoded video."
The plain AR(1) estimator sees the I/B/P sawtooth as noise: a single
smoothed rate both lags scene changes and jitters with the GOP phase.

This scheduler decomposes the incoming frame sizes into **scene level x
GOP shape**: a slow per-phase multiplier profile (the I/B/P shape,
learned once and drifting slowly) and a fast scalar *level* estimated
from shape-normalised frame sizes.  Because the sawtooth is divided out
before the level AR(1), every frame — I, P, or B — is an unbiased sample
of the scene level, so the level estimator can be far more responsive
than the plain AR(1) without jittering with the GOP phase.

The renegotiation trigger is unchanged (eq. 7/8: quantize up to the
granularity grid, renegotiate on buffer-threshold crossings), making this
a drop-in replacement for :class:`repro.core.online.OnlineScheduler` —
``benchmarks/test_online_gop_ablation.py`` quantifies the improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core import kernel as _kernel
from repro.core.online import OnlineParams, OnlineScheduleResult
from repro.core.schedule import RateSchedule
from repro.traffic.trace import SlottedWorkload


@dataclass(frozen=True)
class GopAwareParams:
    """Parameters of the GOP-aware heuristic.

    ``base`` carries the shared knobs (granularity, thresholds, flush
    time constant); ``gop_length`` is the GOP period in slots.
    ``shape_ar_coefficient`` is the slow memory of the per-phase shape
    profile (a phase sees one sample per GOP, so 0.9 spans ~10 GOPs);
    ``level_ar_coefficient`` is the fast memory of the shape-normalised
    scene-level estimator — it can sit well below the plain heuristic's
    coefficient because the sawtooth has been divided out.
    """

    base: OnlineParams
    gop_length: int = 12
    shape_ar_coefficient: float = 0.9
    level_ar_coefficient: float = 0.3

    def __post_init__(self) -> None:
        if self.gop_length < 1:
            raise ValueError("gop_length must be >= 1")
        if not 0.0 <= self.shape_ar_coefficient < 1.0:
            raise ValueError("shape_ar_coefficient must be in [0, 1)")
        if not 0.0 <= self.level_ar_coefficient < 1.0:
            raise ValueError("level_ar_coefficient must be in [0, 1)")


class GopAwareOnlineScheduler:
    """Causal scheduler with per-GOP-phase rate estimation."""

    def __init__(self, params: GopAwareParams) -> None:
        self.params = params

    def quantize(self, rate_estimate: float) -> float:
        """eq. 7 on the base grid (see :func:`repro.core.kernel.quantize`)."""
        base = self.params.base
        return _kernel.quantize(
            rate_estimate, base.granularity, base.max_rate
        )

    def schedule(
        self,
        workload: SlottedWorkload,
        initial_rate: Optional[float] = None,
        request_fn: Optional[Callable[[float, float], bool]] = None,
        name: str = "",
    ) -> OnlineScheduleResult:
        """Run causally over ``workload``; same contract as the base
        scheduler (see :meth:`repro.core.online.OnlineScheduler.schedule`)."""
        params = self.params
        base = params.base
        gop = params.gop_length
        shape_eta = params.shape_ar_coefficient
        level_eta = params.level_ar_coefficient
        arrivals = workload.bits_per_slot.tolist()
        slot = workload.slot_duration
        time_constant = base.time_constant_slots * slot

        # GOP shape: per-phase multipliers around 1, learned slowly.
        shape = np.ones(gop)
        shape_seen = np.zeros(gop, dtype=bool)
        level = arrivals[0]  # scene level in bits per slot

        if initial_rate is None:
            current_rate = self.quantize(arrivals[0] / slot)
        else:
            if initial_rate < 0:
                raise ValueError("initial_rate must be non-negative")
            current_rate = initial_rate

        buffer_level = 0.0
        max_buffer = 0.0
        requests = 0
        denied = 0
        slot_rates = np.empty(workload.num_slots)

        for index, amount in enumerate(arrivals):
            slot_rates[index] = current_rate
            buffer_level = max(0.0, buffer_level + amount - current_rate * slot)
            if buffer_level > max_buffer:
                max_buffer = buffer_level

            phase = index % gop
            # Multiplicative residual update (stable log-domain gradient
            # step): the prediction error ratio is split between the fast
            # level and the slow shape, then the shape is renormalised to
            # mean 1 so the two cannot drift against each other.
            if not shape_seen[phase]:
                shape[phase] = amount / max(level, 1e-9)
                shape_seen[phase] = True
            predicted = max(level * shape[phase], 1e-9)
            # Floor the ratio so silent slots decay the level quickly but
            # boundedly (a hard zero would crash it in one step).
            error_ratio = max(amount, 0.05 * predicted) / predicted
            level *= error_ratio ** (1.0 - level_eta)
            shape[phase] *= error_ratio ** (1.0 - shape_eta)
            seen_mean = shape[shape_seen].mean()
            if seen_mean > 1e-9:
                shape[shape_seen] /= seen_mean
                level *= seen_mean

            predicted_rate = level / slot
            candidate = self.quantize(
                predicted_rate + buffer_level / time_constant
            )

            wants_up = (
                buffer_level > base.high_threshold and candidate > current_rate
            )
            wants_down = (
                buffer_level < base.low_threshold and candidate < current_rate
            )
            if wants_up or wants_down:
                requests += 1
                granted = True
                if request_fn is not None:
                    granted = bool(request_fn((index + 1) * slot, candidate))
                if granted:
                    current_rate = candidate
                else:
                    denied += 1

        schedule = RateSchedule.from_slot_rates(
            slot_rates, slot, name=name or f"gop-ar1({workload.name})"
        )
        return OnlineScheduleResult(
            schedule=schedule,
            max_buffer=max_buffer,
            final_buffer=buffer_level,
            requests_made=requests,
            requests_denied=denied,
        )
