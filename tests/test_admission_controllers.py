"""Admission controllers (Section VI)."""

import numpy as np
import pytest

from repro.admission.controllers import (
    AlwaysAdmit,
    MemoryMBAC,
    MemorylessMBAC,
    PerfectKnowledgeCAC,
)

LEVELS = np.array([100.0, 300.0, 900.0])
FRACTIONS = np.array([0.5, 0.4, 0.1])


class TestAlwaysAdmit:
    def test_admits_everything(self):
        controller = AlwaysAdmit()
        for _ in range(100):
            assert controller.admit(10.0, 0.0)

    def test_tracks_population(self):
        controller = AlwaysAdmit()
        controller.on_admit("a", 5.0, 0.0)
        controller.on_admit("b", 5.0, 0.0)
        assert controller.num_active == 2
        controller.on_departure("a", 1.0)
        assert controller.num_active == 1


class TestPerfectKnowledge:
    def test_admits_up_to_chernoff_bound(self):
        controller = PerfectKnowledgeCAC(LEVELS, FRACTIONS, 1e-3)
        capacity = 10_000.0
        limit = controller.max_calls(capacity)
        assert limit > 0
        for index in range(limit):
            assert controller.admit(capacity, 0.0)
            controller.on_admit(index, 100.0, 0.0)
        assert not controller.admit(capacity, 0.0)

    def test_denies_even_with_spare_capacity(self):
        """The safeguard: rejects before the link is full."""
        controller = PerfectKnowledgeCAC(LEVELS, FRACTIONS, 1e-6)
        capacity = 10_000.0
        limit = controller.max_calls(capacity)
        mean = float(LEVELS @ FRACTIONS)
        # The admitted calls' mean load is below capacity: slack remains.
        assert limit * mean < capacity

    def test_departures_reopen_admission(self):
        controller = PerfectKnowledgeCAC(LEVELS, FRACTIONS, 1e-3)
        capacity = 5_000.0
        limit = controller.max_calls(capacity)
        for index in range(limit):
            controller.on_admit(index, 100.0, 0.0)
        assert not controller.admit(capacity, 1.0)
        controller.on_departure(0, 2.0)
        assert controller.admit(capacity, 3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PerfectKnowledgeCAC(LEVELS, FRACTIONS, 0.0)


class TestMemoryless:
    def test_empty_system_admits(self):
        controller = MemorylessMBAC(1e-3)
        assert controller.admit(1.0, 0.0)

    def test_snapshot_drives_decision(self):
        """If every active call currently sits at a low rate, the
        memoryless controller happily over-admits — the paper's flaw."""
        controller = MemorylessMBAC(1e-3)
        capacity = 2_000.0
        for index in range(15):
            controller.on_admit(index, 100.0, 0.0)
        # Snapshot says every call needs 100; 16 calls * 100 < 2000.
        assert controller.admit(capacity, 1.0)

    def test_high_snapshot_blocks(self):
        controller = MemorylessMBAC(1e-3)
        capacity = 2_000.0
        for index in range(3):
            controller.on_admit(index, 900.0, 0.0)
        # 4 * 900 = 3600 > 2000 with certainty -> reject.
        assert not controller.admit(capacity, 1.0)

    def test_reservation_updates_snapshot(self):
        controller = MemorylessMBAC(1e-3)
        capacity = 2_000.0
        for index in range(3):
            controller.on_admit(index, 900.0, 0.0)
        for index in range(3):
            controller.on_reservation(index, 100.0, 1.0)
        assert controller.admit(capacity, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MemorylessMBAC(1.0)


class TestMemory:
    def test_empty_system_admits(self):
        controller = MemoryMBAC(1e-3)
        assert controller.admit(1.0, 0.0)

    def test_history_remembers_past_peaks(self):
        """The key robustness property: even if all calls are currently
        cheap, remembered expensive phases keep the estimate honest."""
        capacity = 2_000.0
        memoryless = MemorylessMBAC(1e-3)
        memory = MemoryMBAC(1e-3)
        for controller in (memoryless, memory):
            for index in range(6):
                controller.on_admit(index, 900.0, 0.0)
            for index in range(6):
                # After a long expensive phase, everyone drops to 100.
                controller.on_reservation(index, 100.0, 1000.0)
        # Snapshot view: 7 * 100 << 2000 -> memoryless admits.
        assert memoryless.admit(capacity, 1001.0)
        # History view: calls spend ~100% of time at 900 so far -> reject.
        assert not memory.admit(capacity, 1001.0)

    def test_pooled_history_fractions(self):
        controller = MemoryMBAC(1e-3)
        controller.on_admit("a", 100.0, 0.0)
        controller.on_reservation("a", 300.0, 10.0)
        pooled = controller.pooled_history(30.0)
        assert pooled is not None
        levels, fractions = pooled
        assert np.allclose(levels, [100.0, 300.0])
        assert np.allclose(fractions, [1 / 3, 2 / 3])

    def test_departed_calls_retained_by_default(self):
        controller = MemoryMBAC(1e-3)
        controller.on_admit("a", 900.0, 0.0)
        controller.on_departure("a", 10.0)
        pooled = controller.pooled_history(20.0)
        assert pooled is not None
        levels, fractions = pooled
        assert np.allclose(levels, [900.0])
        assert np.allclose(fractions, [1.0])

    def test_departed_calls_drop_when_not_retained(self):
        controller = MemoryMBAC(1e-3, retain_departed=False)
        controller.on_admit("a", 900.0, 0.0)
        controller.on_departure("a", 10.0)
        assert controller.pooled_history(20.0) is None

    def test_retained_history_converges_to_true_marginal(self):
        controller = MemoryMBAC(1e-3)
        for index in range(20):
            start = index * 100.0
            controller.on_admit(index, 100.0, start)
            controller.on_reservation(index, 300.0, start + 75.0)
            controller.on_departure(index, start + 100.0)
        levels, fractions = controller.pooled_history(2000.0)
        assert np.allclose(levels, [100.0, 300.0])
        assert np.allclose(fractions, [0.75, 0.25])

    def test_min_history_defers_to_admit(self):
        controller = MemoryMBAC(1e-3, min_history_seconds=100.0)
        controller.on_admit("a", 900.0, 0.0)
        # Only 1 second of history: below threshold, admit.
        assert controller.admit(1_000.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryMBAC(0.0)
        with pytest.raises(ValueError):
            MemoryMBAC(1e-3, min_history_seconds=-1.0)
