"""The call-level admission simulator."""

import numpy as np
import pytest

from repro.admission.callsim import (
    CallLevelSimulator,
    arrival_rate_for_load,
    simulate_admission,
)
from repro.admission.controllers import AlwaysAdmit, MemorylessMBAC
from repro.core.schedule import RateSchedule


@pytest.fixture
def toy_schedule():
    """A 100-second schedule alternating 100 and 300 b/s every 10 s."""
    times = np.arange(10) * 10.0
    rates = np.where(np.arange(10) % 2 == 0, 100.0, 300.0)
    return RateSchedule(times, rates, duration=100.0)


class TestArrivalRateForLoad:
    def test_formula_inverts_offered_load(self):
        lam = arrival_rate_for_load(0.8, 10_000.0, 200.0, 100.0)
        assert lam * 100.0 * 200.0 / 10_000.0 == pytest.approx(0.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            arrival_rate_for_load(0.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            arrival_rate_for_load(1.0, 0.0, 1.0, 1.0)


class TestCallLevelSimulator:
    def test_interval_sample_fields(self, toy_schedule):
        simulator = CallLevelSimulator(
            toy_schedule, 10_000.0, 0.05, AlwaysAdmit(), seed=1
        )
        sample = simulator.run_interval()
        assert 0.0 <= sample.utilization <= 1.0
        assert 0.0 <= sample.failure_fraction <= 1.0
        assert 0.0 <= sample.blocking_fraction <= 1.0
        assert sample.arrivals >= 0

    def test_huge_capacity_no_failures(self, toy_schedule):
        simulator = CallLevelSimulator(
            toy_schedule, 1e9, 0.05, AlwaysAdmit(), seed=2
        )
        for _ in range(3):
            sample = simulator.run_interval()
            assert sample.failure_fraction == 0.0

    def test_tiny_capacity_fails(self, toy_schedule):
        simulator = CallLevelSimulator(
            toy_schedule, 350.0, 0.2, AlwaysAdmit(), seed=3
        )
        total_failures = sum(
            simulator.run_interval().failure_fraction for _ in range(5)
        )
        assert total_failures > 0.0

    def test_reproducible(self, toy_schedule):
        def run():
            simulator = CallLevelSimulator(
                toy_schedule, 2_000.0, 0.05, AlwaysAdmit(), seed=42
            )
            return [simulator.run_interval().utilization for _ in range(3)]

        assert run() == run()

    def test_utilization_grows_with_load(self, toy_schedule):
        def utilization(load_rate):
            simulator = CallLevelSimulator(
                toy_schedule, 5_000.0, load_rate, AlwaysAdmit(), seed=5
            )
            return np.mean(
                [simulator.run_interval().utilization for _ in range(5)]
            )

        assert utilization(0.15) > utilization(0.01)

    def test_validation(self, toy_schedule):
        with pytest.raises(ValueError):
            CallLevelSimulator(toy_schedule, 0.0, 1.0, AlwaysAdmit())
        with pytest.raises(ValueError):
            CallLevelSimulator(toy_schedule, 1.0, 0.0, AlwaysAdmit())
        simulator = CallLevelSimulator(toy_schedule, 1.0, 1.0, AlwaysAdmit())
        with pytest.raises(ValueError):
            simulator.run_interval(0.0)


class TestSimulateAdmission:
    def test_produces_confidence_intervals(self, toy_schedule):
        result = simulate_admission(
            toy_schedule,
            capacity=2_000.0,
            arrival_rate=0.05,
            controller=AlwaysAdmit(),
            seed=7,
            warmup_intervals=1,
            min_intervals=3,
            max_intervals=6,
        )
        assert result.num_intervals >= 3
        assert result.failure_interval is not None
        assert result.utilization_interval is not None
        assert 0.0 <= result.utilization <= 1.0

    def test_early_stop_when_below_target(self, toy_schedule):
        result = simulate_admission(
            toy_schedule,
            capacity=1e9,
            arrival_rate=0.05,
            controller=AlwaysAdmit(),
            seed=8,
            min_intervals=3,
            max_intervals=50,
            failure_target=1e-3,
        )
        # No failures at huge capacity: should stop at min_intervals.
        assert result.num_intervals == 3
        assert result.failure_probability == 0.0

    def test_mbac_blocks_some_calls_under_overload(self, toy_schedule):
        result = simulate_admission(
            toy_schedule,
            capacity=1_000.0,
            arrival_rate=0.5,  # heavy overload
            controller=MemorylessMBAC(1e-3),
            seed=9,
            min_intervals=3,
            max_intervals=6,
        )
        assert result.blocking_probability > 0.0


class TestInjectedFaults:
    def test_injected_denials_raise_failure_fraction(self, toy_schedule):
        from repro.faults.injectors import FaultPlan

        clean = CallLevelSimulator(
            toy_schedule, 1e9, 0.05, AlwaysAdmit(), seed=3
        )
        plan = FaultPlan.from_spec({"denial": {"rate": 0.5}}, seed=0)
        faulty = CallLevelSimulator(
            toy_schedule, 1e9, 0.05, AlwaysAdmit(), seed=3, faults=plan
        )
        clean_fail = np.mean(
            [clean.run_interval().failure_fraction for _ in range(5)]
        )
        faulty_fail = np.mean(
            [faulty.run_interval().failure_fraction for _ in range(5)]
        )
        assert clean_fail == 0.0
        assert faulty_fail > 0.2

    def test_abandonment_frees_bandwidth(self, toy_schedule):
        from repro.faults.injectors import FaultPlan

        plan = FaultPlan.from_spec(
            {"denial": {"enter_probability": 1.0, "exit_probability": 1e-9}},
            seed=0,
        )
        simulator = CallLevelSimulator(
            toy_schedule, 1e9, 0.05, AlwaysAdmit(), seed=4,
            faults=plan, abandon_after=2,
        )
        samples = [simulator.run_interval() for _ in range(6)]
        assert sum(sample.abandoned for sample in samples) > 0
        # Abandoned calls left the link: no grants or streaks linger.
        assert simulator.link.num_sources == len(simulator._call_events)

    def test_abandon_after_validation(self, toy_schedule):
        with pytest.raises(ValueError):
            CallLevelSimulator(
                toy_schedule, 1e9, 0.05, AlwaysAdmit(), abandon_after=0
            )

    def test_simulate_admission_forwards_faults(self, toy_schedule):
        from repro.faults.injectors import FaultPlan

        plan = FaultPlan.from_spec({"denial": {"rate": 0.5}}, seed=1)
        result = simulate_admission(
            toy_schedule, 1e9, 0.05, AlwaysAdmit(), seed=5,
            min_intervals=3, max_intervals=5,
            faults=plan, abandon_after=3,
        )
        assert result.failure_probability > 0.0
        assert result.total_abandoned >= 0
