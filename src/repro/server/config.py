"""Gateway configuration and controller wiring.

:class:`ServerConfig` bundles every knob of the service runtime — link
capacity, offered load, the admission controller, the signaling path
geometry, fault handling, and the determinism seed — and validates them
eagerly so a bad CLI flag fails at startup, not twenty simulated minutes
in.  :func:`build_controller` maps the CLI's controller names onto the
:mod:`repro.admission` classes, running the offline heuristic once to
derive the perfect-knowledge marginal when asked for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.admission.controllers import (
    AdmissionController,
    AlwaysAdmit,
    MemoryMBAC,
    MemorylessMBAC,
    PerfectKnowledgeCAC,
)
from repro.core.online import OnlineParams, OnlineScheduler
from repro.core.schedule import empirical_rate_distribution
from repro.overload.policies import OVERLOAD_POLICY_NAMES
from repro.traffic.sources import SOURCE_NAMES
from repro.traffic.trace import SlottedWorkload
from repro.util.units import kbits, kbps

#: Controller names accepted by :func:`build_controller` and the CLI.
CONTROLLER_NAMES = ("always", "memoryless", "memory", "perfect")


@dataclass(frozen=True)
class ServerConfig:
    """Everything the gateway needs besides the workload itself.

    ``capacity`` is the bottleneck link/port bandwidth in bits/s.  ``load``
    is the normalized offered load (arrival rate is derived via the
    Erlang identity ``lambda = load * capacity / (mean_rate * holding)``);
    zero means no open-loop arrivals, only ``initial_calls``.
    ``buffer_bits`` of ``None`` models an infinite playout buffer.
    ``abandon_after`` tears a call down after that many *consecutive*
    failed renegotiations, modelling a user giving up on a degraded
    stream; ``None`` disables abandonment.  ``upstream_headroom``
    over-provisions the non-bottleneck hops of a multi-hop path by that
    factor, keeping the bottleneck port the binding constraint.

    ``source`` names a :mod:`repro.traffic.sources` traffic model for the
    gateway to sample its base workload from (``None`` = use the workload
    handed to the gateway directly); ``source_slots`` is how many slots
    to sample.  The sample is drawn from a dedicated stream spawned from
    ``seed``, so sourced runs inherit the same determinism contract.

    ``shards`` selects the multi-process sharded runtime
    (:mod:`repro.server.sharded`): 0 runs the plain single-process
    gateway, ``N >= 1`` partitions the call fleet's kernel state across
    ``N`` worker processes in contiguous ``shard_chunk``-slot chunks
    (shard of a slot = ``(slot // shard_chunk) % shards``, a pure
    function of the pool slot, so a call never migrates shards).  The
    snapshot fingerprint is byte-identical for any shard count,
    including 0.

    The ``overload_*`` knobs configure the link-level overload control
    plane (:mod:`repro.overload`).  ``overload_policy`` selects block
    (the baseline — no plane is even instantiated, so the snapshot
    stream stays byte-identical to pre-overload builds), downgrade, or
    sacrifice.  ``overload_enter``/``overload_exit`` are the hysteresis
    pressure thresholds (fractions of link capacity; exit must be
    strictly below enter) and ``overload_dwell`` the number of
    consecutive epochs a threshold must hold before the plane changes
    state.  Arriving calls are assigned one of ``overload_classes``
    service classes (class 0 is the most protected), drawn from a
    dedicated seeded stream with probabilities proportional to
    ``class_weights`` (``None`` = uniform).  ``downgrade_ladder`` is
    the resolution ladder walked by the downgrade policy;
    ``sacrifice_queue``/``sacrifice_max_per_epoch`` bound the sacrifice
    policy's requeue depth and per-epoch eviction budget.
    """

    capacity: float
    load: float = 0.0
    controller: str = "always"
    failure_target: float = 1e-3
    granularity: float = field(default_factory=lambda: kbps(64))
    online_params: Optional[OnlineParams] = None
    buffer_bits: Optional[float] = field(default_factory=lambda: kbits(300))
    mean_holding: Optional[float] = None  # None -> one workload duration
    abandon_after: Optional[int] = None
    num_hops: int = 1
    hop_delay: float = 0.001
    upstream_headroom: float = 4.0
    request_timeout: Optional[float] = None
    max_retries: int = 2
    retry_backoff: float = 1.0
    retry_jitter: float = 0.0
    initial_calls: int = 0
    seed: int = 0
    source: Optional[str] = None
    source_slots: int = 2400
    shards: int = 0
    shard_chunk: int = 4096
    overload_policy: str = "block"
    overload_enter: float = 0.95
    overload_exit: float = 0.85
    overload_dwell: int = 8
    overload_classes: int = 3
    class_weights: Optional[Tuple[float, ...]] = None
    downgrade_ladder: Tuple[float, ...] = (1.0, 0.75, 0.5, 0.35)
    sacrifice_queue: int = 64
    sacrifice_max_per_epoch: int = 2

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.load < 0:
            raise ValueError("load must be non-negative")
        if self.controller not in CONTROLLER_NAMES:
            raise ValueError(
                f"unknown controller {self.controller!r}; "
                f"expected one of {CONTROLLER_NAMES}"
            )
        if not 0.0 < self.failure_target < 1.0:
            raise ValueError("failure_target must be in (0, 1)")
        if self.granularity <= 0:
            raise ValueError("granularity must be positive")
        if self.buffer_bits is not None and self.buffer_bits <= 0:
            raise ValueError("buffer_bits must be positive (None = infinite)")
        if self.mean_holding is not None and self.mean_holding <= 0:
            raise ValueError("mean_holding must be positive")
        if self.abandon_after is not None and self.abandon_after < 1:
            raise ValueError("abandon_after must be >= 1")
        if self.num_hops < 1:
            raise ValueError("num_hops must be >= 1")
        if self.hop_delay < 0:
            raise ValueError("hop_delay must be non-negative")
        if self.upstream_headroom < 1.0:
            raise ValueError("upstream_headroom must be >= 1")
        if self.initial_calls < 0:
            raise ValueError("initial_calls must be non-negative")
        if self.source is not None and self.source not in SOURCE_NAMES:
            raise ValueError(
                f"unknown source {self.source!r}; "
                f"expected one of {SOURCE_NAMES}"
            )
        if self.source_slots < 1:
            raise ValueError("source_slots must be >= 1")
        if self.shards < 0:
            raise ValueError("shards must be non-negative (0 = unsharded)")
        if self.shard_chunk < 1:
            raise ValueError("shard_chunk must be >= 1")
        if self.overload_policy not in OVERLOAD_POLICY_NAMES:
            raise ValueError(
                f"unknown overload policy {self.overload_policy!r}; "
                f"expected one of {OVERLOAD_POLICY_NAMES}"
            )
        if not 0.0 < self.overload_exit < self.overload_enter:
            raise ValueError(
                "need 0 < overload_exit < overload_enter"
            )
        if self.overload_dwell < 1:
            raise ValueError("overload_dwell must be >= 1")
        if self.overload_classes < 1:
            raise ValueError("overload_classes must be >= 1")
        if self.class_weights is not None:
            if len(self.class_weights) != self.overload_classes:
                raise ValueError(
                    "class_weights must have one entry per overload class"
                )
            if any(weight <= 0 for weight in self.class_weights):
                raise ValueError("class_weights must be positive")
        ladder = self.downgrade_ladder
        if len(ladder) < 2 or ladder[0] != 1.0 or any(
            not 0.0 < after < before
            for before, after in zip(ladder, ladder[1:])
        ):
            raise ValueError(
                "downgrade_ladder must start at 1.0 and be strictly "
                "decreasing in (0, 1]"
            )
        if self.sacrifice_queue < 1:
            raise ValueError("sacrifice_queue must be >= 1")
        if self.sacrifice_max_per_epoch < 1:
            raise ValueError("sacrifice_max_per_epoch must be >= 1")

    def resolve_online_params(self) -> OnlineParams:
        """The heuristic's parameters, capped at the link capacity."""
        if self.online_params is not None:
            return self.online_params
        return OnlineParams(
            granularity=self.granularity, max_rate=self.capacity
        )

    def to_dict(self) -> Dict[str, Any]:
        """Config echo for reports; only JSON-representable fields."""
        return {
            "capacity": self.capacity,
            "load": self.load,
            "controller": self.controller,
            "failure_target": self.failure_target,
            "granularity": self.granularity,
            "buffer_bits": self.buffer_bits,
            "mean_holding": self.mean_holding,
            "abandon_after": self.abandon_after,
            "num_hops": self.num_hops,
            "hop_delay": self.hop_delay,
            "upstream_headroom": self.upstream_headroom,
            "request_timeout": self.request_timeout,
            "max_retries": self.max_retries,
            "retry_backoff": self.retry_backoff,
            "retry_jitter": self.retry_jitter,
            "initial_calls": self.initial_calls,
            "seed": self.seed,
            "source": self.source,
            "source_slots": self.source_slots,
            "shards": self.shards,
            "shard_chunk": self.shard_chunk,
            "overload_policy": self.overload_policy,
            "overload_enter": self.overload_enter,
            "overload_exit": self.overload_exit,
            "overload_dwell": self.overload_dwell,
            "overload_classes": self.overload_classes,
            "class_weights": (
                list(self.class_weights)
                if self.class_weights is not None
                else None
            ),
            "downgrade_ladder": list(self.downgrade_ladder),
            "sacrifice_queue": self.sacrifice_queue,
            "sacrifice_max_per_epoch": self.sacrifice_max_per_epoch,
        }


def build_controller(
    config: ServerConfig,
    workload: SlottedWorkload,
    params: Optional[OnlineParams] = None,
) -> AdmissionController:
    """Instantiate the configured admission controller.

    ``perfect`` derives the true per-call marginal the way the paper's
    Section VI does: run the online heuristic once over the base workload
    and histogram the resulting RCBR schedule.  Every served call is a
    circular shift of that workload, so the histogram *is* the per-call
    marginal (up to edge effects of the shift).
    """
    name = config.controller
    if name == "always":
        return AlwaysAdmit()
    if name == "memoryless":
        return MemorylessMBAC(failure_target=config.failure_target)
    if name == "memory":
        return MemoryMBAC(failure_target=config.failure_target)
    if name == "perfect":
        if params is None:
            params = config.resolve_online_params()
        result = OnlineScheduler(params).schedule(workload)
        levels, fractions = empirical_rate_distribution(result.schedule)
        return PerfectKnowledgeCAC(
            levels=levels,
            fractions=fractions,
            failure_target=config.failure_target,
        )
    raise ValueError(f"unknown controller {name!r}")
