"""The parallel sweep engine (repro.perf.engine).

The load-bearing claims: results come back in input order; a parallel
run (``workers > 1``) is bit-identical to the serial reference
(``workers=1``); per-cell seeds depend only on ``base_seed`` and cell
index; and a cache-warm rerun returns exactly the cold run's values
without recomputing anything.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.schedule import RateSchedule
from repro.perf.cache import ResultCache
from repro.perf.engine import CellResult, SweepCell, SweepEngine
from repro.perf.recorder import BENCH_SCHEMA, BenchRecorder
from repro.perf.sweeps import mbac_grid_cells


# ----------------------------------------------------------------------
# Cell functions must live at module level so they pickle for the pool.
# ----------------------------------------------------------------------
def draw_cell(seed, count):
    """Draws from the engine-provided SeedSequence: seed-determined."""
    rng = np.random.default_rng(seed)
    return rng.normal(size=count).tolist()


def square_cell(value):
    return value * value


def logging_cell(value, log_path):
    """Appends to ``log_path`` on every *computation* (not cache hit)."""
    with open(log_path, "a", encoding="utf-8") as handle:
        handle.write(f"{value}\n")
    return 2 * value


def interrupting_cell(value, log_path, interrupt_on):
    """A logging cell that models Ctrl-C arriving inside one worker."""
    if value == interrupt_on:
        raise KeyboardInterrupt
    import time as _time

    _time.sleep(0.05)
    with open(log_path, "a", encoding="utf-8") as handle:
        handle.write(f"{value}\n")
    return value


def _draw_cells(count):
    return [
        SweepCell(
            name=f"draw/{index}",
            fn=draw_cell,
            kwargs={"count": 5},
            seed_arg="seed",
        )
        for index in range(count)
    ]


class TestSweepEngine:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepEngine(workers=0)

    def test_results_in_input_order(self):
        cells = [
            SweepCell(name=f"sq/{v}", fn=square_cell, kwargs={"value": v})
            for v in (3, 1, 4, 1, 5)
        ]
        results = SweepEngine(workers=1).run(cells)
        assert [r.name for r in results] == [c.name for c in cells]
        assert [r.value for r in results] == [9, 1, 16, 1, 25]
        assert all(isinstance(r, CellResult) and not r.cached for r in results)

    def test_seeds_derive_from_base_seed_and_index_only(self):
        values = [r.value for r in SweepEngine(base_seed=7).run(_draw_cells(4))]
        expected = [
            draw_cell(np.random.SeedSequence(7, spawn_key=(index,)), 5)
            for index in range(4)
        ]
        assert values == expected
        # A different base seed is a different sweep.
        other = [r.value for r in SweepEngine(base_seed=8).run(_draw_cells(4))]
        assert other != values

    def test_parallel_is_bit_identical_to_serial(self):
        cells = _draw_cells(6)
        serial = [r.value for r in SweepEngine(workers=1, base_seed=3).run(cells)]
        parallel = [
            r.value for r in SweepEngine(workers=4, base_seed=3).run(cells)
        ]
        assert parallel == serial  # exact float equality, not approx

    def test_cache_warm_rerun_skips_recompute(self, tmp_path):
        log_path = tmp_path / "computed.log"
        cells = [
            SweepCell(
                name=f"log/{v}",
                fn=logging_cell,
                kwargs={"value": v, "log_path": str(log_path)},
                cache_payload={"value": v},
            )
            for v in (10, 20, 30)
        ]
        cache = ResultCache(root=tmp_path / "cache", enabled=True)
        cold = SweepEngine(workers=1, cache=cache).run(cells)
        assert [r.value for r in cold] == [20, 40, 60]
        assert not any(r.cached for r in cold)
        assert log_path.read_text().splitlines() == ["10", "20", "30"]

        warm = SweepEngine(workers=1, cache=cache).run(cells)
        assert [r.value for r in warm] == [r.value for r in cold]
        assert all(r.cached for r in warm)
        # No cell ran again: the log is unchanged.
        assert log_path.read_text().splitlines() == ["10", "20", "30"]

    def test_cells_without_payload_are_never_cached(self, tmp_path):
        log_path = tmp_path / "computed.log"
        cell = SweepCell(
            name="log/uncached",
            fn=logging_cell,
            kwargs={"value": 1, "log_path": str(log_path)},
        )
        cache = ResultCache(root=tmp_path / "cache", enabled=True)
        engine = SweepEngine(workers=1, cache=cache)
        engine.run([cell])
        engine.run([cell])
        assert log_path.read_text().splitlines() == ["1", "1"]
        assert cache.writes == 0

    def test_seeded_cache_keys_include_seed_derivation(self, tmp_path):
        # Two engines with different base seeds draw different numbers,
        # so their cache entries must not collide.
        cache = ResultCache(root=tmp_path, enabled=True)
        first = SweepEngine(base_seed=1, cache=cache).run(
            [
                SweepCell(
                    name="draw/0",
                    fn=draw_cell,
                    kwargs={"count": 3},
                    cache_payload={"count": 3},
                    seed_arg="seed",
                )
            ]
        )
        second = SweepEngine(base_seed=2, cache=cache).run(
            [
                SweepCell(
                    name="draw/0",
                    fn=draw_cell,
                    kwargs={"count": 3},
                    cache_payload={"count": 3},
                    seed_arg="seed",
                )
            ]
        )
        assert not second[0].cached
        assert second[0].value != first[0].value

    def test_keyboard_interrupt_cancels_pending_futures(self, tmp_path):
        # Ctrl-C in one worker must abort the sweep promptly instead of
        # draining the remaining queue: the engine cancels every pending
        # future and terminates the pool.  The pool may have prefetched
        # a couple of cells, but nowhere near the full sweep.
        log_path = tmp_path / "computed.log"
        total = 12
        cells = [
            SweepCell(
                name=f"int/{v}",
                fn=interrupting_cell,
                kwargs={
                    "value": v,
                    "log_path": str(log_path),
                    "interrupt_on": 0,
                },
            )
            for v in range(total)
        ]
        with pytest.raises(KeyboardInterrupt):
            SweepEngine(workers=2).run(cells)
        ran = (
            log_path.read_text().splitlines() if log_path.exists() else []
        )
        assert len(ran) < total

    def test_recorder_gets_one_record_per_cell(self, tmp_path):
        recorder = BenchRecorder(context={"suite": "unit"})
        cells = [
            SweepCell(
                name=f"sq/{v}",
                fn=square_cell,
                kwargs={"value": v},
                cache_payload={"value": v},
                meta={"kind": "square"},
            )
            for v in (2, 3)
        ]
        cache = ResultCache(root=tmp_path, enabled=True)
        SweepEngine(workers=1, cache=cache, recorder=recorder).run(cells)
        SweepEngine(workers=1, cache=cache, recorder=recorder).run(cells)
        assert len(recorder) == 4
        for record in recorder.records:
            assert record["workers"] == 1
            assert record["kind"] == "square"
            assert record["seconds"] >= 0.0
        assert [r["cached"] for r in recorder.records] == [
            False, False, True, True,
        ]
        summary = recorder.summary()
        assert summary["records"] == 4
        assert summary["cache_hits"] == 2
        assert summary["cache_misses"] == 2


class TestBenchRecorder:
    def test_as_dict_and_write(self, tmp_path):
        recorder = BenchRecorder(context={"commit": "abc"})
        recorder.add("cell/a", 0.25, cached=False, nodes_expanded=10)
        with recorder.time("cell/b", cached=True):
            pass
        payload = recorder.as_dict()
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["context"] == {"commit": "abc"}
        assert payload["summary"]["records"] == 2
        assert payload["records"][0]["nodes_expanded"] == 10

        out = tmp_path / "BENCH_test.json"
        recorder.write(out)
        assert json.loads(out.read_text()) == payload

    def test_none_meta_is_dropped(self):
        recorder = BenchRecorder()
        recorder.add("cell", 0.1, note=None, kept=1)
        assert "note" not in recorder.records[0]
        assert recorder.records[0]["kept"] == 1


# ----------------------------------------------------------------------
# A real (tiny) MBAC sweep through the engine, serial vs parallel.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_schedule():
    return RateSchedule(
        [0.0, 2.0, 4.0, 6.0, 8.0],
        [60_000.0, 120_000.0, 90_000.0, 150_000.0, 70_000.0],
        duration=10.0,
        name="tiny",
    )


def _run_tiny_mbac(schedule, workers):
    cells = mbac_grid_cells(
        schedule,
        capacity_multiples=(4.0,),
        loads=(0.6, 1.0),
        controllers=("memoryless", "perfect"),
        min_intervals=2,
        max_intervals=2,
    )
    return [r.value for r in SweepEngine(workers=workers).run(cells)]


def test_mbac_mini_sweep_parallel_matches_serial(tiny_schedule):
    serial = _run_tiny_mbac(tiny_schedule, workers=1)
    parallel = _run_tiny_mbac(tiny_schedule, workers=2)
    assert len(serial) == 4
    # Bit-identical, not approximately equal: same seeds, same order.
    assert parallel == serial
    for value in serial:
        assert 0.0 <= value["failure_probability"] <= 1.0
        assert 0.0 <= value["utilization"] <= 1.5
