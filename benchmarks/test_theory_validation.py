"""Section V-A theory validated against simulation.

Three checks on the Fig. 4 three-subchain source:

1. **eq. 9** — the exact equivalent bandwidth of the composed chain
   converges to the worst subchain's EB as the scene-transition
   probability epsilon shrinks;
2. **eq. 10** — the Chernoff estimate of the shared-buffer overload
   probability matches Monte-Carlo sampling of the slow marginal within
   large-deviations accuracy (exponent agreement);
3. **eq. 11 vs eq. 10** — the RCBR failure estimate is larger (RCBR
   forgoes the fast time-scale smoothing), and the per-stream capacity
   ordering CBR >= RCBR >= shared holds.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._common import fmt, once, print_table
from repro.analysis.chernoff import empirical_exceedance, overload_probability
from repro.analysis.effective_bw import effective_bandwidth, theta_for_buffer
from repro.analysis.multiscale import (
    gain_decomposition,
    multiscale_effective_bandwidth,
    rcbr_failure_estimate,
    shared_buffer_loss_estimate,
)
from repro.traffic.markov import fig4_example
from repro.util.units import kbits

BUFFER = kbits(300)
LOSS = 1e-6


def test_eq9_convergence(benchmark):
    theta = theta_for_buffer(BUFFER, LOSS)

    def run():
        rows = []
        for epsilon in (1e-1, 1e-2, 1e-3, 1e-4, 1e-5):
            source = fig4_example(epsilon=epsilon)
            exact = effective_bandwidth(source.flat_source, theta)
            eq9 = multiscale_effective_bandwidth(source, theta)
            rows.append(
                {"epsilon": epsilon, "exact": exact, "eq9": eq9,
                 "relative_gap": abs(exact - eq9) / eq9}
            )
        return rows

    rows = once(benchmark, run)
    print_table(
        "eq. 9: exact EB of the composed chain vs worst-subchain EB",
        ["epsilon", "exact EB (kb/s)", "eq. 9 (kb/s)", "relative gap"],
        [
            [fmt(r["epsilon"]), fmt(r["exact"] / 1000, 1),
             fmt(r["eq9"] / 1000, 1), fmt(r["relative_gap"])]
            for r in rows
        ],
    )
    gaps = [r["relative_gap"] for r in rows]
    # The gap shrinks monotonically and essentially vanishes.
    assert all(a >= b - 1e-12 for a, b in zip(gaps, gaps[1:]))
    assert gaps[-1] < 1e-3


def test_eq10_chernoff_vs_monte_carlo(benchmark):
    source = fig4_example(epsilon=1e-4)
    pi, means = source.slow_marginal()
    num_streams = 40
    rng = np.random.default_rng(7)

    def run():
        rows = []
        samples = rng.choice(means, p=pi, size=(200_000, num_streams)).sum(axis=1)
        for factor in (1.10, 1.25, 1.40):
            capacity = factor * num_streams * float(pi @ means)
            estimate = overload_probability(means, pi, num_streams, capacity)
            empirical, count = empirical_exceedance(samples, capacity)
            rows.append(
                {"factor": factor, "chernoff": estimate,
                 "monte_carlo": empirical, "hits": count}
            )
        return rows

    rows = once(benchmark, run)
    print_table(
        "eq. 10: Chernoff estimate vs Monte-Carlo overload frequency "
        f"(N = 40 streams)",
        ["capacity/mean", "Chernoff", "Monte-Carlo", "MC hits"],
        [
            [fmt(r["factor"], 2), fmt(r["chernoff"]), fmt(r["monte_carlo"]),
             r["hits"]]
            for r in rows
        ],
    )
    for r in rows:
        if r["hits"] >= 10:
            # Chernoff is an upper-bound-style estimate: it must not be
            # below the empirical frequency by more than noise, and the
            # exponents should agree within a decade or two.
            assert r["chernoff"] >= 0.3 * r["monte_carlo"]
            assert r["chernoff"] <= max(1e3 * r["monte_carlo"], 1e-6)


def test_eq11_vs_eq10_and_gain_ordering(benchmark):
    source = fig4_example(epsilon=1e-4)
    num_streams = 40

    def run():
        capacity = 1.35 * source.mean_rate()
        shared = shared_buffer_loss_estimate(source, num_streams, capacity)
        rcbr = rcbr_failure_estimate(
            source, num_streams, capacity, BUFFER, LOSS
        )
        decomposition = gain_decomposition(source, BUFFER, LOSS)
        return shared, rcbr, decomposition

    shared, rcbr, (cbr_rate, rcbr_rate, shared_rate) = once(benchmark, run)
    print_table(
        "eq. 10 vs eq. 11 and the gain decomposition",
        ["quantity", "value"],
        [
            ["shared-buffer loss estimate (eq. 10)", fmt(shared)],
            ["RCBR failure estimate (eq. 11)", fmt(rcbr)],
            ["CBR per-stream rate (eq. 9, kb/s)", fmt(cbr_rate / 1000, 1)],
            ["RCBR per-stream rate (kb/s)", fmt(rcbr_rate / 1000, 1)],
            ["shared per-stream rate (kb/s)", fmt(shared_rate / 1000, 1)],
        ],
    )
    assert rcbr >= shared - 1e-15
    assert cbr_rate >= rcbr_rate >= shared_rate
    # RCBR recovers a large share of the CBR -> shared gap for this
    # source ("RCBR extracts the component obtained from averaging").
    recovered = (cbr_rate - rcbr_rate) / (cbr_rate - shared_rate)
    assert recovered > 0.5
