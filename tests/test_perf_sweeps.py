"""Sweep scales, cached intermediates, and the REPRO_SCALE contract."""

from __future__ import annotations

import numpy as np
import pytest

import benchmarks._common as common
from repro.perf.cache import ResultCache
from repro.perf.recorder import BenchRecorder
from repro.perf.sweeps import (
    SWEEP_SCALES,
    SweepScale,
    current_scale,
    optimal_schedule_for,
    starwars_trace_for,
)


def tiny_scale(name: str, num_frames: int) -> SweepScale:
    return SweepScale(
        name=name,
        num_frames=num_frames,
        dp_frames_per_slot=2,
        smg_sources=(1,),
        mbac_capacities=(6.0,),
        mbac_loads=(0.6,),
        mbac_max_intervals=2,
    )


class TestCurrentScale:
    def test_defaults_to_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale() is SWEEP_SCALES["small"]

    def test_reads_environment_on_every_call(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert current_scale().name == "paper"
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert current_scale().name == "small"

    def test_unknown_scale_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ValueError, match="REPRO_SCALE"):
            current_scale()


class TestCachedIntermediates:
    def test_trace_disk_cache_roundtrip(self, tmp_path):
        scale = tiny_scale("tiny-trace", 480)
        cache = ResultCache(root=tmp_path, enabled=True)
        cold = starwars_trace_for(scale, cache=cache)
        warm = starwars_trace_for(scale, cache=cache)
        assert cache.hits == 1 and cache.writes == 1
        np.testing.assert_array_equal(cold.frame_bits, warm.frame_bits)
        # A different scale is a different entry, not a stale hit.
        other = starwars_trace_for(tiny_scale("tiny-trace-2", 960), cache=cache)
        assert other.num_frames == 960

    def test_optimal_schedule_warm_reload_is_identical(self, tmp_path):
        scale = tiny_scale("tiny-dp", 480)
        cache = ResultCache(root=tmp_path, enabled=True)
        cold_recorder = BenchRecorder()
        cold = optimal_schedule_for(
            scale, alpha=2e5, cache=cache, recorder=cold_recorder
        )
        warm_recorder = BenchRecorder()
        warm = optimal_schedule_for(
            scale, alpha=2e5, cache=cache, recorder=warm_recorder
        )
        assert not any(r["cached"] for r in cold_recorder.records)
        assert all(r["cached"] for r in warm_recorder.records)
        np.testing.assert_array_equal(cold.rates, warm.rates)
        np.testing.assert_array_equal(cold.start_times, warm.start_times)
        # The warm record still carries the DP diagnostics.
        assert any("nodes_expanded" in r for r in warm_recorder.records)


class TestBenchmarksCommonStaleness:
    """Regression: the old module-level ``lru_cache``s ignored REPRO_SCALE.

    Flipping the environment variable mid-process kept serving the first
    scale's trace and schedule.  The scale-keyed memos must track the
    active scale, while still memoizing within a scale.
    """

    @pytest.fixture(autouse=True)
    def _tiny_scales(self, monkeypatch):
        monkeypatch.setitem(SWEEP_SCALES, "tiny-a", tiny_scale("tiny-a", 480))
        monkeypatch.setitem(SWEEP_SCALES, "tiny-b", tiny_scale("tiny-b", 960))
        # Fresh memos and no disk layer: the test exercises the
        # in-process staleness behaviour in isolation.
        monkeypatch.setattr(common, "disk_cache", ResultCache(enabled=False))
        monkeypatch.setattr(common, "_trace_memo", {})
        monkeypatch.setattr(common, "_schedule_memo", {})

    def test_trace_tracks_scale_changes(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny-a")
        trace_a = common.starwars_trace()
        assert trace_a.num_frames == 480

        monkeypatch.setenv("REPRO_SCALE", "tiny-b")
        trace_b = common.starwars_trace()
        assert trace_b.num_frames == 960  # the lru_cache served 480 here

        monkeypatch.setenv("REPRO_SCALE", "tiny-a")
        assert common.starwars_trace() is trace_a  # memoized, not rebuilt

    def test_schedule_tracks_scale_changes(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny-a")
        schedule_a = common.optimal_schedule(alpha=2e5)

        monkeypatch.setenv("REPRO_SCALE", "tiny-b")
        schedule_b = common.optimal_schedule(alpha=2e5)
        assert schedule_b.duration == pytest.approx(2 * schedule_a.duration)

        monkeypatch.setenv("REPRO_SCALE", "tiny-a")
        assert common.optimal_schedule(alpha=2e5) is schedule_a
        # Different alphas are distinct memo entries within a scale.
        other = common.optimal_schedule(alpha=3e7)
        assert other is not schedule_a
