"""The RCBR service façade (Section III).

Ties the pieces together: sources holding renegotiation schedules attach
to an :class:`~repro.queueing.link.RcbrLink`, renegotiation events are
replayed in time order through the discrete-event engine, and the result
reports renegotiation failures, lost bits, and link utilization.

This is the *detailed* (per-source grant/deny) counterpart of the fast
aggregate computation in :func:`repro.queueing.mux.rcbr_overflow_bits`;
the two agree on lost bits because the link redistributes freed capacity
work-conservingly (verified by the integration tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.online import OnlineParams, OnlineScheduler, OnlineScheduleResult
from repro.core.schedule import RateSchedule
from repro.queueing.events import EventScheduler
from repro.queueing.link import RcbrLink
from repro.traffic.trace import SlottedWorkload


@dataclass(frozen=True)
class LinkSimulationResult:
    """Outcome of replaying schedules on an RCBR link."""

    capacity: float
    offered_bits: float
    lost_bits: float
    requests: int
    increase_requests: int
    failures: int
    mean_utilization: float

    @property
    def loss_fraction(self) -> float:
        if self.offered_bits == 0.0:
            return 0.0
        return self.lost_bits / self.offered_bits

    @property
    def failure_fraction(self) -> float:
        """Fraction of rate-increase requests that could not be fully met."""
        if self.increase_requests == 0:
            return 0.0
        return self.failures / self.increase_requests


def simulate_rcbr_link(
    schedules: Sequence[RateSchedule],
    capacity: float,
    start_times: Optional[Sequence[float]] = None,
) -> LinkSimulationResult:
    """Replay renegotiation schedules against one fixed-capacity link.

    Each schedule becomes a session: a setup request at its start time,
    one renegotiation per rate change, and a release at its end.  Only
    renegotiation events are simulated — the efficiency observation of
    the paper's footnote 4.
    """
    if not schedules:
        raise ValueError("need at least one schedule")
    if start_times is None:
        start_times = [0.0] * len(schedules)
    if len(start_times) != len(schedules):
        raise ValueError("start_times must match schedules")

    link = RcbrLink(capacity)
    engine = EventScheduler()
    horizon = 0.0

    for source_id, (schedule, start) in enumerate(zip(schedules, start_times)):
        if start < 0:
            raise ValueError("start times must be non-negative")
        for seg_start, _, rate in schedule.segments():
            engine.schedule_at(
                start + seg_start,
                lambda sid=source_id, r=rate: link.request(sid, r, engine.now),
            )
        end = start + schedule.duration
        engine.schedule_at(
            end, lambda sid=source_id: link.release(sid, engine.now)
        )
        horizon = max(horizon, end)

    engine.run()
    link.finish(horizon)

    offered = sum(schedule.total_bits() for schedule in schedules)
    return LinkSimulationResult(
        capacity=capacity,
        offered_bits=offered,
        lost_bits=link.lost_bits,
        requests=link.request_count,
        increase_requests=link.increase_count,
        failures=link.failure_count,
        mean_utilization=link.mean_utilization(horizon),
    )


class OnlineRcbrSource:
    """An interactive source running the AR(1) heuristic against a live link.

    The heuristic's requests go through the link's admission check; denied
    increases leave the old rate in place and the source "settles for
    whatever bandwidth remaining" while retrying at the next threshold
    crossing (Section III-A1).  A finite ``buffer_size`` and a
    ``recovery`` policy (:mod:`repro.faults.recovery`) turn the source
    into the hardened variant: overflow is counted as ``bits_lost`` and
    denials are handled by backoff / downgrade / drain instead of the
    naive retry.
    """

    def __init__(
        self,
        source_id,
        params: OnlineParams,
        link: RcbrLink,
        buffer_size: Optional[float] = None,
        recovery=None,
    ) -> None:
        self.source_id = source_id
        self.link = link
        self.buffer_size = buffer_size
        self.recovery = recovery
        self._scheduler = OnlineScheduler(params)

    def run(self, workload: SlottedWorkload) -> OnlineScheduleResult:
        """Stream ``workload`` through the link, renegotiating causally."""

        def request(time: float, new_rate: float) -> bool:
            outcome = self.link.request(self.source_id, new_rate, time)
            return outcome.fully_granted

        initial = self._scheduler.quantize(
            workload.bits_per_slot[0] / workload.slot_duration
        )
        setup = self.link.request(self.source_id, initial, 0.0)
        result = self._scheduler.schedule(
            workload,
            initial_rate=setup.granted_rate,
            request_fn=request,
            buffer_size=self.buffer_size,
            recovery=self.recovery,
        )
        self.link.release(self.source_id, workload.duration)
        return result
