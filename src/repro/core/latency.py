"""Renegotiation-latency analysis (the paper's open question).

Section III-C argues qualitatively that offline sources are insensitive
to path latency ("they can compensate ... by initiating renegotiation
earlier") while online sources pay for it, but adds: "We do not yet have
analytical expressions or simulation results studying the effect of
renegotiation delay on RCBR performance."  This module supplies that
study.

The mechanism: when a renegotiation issued at its scheduled time takes
``delay`` seconds to take effect, the source keeps draining at the old
rate meanwhile.  For rate *increases* that means the buffer keeps
filling; the cost of latency is the extra end-system buffer needed to
ride out every increase transition (or, equivalently, the loss incurred
if the buffer cannot grow).  Initiating increases ``lead >= delay``
early removes the cost for offline sources at a small bandwidth premium.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.schedule import RateSchedule
from repro.queueing.fluid import simulate_fluid_queue
from repro.traffic.trace import SlottedWorkload


def delayed_schedule(
    schedule: RateSchedule, delay: float, lead: float = 0.0
) -> RateSchedule:
    """The service-rate function actually experienced under latency.

    Every renegotiation is issued ``lead`` seconds early (0 for a purely
    online source) and takes effect ``delay`` seconds after being issued.
    The initial rate is in place at time 0 (setup completes before data
    flows).  Effect times clamp to ``[0, duration)``; renegotiations whose
    effect would land at or beyond the end are dropped.
    """
    if delay < 0 or lead < 0:
        raise ValueError("delay and lead must be non-negative")
    shift = delay - lead
    times = [0.0]
    rates = [float(schedule.rates[0])]
    for event in schedule.renegotiations():
        effective = min(max(event.time + shift, 0.0), schedule.duration)
        if effective >= schedule.duration:
            continue
        if effective <= times[-1]:
            # An early-issued change overtakes the previous segment.
            rates[-1] = event.new_rate
            if len(rates) >= 2 and rates[-1] == rates[-2]:
                times.pop()
                rates.pop()
            continue
        times.append(effective)
        rates.append(event.new_rate)
    # Merge equal neighbours.
    merged_times = [times[0]]
    merged_rates = [rates[0]]
    for time, rate in zip(times[1:], rates[1:]):
        if rate == merged_rates[-1]:
            continue
        merged_times.append(time)
        merged_rates.append(rate)
    return RateSchedule(
        merged_times,
        merged_rates,
        schedule.duration,
        name=f"{schedule.name}+d{delay:g}-l{lead:g}",
    )


@dataclass(frozen=True)
class LatencyImpact:
    """Cost of one (delay, lead) operating point."""

    delay: float
    lead: float
    max_buffer: float
    loss_fraction_at_bound: float
    average_rate: float


def latency_impact(
    workload: SlottedWorkload,
    schedule: RateSchedule,
    delay: float,
    lead: float = 0.0,
    buffer_bits: float = 300_000.0,
) -> LatencyImpact:
    """Measure what latency costs when serving ``workload``.

    Returns the peak buffer the delayed schedule actually needs, the
    loss fraction if the buffer is pinned at ``buffer_bits``, and the
    (lead-inflated) average reserved rate.
    """
    effective = delayed_schedule(schedule, delay, lead)
    drains = (
        effective.slot_rates(workload.slot_duration, workload.num_slots)
        * workload.slot_duration
    )
    unlimited = simulate_fluid_queue(workload.bits_per_slot, drains)
    bounded = simulate_fluid_queue(
        workload.bits_per_slot, drains, buffer_bits=buffer_bits
    )
    return LatencyImpact(
        delay=delay,
        lead=lead,
        max_buffer=unlimited.max_occupancy,
        loss_fraction_at_bound=bounded.loss_fraction,
        average_rate=effective.average_rate(),
    )


def latency_sweep(
    workload: SlottedWorkload,
    schedule: RateSchedule,
    delays: Sequence[float],
    lead_equals_delay: bool = False,
    buffer_bits: float = 300_000.0,
) -> list:
    """One :class:`LatencyImpact` per delay.

    With ``lead_equals_delay`` the offline compensation is applied
    (initiate exactly one RTT early); without it the source is online
    (lead 0) and eats the transition backlog.
    """
    return [
        latency_impact(
            workload,
            schedule,
            delay,
            lead=delay if lead_equals_delay else 0.0,
            buffer_bits=buffer_bits,
        )
        for delay in delays
    ]
