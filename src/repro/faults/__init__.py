"""Fault injection and failure recovery for the renegotiation pipeline.

The paper's treatment of failure is one sentence ("the trivial solution
is to try again"); this package is the production-hardening answer:
seeded, composable fault injectors (:mod:`repro.faults.injectors`),
source-side recovery policies beyond naive retry
(:mod:`repro.faults.recovery`), and a chaos/soak harness that sweeps
fault intensity against policy (:mod:`repro.faults.harness`).
"""

from repro.faults.injectors import (
    CellFate,
    CellOutcome,
    CellDelayInjector,
    CellDuplicationInjector,
    CellLossInjector,
    DenialBurstInjector,
    FaultInjector,
    FaultPlan,
    INJECTOR_REGISTRY,
    SwitchOutageInjector,
    TraceCorruptionInjector,
    register_injector,
)
from repro.faults.recovery import (
    BaseRecoveryPolicy,
    DowngradeLadderPolicy,
    DrainPolicy,
    ExponentialBackoffPolicy,
    NaiveRetryPolicy,
    RECOVERY_REGISTRY,
    RecoveryPolicy,
    make_recovery_policy,
)
from repro.faults.harness import (
    ChaosConfig,
    ChaosResult,
    ChaosWorkerError,
    UnpicklableChaosError,
    WorkerFault,
    chaos_sweep_cells,
    faulted_cell_fn,
    run_chaos_trial,
    soak,
    sweep_fault_recovery,
)

__all__ = [
    "CellFate",
    "CellOutcome",
    "CellDelayInjector",
    "CellDuplicationInjector",
    "CellLossInjector",
    "DenialBurstInjector",
    "FaultInjector",
    "FaultPlan",
    "INJECTOR_REGISTRY",
    "SwitchOutageInjector",
    "TraceCorruptionInjector",
    "register_injector",
    "BaseRecoveryPolicy",
    "DowngradeLadderPolicy",
    "DrainPolicy",
    "ExponentialBackoffPolicy",
    "NaiveRetryPolicy",
    "RECOVERY_REGISTRY",
    "RecoveryPolicy",
    "make_recovery_policy",
    "ChaosConfig",
    "ChaosResult",
    "ChaosWorkerError",
    "UnpicklableChaosError",
    "WorkerFault",
    "chaos_sweep_cells",
    "faulted_cell_fn",
    "run_chaos_trial",
    "soak",
    "sweep_fault_recovery",
]
