"""Network-level signaling: routing and call-level load balancing."""

import networkx as nx
import numpy as np
import pytest

from repro.core.schedule import RateSchedule
from repro.signaling.topology import (
    SignalingNetwork,
    simulate_calls_on_network,
)


def ring_graph(num_nodes=6, capacity=1000.0):
    graph = nx.cycle_graph(num_nodes)
    nx.set_edge_attributes(graph, capacity, "capacity")
    return graph


def line_graph(num_nodes=4, capacity=1000.0):
    graph = nx.path_graph(num_nodes)
    nx.set_edge_attributes(graph, capacity, "capacity")
    return graph


class TestConstruction:
    def test_ports_per_edge(self):
        network = SignalingNetwork(ring_graph(5))
        assert len(network.ports) == 5

    def test_edge_capacity_attribute(self):
        graph = line_graph()
        graph[0][1]["capacity"] = 42.0
        network = SignalingNetwork(graph)
        assert network.port_between(0, 1).capacity == 42.0

    def test_default_capacity(self):
        graph = nx.path_graph(2)  # no capacity attribute
        network = SignalingNetwork(graph, default_capacity=7.0)
        assert network.port_between(0, 1).capacity == 7.0

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            SignalingNetwork(nx.Graph())


class TestRouting:
    def test_k_shortest_on_ring(self):
        network = SignalingNetwork(ring_graph(6))
        paths = network.k_shortest_paths(0, 3, k=2)
        assert len(paths) == 2
        assert len(paths[0]) - 1 == 3  # clockwise, 3 hops
        assert len(paths[1]) - 1 == 3  # counter-clockwise, 3 hops

    def test_k1_is_shortest(self):
        network = SignalingNetwork(ring_graph(6))
        route = network.select_route(0, 2, k=1)
        assert len(route) - 1 == 2

    def test_load_balancing_avoids_congested_route(self):
        network = SignalingNetwork(ring_graph(6))
        # Congest the clockwise route 0-1-2-3.
        network.port_between(1, 2).utilization = 900.0
        route = network.select_route(0, 3, k=2)
        # Must pick the counter-clockwise route 0-5-4-3.
        assert route == [0, 5, 4, 3]

    def test_k_must_be_positive(self):
        network = SignalingNetwork(ring_graph())
        with pytest.raises(ValueError):
            network.k_shortest_paths(0, 1, k=0)

    def test_attach_builds_path(self):
        network = SignalingNetwork(line_graph(4))
        path = network.attach(0, 3)
        assert path.num_hops == 3


class TestNetworkSimulation:
    def constant_call(self, rate, duration=30.0):
        return RateSchedule.constant(rate, duration)

    def stepping_call(self, low, high, duration=30.0):
        return RateSchedule([0.0, 10.0, 20.0], [low, high, low], duration)

    def test_no_contention_no_failures(self):
        network = SignalingNetwork(ring_graph(6, capacity=1e9))
        calls = [(0, 3, self.stepping_call(100.0, 500.0)) for _ in range(4)]
        result = simulate_calls_on_network(network, calls)
        assert result.failures == 0

    def test_contention_causes_failures(self):
        network = SignalingNetwork(line_graph(3, capacity=1000.0))
        calls = [(0, 2, self.stepping_call(300.0, 700.0)) for _ in range(3)]
        result = simulate_calls_on_network(network, calls)
        assert result.failures > 0
        assert 0.0 < result.failure_fraction <= 1.0

    def test_alternate_routes_reduce_failures(self):
        """The Section III-C conjecture, in miniature."""
        def run(k):
            network = SignalingNetwork(ring_graph(6, capacity=1500.0))
            calls = [
                (0, 3, self.stepping_call(300.0, 900.0))
                for _ in range(3)
            ]
            return simulate_calls_on_network(network, calls, k=k)

        single = run(1)
        balanced = run(2)
        assert balanced.failures <= single.failures

    def test_utilization_released_at_end(self):
        network = SignalingNetwork(line_graph(3, capacity=1e6))
        calls = [(0, 2, self.constant_call(100.0))]
        simulate_calls_on_network(network, calls)
        assert network.port_between(0, 1).utilization == pytest.approx(0.0)

    def test_cells_counted(self):
        network = SignalingNetwork(line_graph(3, capacity=1e6))
        calls = [(0, 2, self.stepping_call(100.0, 200.0))]
        simulate_calls_on_network(network, calls)
        # 3 requests (setup + 2 renegotiations) across 2 hops each.
        assert network.total_cells_processed() == 6

    def test_empty_calls_rejected(self):
        network = SignalingNetwork(line_graph())
        with pytest.raises(ValueError):
            simulate_calls_on_network(network, [])


class TestEdgeKeyOrdering:
    """The undirected-edge key: a stable, documented total order."""

    def test_integers_order_numerically(self):
        from repro.signaling.topology import _edge_key

        # repr-based ordering would put 10 before 2; value ordering
        # must not.
        assert _edge_key(10, 2) == (2, 10)
        assert _edge_key(2, 10) == (2, 10)

    def test_symmetric_for_strings(self):
        from repro.signaling.topology import _edge_key

        assert _edge_key("b", "a") == _edge_key("a", "b") == ("a", "b")

    def test_mixed_types_are_stable(self):
        from repro.signaling.topology import _edge_key

        # int vs str has no value order; the key must still be total
        # and symmetric.
        assert _edge_key(1, "a") == _edge_key("a", 1)

    def test_unorderable_same_type_falls_back(self):
        from repro.signaling.topology import _edge_key

        u, v = 1 + 2j, 3 + 4j  # complex: same type, no __le__
        assert _edge_key(u, v) == _edge_key(v, u)

    def test_port_lookup_is_direction_agnostic(self):
        network = SignalingNetwork(line_graph(num_nodes=12))
        # Node labels 0..11: reprs of 10 and 2 sort "wrong" while the
        # values do not, which the old repr-keyed table got wrong.
        assert network.port_between(10, 9) is network.port_between(9, 10)
        assert network.port_between(2, 3) is network.port_between(3, 2)
