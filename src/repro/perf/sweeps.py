"""Concrete sweep definitions for the paper's figure grids.

This module is the bridge between the generic engine and the paper: it
owns the experiment *scales* (``REPRO_SCALE``), the cached builders for
the heavy shared intermediates (the synthetic Star Wars trace and its
optimal DP schedule), and picklable cell functions for the MBAC grid
(Figs. 7-9), the multiplexing-gain study (Fig. 6), and the tradeoff
curve (Fig. 2).  ``benchmarks/_common.py``, the experiment runners, and
``repro sweep`` are all consumers.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.perf.cache import ResultCache
from repro.perf.engine import SweepCell
from repro.perf.recorder import BenchRecorder
from repro.util.units import kbits, kbps

# ----------------------------------------------------------------------
# Scales (the REPRO_SCALE contract, shared with benchmarks/_common.py)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepScale:
    """One experiment scale: trace length plus the paper's sweep ranges."""

    name: str
    num_frames: int
    dp_frames_per_slot: int  # DP slot aggregation (1 = per frame)
    smg_sources: Sequence[int]  # N values for Fig. 6
    mbac_capacities: Sequence[float]  # link capacity / mean call rate
    mbac_loads: Sequence[float]  # normalized offered loads
    mbac_max_intervals: int
    # Overload-plane comparison (policy x load grid).
    overload_loads: Sequence[float] = (1.3, 1.5)
    overload_duration: float = 60.0
    overload_frames: int = 400
    # Scenario-suite smoke grid (repro scenario).
    scenario_duration: float = 8.0


SWEEP_SCALES = {
    "small": SweepScale(
        name="small",
        num_frames=24_000,  # ~17 minutes at 24 fps
        dp_frames_per_slot=2,
        smg_sources=(1, 2, 4, 8, 16),
        mbac_capacities=(6.0, 12.0),
        mbac_loads=(0.6, 1.0),
        mbac_max_intervals=10,
        overload_loads=(1.3, 1.5),
        overload_duration=60.0,
        overload_frames=400,
        scenario_duration=8.0,
    ),
    "paper": SweepScale(
        name="paper",
        num_frames=171_000,  # the full two-hour movie
        dp_frames_per_slot=2,
        smg_sources=(1, 2, 5, 10, 20, 50, 100),
        mbac_capacities=(5.0, 10.0, 20.0, 50.0),
        mbac_loads=(0.3, 0.5, 0.7, 0.9, 1.1),
        mbac_max_intervals=40,
        overload_loads=(1.1, 1.3, 1.5, 1.8),
        overload_duration=180.0,
        overload_frames=1200,
        scenario_duration=30.0,
    ),
}


def current_scale() -> SweepScale:
    """The scale selected by ``REPRO_SCALE`` (default ``small``).

    Read on every call — never cached at module level — so changing the
    environment variable mid-process takes effect immediately.
    """
    name = os.environ.get("REPRO_SCALE", "small")
    if name not in SWEEP_SCALES:
        raise ValueError(
            f"REPRO_SCALE must be one of {sorted(SWEEP_SCALES)}, got {name!r}"
        )
    return SWEEP_SCALES[name]


# The paper's fixed parameters (Sections IV-VI).
TRACE_SEED = 1995
BUFFER_BITS = kbits(300)  # the paper's end-system buffer
LOSS_TARGET = 1e-6  # the paper's QoS for Figs. 5-6
GRANULARITY = kbps(64)  # the paper's Fig. 6 bandwidth granularity
MAX_RATE_LEVEL = kbps(2400)  # the paper's top bandwidth level (IV-A)
MBAC_FAILURE_TARGET = 1e-3  # Section VI's renegotiation-failure QoS
DEFAULT_DP_ALPHA = 6e6  # lands near the paper's ~12 s interval


# ----------------------------------------------------------------------
# Cached heavy intermediates
# ----------------------------------------------------------------------
def dp_rate_levels(trace, granularity: float = GRANULARITY) -> np.ndarray:
    """The renegotiation rate grid: delta-spaced up to ~2.4 Mb/s.

    Matches the paper's choice ("bandwidth levels chosen uniformly within
    48 kb/s and 2.4 Mb/s" at delta granularity); the grid is widened
    automatically if the trace's 1-second peak demands more.
    """
    from repro.analysis.empirical import windowed_peak_rate
    from repro.core import granular_rate_levels

    top = max(MAX_RATE_LEVEL, 1.1 * windowed_peak_rate(trace, 1.0))
    return granular_rate_levels(granularity, top)


def starwars_trace_for(
    scale: SweepScale,
    seed: int = TRACE_SEED,
    cache: Optional[ResultCache] = None,
    recorder: Optional[BenchRecorder] = None,
):
    """The benchmark trace at ``scale``, via the on-disk cache."""
    from repro.traffic import generate_starwars_trace

    def build():
        return generate_starwars_trace(num_frames=scale.num_frames, seed=seed)

    payload = {
        "scale": scale.name,
        "num_frames": scale.num_frames,
        "seed": seed,
    }
    start = time.perf_counter()
    if cache is None:
        trace = build()
        cached = False
    else:
        key = cache.key("starwars_trace", payload)
        cached, trace = cache.get(key)
        if not cached:
            trace = build()
            cache.put(key, trace)
    if recorder is not None:
        recorder.add(
            f"trace/starwars/{scale.name}",
            time.perf_counter() - start,
            cached=cached,
        )
    return trace


def optimal_schedule_for(
    scale: SweepScale,
    alpha: float = DEFAULT_DP_ALPHA,
    buffer_bits: float = BUFFER_BITS,
    granularity: float = GRANULARITY,
    cache: Optional[ResultCache] = None,
    recorder: Optional[BenchRecorder] = None,
):
    """The trace's optimal RCBR schedule at the paper's parameters.

    The DP is by far the most expensive intermediate of the sweeps, so
    both the result *and* its search diagnostics are cached; a warm run
    reloads in milliseconds and still reports ``nodes_expanded``.
    """
    from repro.core import OptimalScheduler

    trace = starwars_trace_for(scale, cache=cache, recorder=recorder)

    def build() -> Dict[str, Any]:
        workload = trace.aggregate(scale.dp_frames_per_slot)
        result = OptimalScheduler(
            dp_rate_levels(trace), alpha=alpha, beta=1.0
        ).solve(workload, buffer_bits=buffer_bits)
        return {
            "schedule": result.schedule,
            "nodes_expanded": result.nodes_expanded,
            "max_frontier": result.max_frontier,
            "total_cost": result.total_cost,
        }

    payload = {
        "scale": scale.name,
        "num_frames": scale.num_frames,
        "trace_seed": TRACE_SEED,
        "dp_frames_per_slot": scale.dp_frames_per_slot,
        "alpha": alpha,
        "buffer_bits": buffer_bits,
        "granularity": granularity,
        "max_rate_level": MAX_RATE_LEVEL,
    }
    start = time.perf_counter()
    if cache is None:
        entry = build()
        cached = False
    else:
        key = cache.key("optimal_schedule", payload)
        cached, entry = cache.get(key)
        if not cached:
            entry = build()
            cache.put(key, entry)
    if recorder is not None:
        recorder.add(
            f"dp/optimal_schedule/{scale.name}/alpha{alpha:g}",
            time.perf_counter() - start,
            cached=cached,
            nodes_expanded=entry["nodes_expanded"],
            max_frontier=entry["max_frontier"],
        )
    return entry["schedule"]


# ----------------------------------------------------------------------
# MBAC cells (Figs. 7-9)
# ----------------------------------------------------------------------
def make_mbac_controller(name: str, schedule, failure_target: float):
    """Build a Section VI admission controller by name."""
    from repro.admission.controllers import (
        MemoryMBAC,
        MemorylessMBAC,
        PerfectKnowledgeCAC,
    )
    from repro.core.schedule import empirical_rate_distribution

    if name == "memoryless":
        return MemorylessMBAC(failure_target)
    if name == "memory":
        return MemoryMBAC(failure_target)
    if name == "perfect":
        levels, fractions = empirical_rate_distribution(schedule)
        return PerfectKnowledgeCAC(levels, fractions, failure_target)
    raise ValueError(f"unknown controller {name!r}")


def mbac_cell(
    schedule,
    capacity_multiple: float,
    load: float,
    controller: str,
    seed,
    failure_target: float = MBAC_FAILURE_TARGET,
    warmup_intervals: int = 1,
    min_intervals: int = 5,
    max_intervals: int = 10,
) -> Dict[str, Any]:
    """One (capacity, load, controller) point of the Section VI study."""
    from repro.admission.callsim import (
        arrival_rate_for_load,
        simulate_admission,
    )

    mean = schedule.average_rate()
    capacity = capacity_multiple * mean
    arrival_rate = arrival_rate_for_load(
        load, capacity, mean, schedule.duration
    )
    result = simulate_admission(
        schedule,
        capacity,
        arrival_rate,
        make_mbac_controller(controller, schedule, failure_target),
        seed=seed,
        warmup_intervals=warmup_intervals,
        min_intervals=min_intervals,
        max_intervals=max_intervals,
        failure_target=failure_target,
    )
    return {
        "controller": controller,
        "capacity_multiple": capacity_multiple,
        "load": load,
        "failure_probability": result.failure_probability,
        "utilization": result.utilization,
        "blocking_probability": result.blocking_probability,
        "num_intervals": result.num_intervals,
    }


def _mbac_sweep_cell(prefix: str, kwargs: Dict[str, Any]) -> SweepCell:
    name = (
        f"{prefix}/cap{kwargs['capacity_multiple']:g}"
        f"/load{kwargs['load']:g}/{kwargs['controller']}"
    )
    return SweepCell(
        name=name,
        fn=mbac_cell,
        kwargs=kwargs,
        cache_payload=kwargs,
        meta={"figure": prefix},
    )


def mbac_grid_cells(
    schedule,
    capacity_multiples: Sequence[float],
    loads: Sequence[float],
    controllers: Sequence[str],
    seed_base: int = 10_000,
    failure_target: float = MBAC_FAILURE_TARGET,
    min_intervals: int = 5,
    max_intervals: int = 10,
    prefix: str = "mbac",
) -> List[SweepCell]:
    """The runner grid: every (capacity, load, controller) combination.

    Seeds follow the historical runner scheme — one seed per
    (capacity, load) shared by all controllers at that point — so the
    engine reproduces :func:`repro.experiments.run_mbac_comparison`'s
    serial results exactly.
    """
    cells = []
    for capacity_multiple in capacity_multiples:
        for load in loads:
            seed = seed_base + int(100 * capacity_multiple + 10 * load)
            for controller in controllers:
                cells.append(
                    _mbac_sweep_cell(
                        prefix,
                        dict(
                            schedule=schedule,
                            capacity_multiple=capacity_multiple,
                            load=load,
                            controller=controller,
                            seed=seed,
                            failure_target=failure_target,
                            min_intervals=min_intervals,
                            max_intervals=max_intervals,
                        ),
                    )
                )
    return cells


def figs7_9_cells(
    schedule,
    scale: SweepScale,
    failure_target: float = MBAC_FAILURE_TARGET,
) -> List[SweepCell]:
    """The canonical Figs. 7-9 sweep at ``scale``.

    Fig. 7/8 cells cover the full (capacity, load) grid with the
    memoryless and perfect-knowledge controllers; Fig. 9 cells revisit
    the smallest (most fragile) capacity with the memory scheme added.
    Seeds match the benchmark suite's historical values.
    """
    cells = []
    for capacity_multiple in scale.mbac_capacities:
        for load in scale.mbac_loads:
            seed = int(1000 * capacity_multiple + 10 * load)
            for controller in ("memoryless", "perfect"):
                cells.append(
                    _mbac_sweep_cell(
                        "fig7_8",
                        dict(
                            schedule=schedule,
                            capacity_multiple=capacity_multiple,
                            load=load,
                            controller=controller,
                            seed=seed,
                            failure_target=failure_target,
                            min_intervals=5,
                            max_intervals=scale.mbac_max_intervals,
                        ),
                    )
                )
    fragile = min(scale.mbac_capacities)
    for load in scale.mbac_loads:
        seed = int(10_000 + 10 * load)
        for controller in ("memoryless", "memory", "perfect"):
            cells.append(
                _mbac_sweep_cell(
                    "fig9",
                    dict(
                        schedule=schedule,
                        capacity_multiple=fragile,
                        load=load,
                        controller=controller,
                        seed=seed,
                        failure_target=failure_target,
                        min_intervals=5,
                        max_intervals=scale.mbac_max_intervals,
                    ),
                )
            )
    return cells


# ----------------------------------------------------------------------
# SMG cells (Fig. 6)
# ----------------------------------------------------------------------
def smg_cell(
    trace,
    schedule,
    num_sources: int,
    buffer_bits: float,
    loss_target: float,
    seed_shared,
    seed_rcbr,
) -> Dict[str, Any]:
    """One source-count point of the Fig. 6 study (scenarios b and c)."""
    from repro.queueing.mux import scenario_b_min_rate, scenario_c_min_rate

    shared = scenario_b_min_rate(
        trace, num_sources, buffer_bits, loss_target, seed=seed_shared
    )
    rcbr = scenario_c_min_rate(
        schedule, num_sources, loss_target, seed=seed_rcbr
    )
    return {
        "num_sources": num_sources,
        "shared_rate": shared,
        "rcbr_rate": rcbr,
    }


def smg_cells(
    trace,
    schedule,
    source_counts: Sequence[int],
    buffer_bits: float,
    loss_target: float,
    seed=0,
) -> List[SweepCell]:
    """One cell per source count, with the runner's historical seeds."""
    cells = []
    for index, count in enumerate(source_counts):
        kwargs = dict(
            trace=trace,
            schedule=schedule,
            num_sources=count,
            buffer_bits=buffer_bits,
            loss_target=loss_target,
            seed_shared=(seed, 2 * index),
            seed_rcbr=(seed, 2 * index + 1),
        )
        cells.append(
            SweepCell(
                name=f"smg/n{count}",
                fn=smg_cell,
                kwargs=kwargs,
                cache_payload=kwargs,
                meta={"figure": "fig6"},
            )
        )
    return cells


# ----------------------------------------------------------------------
# Overload-plane cells (block vs downgrade vs sacrifice under saturation)
# ----------------------------------------------------------------------

#: The saturation regime of the comparison: always-admit at the door so
#: the *plane* is the only overload control, and a link sized well below
#: the offered load so pressure sits above the enter threshold.
OVERLOAD_SEED = 13
OVERLOAD_CAPACITY_MULTIPLE = 20.0  # link capacity / workload mean rate
OVERLOAD_INITIAL_CALLS = 25


def overload_cell(
    policy: str,
    load: float,
    seed: int = OVERLOAD_SEED,
    duration: float = 60.0,
    snapshot_every: float = 5.0,
    num_frames: int = 400,
    capacity_multiple: float = OVERLOAD_CAPACITY_MULTIPLE,
    initial_calls: int = OVERLOAD_INITIAL_CALLS,
) -> Dict[str, Any]:
    """One (policy, load) point of the overload-control comparison.

    Serves a saturated always-admit gateway (offered load ``load`` times
    a link sized at ``capacity_multiple`` mean rates) under the named
    overload policy and reports the quantities the comparison is judged
    on: blocking probability, total bits lost (buffer overflow + link
    drain), controlled bits shed by downgrade, per-class Jain fairness,
    and the run's determinism fingerprint.
    """
    from repro.server import ServerConfig, serve
    from repro.traffic import generate_starwars_trace

    workload = generate_starwars_trace(
        num_frames=num_frames, seed=TRACE_SEED
    ).as_workload()
    config = ServerConfig(
        capacity=capacity_multiple * workload.mean_rate,
        load=load,
        controller="always",
        overload_policy=policy,
        initial_calls=initial_calls,
        seed=seed,
    )
    report = serve(
        workload, config, duration=duration, snapshot_every=snapshot_every
    )
    final = report.final
    overload = report.overload or {}
    return {
        "policy": policy,
        "load": load,
        "arrivals": final.arrivals,
        "blocking_probability": (
            final.blocked / final.arrivals if final.arrivals else 0.0
        ),
        "bits_lost": final.bits_lost_overflow + final.bits_lost_link,
        "bits_downgraded": overload.get("bits_downgraded", 0.0),
        "class_fairness": overload.get("class_fairness", 1.0),
        "class_blocking": overload.get("class_blocking"),
        "abandoned": final.abandoned,
        "mean_utilization": report.mean_utilization,
        "fingerprint": report.fingerprint,
    }


def overload_cells(
    loads: Optional[Sequence[float]] = None,
    policies: Optional[Sequence[str]] = None,
    scale: Optional[SweepScale] = None,
    seed: int = OVERLOAD_SEED,
) -> List[SweepCell]:
    """The policy x load comparison grid at ``scale``.

    All policies at a given load share one seed, so block, downgrade,
    and sacrifice see identical arrival/holding/class draws and the
    bits-lost comparison is paired, not merely distributional.
    """
    from repro.overload import OVERLOAD_POLICY_NAMES

    if scale is None:
        scale = current_scale()
    if loads is None:
        loads = scale.overload_loads
    if policies is None:
        policies = OVERLOAD_POLICY_NAMES
    cells = []
    for load in loads:
        for policy in policies:
            kwargs = dict(
                policy=policy,
                load=load,
                seed=seed,
                duration=scale.overload_duration,
                num_frames=scale.overload_frames,
            )
            cells.append(
                SweepCell(
                    name=f"overload/{policy}/load{load:g}",
                    fn=overload_cell,
                    kwargs=kwargs,
                    cache_payload=kwargs,
                    meta={"figure": "overload"},
                )
            )
    return cells


# ----------------------------------------------------------------------
# Scenario-suite cells (repro.scenarios)
# ----------------------------------------------------------------------
SCENARIO_SEED = 11


def scenario_cell(
    name: str,
    seed: int = SCENARIO_SEED,
    duration: float = 8.0,
    route_k: Optional[int] = None,
) -> Dict[str, Any]:
    """One scenario of the declarative suite at sweep scale.

    Runs the named scenario on the serving stack and reports the
    quantities the hostile-neighborhood comparison is judged on:
    blocking, renegotiation-denial fraction, bits lost at the link(s),
    abandonment, and the run's determinism fingerprint.
    """
    from repro.scenarios import run_scenario

    result = run_scenario(
        name, seed=seed, duration=duration, route_k=route_k
    )
    final = result.report.final
    return {
        "scenario": name,
        "route_k": route_k,
        "arrivals": final.arrivals,
        "blocking_probability": (
            final.blocked / final.arrivals if final.arrivals else 0.0
        ),
        "reneg_requests": final.reneg_requests,
        "reneg_denial_fraction": (
            final.reneg_denied / final.reneg_requests
            if final.reneg_requests
            else 0.0
        ),
        "bits_lost": final.bits_lost_overflow + final.bits_lost_link,
        "abandoned": final.abandoned,
        "mean_utilization": result.report.mean_utilization,
        "fingerprint": result.fingerprint,
    }


def scenario_cells(
    names: Optional[Sequence[str]] = None,
    scale: Optional[SweepScale] = None,
    seed: int = SCENARIO_SEED,
) -> List[SweepCell]:
    """The full scenario roster at ``scale``, one cell per scenario
    (plus a ``route_k=2`` companion for the alternate-routing scenario,
    paired on the same seed so the comparison is not distributional)."""
    from repro.scenarios import SCENARIO_NAMES

    if scale is None:
        scale = current_scale()
    if names is None:
        names = SCENARIO_NAMES
    cells = []
    for name in names:
        variants = [(None, "")]
        if name == "hotspot-collision":
            variants.append((2, "/k2"))
        for route_k, suffix in variants:
            kwargs = dict(
                name=name,
                seed=seed,
                duration=scale.scenario_duration,
                route_k=route_k,
            )
            cells.append(
                SweepCell(
                    name=f"scenarios/{name}{suffix}",
                    fn=scenario_cell,
                    kwargs=kwargs,
                    cache_payload=kwargs,
                    meta={"figure": "scenarios"},
                )
            )
    return cells


# ----------------------------------------------------------------------
# Tradeoff cells (Fig. 2)
# ----------------------------------------------------------------------
def tradeoff_opt_cell(
    workload, levels: np.ndarray, alpha: float, buffer_bits: float,
    mean_rate: float,
) -> Dict[str, Any]:
    """One alpha point of the OPT curve."""
    from repro.core import OptimalScheduler

    result = OptimalScheduler(levels, alpha=alpha).solve(
        workload, buffer_bits=buffer_bits
    )
    schedule = result.schedule
    return {
        "parameter": alpha,
        "mean_interval": schedule.mean_renegotiation_interval(),
        "efficiency": schedule.bandwidth_efficiency(mean_rate),
        "max_buffer": schedule.max_buffer(workload),
        "nodes_expanded": result.nodes_expanded,
    }


def tradeoff_heuristic_cell(
    workload, delta: float, mean_rate: float
) -> Dict[str, Any]:
    """One delta point of the AR(1) heuristic curve."""
    from repro.core import OnlineParams, OnlineScheduler

    outcome = OnlineScheduler(OnlineParams(granularity=delta)).schedule(
        workload
    )
    return {
        "parameter": delta,
        "mean_interval": outcome.schedule.mean_renegotiation_interval(),
        "efficiency": outcome.schedule.bandwidth_efficiency(mean_rate),
        "max_buffer": outcome.max_buffer,
    }


def tradeoff_cells(
    trace,
    alphas: Sequence[float],
    deltas: Sequence[float],
    buffer_bits: float,
    granularity: float,
    frames_per_slot: int,
) -> List[SweepCell]:
    """DP cells for each alpha, heuristic cells for each delta."""
    workload = trace.aggregate(frames_per_slot)
    frame_workload = trace.as_workload()
    levels = dp_rate_levels(trace, granularity)
    mean = trace.mean_rate
    cells = []
    for alpha in alphas:
        kwargs = dict(
            workload=workload,
            levels=levels,
            alpha=alpha,
            buffer_bits=buffer_bits,
            mean_rate=mean,
        )
        cells.append(
            SweepCell(
                name=f"tradeoff/opt/alpha{alpha:g}",
                fn=tradeoff_opt_cell,
                kwargs=kwargs,
                cache_payload=kwargs,
                meta={"figure": "fig2"},
            )
        )
    for delta in deltas:
        kwargs = dict(
            workload=frame_workload, delta=delta, mean_rate=mean
        )
        cells.append(
            SweepCell(
                name=f"tradeoff/ar1/delta{delta:g}",
                fn=tradeoff_heuristic_cell,
                kwargs=kwargs,
                cache_payload=kwargs,
                meta={"figure": "fig2"},
            )
        )
    return cells
