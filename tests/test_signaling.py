"""RM-cell signaling, switch ports, and multi-hop paths."""

import numpy as np
import pytest

from repro.core.schedule import RateSchedule
from repro.signaling.messages import CellKind, RenegotiationRequest, RmCell
from repro.signaling.network import SignalingPath, simulate_schedules_on_path
from repro.signaling.switch import SwitchPort


class TestMessages:
    def test_request_delta(self):
        request = RenegotiationRequest(vci=1, old_rate=100.0, new_rate=250.0, time=0.0)
        assert request.delta == 150.0
        cell = request.as_cell()
        assert cell.kind is CellKind.DELTA
        assert cell.er == 150.0

    def test_deny_records_first_hop_only(self):
        cell = RmCell(vci=1, kind=CellKind.DELTA, er=10.0, issued_at=0.0)
        cell.deny(2)
        cell.deny(5)
        assert cell.denied_at_hop == 2

    def test_is_increase(self):
        up = RmCell(vci=1, kind=CellKind.DELTA, er=10.0, issued_at=0.0)
        down = RmCell(vci=1, kind=CellKind.DELTA, er=-10.0, issued_at=0.0)
        absolute = RmCell(vci=1, kind=CellKind.ABSOLUTE, er=10.0, issued_at=0.0)
        assert up.is_increase
        assert not down.is_increase
        assert not absolute.is_increase


class TestSwitchPort:
    def test_increase_within_capacity(self):
        port = SwitchPort(1000.0)
        cell = RmCell(vci=1, kind=CellKind.DELTA, er=400.0, issued_at=0.0)
        assert port.process(cell)
        assert port.utilization == 400.0

    def test_increase_beyond_capacity_denied(self):
        port = SwitchPort(1000.0)
        port.process(RmCell(vci=1, kind=CellKind.DELTA, er=800.0, issued_at=0.0))
        denied = RmCell(vci=2, kind=CellKind.DELTA, er=300.0, issued_at=0.0)
        assert not port.process(denied)
        assert port.utilization == 800.0
        assert port.requests_denied == 1

    def test_decrease_always_accepted(self):
        port = SwitchPort(1000.0)
        port.process(RmCell(vci=1, kind=CellKind.DELTA, er=800.0, issued_at=0.0))
        down = RmCell(vci=1, kind=CellKind.DELTA, er=-300.0, issued_at=1.0)
        assert port.process(down)
        assert port.utilization == 500.0

    def test_upstream_denied_cell_not_committed(self):
        port = SwitchPort(1000.0)
        cell = RmCell(vci=1, kind=CellKind.DELTA, er=100.0, issued_at=0.0)
        cell.deny(0)
        assert not port.process(cell)
        assert port.utilization == 0.0

    def test_per_vci_tracking(self):
        port = SwitchPort(1000.0)
        port.process(RmCell(vci=7, kind=CellKind.DELTA, er=100.0, issued_at=0.0))
        port.process(RmCell(vci=7, kind=CellKind.DELTA, er=50.0, issued_at=1.0))
        assert port.rate_of(7) == pytest.approx(150.0)

    def test_stateless_port_has_no_vci_view(self):
        port = SwitchPort(1000.0, track_per_vci=False)
        port.process(RmCell(vci=7, kind=CellKind.DELTA, er=100.0, issued_at=0.0))
        assert port.rate_of(7) is None

    def test_absolute_resync_repairs_drift(self):
        port = SwitchPort(1000.0)
        # The switch believes vci 1 holds 500 (e.g. a lost decrease cell).
        port.process(RmCell(vci=1, kind=CellKind.DELTA, er=500.0, issued_at=0.0))
        resync = RmCell(vci=1, kind=CellKind.ABSOLUTE, er=200.0, issued_at=1.0)
        assert port.process(resync)
        assert port.utilization == pytest.approx(200.0)
        assert port.rate_of(1) == pytest.approx(200.0)

    def test_rollback_undoes_increase(self):
        port = SwitchPort(1000.0)
        cell = RmCell(vci=1, kind=CellKind.DELTA, er=400.0, issued_at=0.0)
        port.process(cell)
        port.rollback(cell)
        assert port.utilization == 0.0

    def test_release_frees_tracked_rate(self):
        port = SwitchPort(1000.0)
        port.process(RmCell(vci=1, kind=CellKind.DELTA, er=400.0, issued_at=0.0))
        port.release(1)
        assert port.utilization == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SwitchPort(0.0)


class TestSignalingPath:
    def test_all_hops_must_accept(self):
        ports = [SwitchPort(1000.0), SwitchPort(300.0), SwitchPort(1000.0)]
        path = SignalingPath(ports, seed=0)
        request = RenegotiationRequest(vci=1, old_rate=0.0, new_rate=500.0, time=0.0)
        assert not path.renegotiate(request)
        # Hop 0 must have been rolled back.
        assert ports[0].utilization == 0.0
        assert path.stats.failure_hops == [1]

    def test_success_updates_every_hop(self):
        ports = [SwitchPort(1000.0) for _ in range(4)]
        path = SignalingPath(ports, seed=0)
        request = RenegotiationRequest(vci=1, old_rate=0.0, new_rate=500.0, time=0.0)
        assert path.renegotiate(request)
        assert all(port.utilization == 500.0 for port in ports)

    def test_cell_loss_causes_drift(self):
        ports = [SwitchPort(1000.0)]
        path = SignalingPath(ports, cell_loss_probability=0.999999, seed=1)
        request = RenegotiationRequest(vci=1, old_rate=0.0, new_rate=500.0, time=0.0)
        assert not path.renegotiate(request)
        assert path.stats.cells_lost == 1
        assert ports[0].utilization == 0.0

    def test_round_trip_time(self):
        path = SignalingPath([SwitchPort(1.0)] * 3, hop_delay=0.002)
        assert path.round_trip_time == pytest.approx(0.012)

    def test_validation(self):
        with pytest.raises(ValueError):
            SignalingPath([])
        with pytest.raises(ValueError):
            SignalingPath([SwitchPort(1.0)], hop_delay=-1.0)
        with pytest.raises(ValueError):
            SignalingPath([SwitchPort(1.0)], cell_loss_probability=1.0)
        with pytest.raises(ValueError):
            SignalingPath([SwitchPort(1.0)], retry_backoff=0.5)
        with pytest.raises(ValueError):
            SignalingPath([SwitchPort(1.0)], retry_jitter=1.0)
        with pytest.raises(ValueError):
            SignalingPath([SwitchPort(1.0)], retry_jitter=-0.1)
        with pytest.raises(ValueError):
            SignalingPath([SwitchPort(1.0)], request_timeout=0.0)


class _TransmitRecorder(SignalingPath):
    """Records each attempt's issue time; every transmission is lost."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.issue_times = []

    def _transmit(self, cell, time):
        self.issue_times.append(time)
        status = super()._transmit(cell, time)
        assert self.stats.cells_lost >= 1  # loss prob ~1: always lost
        return status


class TestRetryBackoff:
    """The jittered exponential retry schedule (lost-cell retries)."""

    def _retry_path(self, **kwargs):
        kwargs.setdefault("cell_loss_probability", 1.0 - 1e-12)
        kwargs.setdefault("request_timeout", 1.0)
        kwargs.setdefault("max_retries", 3)
        kwargs.setdefault("seed", 0)
        return _TransmitRecorder([SwitchPort(1e9)], **kwargs)

    def _request(self):
        return RenegotiationRequest(
            vci=1, old_rate=0.0, new_rate=500.0, time=0.0
        )

    def test_default_is_fixed_interval(self):
        path = self._retry_path()
        assert not path.renegotiate(self._request())
        assert path.issue_times == [0.0, 1.0, 2.0, 3.0]

    def test_backoff_grows_geometrically(self):
        path = self._retry_path(retry_backoff=2.0)
        assert not path.renegotiate(self._request())
        # Waits of 1, 2, 4 timeouts between attempts.
        assert path.issue_times == [0.0, 1.0, 3.0, 7.0]

    def test_jitter_stretches_within_bounds(self):
        path = self._retry_path(retry_backoff=2.0, retry_jitter=0.5)
        assert not path.renegotiate(self._request())
        bare = [0.0, 1.0, 3.0, 7.0]
        gaps = np.diff(path.issue_times)
        for gap, base in zip(gaps, [1.0, 2.0, 4.0]):
            assert base <= gap <= base * 1.5
        assert path.issue_times != bare  # jitter actually moved something

    def test_jitter_is_deterministic_in_the_retry_seed(self):
        first = self._retry_path(retry_backoff=2.0, retry_jitter=0.5,
                                 retry_seed=42)
        second = self._retry_path(retry_backoff=2.0, retry_jitter=0.5,
                                  retry_seed=42)
        other = self._retry_path(retry_backoff=2.0, retry_jitter=0.5,
                                 retry_seed=43)
        for path in (first, second, other):
            path.renegotiate(self._request())
        assert first.issue_times == second.issue_times
        assert first.issue_times != other.issue_times

    def test_retry_stream_does_not_perturb_loss_stream(self):
        # Turning jitter on must not change which cells get lost: the
        # jitter draws come from a dedicated stream, not the loss rng.
        plain = SignalingPath(
            [SwitchPort(1e9)], cell_loss_probability=0.5, seed=7,
            max_retries=2,
        )
        jittered = SignalingPath(
            [SwitchPort(1e9)], cell_loss_probability=0.5, seed=7,
            max_retries=2, retry_backoff=2.0, retry_jitter=0.9,
            retry_seed=123,
        )
        for path in (plain, jittered):
            for index in range(30):
                path.renegotiate(
                    RenegotiationRequest(
                        vci=1,
                        old_rate=float(index),
                        new_rate=float(index + 1),
                        time=float(index) * 100.0,
                    )
                )
        assert jittered.stats.cells_lost == plain.stats.cells_lost
        assert jittered.stats.failures == plain.stats.failures


class TestScheduleReplay:
    def make_schedules(self, count, seed=3):
        rng = np.random.default_rng(seed)
        schedules = []
        for _ in range(count):
            times = [0.0, 10.0, 20.0, 30.0]
            rates = rng.choice([100.0, 200.0, 400.0], size=4, replace=True)
            # Ensure adjacent rates differ.
            for i in range(1, 4):
                if rates[i] == rates[i - 1]:
                    rates[i] = 300.0 if rates[i] != 300.0 else 100.0
            schedules.append(RateSchedule(times, rates, duration=40.0))
        return schedules

    def test_no_failures_on_fat_path(self):
        schedules = self.make_schedules(5)
        path = SignalingPath([SwitchPort(1e9) for _ in range(3)], seed=0)
        result = simulate_schedules_on_path(schedules, path)
        assert result.stats.failures == 0
        assert sum(result.source_failures) == 0

    def test_failures_on_thin_path(self):
        schedules = self.make_schedules(8)
        path = SignalingPath([SwitchPort(900.0)], seed=0)
        result = simulate_schedules_on_path(schedules, path)
        assert result.stats.failures > 0
        assert sum(result.source_failures) == result.stats.failures

    def test_signaling_load_counts_cells(self):
        schedules = self.make_schedules(5)
        path = SignalingPath([SwitchPort(1e9)], seed=0)
        result = simulate_schedules_on_path(schedules, path)
        # 4 segments per schedule -> 4 cells each (setup + 3 renegs).
        assert path.stats.cells_sent == 20
        assert result.cells_per_second == pytest.approx(20 / 40.0)

    def test_resync_cells_add_load(self):
        schedules = self.make_schedules(2)
        path = SignalingPath([SwitchPort(1e9)], seed=0)
        result = simulate_schedules_on_path(
            schedules, path, resync_interval=5.0
        )
        assert path.stats.cells_sent > 8

    def test_resync_repairs_lost_decrease(self):
        # One schedule: rate 400 then 100.  The decrease cell is lost
        # (forced via loss probability), leaving utilization at 400;
        # a later absolute resync repairs it.
        schedule = RateSchedule([0.0, 10.0], [400.0, 100.0], duration=40.0)
        port = SwitchPort(1e9)
        path = SignalingPath([port], cell_loss_probability=0.0, seed=0)
        path.renegotiate(
            RenegotiationRequest(vci=0, old_rate=0.0, new_rate=400.0, time=0.0)
        )
        # Simulate the lost decrease: the source believes 100, port has 400.
        path.resynchronize(0, 100.0, 15.0)
        assert port.utilization == pytest.approx(100.0)

    def test_lead_time_must_be_nonnegative(self):
        schedules = self.make_schedules(1)
        path = SignalingPath([SwitchPort(1e9)])
        with pytest.raises(ValueError):
            simulate_schedules_on_path(schedules, path, lead_time=-1.0)

    def test_empty_schedules_rejected(self):
        path = SignalingPath([SwitchPort(1e9)])
        with pytest.raises(ValueError):
            simulate_schedules_on_path([], path)
