"""Multi-hop renegotiation over a path of switch ports (Section III-C).

"As the mean number of hops in the network increases, the probability of
renegotiation failure is likely to increase since each hop is a possible
point of failure.  Moreover, the net renegotiation signaling load on the
network also increases."

This module replays renegotiation schedules over an N-hop path: each
renegotiation becomes an RM cell traversing the hops in order with a
per-hop propagation delay; an increase denied at hop ``k`` rolls back the
``k`` upstream hops (mirroring the returning RM cell); optional RM-cell
loss models the delta-drift problem, countered by periodic absolute
resynchronisation (footnote 2).

Hardening (beyond the paper): a path can carry a
:class:`~repro.faults.injectors.FaultPlan` injecting cell loss, delay,
duplication, and transient hop outages.  Requests then run under a
per-request timeout with bounded retries — retries are *absolute*-rate
cells, so a retry can never double-apply a delta that did land — and
every cell is tracked in flight until it resolves, so a lost cell times
out instead of deadlocking the source.  An explicit denial is an answer,
not a fault, and is never retried.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.core.schedule import RateSchedule
from repro.queueing.events import EventScheduler
from repro.signaling.messages import CellKind, RenegotiationRequest, RmCell
from repro.signaling.switch import SwitchPort
from repro.util.rng import SeedLike, as_generator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injectors import FaultPlan


class DeliveryStatus(enum.Enum):
    """How one cell transmission resolved, as seen by the source."""

    ACCEPTED = "accepted"  # every hop committed the request
    DENIED = "denied"  # some hop denied; the returning cell rolled back
    LOST = "lost"  # the cell (or its answer) never came back


@dataclass
class PathStats:
    """Per-run signaling statistics."""

    requests: int = 0
    increase_requests: int = 0
    failures: int = 0
    cells_sent: int = 0
    cells_lost: int = 0
    timeouts: int = 0
    retries: int = 0
    duplicates: int = 0
    outage_drops: int = 0
    failure_hops: List[int] = field(default_factory=list)

    @property
    def failure_fraction(self) -> float:
        if self.increase_requests == 0:
            return 0.0
        return self.failures / self.increase_requests

    def failure_hop_histogram(self) -> Dict[int, int]:
        """How often each hop index was the point of denial."""
        histogram: Dict[int, int] = {}
        for hop in self.failure_hops:
            histogram[hop] = histogram.get(hop, 0) + 1
        return histogram


class SignalingPath:
    """An ordered list of switch ports between a source and its sink."""

    def __init__(
        self,
        ports: Sequence[SwitchPort],
        hop_delay: float = 0.001,
        cell_loss_probability: float = 0.0,
        seed: SeedLike = None,
        faults: Optional["FaultPlan"] = None,
        request_timeout: Optional[float] = None,
        max_retries: int = 0,
        retry_backoff: float = 1.0,
        retry_jitter: float = 0.0,
        retry_seed: SeedLike = None,
    ) -> None:
        if not ports:
            raise ValueError("a path needs at least one port")
        if hop_delay < 0:
            raise ValueError("hop_delay must be non-negative")
        if not 0.0 <= cell_loss_probability < 1.0:
            raise ValueError("cell_loss_probability must be in [0, 1)")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if retry_backoff < 1.0:
            raise ValueError("retry_backoff must be >= 1")
        if not 0.0 <= retry_jitter < 1.0:
            raise ValueError("retry_jitter must be in [0, 1)")
        self.ports = list(ports)
        self.hop_delay = hop_delay
        self.cell_loss_probability = cell_loss_probability
        self.rng = as_generator(seed)
        self.faults = faults
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.retry_jitter = float(retry_jitter)
        # Jitter draws come from a dedicated stream, never from the
        # cell-loss ``rng``: enabling jitter must not perturb the loss
        # sample path, and a seeded stream keeps retry timing replayable.
        self._retry_rng = as_generator(retry_seed)
        if request_timeout is None:
            # A source waits a bit over the signaling RTT before declaring
            # a cell lost; floor it so zero-delay test paths still time out.
            request_timeout = max(2.0 * self.round_trip_time, 1e-3)
        self.request_timeout = float(request_timeout)
        self.stats = PathStats()
        self._in_flight: Dict[int, float] = {}  # cell_id -> timeout deadline

    @property
    def num_hops(self) -> int:
        return len(self.ports)

    @property
    def round_trip_time(self) -> float:
        """Source-to-sink-and-back signaling latency."""
        return 2.0 * self.hop_delay * self.num_hops

    @property
    def in_flight(self) -> int:
        """Requests awaiting an answer; must be 0 between transactions
        (anything else is a tracking leak that would strand a source)."""
        return len(self._in_flight)

    # ------------------------------------------------------------------
    def send(self, cell: RmCell) -> bool:
        """Push one RM cell through the path synchronously (no retries).

        Returns True if every hop accepted.  On a denial, accepted
        upstream hops are rolled back.  A lost cell never reaches any hop
        — for delta cells this leaves the source and switches
        disagreeing, i.e. drift.
        """
        return self._transmit(cell, cell.issued_at) is DeliveryStatus.ACCEPTED

    def _transmit(self, cell: RmCell, now: float) -> DeliveryStatus:
        """One transmission attempt, under the fault plan if present."""
        self.stats.cells_sent += 1
        self._in_flight[cell.cell_id] = now + self.request_timeout
        try:
            if (
                self.cell_loss_probability > 0.0
                and self.rng.random() < self.cell_loss_probability
            ):
                self.stats.cells_lost += 1
                return DeliveryStatus.LOST
            delayed_past_timeout = False
            duplicated = False
            if self.faults is not None:
                from repro.faults.injectors import CellFate

                outcome = self.faults.cell_outcome(now)
                if outcome.fate is CellFate.LOSE:
                    self.stats.cells_lost += 1
                    return DeliveryStatus.LOST
                if outcome.fate is CellFate.DELAY:
                    delayed_past_timeout = outcome.delay > self.request_timeout
                elif outcome.fate is CellFate.DUPLICATE:
                    duplicated = True
            status = self._traverse(cell, now)
            if duplicated and status is DeliveryStatus.ACCEPTED:
                # The copy lands right behind the original; a duplicated
                # delta increase over-reserves (drift) until a resync.
                copy = RmCell(
                    vci=cell.vci,
                    kind=cell.kind,
                    er=cell.er,
                    issued_at=now,
                    retry_of=cell.cell_id,
                )
                self.stats.duplicates += 1
                self._traverse(copy, now)
            if delayed_past_timeout:
                # The cell did land (state above is committed) but its
                # answer missed the source's deadline: source-side loss.
                self.stats.cells_lost += 1
                return DeliveryStatus.LOST
            return status
        finally:
            self._in_flight.pop(cell.cell_id, None)

    def _traverse(self, cell: RmCell, now: float) -> DeliveryStatus:
        """Walk the cell hop by hop, honouring outages and denials."""
        accepted: List[SwitchPort] = []
        for hop_index, port in enumerate(self.ports):
            arrival = now + (hop_index + 1) * self.hop_delay
            down = not port.available_at(arrival) or (
                self.faults is not None
                and self.faults.hop_down(arrival, hop_index)
            )
            if down:
                # Silent mid-path drop: upstream hops keep the delta they
                # committed (drift) because no cell returns to roll them
                # back; the source's timeout-and-absolute-retry repairs it.
                self.stats.outage_drops += 1
                self.stats.cells_lost += 1
                return DeliveryStatus.LOST
            if port.process(cell):
                accepted.append(port)
            else:
                cell.deny(hop_index)
                for upstream in accepted:
                    upstream.rollback(cell)
                self.stats.failure_hops.append(hop_index)
                return DeliveryStatus.DENIED
        return DeliveryStatus.ACCEPTED

    def renegotiate(self, request: RenegotiationRequest) -> bool:
        """Issue a renegotiation; returns True if the new rate is granted.

        With ``max_retries > 0``, a transmission that times out (lost,
        over-delayed, or eaten by an outage) is retried up to that many
        times.  Attempt ``k`` waits ``timeout * retry_backoff**(k-1)``,
        optionally stretched by up to ``retry_jitter`` (drawn from the
        dedicated seeded retry stream) so synchronized sources do not
        re-collide — the defaults (backoff 1, jitter 0) reproduce the
        historical fixed-interval retry bit for bit.  Retries carry the
        *absolute* target rate (the paper's resynchronisation cell,
        footnote 2) rather than the delta: if the original — or any
        upstream part of it — actually landed, an absolute retry repairs
        the drift instead of doubling the delta.  Explicit denials are
        answers and are returned immediately.
        """
        self.stats.requests += 1
        if request.delta > 0:
            self.stats.increase_requests += 1
        original = request.as_cell()
        status = self._transmit(original, request.time)
        now = request.time
        attempts = 0
        while status is DeliveryStatus.LOST and attempts < self.max_retries:
            attempts += 1
            delay = self.request_timeout * (
                self.retry_backoff ** (attempts - 1)
            )
            if self.retry_jitter > 0.0:
                delay *= 1.0 + self.retry_jitter * float(
                    self._retry_rng.random()
                )
            now += delay
            self.stats.timeouts += 1
            self.stats.retries += 1
            retry = RmCell(
                vci=request.vci,
                kind=CellKind.ABSOLUTE,
                er=request.new_rate,
                issued_at=now,
                retry_of=original.cell_id,
            )
            status = self._transmit(retry, now)
        if status is DeliveryStatus.LOST and self.max_retries > 0:
            self.stats.timeouts += 1  # the final, unanswered attempt
        granted = status is DeliveryStatus.ACCEPTED
        if not granted and request.delta > 0:
            self.stats.failures += 1
        return granted

    def renegotiate_batch(
        self,
        vcis: Sequence,
        old_rates: np.ndarray,
        new_rates: np.ndarray,
        time: float,
    ) -> np.ndarray:
        """Issue one epoch's renegotiations; returns per-request grants.

        Semantically identical to one :meth:`renegotiate` per entry at
        the same ``time``, in order — this is the sharded gateway's
        per-epoch commit, where the scalar path's ~40k cell traversals
        per epoch would dominate the real-time budget.  The batched
        paths engage only when nothing can perturb the per-cell fold:
        no fault plan, no cell loss, no outage windows on any hop.  A
        single-hop path then resolves the exact denied set by fixpoint
        (:meth:`SwitchPort.delta_batch_apply`) — denials are local, no
        upstream rollback exists to perturb other hops — so a hot link
        denying a few percent of increases every epoch stays fully
        vectorized.  A multi-hop path stays all-or-nothing (checked
        two-phase via :meth:`SwitchPort.delta_batch_total` before
        anything commits) because a mid-batch denial rolls back
        upstream hops, and ``(u + d) - d`` bitwise-perturbs their
        utilizations in a way only the sequential walk reproduces.
        Anything else replays the whole batch through ``renegotiate``,
        which is exact by construction.
        """
        count = int(len(new_rates))
        if count == 0:
            return np.zeros(0, dtype=bool)
        deltas = np.asarray(new_rates, dtype=float) - np.asarray(
            old_rates, dtype=float
        )
        fast = (
            self.faults is None
            and self.cell_loss_probability == 0.0
            and not any(port.has_outages for port in self.ports)
        )
        if fast and self.num_hops == 1:
            granted = self.ports[0].delta_batch_apply(vcis, deltas)
            if granted is not None:
                self.stats.requests += count
                self.stats.increase_requests += int(
                    np.count_nonzero(deltas > 0)
                )
                self.stats.cells_sent += count
                denied_count = count - int(np.count_nonzero(granted))
                if denied_count:
                    # Every denial is an increase refused at hop 0, in
                    # slot order — exactly the scalar path's appends.
                    self.stats.failure_hops.extend([0] * denied_count)
                    self.stats.failures += denied_count
                return granted
            fast = False
        totals: List[float] = []
        if fast:
            for port in self.ports:
                total = port.delta_batch_total(deltas)
                if total is None:
                    fast = False
                    break
                totals.append(total)
        if fast:
            for port, total in zip(self.ports, totals):
                port.commit_delta_batch(vcis, deltas, total)
            self.stats.requests += count
            self.stats.increase_requests += int(np.count_nonzero(deltas > 0))
            self.stats.cells_sent += count
            return np.ones(count, dtype=bool)
        granted = np.empty(count, dtype=bool)
        for index in range(count):
            granted[index] = self.renegotiate(
                RenegotiationRequest(
                    vci=int(vcis[index]),
                    old_rate=float(old_rates[index]),
                    new_rate=float(new_rates[index]),
                    time=time,
                )
            )
        return granted

    def resynchronize(self, vci: int, true_rate: float, time: float) -> bool:
        """Send an absolute-rate RM cell to repair any drift."""
        cell = RmCell(
            vci=vci, kind=CellKind.ABSOLUTE, er=true_rate, issued_at=time
        )
        return self.send(cell)

    def release(self, vci: int) -> None:
        for port in self.ports:
            port.release(vci)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Export RNG streams, statistics, and in-flight bookkeeping.

        Port state is *not* included: the gateway owns the port objects
        (this path holds references to the same instances) and
        checkpoints them itself.  Neither stream here ever spawns
        children, so ``bit_generator.state`` captures them completely.
        """
        return {
            "rng": self.rng.bit_generator.state,
            "retry_rng": self._retry_rng.bit_generator.state,
            "stats": dataclasses.replace(
                self.stats, failure_hops=list(self.stats.failure_hops)
            ),
            "in_flight": dict(self._in_flight),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` export."""
        self.rng.bit_generator.state = state["rng"]
        self._retry_rng.bit_generator.state = state["retry_rng"]
        self.stats = dataclasses.replace(
            state["stats"],  # type: ignore[arg-type]
            failure_hops=list(state["stats"].failure_hops),  # type: ignore[union-attr]
        )
        self._in_flight = dict(state["in_flight"])  # type: ignore[arg-type]


@dataclass(frozen=True)
class PathSimulationResult:
    """Outcome of replaying schedules over a path."""

    stats: PathStats
    horizon: float
    cells_per_second: float
    source_failures: List[int]


def simulate_schedules_on_path(
    schedules: Sequence[RateSchedule],
    path: SignalingPath,
    resync_interval: Optional[float] = None,
    lead_time: float = 0.0,
) -> PathSimulationResult:
    """Replay renegotiation schedules through a multi-hop path.

    ``lead_time`` initiates each renegotiation early, the paper's offline
    compensation for path latency ("offline applications ... can
    compensate for an increased latency by initiating renegotiation
    earlier").  ``resync_interval`` adds periodic absolute-rate cells per
    source.  Per-source believed rates track grants, so statistics match
    what a real NIU would observe.
    """
    if not schedules:
        raise ValueError("need at least one schedule")
    if lead_time < 0:
        raise ValueError("lead_time must be non-negative")
    engine = EventScheduler()
    believed_rates = [0.0] * len(schedules)
    source_failures = [0] * len(schedules)
    horizon = max(schedule.duration for schedule in schedules)

    def issue(vci: int, new_rate: float) -> None:
        request = RenegotiationRequest(
            vci=vci,
            old_rate=believed_rates[vci],
            new_rate=new_rate,
            time=engine.now,
        )
        if path.renegotiate(request):
            believed_rates[vci] = new_rate
        elif request.delta > 0:
            source_failures[vci] += 1
        else:
            # A lost decrease leaves the network over-reserving (drift).
            believed_rates[vci] = new_rate

    def resync(vci: int) -> None:
        path.resynchronize(vci, believed_rates[vci], engine.now)
        if engine.now + resync_interval < horizon:
            engine.schedule_in(resync_interval, resync, vci)

    for vci, schedule in enumerate(schedules):
        for seg_start, _, rate in schedule.segments():
            fire_at = max(0.0, seg_start - lead_time)
            engine.schedule_at(fire_at, issue, vci, rate)
        if resync_interval is not None and resync_interval > 0:
            engine.schedule_at(resync_interval, resync, vci)

    engine.run(until=horizon)
    for vci in range(len(schedules)):
        path.release(vci)

    return PathSimulationResult(
        stats=path.stats,
        horizon=horizon,
        cells_per_second=path.stats.cells_sent / horizon if horizon else 0.0,
        source_failures=source_failures,
    )
