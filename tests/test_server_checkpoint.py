"""Crash-safe checkpoints: bit-exact resume, staleness, lifecycle, watchdog.

The contract under test (DESIGN.md §15): ``run(T1); save; SIGKILL;
rebuild; restore; run(T2)`` produces a snapshot fingerprint byte-equal
to ``run(T1); run(T2)`` in one uninterrupted process — for every
configuration the gateway supports.  Checkpoints from a different
config, workload, or code version are refused loudly, never resumed
approximately.
"""

import os
import pickle
import signal

import numpy as np
import pytest

from repro.faults.injectors import FaultPlan
from repro.server import ServerConfig, build_gateway
from repro.server.checkpoint import (
    CheckpointError,
    ServeLifecycle,
    StaleCheckpointError,
    read_checkpoint,
    read_checkpoint_meta,
    write_checkpoint,
)
from repro.server.sharded import WorkerPoolError
from repro.traffic.starwars import generate_starwars_trace


@pytest.fixture(scope="module")
def workload():
    return generate_starwars_trace(num_frames=400, seed=1995).as_workload()


def config(workload, **overrides):
    defaults = dict(
        capacity=40 * workload.mean_rate,
        load=0.8,
        controller="always",
        seed=11,
        initial_calls=8,
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


FAULT_SPEC = {
    "denial": {"rate": 0.1},
    "cell_loss": {"probability": 0.05},
    "outage": {"rate": 0.05, "mean_duration": 0.5},
}

# Every runtime the gateway supports: the plain event loop, the
# sharded fleet at one and several workers, each overload policy, the
# memory admission controller, and a fault plan with its own lazily
# spawned per-hop RNG children.
CHAOS_CASES = {
    "plain": dict(),
    "sharded-1": dict(shards=1, shard_chunk=16),
    "sharded-4": dict(shards=4, shard_chunk=16),
    "overload-block": dict(
        load=0.0,
        initial_calls=60,
        overload_policy="block",
        overload_enter=0.7,
        overload_exit=0.5,
        overload_dwell=2,
    ),
    "overload-downgrade": dict(
        load=0.0,
        initial_calls=60,
        overload_policy="downgrade",
        overload_enter=0.7,
        overload_exit=0.5,
        overload_dwell=2,
    ),
    "overload-sacrifice": dict(
        load=0.0,
        initial_calls=60,
        overload_policy="sacrifice",
        overload_enter=0.7,
        overload_exit=0.5,
        overload_dwell=2,
    ),
    "memory-controller": dict(controller="memory"),
    "faulted": dict(num_hops=3, abandon_after=4),
}
FAULTED_CASES = {"faulted"}


def build_case(workload, name):
    overrides = dict(CHAOS_CASES[name])
    if overrides.get("initial_calls", 8) == 60:
        overrides["capacity"] = 60 * workload.mean_rate
    faults = (
        FaultPlan.from_spec(FAULT_SPEC, seed=42)
        if name in FAULTED_CASES
        else None
    )
    return build_gateway(workload, config(workload, **overrides), faults=faults)


class TestBitExactResume:
    @pytest.mark.parametrize("name", sorted(CHAOS_CASES))
    def test_save_kill_restore_matches_uninterrupted(
        self, workload, tmp_path, name
    ):
        path = tmp_path / "gw.ckpt"

        with build_case(workload, name) as reference:
            reference.run(3.0, snapshot_every=1.0)
            expected = reference.run(3.0, snapshot_every=1.0).fingerprint

        with build_case(workload, name) as first:
            first.run(3.0, snapshot_every=1.0)
            meta = write_checkpoint(path, first)
        assert meta["bytes"] == path.stat().st_size

        # The "crash": `first` is gone; a new process rebuilds from the
        # same config and restores.
        with build_case(workload, name) as resumed:
            resumed.restore(path)
            report = resumed.run(3.0, snapshot_every=1.0)

        assert report.fingerprint == expected

    def test_periodic_checkpoint_mid_run_resumes_bit_exact(
        self, workload, tmp_path
    ):
        """A checkpoint written from the epoch hook mid-run (not at a
        run() boundary) must also resume bit-exactly — the regression
        that once exported a stale start tick."""
        path = tmp_path / "gw.ckpt"
        slot = workload.slot_duration

        with build_case(workload, "plain") as reference:
            expected = reference.run(6.0, snapshot_every=1.0).fingerprint

        def hook(tick, gw):
            if tick == 37:
                gw.save(path)
                return True
            return False

        with build_case(workload, "plain") as first:
            first.run(6.0, snapshot_every=1.0, epoch_hook=hook)

        with build_case(workload, "plain") as resumed:
            resumed.restore(path)
            assert resumed.engine.now == pytest.approx(37 * slot)
            remaining = 6.0 - resumed.engine.now
            report = resumed.run(remaining, snapshot_every=1.0)

        assert report.fingerprint == expected

    def test_sharded_restore_respawns_pool_lazily(self, workload, tmp_path):
        path = tmp_path / "gw.ckpt"
        with build_case(workload, "sharded-4") as first:
            first.run(2.0, snapshot_every=1.0)
            first.save(path)

        with build_case(workload, "sharded-4") as resumed:
            resumed.run(0.5)  # spin the pool up before restoring over it
            resumed.restore(path)
            assert resumed.fleet._pool is None
            resumed.run(1.0, snapshot_every=1.0)
            assert resumed.fleet._pool is not None


class TestGeneratorRoundTrip:
    """Satellite: every spawned stream restores to identical draws."""

    def streams(self, gateway):
        return {
            "arrival": gateway._arrival_rng,
            "call": gateway._call_rng,
            "overload": gateway._overload_rng,
            "path": gateway.path.rng,
            "retry": gateway.path._retry_rng,
        }

    def test_gateway_streams_resume_identical_draws(self, workload):
        with build_case(workload, "plain") as gateway:
            # Consume the streams unevenly first: a restore must work
            # from an arbitrary mid-stream point, not just seed zero.
            gateway.run(2.0)
            for name, rng in self.streams(gateway).items():
                saved = rng.bit_generator.state
                expected = rng.random(100)
                clone = np.random.Generator(type(rng.bit_generator)())
                clone.bit_generator.state = saved
                assert clone.random(100).tolist() == expected.tolist(), name

    def test_per_shard_seedsequence_rederivation_is_stable(self):
        # The sharded restore path does not serialize worker RNGs; it
        # re-derives them from (base_seed, spawn_key=(shard,)).  That is
        # only sound if the derivation is a pure function.
        for shard in range(4):
            draws = []
            for _ in range(2):
                seq = np.random.SeedSequence(11, spawn_key=(shard,))
                rng = np.random.Generator(np.random.PCG64(seq))
                draws.append(rng.random(50).tolist())
            assert draws[0] == draws[1]

    def test_pickle_preserves_spawn_counter(self):
        # Fault injectors lazily spawn per-hop child streams, so they
        # are pickled wholesale: pickling a Generator must preserve the
        # SeedSequence spawn counter (restoring bit_generator.state
        # alone would not).  Canary against a numpy behavior change.
        rng = np.random.Generator(np.random.PCG64(np.random.SeedSequence(3)))
        rng.spawn(2)
        copy = pickle.loads(pickle.dumps(rng))
        original_child = rng.spawn(1)[0]
        restored_child = copy.spawn(1)[0]
        assert (
            original_child.bit_generator.state
            == restored_child.bit_generator.state
        )

    def test_mid_epoch_fault_children_survive_checkpoint(
        self, workload, tmp_path
    ):
        # The faulted chaos case exercises this end to end; here we
        # check the plan state specifically: after running, the plan
        # restored from a checkpoint draws identically to the original.
        path = tmp_path / "gw.ckpt"
        with build_case(workload, "faulted") as first:
            first.run(3.0, snapshot_every=1.0)
            first.save(path)
            expected = {
                name: injector.rng.random(20).tolist()
                for name, injector in first.faults._injectors.items()
                if getattr(injector, "rng", None) is not None
            }
        assert expected  # the spec above always arms seeded injectors

        with build_case(workload, "faulted") as resumed:
            resumed.restore(path)
            for name, draws in expected.items():
                injector = resumed.faults._injectors[name]
                assert injector.rng.random(20).tolist() == draws, name


class TestStaleness:
    def write(self, workload, path, **overrides):
        with build_case(workload, "plain") as gateway:
            gateway.run(1.0)
            gateway.save(path)
            return gateway.config

    def test_meta_roundtrip(self, workload, tmp_path):
        path = tmp_path / "gw.ckpt"
        self.write(workload, path)
        meta = read_checkpoint_meta(path)
        assert meta["schema"] == 1
        assert meta["time"] == pytest.approx(1.0, abs=0.1)
        assert meta["next_tick"] > 0

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint_meta(tmp_path / "nope.ckpt")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(CheckpointError, match="corrupt"):
            read_checkpoint_meta(path)

    def test_wrong_magic(self, tmp_path):
        path = tmp_path / "other.ckpt"
        path.write_bytes(pickle.dumps({"magic": "something-else"}))
        with pytest.raises(CheckpointError, match="not an RCBR"):
            read_checkpoint_meta(path)

    def test_config_mismatch_is_refused(self, workload, tmp_path):
        path = tmp_path / "gw.ckpt"
        self.write(workload, path)
        with pytest.raises(StaleCheckpointError, match="config hash"):
            read_checkpoint(path, config(workload, seed=12))

    def test_code_version_mismatch_is_refused(
        self, workload, tmp_path, monkeypatch
    ):
        path = tmp_path / "gw.ckpt"
        cfg = self.write(workload, path)
        monkeypatch.setattr(
            "repro.server.checkpoint.checkpoint_code_version",
            lambda: "9.9.9+ckpt99+cache99",
        )
        with pytest.raises(StaleCheckpointError, match="code version"):
            read_checkpoint(path, cfg)

    def test_workload_mismatch_is_refused(self, workload, tmp_path):
        path = tmp_path / "gw.ckpt"
        # Pin the capacity so both configs hash identically even though
        # the traces differ — exactly the gap the workload hash closes.
        capacity = 40 * workload.mean_rate
        with build_gateway(
            workload, config(workload, capacity=capacity)
        ) as gateway:
            gateway.run(1.0)
            gateway.save(path)

        other = generate_starwars_trace(num_frames=400, seed=7).as_workload()
        with build_gateway(
            other, config(workload, capacity=capacity)
        ) as impostor:
            with pytest.raises(StaleCheckpointError, match="workload hash"):
                impostor.restore(path)

    def test_restore_into_running_gateway_same_config_ok(
        self, workload, tmp_path
    ):
        # Restoring over a gateway that has already served rewinds it
        # to the checkpoint — useful for in-process rollback.
        path = tmp_path / "gw.ckpt"
        with build_case(workload, "plain") as gateway:
            gateway.run(2.0, snapshot_every=1.0)
            gateway.save(path)
            first = gateway.run(2.0, snapshot_every=1.0).fingerprint
            gateway.restore(path)
            second = gateway.run(2.0, snapshot_every=1.0).fingerprint
        assert first == second


class TestDeferredWriter:
    def test_deferred_save_lands_and_restores_bit_exact(
        self, workload, tmp_path
    ):
        path = tmp_path / "gw.ckpt"
        with build_case(workload, "plain") as gateway:
            gateway.run(2.0, snapshot_every=1.0)
            meta = gateway.save(path, defer=True)
            gateway.checkpoint_sync()
            reference = gateway.run(2.0, snapshot_every=1.0).fingerprint
        assert meta["bytes"] == path.stat().st_size
        with build_case(workload, "plain") as resumed:
            resumed.restore(path)
            assert resumed.run(2.0, snapshot_every=1.0).fingerprint == reference

    def test_background_write_failure_is_loud(
        self, workload, tmp_path, monkeypatch
    ):
        import repro.server.checkpoint as checkpoint_module

        def explode(path, blob):
            raise OSError("disk on fire")

        with build_case(workload, "plain") as gateway:
            gateway.run(1.0)
            monkeypatch.setattr(checkpoint_module, "atomic_write", explode)
            gateway.save(tmp_path / "gw.ckpt", defer=True)
            with pytest.raises(CheckpointError, match="disk on fire"):
                gateway.checkpoint_sync()
            # The error is surfaced once, then cleared.
            gateway.checkpoint_sync()

    def test_sync_save_drains_pending_deferred_write(
        self, workload, tmp_path
    ):
        # Newest checkpoint must win the rename: a sync save flushes the
        # in-flight deferred write before its own atomic_write.
        path = tmp_path / "gw.ckpt"
        with build_case(workload, "plain") as gateway:
            gateway.run(1.0)
            gateway.save(path, defer=True)
            gateway.run(1.0)
            meta = gateway.save(path)
            assert not gateway._checkpoint_writer.pending
        assert read_checkpoint_meta(path)["time"] == pytest.approx(
            meta["time"]
        )


class TestLifecycle:
    def test_first_signal_requests_stop(self):
        lifecycle = ServeLifecycle()
        with lifecycle:
            os.kill(os.getpid(), signal.SIGTERM)
        assert lifecycle.stop_requested
        assert lifecycle.signal_name == "SIGTERM"

    def test_second_signal_raises_keyboard_interrupt(self):
        lifecycle = ServeLifecycle()
        lifecycle._handle(signal.SIGINT, None)
        assert lifecycle.stop_requested
        with pytest.raises(KeyboardInterrupt):
            lifecycle._handle(signal.SIGINT, None)

    def test_handlers_restored_on_exit(self):
        before = {
            sig: signal.getsignal(sig)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        with ServeLifecycle():
            assert signal.getsignal(signal.SIGTERM) != before[signal.SIGTERM]
        for sig, handler in before.items():
            assert signal.getsignal(sig) == handler

    def test_graceful_stop_checkpoint_resumes_bit_exact(
        self, workload, tmp_path
    ):
        path = tmp_path / "gw.ckpt"
        lifecycle = ServeLifecycle()

        with build_case(workload, "plain") as reference:
            expected = reference.run(5.0, snapshot_every=1.0).fingerprint

        def hook(tick, gw):
            if tick == 29:  # "the signal arrived" mid-run
                lifecycle.stop_requested = True
                lifecycle.signum = signal.SIGTERM
            if lifecycle.stop_requested:
                gw.save(path)
                return True
            return False

        with build_case(workload, "plain") as first:
            report = first.run(5.0, snapshot_every=1.0, epoch_hook=hook)
            assert report.epochs == 29  # stopped at the boundary, pre-step

        with build_case(workload, "plain") as resumed:
            resumed.restore(path)
            remaining = 5.0 - resumed.engine.now
            report = resumed.run(remaining, snapshot_every=1.0)

        assert report.fingerprint == expected


class TestWatchdog:
    def test_heartbeat_detects_silent_death(self, workload):
        cfg = config(workload, shards=2, shard_chunk=16)
        with build_gateway(workload, cfg) as gateway:
            gateway.run(1.0)
            pool = gateway.fleet._pool
            victim = pool._workers[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(5.0)
            with pytest.raises(WorkerPoolError, match="died silently"):
                pool.heartbeat()

    def test_healthy_pool_heartbeat_is_quiet(self, workload):
        cfg = config(workload, shards=2, shard_chunk=16)
        with build_gateway(workload, cfg) as gateway:
            gateway.run(1.0)
            gateway.fleet._pool.heartbeat()  # no exception

    def test_silent_death_between_epochs_rebuilds_and_preserves(
        self, workload
    ):
        cfg = config(workload, shards=2, shard_chunk=16)
        with build_gateway(workload, cfg) as reference:
            reference.run(2.0, snapshot_every=1.0)
            expected = reference.run(3.0, snapshot_every=1.0).fingerprint

        with build_gateway(workload, cfg) as gateway:
            gateway.run(2.0, snapshot_every=1.0)
            # Kill a worker while the pool is idle: no send is in
            # flight, so only the watchdog can notice before the next
            # epoch's work is committed to a dead pipe.
            victim = gateway.fleet._pool._workers[1]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(5.0)
            report = gateway.run(3.0, snapshot_every=1.0)
            assert gateway.fleet.pool_rebuilds >= 1
            assert not gateway.fleet.degraded

        assert report.fingerprint == expected
