"""A minimal discrete-event simulation engine.

The call-level admission-control simulator (:mod:`repro.admission.callsim`)
and the signaling network (:mod:`repro.signaling`) are event-driven: call
arrivals, departures, and renegotiation instants are events on a shared
clock.  This engine is a conventional heap-based scheduler with stable
FIFO ordering for simultaneous events and cancellable handles.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "sequence", "callback", "args", "cancelled")

    def __init__(
        self, time: float, sequence: int, callback: Callable[..., Any], args: tuple
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (safe to call repeatedly)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        # Hot path of every heap op; avoid building comparison tuples.
        if self.time != other.time:
            return self.time < other.time
        return self.sequence < other.sequence

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6g}, {state}, {self.callback.__name__})"


class EventScheduler:
    """A discrete-event clock with a priority queue of callbacks."""

    def __init__(self) -> None:
        self._queue: list = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        return self._processed

    @property
    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past (now={self._now}, requested={time})"
            )
        event = Event(time, next(self._counter), callback, args)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def run(
        self, until: float = math.inf, max_events: Optional[int] = None
    ) -> None:
        """Process events in time order until the queue empties.

        Stops (without processing) at the first event strictly after
        ``until``; the clock is then advanced to ``until``.  ``max_events``
        bounds runaway simulations.

        Simultaneous events are popped as one batch: the gateway's epoch
        loop lands every renegotiation round trip of an epoch on the
        same timestamp, so re-checking the head against ``until`` for
        each of them is pure overhead (~4% of drain time at 2k
        same-time events on a 50k-event heap — the heap pops themselves
        dominate; see DESIGN.md §14).
        Ordering is unchanged — a batch is popped in heap order, which
        is exactly the (time, sequence) FIFO order of the per-event
        loop, and a callback that schedules a *new* event at the batch
        timestamp sees it processed after the batch in both versions
        (its sequence is larger than every popped event's).  Cancelling
        a later batch member from an earlier callback still works: the
        flag is checked at execution, not at pop.
        """
        queue = self._queue
        heappop = heapq.heappop
        processed = 0
        while queue:
            head = queue[0]
            if head.time > until:
                break
            event = heappop(queue)
            if not (queue and queue[0].time == event.time):
                # Singleton timestamp (departures land on distinct
                # exponential instants): skip the batch list churn.
                if not event.cancelled:
                    self._now = event.time
                    event.callback(*event.args)
                    self._processed += 1
                    processed += 1
                    if max_events is not None and processed >= max_events:
                        return
                continue
            batch_time = event.time
            batch = [event]
            while queue and queue[0].time == batch_time:
                batch.append(heappop(queue))
            for index, event in enumerate(batch):
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback(*event.args)
                self._processed += 1
                processed += 1
                if max_events is not None and processed >= max_events:
                    # Undo the pop-ahead so unprocessed batch members
                    # (cancelled ones included — harmless, they are
                    # discarded unprocessed either way) stay queued.
                    for leftover in batch[index + 1 :]:
                        heapq.heappush(queue, leftover)
                    return
        if until != math.inf and until > self._now:
            self._now = until

    def step(self) -> bool:
        """Process exactly one event; returns False if none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            return True
        return False
