"""The RCBR link: grants, denials, shortfall redistribution, accounting."""

import pytest

from repro.queueing.link import RcbrLink


class TestBasicRequests:
    def test_setup_within_capacity_granted(self):
        link = RcbrLink(1000.0)
        outcome = link.request("a", 400.0, 0.0)
        assert outcome.fully_granted
        assert link.allocated == 400.0

    def test_increase_beyond_capacity_partially_granted(self):
        link = RcbrLink(1000.0)
        link.request("a", 800.0, 0.0)
        outcome = link.request("b", 500.0, 1.0)
        assert outcome.failed
        assert outcome.granted_rate == pytest.approx(200.0)
        assert link.failure_count == 1

    def test_source_keeps_old_bandwidth_on_denial(self):
        """Section III-A1: even on failure, keep what you have."""
        link = RcbrLink(1000.0)
        link.request("a", 400.0, 0.0)
        link.request("b", 600.0, 0.0)
        outcome = link.request("a", 900.0, 1.0)
        assert outcome.failed
        assert link.grant_of("a") == pytest.approx(400.0)

    def test_decrease_always_succeeds(self):
        link = RcbrLink(1000.0)
        link.request("a", 900.0, 0.0)
        outcome = link.request("a", 100.0, 1.0)
        assert outcome.fully_granted
        assert link.allocated == pytest.approx(100.0)

    def test_allocated_never_exceeds_capacity(self):
        link = RcbrLink(1000.0)
        for index in range(10):
            link.request(index, 300.0, float(index))
        assert link.allocated <= 1000.0 + 1e-9

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            RcbrLink(10.0).request("a", -1.0, 0.0)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RcbrLink(0.0)


class TestRedistribution:
    def test_freed_capacity_fills_shortfall(self):
        link = RcbrLink(1000.0)
        link.request("a", 800.0, 0.0)
        link.request("b", 500.0, 0.0)  # shortfall: gets 200
        assert link.grant_of("b") == pytest.approx(200.0)
        link.release("a", 1.0)
        assert link.grant_of("b") == pytest.approx(500.0)

    def test_fifo_order_of_shortfall(self):
        link = RcbrLink(1000.0)
        link.request("a", 1000.0, 0.0)
        link.request("b", 600.0, 0.0)  # first in line, gets 0
        link.request("c", 600.0, 0.0)  # second in line, gets 0
        link.request("a", 700.0, 1.0)  # frees 300
        assert link.grant_of("b") == pytest.approx(300.0)
        assert link.grant_of("c") == pytest.approx(0.0)

    def test_decrease_of_shortfall_source_clears_it(self):
        link = RcbrLink(1000.0)
        link.request("a", 900.0, 0.0)
        link.request("b", 400.0, 0.0)  # shortfall
        link.request("b", 100.0, 1.0)  # gives up, now satisfied
        link.release("a", 2.0)
        assert link.grant_of("b") == pytest.approx(100.0)

    def test_work_conservation(self):
        """Total grant equals min(total demand, capacity)."""
        link = RcbrLink(1000.0)
        link.request("a", 700.0, 0.0)
        link.request("b", 700.0, 0.0)
        assert link.allocated == pytest.approx(1000.0)
        link.request("a", 100.0, 1.0)
        assert link.allocated == pytest.approx(800.0)


class TestAccounting:
    def test_allocated_integral(self):
        link = RcbrLink(1000.0)
        link.request("a", 400.0, 0.0)
        link.request("a", 600.0, 10.0)
        link.finish(20.0)
        assert link.allocated_bit_seconds == pytest.approx(
            400.0 * 10 + 600.0 * 10
        )
        assert link.mean_utilization(20.0) == pytest.approx(0.5)

    def test_lost_bits_from_shortfall(self):
        link = RcbrLink(1000.0)
        link.request("a", 800.0, 0.0)
        link.request("b", 500.0, 0.0)  # 300 short
        link.finish(10.0)
        assert link.lost_bits == pytest.approx(3000.0)

    def test_lost_bits_stop_after_satisfaction(self):
        link = RcbrLink(1000.0)
        link.request("a", 800.0, 0.0)
        link.request("b", 500.0, 0.0)
        link.release("a", 5.0)  # b becomes whole at t=5
        link.finish(10.0)
        assert link.lost_bits == pytest.approx(300.0 * 5)

    def test_time_cannot_go_backwards(self):
        link = RcbrLink(100.0)
        link.request("a", 10.0, 5.0)
        with pytest.raises(ValueError):
            link.request("a", 20.0, 1.0)

    def test_counters(self):
        link = RcbrLink(1000.0)
        link.request("a", 500.0, 0.0)
        link.request("a", 700.0, 1.0)
        link.request("a", 300.0, 2.0)
        assert link.request_count == 3
        assert link.increase_count == 2
        assert link.failure_count == 0

    def test_release_unknown_source_is_safe(self):
        link = RcbrLink(100.0)
        link.release("ghost", 1.0)
        assert link.num_sources == 0

    def test_repr(self):
        link = RcbrLink(100.0)
        assert "RcbrLink" in repr(link)


class TestCapacityChanges:
    def test_shrink_downgrades_grants_proportionally(self):
        link = RcbrLink(1000.0)
        link.request("a", 600.0, 0.0)
        link.request("b", 300.0, 0.0)
        link.set_capacity(450.0, 1.0)
        assert link.grant_of("a") == pytest.approx(300.0)
        assert link.grant_of("b") == pytest.approx(150.0)
        assert link.allocated <= 450.0 + 1e-9
        assert link.downgrade_events == 1
        # Demands are remembered: the deficit accrues to lost_bits.
        link.finish(2.0)
        assert link.lost_bits == pytest.approx(450.0)

    def test_restored_capacity_backfills_shortfall(self):
        link = RcbrLink(1000.0)
        link.request("a", 600.0, 0.0)
        link.request("b", 300.0, 0.0)
        link.set_capacity(450.0, 1.0)
        link.set_capacity(1000.0, 2.0)
        assert link.grant_of("a") == pytest.approx(600.0)
        assert link.grant_of("b") == pytest.approx(300.0)
        assert link.total_demand == pytest.approx(900.0)

    def test_growing_capacity_never_downgrades(self):
        link = RcbrLink(1000.0)
        link.request("a", 600.0, 0.0)
        link.set_capacity(2000.0, 1.0)
        assert link.grant_of("a") == pytest.approx(600.0)
        assert link.downgrade_events == 0

    def test_capacity_must_stay_positive(self):
        link = RcbrLink(1000.0)
        with pytest.raises(ValueError):
            link.set_capacity(0.0, 1.0)

    def test_shrink_never_overcommits_with_float_drift(self):
        """Regression: proportional scaling of many odd-valued grants
        used to leave ``allocated`` a few ULPs above the new capacity,
        so a subsequent full-capacity request could over-commit the
        link.  The shrink now exact-sums and shaves the residual."""
        link = RcbrLink(10_000.0)
        for index in range(97):
            link.request(index, 10_000.0 / 97.0, 0.0)
        link.set_capacity(3_333.33, 1.0)
        import math

        exact = math.fsum(
            link.grant_of(index) for index in range(97)
        )
        assert exact <= 3_333.33
        # A new arrival sized to the remaining headroom must fit.
        headroom = 3_333.33 - exact
        if headroom > 0:
            outcome = link.request("late", headroom, 2.0)
            assert outcome.granted_rate <= headroom + 1e-12
        assert link.allocated <= 3_333.33

    def test_repeated_shrink_grow_cycles_stay_consistent(self):
        link = RcbrLink(1000.0)
        for index in range(10):
            link.request(index, 100.0, 0.0)
        for cycle in range(5):
            link.set_capacity(333.3, float(2 * cycle + 1))
            link.set_capacity(1000.0, float(2 * cycle + 2))
        assert link.allocated == pytest.approx(1000.0)
        assert link.total_demand == pytest.approx(1000.0)


class TestDemandTracking:
    def test_total_demand_tracks_requests_and_releases(self):
        link = RcbrLink(1000.0)
        link.request("a", 400.0, 0.0)
        link.request("b", 900.0, 0.0)
        assert link.total_demand == pytest.approx(1300.0)
        link.request("a", 100.0, 1.0)
        assert link.total_demand == pytest.approx(1000.0)
        link.release("b", 2.0)
        assert link.total_demand == pytest.approx(100.0)
        link.release("a", 3.0)
        assert link.total_demand == 0.0

    def test_total_demand_immune_to_cancellation_drift(self):
        """The O(1) running total must match a fresh sum even after many
        add/remove cycles with drift-prone magnitudes."""
        import math

        link = RcbrLink(1e9)
        for index in range(200):
            link.request(index, 1e6 / 3.0 + index * 0.1, 0.0)
        for index in range(0, 200, 2):
            link.release(index, 1.0)
        fresh = math.fsum(
            1e6 / 3.0 + index * 0.1 for index in range(1, 200, 2)
        )
        assert link.total_demand == pytest.approx(fresh, rel=1e-12)
