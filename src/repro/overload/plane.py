"""The hysteresis state machine watching pressure on the shared link.

Pressure is ``max(allocated, total demand) / capacity``: allocated
bandwidth measures what the link has committed, total demand includes
the shortfall the link could not grant — the earliest and strongest
overload signal, because a saturated link keeps ``allocated`` pinned
at capacity while demand keeps climbing.

The state machine is deliberately sluggish: pressure must sit at or
above the enter threshold for ``dwell`` consecutive epochs before the
plane declares overload, and at or below the (strictly lower) exit
threshold for ``dwell`` consecutive epochs before it relaxes — the
classic two-threshold-plus-dwell hysteresis that keeps the policy from
flapping on one bursty epoch.  The bound policy is consulted exactly
once per epoch either way, so its counters and RNG draws stay on a
deterministic schedule.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

import numpy as np

from repro.overload.policies import OverloadPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle (gateway imports us)
    from repro.server.gateway import RcbrGateway


class OverloadControlPlane:
    """Drives one overload policy from the gateway's epoch loop."""

    def __init__(
        self,
        gateway: "RcbrGateway",
        policy: OverloadPolicy,
        enter: float,
        exit_: float,
        dwell: int,
        num_classes: int,
        rng: np.random.Generator,
    ) -> None:
        if not 0.0 < exit_ < enter:
            raise ValueError("need 0 < exit < enter threshold")
        if dwell < 1:
            raise ValueError("dwell must be >= 1")
        if num_classes < 1:
            raise ValueError("num_classes must be >= 1")
        self.gateway = gateway
        self.policy = policy
        self.enter = float(enter)
        self.exit = float(exit_)
        self.dwell = int(dwell)
        self.num_classes = int(num_classes)
        policy.bind(gateway, num_classes, rng, self.enter, self.exit)

        self.overloaded = False
        self.last_pressure = 0.0
        self.entries = 0
        self.exits = 0
        self.epochs_overloaded = 0
        self._above = 0
        self._below = 0

    def pressure(self) -> float:
        link = self.gateway.link
        return max(link.allocated, link.total_demand) / link.capacity

    def on_epoch(self, tick: int, now: float) -> Optional[np.ndarray]:
        """One hysteresis update + one policy decision; returns the
        policy's downgrade scale array for this epoch's fleet step."""
        pressure = self.pressure()
        self.last_pressure = pressure
        entered = exited = False
        if not self.overloaded:
            self._above = self._above + 1 if pressure >= self.enter else 0
            if self._above >= self.dwell:
                self.overloaded = True
                self.entries += 1
                entered = True
                self._above = 0
        else:
            self._below = self._below + 1 if pressure <= self.exit else 0
            if self._below >= self.dwell:
                self.overloaded = False
                self.exits += 1
                exited = True
                self._below = 0
        if self.overloaded:
            self.epochs_overloaded += 1
        return self.policy.on_epoch(
            self.overloaded, entered, exited, pressure, tick, now
        )

    def section(self) -> Dict[str, Any]:
        """The snapshot stream's overload section (fingerprinted, so
        every value must be deterministically renderable)."""
        section: Dict[str, Any] = {
            "policy": self.policy.name,
            "state": 1 if self.overloaded else 0,
            "pressure": self.last_pressure,
            "entries": self.entries,
            "exits": self.exits,
            "epochs_overloaded": self.epochs_overloaded,
        }
        section.update(self.policy.section())
        return section

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Export hysteresis state plus the bound policy's state.

        The policy holds live references to the gateway and its RNG via
        ``bind()`` and is therefore never pickled wholesale; the restored
        plane's policy is freshly bound to the new gateway and reloaded
        from this explicit state.
        """
        return {
            "overloaded": self.overloaded,
            "last_pressure": self.last_pressure,
            "entries": self.entries,
            "exits": self.exits,
            "epochs_overloaded": self.epochs_overloaded,
            "above": self._above,
            "below": self._below,
            "policy": self.policy.state_dict(),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` export into a bound plane."""
        self.overloaded = bool(state["overloaded"])
        self.last_pressure = float(state["last_pressure"])
        self.entries = int(state["entries"])
        self.exits = int(state["exits"])
        self.epochs_overloaded = int(state["epochs_overloaded"])
        self._above = int(state["above"])
        self._below = int(state["below"])
        self.policy.load_state(state["policy"])

    def __repr__(self) -> str:
        state = "overload" if self.overloaded else "normal"
        return (
            f"OverloadControlPlane({self.policy.name}, {state}, "
            f"pressure={self.last_pressure:.3f})"
        )
