"""RCBR: renegotiated constant bit-rate service for multiple time-scale traffic.

A full reproduction of Grossglauser, Keshav & Tse, "RCBR: A Simple and
Efficient Service for Multiple Time-Scale Traffic" (SIGCOMM '95 /
IEEE/ACM ToN Dec. 1997).

Quickstart::

    from repro import (
        generate_starwars_trace, OptimalScheduler, granular_rate_levels,
    )
    from repro.util.units import kbps, kbits

    trace = generate_starwars_trace(num_frames=24_000, seed=1)
    workload = trace.as_workload()
    levels = granular_rate_levels(kbps(64), 2 * trace.mean_rate)
    result = OptimalScheduler(levels, alpha=5e6).solve(
        workload, buffer_bits=kbits(300)
    )
    print(result.schedule.bandwidth_efficiency(trace.mean_rate))

Packages
--------
``repro.traffic``
    Traces, Markov/multiple-time-scale sources, the synthetic Star Wars
    generator, Poisson call arrivals.
``repro.core``
    Renegotiation schedules, the optimal Viterbi-like DP, the AR(1)
    online heuristic, the RCBR service facade.
``repro.queueing``
    Fluid queues, token buckets, the RCBR link, the three Fig. 3
    multiplexing scenarios, a discrete-event engine.
``repro.analysis``
    Equivalent bandwidth, the multiple time-scale results (eqs. 9-11),
    Chernoff admission mathematics, empirical trace characterisation.
``repro.admission``
    Chernoff CAC, memoryless and memory MBAC, the call-level simulator.
``repro.signaling``
    RM-cell renegotiation over multi-hop switch paths.
``repro.faults``
    Seeded fault injection (denial bursts, cell loss, switch outages),
    recovery policies beyond naive retry, and the chaos/soak harness.
"""

from repro.traffic import (
    FrameTrace,
    SlottedWorkload,
    MarkovChain,
    MarkovModulatedSource,
    MultiTimescaleMarkovSource,
    generate_starwars_trace,
    fig4_example,
)
from repro.core import (
    RateSchedule,
    OptimalScheduler,
    OnlineScheduler,
    OnlineParams,
    CostModel,
    granular_rate_levels,
    uniform_rate_levels,
    simulate_rcbr_link,
)
from repro.queueing import RcbrLink, TokenBucket, simulate_fluid_queue
from repro.admission import (
    PerfectKnowledgeCAC,
    MemorylessMBAC,
    MemoryMBAC,
    simulate_admission,
)
from repro.faults import (
    ChaosConfig,
    FaultPlan,
    make_recovery_policy,
    run_chaos_trial,
    sweep_fault_recovery,
)

__version__ = "1.0.0"

__all__ = [
    "FrameTrace",
    "SlottedWorkload",
    "MarkovChain",
    "MarkovModulatedSource",
    "MultiTimescaleMarkovSource",
    "generate_starwars_trace",
    "fig4_example",
    "RateSchedule",
    "OptimalScheduler",
    "OnlineScheduler",
    "OnlineParams",
    "CostModel",
    "granular_rate_levels",
    "uniform_rate_levels",
    "simulate_rcbr_link",
    "RcbrLink",
    "TokenBucket",
    "simulate_fluid_queue",
    "PerfectKnowledgeCAC",
    "MemorylessMBAC",
    "MemoryMBAC",
    "simulate_admission",
    "ChaosConfig",
    "FaultPlan",
    "make_recovery_policy",
    "run_chaos_trial",
    "sweep_fault_recovery",
    "__version__",
]
