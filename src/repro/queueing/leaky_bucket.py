"""Token (leaky) bucket traffic descriptors.

Section II argues that one-shot descriptors — a CBR rate or a leaky bucket
``(token rate, bucket depth)`` — cannot capture multiple time-scale
burstiness.  This module implements the descriptor itself so the
``benchmarks/test_oneshot_descriptor.py`` ablation can demonstrate the
four-way bind (lost multiplexing gain / loss / buffering / loss of
protection) quantitatively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.traffic.trace import SlottedWorkload


@dataclass(frozen=True)
class TokenBucket:
    """A token bucket with fill rate ``token_rate`` (bits/s) and depth ``bucket_bits``."""

    token_rate: float
    bucket_bits: float

    def __post_init__(self) -> None:
        if self.token_rate < 0:
            raise ValueError("token_rate must be non-negative")
        if self.bucket_bits < 0:
            raise ValueError("bucket_bits must be non-negative")

    # ------------------------------------------------------------------
    def police(self, workload: SlottedWorkload) -> Tuple[np.ndarray, np.ndarray]:
        """Split arrivals into conformant and excess bits per slot.

        The bucket starts full.  Per slot, tokens refill by
        ``token_rate * slot`` (capped at the depth); arrivals up to the
        available tokens are conformant, the rest is tagged as excess.
        """
        refill = self.token_rate * workload.slot_duration
        capacity = self.bucket_bits
        tokens = capacity
        arrivals = workload.bits_per_slot.tolist()
        conformant = np.empty(len(arrivals))
        excess = np.empty(len(arrivals))
        for index, amount in enumerate(arrivals):
            tokens = min(capacity, tokens + refill)
            passed = min(amount, tokens)
            tokens -= passed
            conformant[index] = passed
            excess[index] = amount - passed
        return conformant, excess

    def conforms(self, workload: SlottedWorkload) -> bool:
        """True if the whole workload passes the bucket with no excess."""
        _, excess = self.police(workload)
        return bool(excess.sum() <= 1e-9)

    def shape(
        self, workload: SlottedWorkload, shaper_buffer_bits: float = math.inf
    ) -> "ShapingResult":
        """Buffer non-conformant data and release it as tokens allow.

        Models the end-system VBR buffer of Section II: data waits in a
        shaping buffer of size ``shaper_buffer_bits``; per slot the shaper
        releases ``min(backlog + arrivals, tokens)``.  Data arriving to a
        full shaping buffer is lost.
        """
        refill = self.token_rate * workload.slot_duration
        capacity = self.bucket_bits
        bound = float(shaper_buffer_bits)
        tokens = capacity
        backlog = 0.0
        lost = 0.0
        max_backlog = 0.0
        arrivals = workload.bits_per_slot.tolist()
        output = np.empty(len(arrivals))
        for index, amount in enumerate(arrivals):
            backlog += amount
            if backlog > bound:
                lost += backlog - bound
                backlog = bound
            if backlog > max_backlog:
                max_backlog = backlog
            tokens = min(capacity, tokens + refill)
            released = min(backlog, tokens)
            tokens -= released
            backlog -= released
            output[index] = released
        return ShapingResult(
            output_bits=output,
            lost_bits=lost,
            arrived_bits=float(workload.bits_per_slot.sum()),
            max_backlog=max_backlog,
            final_backlog=backlog,
            slot_duration=workload.slot_duration,
        )

    def burst_bound(self, interval_seconds: float) -> float:
        """Maximum bits admitted over any interval of the given length."""
        if interval_seconds < 0:
            raise ValueError("interval must be non-negative")
        return self.bucket_bits + self.token_rate * interval_seconds


@dataclass(frozen=True)
class ShapingResult:
    """Output of :meth:`TokenBucket.shape`."""

    output_bits: np.ndarray
    lost_bits: float
    arrived_bits: float
    max_backlog: float
    final_backlog: float
    slot_duration: float

    @property
    def loss_fraction(self) -> float:
        if self.arrived_bits == 0.0:
            return 0.0
        return self.lost_bits / self.arrived_bits

    @property
    def max_delay(self) -> float:
        """Worst-case shaping delay implied by the peak backlog.

        For a FIFO shaping buffer drained at the token rate, the delay of
        the last bit of the peak backlog is backlog / token_rate.
        """
        if self.max_backlog == 0.0:
            return 0.0
        return math.inf if self.output_rate_bound == 0 else self.max_backlog / self.output_rate_bound

    @property
    def output_rate_bound(self) -> float:
        """Long-run drain rate of the shaper (token refill rate)."""
        total_slots = self.output_bits.size
        if total_slots == 0:
            return 0.0
        return float(self.output_bits.sum()) / (total_slots * self.slot_duration)

    def as_workload(self, name: str = "shaped") -> SlottedWorkload:
        return SlottedWorkload(self.output_bits, self.slot_duration, name=name)


def minimal_bucket_depth(workload: SlottedWorkload, token_rate: float) -> float:
    """Smallest bucket depth making ``workload`` fully conformant.

    The bucket's token *deficit* evolves as a virtual queue refilled at
    the token rate and loaded by each slot's arrivals before they can be
    served: ``d_t = max(0, d_{t-1} - rho dt) + a_t``.  The workload
    conforms iff the deficit never exceeds the depth, so the minimal
    depth is the deficit's peak.  This is the same sigma(rho) tradeoff as
    the CBR buffer requirement (why Section II treats the two one-shot
    descriptors interchangeably), differing only in that the deficit is
    measured before the slot's refill can absorb the arrival.
    """
    if token_rate < 0:
        raise ValueError("token_rate must be non-negative")
    refill = token_rate * workload.slot_duration
    deficit = 0.0
    peak = 0.0
    for amount in workload.bits_per_slot.tolist():
        deficit = max(0.0, deficit - refill) + amount
        if deficit > peak:
            peak = deficit
    return peak
