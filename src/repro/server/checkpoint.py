"""Crash-safe gateway checkpoints: stamped, atomic, refused when stale.

The determinism contract (same seed ⇒ byte-identical snapshot
fingerprint, DESIGN.md §12/§14) turns crash recovery into something
provable: a checkpoint taken at an epoch boundary, restored into a
freshly built gateway, must continue *bit-for-bit* as if the process
had never died.  This module owns the on-disk format and the two rules
that keep that promise honest:

* **Atomic writes.**  A checkpoint is pickled into one blob and written
  via :func:`repro.util.io.atomic_write` (temp file + fsync + rename),
  so a crash mid-checkpoint leaves the previous checkpoint intact.

* **Loud staleness.**  The payload is stamped with a code-version
  string and the canonical hash of the gateway's config (the same
  canonical encoder the result cache keys on).  A checkpoint from a
  different code version or a different config *cannot* resume
  bit-exactly, so :func:`read_checkpoint` refuses it with
  :class:`StaleCheckpointError` instead of producing silently wrong
  results — mirroring the sweep journal's fingerprint rule, except the
  journal degrades to recomputation while a serve has nothing safe to
  fall back to.

The checkpoint captures *mutable* runtime state only (see
``RcbrGateway.state_dict``).  Everything structural — workload,
controller wiring, topology, shard layout — is a pure function of the
config, which the restoring process rebuilds first; the config hash
proves both sides agree.
"""

from __future__ import annotations

import pickle
import signal
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

from repro.perf.cache import CACHE_SCHEMA, fingerprint
from repro.util.io import atomic_write

if TYPE_CHECKING:  # pragma: no cover - import cycle (gateway imports us)
    from repro.server.config import ServerConfig
    from repro.server.gateway import RcbrGateway
    from repro.traffic.trace import SlottedWorkload

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "StaleCheckpointError",
    "DeferredCheckpointWriter",
    "ServeLifecycle",
    "checkpoint_code_version",
    "config_fingerprint",
    "workload_fingerprint",
    "write_checkpoint",
    "read_checkpoint",
    "read_checkpoint_meta",
]

#: First field of every checkpoint; anything else is not a checkpoint.
CHECKPOINT_MAGIC = "rcbr-gateway-checkpoint"

#: Bump when the state layout changes; mismatched checkpoints are stale.
CHECKPOINT_SCHEMA = 1


class CheckpointError(RuntimeError):
    """The file is not a readable gateway checkpoint."""


class StaleCheckpointError(CheckpointError):
    """The checkpoint is valid but cannot resume bit-exactly here."""


def checkpoint_code_version() -> str:
    """The code-version stamp: package version + both state schemas.

    The cache schema participates because the config hash below is
    computed by the cache's canonical encoder — if that encoding ever
    changes, old hashes stop being comparable.
    """
    try:
        from repro import __version__
    except Exception:  # pragma: no cover - circular-import fallback
        __version__ = "unknown"
    return f"{__version__}+ckpt{CHECKPOINT_SCHEMA}+cache{CACHE_SCHEMA}"


def config_fingerprint(config: "ServerConfig") -> str:
    """Canonical hash of everything the config determines."""
    return fingerprint(config.to_dict())


def workload_fingerprint(workload: "SlottedWorkload") -> str:
    """Canonical hash of the base workload the fleet steps against.

    The config does not carry the trace itself (``repro serve`` builds
    it from ``--trace``/``--frames``/``--trace-seed`` outside the
    config), so the config hash alone cannot prove the restoring
    process is stepping the same bits.  This closes that gap.
    """
    return fingerprint(
        {
            "bits_per_slot": workload.bits_per_slot,
            "slot_duration": workload.slot_duration,
        }
    )


class DeferredCheckpointWriter:
    """Background atomic writes of already-pickled checkpoint blobs.

    Serialization must stay synchronous — the state snapshot is only
    consistent at the epoch boundary where it was taken — but once
    pickled the blob is immutable, so the multi-megabyte file write can
    come off the serving thread.  At most one write is ever in flight:
    submitting (or flushing) joins the previous write first, so
    checkpoints land on disk in submission order, and a failed write
    surfaces loudly on the *next* submit/flush instead of being
    swallowed by the thread.
    """

    def __init__(self) -> None:
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None

    @property
    def pending(self) -> bool:
        return self._thread is not None

    def submit(self, path: Union[str, Path], blob: bytes) -> None:
        self.flush()

        def _write() -> None:
            try:
                atomic_write(path, blob)
            except BaseException as error:  # surfaced on the next flush
                self._error = error

        self._thread = threading.Thread(
            target=_write, name="checkpoint-write", daemon=True
        )
        self._thread.start()

    def flush(self) -> None:
        """Wait for the in-flight write; raise if it (or a prior) failed."""
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if self._error is not None:
            error, self._error = self._error, None
            raise CheckpointError(
                f"deferred checkpoint write failed: {error!r}"
            ) from error


def _build_payload(gateway: "RcbrGateway", stamps: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "magic": CHECKPOINT_MAGIC,
        "schema": CHECKPOINT_SCHEMA,
        **stamps,
        "time": gateway.engine.now,
        "next_tick": gateway._next_tick,
        "state": gateway.state_dict(),
    }


def write_checkpoint(
    path: Union[str, Path], gateway: "RcbrGateway", defer: bool = False
) -> Dict[str, Any]:
    """Serialize ``gateway`` to ``path`` atomically; returns metadata.

    Must be called at an epoch boundary (the gateway's ``state_dict``
    documents the quiescent point); ``repro serve`` drives it from the
    epoch hook, where that holds by construction.

    With ``defer=True`` the snapshot and pickle still happen inline (the
    returned metadata is final) but the file write runs on a background
    thread owned by the gateway — the mode periodic checkpoints use so
    cadence overhead is serialization-only.  (A BGSAVE-style fork was
    measured and rejected: the parent's per-epoch column writes turn
    the child's copy-on-write snapshot into a page-fault storm that
    costs more than the serialization it saves — and it would be
    incorrect for the sharded runtime anyway, whose fleet columns live
    in shared memory that fork does not snapshot.)  A final/graceful
    save should use ``defer=False``, which also drains any pending
    deferred write first so the newest checkpoint always wins the
    rename.
    """
    # Config and workload are immutable for the gateway's lifetime, so
    # their canonical hashes are computed once and cached on it: a
    # periodic checkpoint cadence should pay for state, not stamps.
    stamps = getattr(gateway, "_checkpoint_stamps", None)
    if stamps is None:
        stamps = {
            "code_version": checkpoint_code_version(),
            "config_hash": config_fingerprint(gateway.config),
            "workload_hash": workload_fingerprint(gateway.workload),
            "config": gateway.config.to_dict(),
        }
        gateway._checkpoint_stamps = stamps
    meta = {
        "path": str(path),
        "code_version": stamps["code_version"],
        "config_hash": stamps["config_hash"],
        "time": gateway.engine.now,
        "next_tick": gateway._next_tick,
    }
    blob = pickle.dumps(
        _build_payload(gateway, stamps), protocol=pickle.HIGHEST_PROTOCOL
    )
    meta["bytes"] = len(blob)
    writer = getattr(gateway, "_checkpoint_writer", None)
    if defer:
        if writer is None:
            writer = DeferredCheckpointWriter()
            gateway._checkpoint_writer = writer
        writer.submit(path, blob)
        return meta
    if writer is not None:
        writer.flush()
    atomic_write(path, blob)
    return meta


def _read_payload(path: Union[str, Path]) -> Dict[str, Any]:
    try:
        blob = Path(path).read_bytes()
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}")
    try:
        payload = pickle.loads(blob)
    except Exception as error:
        raise CheckpointError(
            f"checkpoint {path} is corrupt or not a checkpoint: {error!r}"
        )
    if (
        not isinstance(payload, dict)
        or payload.get("magic") != CHECKPOINT_MAGIC
    ):
        raise CheckpointError(
            f"{path} is not an RCBR gateway checkpoint "
            f"(magic={payload.get('magic') if isinstance(payload, dict) else None!r})"
        )
    return payload


def read_checkpoint_meta(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate only the stamp fields (no state restore)."""
    payload = _read_payload(path)
    return {
        "path": str(path),
        "schema": payload.get("schema"),
        "code_version": payload.get("code_version"),
        "config_hash": payload.get("config_hash"),
        "config": payload.get("config"),
        "time": payload.get("time"),
        "next_tick": payload.get("next_tick"),
    }


def read_checkpoint(
    path: Union[str, Path],
    config: "ServerConfig",
    workload_hash: Optional[str] = None,
    expected_stamps: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Validate a checkpoint against ``config`` and return its state.

    Refusal is deliberately loud and specific: the error names exactly
    which stamp disagreed (schema, code version, config hash, or
    workload hash), since "restore refused" is only actionable if the
    operator can tell a stale binary from a wrong flag.

    ``expected_stamps`` extends the validation to caller-defined stamps
    (e.g. the scenario hash a :class:`ScenarioHarness` writes): each key
    must be present in the payload with exactly the expected value, so a
    checkpoint written by a different scenario — or by the plain serve
    loop — is refused even when the derived config hashes collide.
    """
    payload = _read_payload(path)
    if payload.get("schema") != CHECKPOINT_SCHEMA:
        raise StaleCheckpointError(
            f"checkpoint {path} has schema {payload.get('schema')!r}, "
            f"this build expects {CHECKPOINT_SCHEMA}"
        )
    expected_version = checkpoint_code_version()
    if payload.get("code_version") != expected_version:
        raise StaleCheckpointError(
            f"checkpoint {path} was written by code version "
            f"{payload.get('code_version')!r}, this build is "
            f"{expected_version!r}; bit-exact resume is not guaranteed "
            "across versions"
        )
    expected_hash = config_fingerprint(config)
    if payload.get("config_hash") != expected_hash:
        raise StaleCheckpointError(
            f"checkpoint {path} was taken under config hash "
            f"{payload.get('config_hash')!r} but this gateway is built "
            f"from config hash {expected_hash!r}; refusing to resume a "
            "different service"
        )
    if (
        workload_hash is not None
        and payload.get("workload_hash") != workload_hash
    ):
        raise StaleCheckpointError(
            f"checkpoint {path} was taken against workload hash "
            f"{payload.get('workload_hash')!r} but this gateway steps "
            f"workload hash {workload_hash!r}; same config, different "
            "trace — refusing to resume"
        )
    for stamp, expected in (expected_stamps or {}).items():
        if payload.get(stamp) != expected:
            raise StaleCheckpointError(
                f"checkpoint {path} carries {stamp}="
                f"{payload.get(stamp)!r} but this runtime expects "
                f"{expected!r}; refusing to resume a different run shape"
            )
    return payload["state"]


class ServeLifecycle:
    """Two-stage signal handling for ``repro serve``.

    First SIGTERM/SIGINT sets a flag the serve loop's epoch hook reads:
    the gateway stops at the *next epoch boundary*, drains in-flight
    call-epoch work, writes a final checkpoint, and emits its report —
    a graceful stop that a later ``--resume-from`` continues bit-exactly.
    A second signal means the operator is done waiting: we raise
    ``KeyboardInterrupt`` immediately (the serve command turns that into
    a partial report and exit code 130).

    Use as a context manager; handlers are restored on exit so a serve
    embedded in a larger program does not leak them.
    """

    _SIGNALS = (signal.SIGTERM, signal.SIGINT)

    def __init__(self) -> None:
        self.stop_requested = False
        self.signum: Optional[int] = None
        self._seen = 0
        self._previous: Dict[int, Any] = {}

    @property
    def signal_name(self) -> str:
        if self.signum is None:
            return "none"
        return signal.Signals(self.signum).name

    def _handle(self, signum: int, frame: Any) -> None:
        self._seen += 1
        if self._seen > 1:
            raise KeyboardInterrupt
        self.stop_requested = True
        self.signum = signum

    def install(self) -> "ServeLifecycle":
        for sig in self._SIGNALS:
            self._previous[sig] = signal.signal(sig, self._handle)
        return self

    def uninstall(self) -> None:
        while self._previous:
            sig, previous = self._previous.popitem()
            signal.signal(sig, previous)

    def __enter__(self) -> "ServeLifecycle":
        return self.install()

    def __exit__(self, *exc_info: Any) -> None:
        self.uninstall()
