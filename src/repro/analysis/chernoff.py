"""Chernoff bounds for bufferless multiplexing (eqs. 10-12).

The slow time-scale statistical multiplexing gain is governed by a simple
bufferless large-deviations estimate: if each of ``n`` independent calls
demands a bandwidth drawn from a marginal distribution ``(levels, probs)``
and the link capacity is ``C``, then the probability that total demand
exceeds capacity is approximately::

    P(overload) ~ exp( -n I*(C / n) )

where ``I*`` is the Legendre transform (Cramer rate function) of the
marginal's log moment generating function.  Eq. 10 applies this to the
subchain mean rates of a multiple time-scale source (shared-buffer loss),
eq. 11 to the subchain equivalent bandwidths (RCBR renegotiation
failure), and eq. 12 to a call's empirical rate histogram (admission
control).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np
from scipy import optimize
from scipy.special import logsumexp


def _validated(levels: Sequence[float], probs: Sequence[float]):
    levels = np.asarray(levels, dtype=float)
    probs = np.asarray(probs, dtype=float)
    if levels.ndim != 1 or levels.size == 0:
        raise ValueError("levels must be a non-empty 1-D sequence")
    if levels.shape != probs.shape:
        raise ValueError("levels and probs must have the same shape")
    if np.any(probs < 0):
        raise ValueError("probabilities must be non-negative")
    total = probs.sum()
    if total <= 0:
        raise ValueError("probabilities must not all be zero")
    return levels, probs / total


def log_mgf(levels: Sequence[float], probs: Sequence[float], theta: float) -> float:
    """Lambda(theta) = log E[e^{theta M}] of a discrete random variable."""
    levels, probs = _validated(levels, probs)
    with np.errstate(divide="ignore"):
        return float(logsumexp(theta * levels, b=probs))


def mean_of(levels: Sequence[float], probs: Sequence[float]) -> float:
    levels, probs = _validated(levels, probs)
    return float(levels @ probs)


def rate_function(
    levels: Sequence[float], probs: Sequence[float], capacity_per_call: float
) -> float:
    """The Cramer rate function I*(c) = sup_theta [theta c - Lambda(theta)].

    * ``c <= mean``: 0 (no decay — the link is overloaded on average);
    * ``mean < c < max level``: found from the stationarity condition
      ``Lambda'(theta) = c`` (the tilted mean), solved by bisection since
      the tilted mean is increasing in theta;
    * ``c == max level``: ``-log P(M = max)``;
    * ``c > max level``: infinity (demand can never reach capacity).
    """
    levels, probs = _validated(levels, probs)
    c = float(capacity_per_call)
    mean = float(levels @ probs)
    top = float(levels.max())
    if c <= mean:
        return 0.0
    if c > top:
        return math.inf
    if c == top:
        return -math.log(float(probs[levels == top].sum()))

    def tilted_mean(theta: float) -> float:
        weights = probs * np.exp(theta * (levels - top))
        return float((weights @ levels) / weights.sum())

    # Bracket theta*: tilted mean runs from `mean` at 0 to `top` as
    # theta -> inf; expand the upper end until it overshoots c.
    low, high = 0.0, 1.0 / max(top - mean, 1e-12)
    while tilted_mean(high) < c:
        high *= 2.0
        if high > 1e18:
            # c is (numerically) at the peak.
            return -math.log(float(probs[levels >= top - 1e-9].sum()))
    theta_star = optimize.brentq(lambda t: tilted_mean(t) - c, low, high)
    return theta_star * c - log_mgf(levels, probs, theta_star)


def overload_probability(
    levels: Sequence[float],
    probs: Sequence[float],
    num_calls: int,
    capacity: float,
) -> float:
    """Chernoff estimate of P(total demand of ``num_calls`` calls > capacity).

    This is eq. 12 (and eqs. 10-11 with the appropriate levels): the
    renegotiation-failure / loss probability estimate
    ``exp(-n I*(C/n))``.
    """
    if num_calls < 1:
        raise ValueError("num_calls must be >= 1")
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    levels, probs = _validated(levels, probs)
    if num_calls * float(levels.max()) <= capacity:
        # Even all-peak demand fits: overload is impossible.  (The raw
        # Chernoff exponent cannot distinguish "> capacity" from
        # ">= capacity" at the boundary, so guard exactly.)
        return 0.0
    rate = rate_function(levels, probs, capacity / num_calls)
    if math.isinf(rate):
        return 0.0
    return math.exp(-num_calls * rate)


def max_admissible_calls(
    levels: Sequence[float],
    probs: Sequence[float],
    capacity: float,
    failure_target: float,
    hard_limit: int = 1_000_000,
) -> int:
    """Largest ``n`` with Chernoff failure estimate at or below the target.

    "Using this formula, the maximum number of calls the system can carry
    for a given threshold on the renegotiation failure probability can be
    computed" (Section VI).  The estimate is monotone in ``n`` (more calls
    with the same capacity can only increase overload), so a bracketed
    binary search applies.
    """
    if not 0.0 < failure_target < 1.0:
        raise ValueError("failure_target must be in (0, 1)")
    levels, probs = _validated(levels, probs)
    if overload_probability(levels, probs, 1, capacity) > failure_target:
        return 0
    low = 1  # feasible
    high = 2
    while (
        high <= hard_limit
        and overload_probability(levels, probs, high, capacity) <= failure_target
    ):
        low = high
        high *= 2
    if high > hard_limit:
        return hard_limit
    while high - low > 1:
        middle = (low + high) // 2
        if overload_probability(levels, probs, middle, capacity) <= failure_target:
            low = middle
        else:
            high = middle
    return low


def admissible_region(
    levels: Sequence[float],
    probs: Sequence[float],
    capacities: Sequence[float],
    failure_target: float,
) -> np.ndarray:
    """Max admissible calls for each capacity; convenience for plots."""
    return np.array(
        [
            max_admissible_calls(levels, probs, float(capacity), failure_target)
            for capacity in capacities
        ]
    )


def heterogeneous_overload_probability(
    classes: Sequence[Tuple[Sequence[float], Sequence[float], int]],
    capacity: float,
) -> float:
    """Chernoff overload estimate for a *mixture* of call classes.

    ``classes`` is a sequence of ``(levels, probs, count)`` triples —
    ``count`` independent calls drawing their bandwidth from that class's
    marginal.  The total-demand estimate generalises eq. 12::

        P(overload) ~ exp( -sup_theta [ theta C - sum_j n_j Lambda_j(theta) ] )

    This is the natural extension for links carrying several video
    libraries (or video plus audio) at once; the homogeneous case
    reduces exactly to :func:`overload_probability`.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    validated = []
    for levels, probs, count in classes:
        if count < 0:
            raise ValueError("class counts must be non-negative")
        if count == 0:
            continue
        levels, probs = _validated(levels, probs)
        validated.append((levels, probs, int(count)))
    if not validated:
        raise ValueError("need at least one call")

    total_mean = sum(
        count * float(levels @ probs) for levels, probs, count in validated
    )
    total_peak = sum(
        count * float(levels.max()) for levels, probs, count in validated
    )
    if capacity >= total_peak:
        return 0.0
    if capacity <= total_mean:
        return 1.0

    shift = max(float(levels.max()) for levels, _, _ in validated)

    def tilted_total_mean(theta: float) -> float:
        total = 0.0
        for levels, probs, count in validated:
            weights = probs * np.exp(theta * (levels - shift))
            total += count * float((weights @ levels) / weights.sum())
        return total

    low, high = 0.0, 1.0 / max(total_peak - total_mean, 1e-12)
    while tilted_total_mean(high) < capacity:
        high *= 2.0
        if high > 1e18:
            break
    theta_star = optimize.brentq(
        lambda t: tilted_total_mean(t) - capacity, low, high
    )
    exponent = theta_star * capacity - sum(
        count * log_mgf(levels, probs, theta_star)
        for levels, probs, count in validated
    )
    return math.exp(-max(exponent, 0.0))


def empirical_exceedance(
    samples: np.ndarray, threshold: float
) -> Tuple[float, int]:
    """Fraction (and count) of samples strictly above a threshold.

    Used by the theory-validation bench to compare Monte-Carlo overload
    frequencies with the Chernoff estimates.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("samples must be non-empty")
    count = int((samples > threshold).sum())
    return count / samples.size, count
