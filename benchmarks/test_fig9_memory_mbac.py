"""The memory-based MBAC restores robustness (Section VI's remedy).

The paper's fix for the memoryless controller's fragility: "we propose a
scheme that relies on more memory about the system's past bandwidth
reservations to come up with a more accurate estimate of the marginal
distribution."  Expected shape, in the same small-capacity regime where
Figs. 7-8 show the memoryless scheme failing:

* the memory scheme's failure probability is much closer to the target
  (at or below the memoryless scheme's);
* its utilization is no longer inflated above the perfect-knowledge
  controller's.
"""

from __future__ import annotations

import os

import pytest

from benchmarks._common import (
    disk_cache,
    fmt,
    once,
    optimal_schedule,
    print_table,
    scale,
)
from repro.perf import SweepEngine
from repro.perf.sweeps import figs7_9_cells

FAILURE_TARGET = 1e-3


@pytest.fixture(scope="module")
def schedule():
    return optimal_schedule()


def test_memory_mbac_robustness(benchmark, schedule):
    capacity_multiple = min(scale().mbac_capacities)  # the fragile regime
    loads = scale().mbac_loads

    def run():
        # Independent cells through the sweep engine (see the Fig. 7-8
        # benchmark): same historical seeds, bit-identical to the old
        # serial loop, parallel under REPRO_SWEEP_WORKERS, memoized by
        # the shared disk cache.
        cells = [
            cell
            for cell in figs7_9_cells(schedule, scale(), FAILURE_TARGET)
            if cell.name.startswith("fig9/")
        ]
        engine = SweepEngine(
            workers=int(os.environ.get("REPRO_SWEEP_WORKERS", "1")),
            cache=disk_cache,
            namespace="mbac",
        )
        values = [result.value for result in engine.run(cells)]
        rows = []
        for index in range(0, len(values), 3):
            memoryless, memory, perfect = values[index : index + 3]
            rows.append(
                {
                    "load": memoryless["load"],
                    "fail_memoryless": memoryless["failure_probability"],
                    "fail_memory": memory["failure_probability"],
                    "fail_perfect": perfect["failure_probability"],
                    "util_memoryless": memoryless["utilization"],
                    "util_memory": memory["utilization"],
                    "util_perfect": perfect["utilization"],
                }
            )
        return rows

    rows = once(benchmark, run)

    print_table(
        f"Memory vs memoryless MBAC at capacity {capacity_multiple:.0f}x mean "
        f"(failure target 1e-3)",
        ["load", "fail memless", "fail memory", "fail perfect",
         "util memless", "util memory", "util perfect"],
        [
            [fmt(r["load"], 2), fmt(r["fail_memoryless"]),
             fmt(r["fail_memory"]), fmt(r["fail_perfect"]),
             fmt(r["util_memoryless"], 3), fmt(r["util_memory"], 3),
             fmt(r["util_perfect"], 3)]
            for r in rows
        ],
    )

    # --- Shape assertions ------------------------------------------------
    for r in rows:
        # Memory never does worse than memoryless on failure probability.
        assert r["fail_memory"] <= r["fail_memoryless"] + 1e-3
        # The robustness claim: the memory scheme stays in the target's
        # neighbourhood even where the memoryless scheme is off by orders
        # of magnitude.  (Perfect knowledge at this tiny call count is
        # over-conservative — the Chernoff bound is loose for small N —
        # so the memory scheme legitimately runs *above* its utilization
        # while still meeting the QoS.)
        assert r["fail_memory"] <= 30 * FAILURE_TARGET
        # It buys that safety by admitting less than the over-admitting
        # memoryless controller, not by magic.
        assert r["util_memory"] <= r["util_memoryless"] + 0.05

    # At the heaviest load the improvement is material when the
    # memoryless scheme is actually failing.
    heavy = rows[-1]
    if heavy["fail_memoryless"] > 10 * FAILURE_TARGET:
        assert heavy["fail_memory"] < heavy["fail_memoryless"]
