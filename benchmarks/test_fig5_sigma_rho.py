"""Fig. 5: the (sigma, rho) curve of the video trace for 1e-6 loss.

For each buffer size sigma, the minimum CBR drain rate rho keeping the
fraction of bits lost at or below 1e-6.  Paper landmarks:

* at sigma = 300 kb, rho is ~4.06x the trace's 374 kb/s average;
* rho stays far above the average until the buffer reaches the tens of
  megabits — ~100 Mb of buffering is needed before a rate only 5% above
  the average suffices (the Section I example);
* the curve is monotone non-increasing.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._common import fmt, once, print_table, starwars_trace
from repro.analysis.empirical import sigma_rho_for_loss
from repro.queueing.fluid import required_buffer
from repro.util.units import kbits, mbits

LOSS = 1e-6
BUFFERS = [
    kbits(50),
    kbits(100),
    kbits(300),
    kbits(1_000),
    mbits(3),
    mbits(10),
    mbits(30),
    mbits(100),
]


@pytest.fixture(scope="module")
def workload():
    return starwars_trace().as_workload()


def test_fig5_sigma_rho_curve(benchmark, workload):
    curve = once(
        benchmark, lambda: sigma_rho_for_loss(workload, BUFFERS, LOSS)
    )
    mean = workload.mean_rate

    print_table(
        "Fig. 5: (sigma, rho) curve of the trace for 1e-6 loss",
        ["buffer sigma", "rho (kb/s)", "rho / mean"],
        [
            [fmt(sigma / 1000, 0) + " kb", fmt(rho / 1000, 1), fmt(rho / mean, 3)]
            for sigma, rho in curve
        ],
    )

    rhos = curve[:, 1]
    # Monotone non-increasing in the buffer size.
    assert all(a >= b - 1e-6 for a, b in zip(rhos, rhos[1:]))

    # Landmark: at 300 kb the CBR rate is several times the mean.  The
    # paper reports 4.06x for the real trace; our synthetic trace honours
    # the paper's "sustained 5x peaks lasting over 10 s" description,
    # which pins this point slightly higher (~5x) — see EXPERIMENTS.md.
    rho_300kb = float(curve[np.searchsorted(curve[:, 0], kbits(300)), 1])
    assert 3.0 <= rho_300kb / mean <= 6.5

    # Landmark: even multi-megabit buffers stay well above the mean...
    rho_3mb = float(curve[np.searchsorted(curve[:, 0], mbits(3)), 1])
    assert rho_3mb / mean > 1.3

    # ...while a huge buffer finally approaches it (Section I's ~100 Mb).
    rho_100mb = float(curve[-1, 1])
    assert rho_100mb / mean < 1.4


def test_fig5_renegotiated_vs_static_buffering(benchmark, workload):
    """The Section I contrast: at ~5% over the mean rate, a static CBR
    service needs orders of magnitude more buffering than RCBR's 300 kb."""
    rate = 1.05 * workload.mean_rate

    def required():
        drain = rate * workload.slot_duration
        return required_buffer(workload.bits_per_slot, drain)

    sigma = once(benchmark, required)
    print(
        f"\nStatic CBR at 1.05x mean rate needs {sigma / 1e6:.1f} Mb of "
        f"buffer (RCBR: 0.3 Mb) -> {sigma / kbits(300):.0f}x more"
    )
    assert sigma > 30 * kbits(300)
