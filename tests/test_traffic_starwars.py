"""The synthetic Star-Wars-like trace generator and its calibration."""

import numpy as np
import pytest

from repro.analysis.empirical import sustained_peak_episodes, windowed_peak_rate
from repro.traffic.starwars import (
    STAR_WARS_FPS,
    STAR_WARS_MEAN_RATE,
    SceneClass,
    StarWarsModel,
    default_scene_classes,
    generate_starwars_trace,
)


@pytest.fixture(scope="module")
def trace():
    # 10 minutes is enough to exhibit the structure without slow tests.
    return generate_starwars_trace(num_frames=14_400, seed=123)


class TestCalibration:
    def test_mean_rate_is_exact(self, trace):
        assert trace.mean_rate == pytest.approx(STAR_WARS_MEAN_RATE)

    def test_frame_rate(self, trace):
        assert trace.frames_per_second == STAR_WARS_FPS

    def test_sustained_peak_exists(self, trace):
        """Section II: sustained peaks of ~5x mean lasting over 10 s."""
        ratio = windowed_peak_rate(trace, 10.0) / trace.mean_rate
        assert ratio > 3.0

    def test_peak_frame_is_many_times_mean(self, trace):
        assert trace.peak_rate > 5.0 * trace.mean_rate

    def test_sustained_episodes_are_occasional(self, trace):
        episodes = sustained_peak_episodes(
            trace, rate_threshold=2.0 * trace.mean_rate, min_duration_seconds=5.0
        )
        # A handful per ten minutes, not none and not constant.  (The
        # paper-scale 5x / 10 s calibration is checked on the full
        # two-hour trace in the benchmarks.)
        assert 1 <= episodes <= 60

    def test_long_range_correlation(self, trace):
        """Scene structure induces correlation over hundreds of frames."""
        from repro.analysis.empirical import autocorrelation

        acf = autocorrelation(trace.frame_bits, max_lag=240)
        assert acf[240] > 0.1  # 10 seconds apart, still correlated

    def test_gop_sawtooth_visible(self, trace):
        """I frames every 12 frames: strong positive lag-12 correlation in
        the high-frequency residual."""
        from repro.analysis.empirical import autocorrelation

        smooth = np.convolve(trace.frame_bits, np.ones(12) / 12, mode="same")
        residual = trace.frame_bits - smooth
        acf = autocorrelation(residual, max_lag=12)
        assert acf[12] > 0.3


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_starwars_trace(num_frames=500, seed=9)
        b = generate_starwars_trace(num_frames=500, seed=9)
        assert np.array_equal(a.frame_bits, b.frame_bits)

    def test_different_seeds_differ(self):
        a = generate_starwars_trace(num_frames=500, seed=9)
        b = generate_starwars_trace(num_frames=500, seed=10)
        assert not np.array_equal(a.frame_bits, b.frame_bits)


class TestModelKnobs:
    def test_custom_mean_rate(self):
        trace = generate_starwars_trace(
            num_frames=1000, seed=1, mean_rate=1_000_000.0
        )
        assert trace.mean_rate == pytest.approx(1_000_000.0)

    def test_no_normalization_keeps_randomness(self):
        model = StarWarsModel(normalize_mean=False)
        trace = model.generate(num_frames=2000, seed=1)
        # Mean should be near but not exactly the target.
        assert trace.mean_rate == pytest.approx(STAR_WARS_MEAN_RATE, rel=0.5)
        assert trace.mean_rate != STAR_WARS_MEAN_RATE

    def test_scene_sequence_covers_all_frames(self):
        model = StarWarsModel()
        rng = np.random.default_rng(0)
        scenes = model.sample_scene_sequence(5000, rng)
        assert scenes.size == 5000
        assert scenes.min() >= 0
        assert scenes.max() < len(model.scene_classes)

    def test_scene_durations_roughly_match_request(self):
        model = StarWarsModel()
        rng = np.random.default_rng(0)
        scenes = model.sample_scene_sequence(100_000, rng)
        changes = np.flatnonzero(np.diff(scenes)) + 1
        dwell_frames = np.diff(np.concatenate([[0], changes]))
        mean_seconds = dwell_frames.mean() / STAR_WARS_FPS
        # Entry-probability-weighted mean duration of the default mix.
        classes = default_scene_classes()
        total_p = sum(c.probability for c in classes)
        expected = sum(c.probability * c.mean_duration for c in classes) / total_p
        # Repeated classes merge scenes, so observed dwell can exceed the
        # per-scene mean; allow a generous band.
        assert 0.5 * expected < mean_seconds < 3.0 * expected

    def test_validation(self):
        with pytest.raises(ValueError):
            SceneClass("bad", rate_multiplier=0.0, mean_duration=5.0)
        with pytest.raises(ValueError):
            SceneClass("bad", rate_multiplier=1.0, mean_duration=0.0)
        with pytest.raises(ValueError):
            StarWarsModel(mean_rate=0.0)
        with pytest.raises(ValueError):
            StarWarsModel(intra_scene_ar_coefficient=1.0)
        with pytest.raises(ValueError):
            generate_starwars_trace(num_frames=0)
