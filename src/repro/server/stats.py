"""Server observability: periodic snapshots, the shutdown report, and the
determinism fingerprint.

A :class:`ServerSnapshot` is the gateway's heartbeat — the cumulative
call, renegotiation, and signaling counters plus instantaneous gauges,
emitted every ``snapshot_every`` seconds of simulated time.  The snapshot
stream doubles as the determinism contract: :func:`snapshot_fingerprint`
hashes the canonical rendering of every snapshot, so two runs with the
same seed must produce the same hex digest bit for bit, and any
divergence (a reordered event, a float that drifted) is caught by a
string compare in the chaos tests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


def _canon(value: Any) -> str:
    """Deterministic rendering for fingerprinted values.

    ``repr`` of a Python float is shortest-round-trip, so two floats
    render identically iff they are bit-identical; containers render
    element-wise with the same rule so the overload section (a nested
    dict of counters, gauges, and lists) canonicalises stably.
    """
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, dict):
        inner = ",".join(f"{k}:{_canon(v)}" for k, v in value.items())
        return "{" + inner + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canon(item) for item in value) + "]"
    return str(value)


@dataclass(frozen=True)
class ServerSnapshot:
    """One periodic stats sample.  Counters are cumulative since start;
    ``utilization`` and ``renegotiation_rate`` are windowed over the
    interval since the previous snapshot; ``buffer_bits`` and
    ``reserved_rate`` are instantaneous fleet gauges."""

    time: float
    active_calls: int
    # Call lifecycle (cumulative).
    arrivals: int
    blocked: int
    admitted: int
    departed: int
    completed: int
    abandoned: int
    # Renegotiation pipeline (cumulative).
    reneg_requests: int
    reneg_denied: int
    injected_denials: int
    link_shortfalls: int
    # Signaling path (cumulative).
    cells_sent: int
    cells_lost: int
    retries: int
    timeouts: int
    signaling_failure_fraction: float
    # Loss accounting (cumulative bits).
    bits_lost_overflow: float
    bits_lost_link: float
    # Windowed over (previous snapshot, this one].
    utilization: float
    renegotiation_rate: float
    # Instantaneous gauges.
    buffer_bits: float
    reserved_rate: float
    # Overload control plane section (None when the plane is disabled —
    # i.e. the block-only baseline — so pre-overload snapshot streams
    # and their fingerprints are byte-identical to this build's).
    overload: Optional[Dict[str, Any]] = None
    # Multi-bottleneck network section (per-link allocation/loss and
    # per-flow-group counters).  None on the classic single-link runtime
    # — same omission rule as ``overload``, so single-link fingerprints
    # are byte-identical to pre-scenario builds.
    network: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "time": self.time,
            "active_calls": self.active_calls,
            "arrivals": self.arrivals,
            "blocked": self.blocked,
            "admitted": self.admitted,
            "departed": self.departed,
            "completed": self.completed,
            "abandoned": self.abandoned,
            "reneg_requests": self.reneg_requests,
            "reneg_denied": self.reneg_denied,
            "injected_denials": self.injected_denials,
            "link_shortfalls": self.link_shortfalls,
            "cells_sent": self.cells_sent,
            "cells_lost": self.cells_lost,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "signaling_failure_fraction": self.signaling_failure_fraction,
            "bits_lost_overflow": self.bits_lost_overflow,
            "bits_lost_link": self.bits_lost_link,
            "utilization": self.utilization,
            "renegotiation_rate": self.renegotiation_rate,
            "buffer_bits": self.buffer_bits,
            "reserved_rate": self.reserved_rate,
        }
        if self.overload is not None:
            payload["overload"] = self.overload
        if self.network is not None:
            payload["network"] = self.network
        return payload

    def canonical(self) -> str:
        """Exact textual form fed to the fingerprint.

        ``repr`` of a Python float is shortest-round-trip, so two floats
        render identically iff they are bit-identical — which is the
        contract the fingerprint enforces.  The ``overload`` key is
        omitted entirely when the plane is disabled, keeping block-only
        streams byte-identical to pre-overload builds.
        """
        return ";".join(
            f"{key}={_canon(value)}" for key, value in self.to_dict().items()
        )


def snapshot_fingerprint(snapshots: Sequence[ServerSnapshot]) -> str:
    """sha256 over the canonical snapshot stream (the replay contract)."""
    digest = hashlib.sha256()
    for snapshot in snapshots:
        digest.update(snapshot.canonical().encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass(frozen=True)
class ServerReport:
    """Everything a run leaves behind at shutdown."""

    config: Dict[str, Any]
    duration: float
    epochs: int
    final: ServerSnapshot
    snapshots: List[ServerSnapshot] = field(default_factory=list)
    fingerprint: str = ""
    peak_active: int = 0
    call_epochs_stepped: int = 0
    mean_utilization: float = 0.0
    # Shutdown-time overload summary (per-class treatment, fairness);
    # lives outside the snapshot stream so it never feeds the
    # fingerprint.  None when the plane is disabled.
    overload: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": self.config,
            "duration": self.duration,
            "epochs": self.epochs,
            "peak_active": self.peak_active,
            "call_epochs_stepped": self.call_epochs_stepped,
            "mean_utilization": self.mean_utilization,
            "fingerprint": self.fingerprint,
            "overload": self.overload,
            "final": self.final.to_dict(),
            "snapshots": [snapshot.to_dict() for snapshot in self.snapshots],
        }
