"""Fault injectors, recovery policies, and the chaos harness."""

import dataclasses

import numpy as np
import pytest

from repro.core.online import OnlineParams, OnlineScheduler
from repro.faults.harness import ChaosConfig, run_chaos_trial, soak, sweep_fault_recovery
from repro.faults.injectors import (
    CellFate,
    CellLossInjector,
    DenialBurstInjector,
    FaultPlan,
    INJECTOR_REGISTRY,
    SwitchOutageInjector,
    TraceCorruptionInjector,
)
from repro.faults.recovery import (
    DowngradeLadderPolicy,
    DrainPolicy,
    ExponentialBackoffPolicy,
    NaiveRetryPolicy,
    RecoveryPolicy,
    make_recovery_policy,
)
from repro.traffic.trace import SlottedWorkload


class TestDenialBurstInjector:
    def test_long_run_rate_matches_target(self):
        injector = DenialBurstInjector(rate=0.2, mean_burst=5.0, seed=0)
        assert injector.target_rate == pytest.approx(0.2)
        for t in range(20_000):
            injector.should_deny(float(t))
        assert injector.observed_rate == pytest.approx(0.2, abs=0.02)

    def test_denials_are_bursty(self):
        injector = DenialBurstInjector(rate=0.2, mean_burst=20.0, seed=1)
        outcomes = [injector.should_deny(float(t)) for t in range(20_000)]
        # Consecutive-pair correlation far above the i.i.d. value 0.04.
        both = sum(a and b for a, b in zip(outcomes, outcomes[1:]))
        assert both / (len(outcomes) - 1) > 0.1

    def test_explicit_probabilities(self):
        injector = DenialBurstInjector(
            enter_probability=0.0, exit_probability=1.0, seed=0
        )
        assert not any(injector.should_deny(float(t)) for t in range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            DenialBurstInjector(rate=1.5)
        with pytest.raises(ValueError):
            DenialBurstInjector(rate=0.2, enter_probability=0.1)
        with pytest.raises(ValueError):
            DenialBurstInjector()
        with pytest.raises(ValueError):
            DenialBurstInjector(rate=0.2, mean_burst=0.5)


class TestCellInjectors:
    def test_cell_loss_rate(self):
        injector = CellLossInjector(probability=0.3, seed=0)
        losses = sum(injector.lose(float(t)) for t in range(10_000))
        assert losses / 10_000 == pytest.approx(0.3, abs=0.02)
        assert injector.losses == losses

    def test_outage_windows_cover_expected_fraction(self):
        injector = SwitchOutageInjector(rate=0.1, mean_duration=2.0, seed=0)
        # Expected down fraction ~ rate * duration / (1 + rate * duration).
        down = sum(injector.hop_down(0.01 * t, 0) for t in range(500_000))
        assert down / 500_000 == pytest.approx(1.0 / 6.0, abs=0.05)

    def test_outage_hops_are_independent(self):
        injector = SwitchOutageInjector(rate=0.5, mean_duration=1.0, seed=0)
        down0 = [injector.hop_down(0.1 * t, 0) for t in range(2000)]
        down1 = [injector.hop_down(0.1 * t, 1) for t in range(2000)]
        assert down0 != down1

    def test_corruption_preserves_shape_and_counts(self):
        workload = SlottedWorkload(np.full(1000, 100.0), 1.0)
        injector = TraceCorruptionInjector(probability=0.2, seed=0)
        corrupted = injector.corrupt(workload)
        assert corrupted.num_slots == workload.num_slots
        changed = int(np.sum(corrupted.bits_per_slot != 100.0))
        assert changed == injector.corrupted_slots
        assert 100 < changed < 300
        # Untouched input workload.
        assert np.all(workload.bits_per_slot == 100.0)


class TestFaultPlan:
    def test_from_spec_builds_registered_injectors(self):
        plan = FaultPlan.from_spec(
            {"denial": {"rate": 0.2}, "cell_loss": {"probability": 0.1}},
            seed=0,
        )
        assert plan.active == ("cell_loss", "denial")
        assert "denial" in plan and "outage" not in plan

    def test_unknown_injector_rejected(self):
        with pytest.raises(ValueError, match="unknown injector"):
            FaultPlan.from_spec({"gremlins": {}})

    def test_absent_injectors_are_benign(self):
        plan = FaultPlan.from_spec({}, seed=0)
        assert not plan.should_deny(0.0)
        assert plan.cell_outcome(0.0).fate is CellFate.DELIVER
        assert not plan.hop_down(0.0, 0)
        workload = SlottedWorkload(np.ones(10), 1.0)
        assert plan.corrupt(workload) is workload

    def test_same_seed_same_sample_path(self):
        spec = {"denial": {"rate": 0.3}, "cell_loss": {"probability": 0.2}}
        a = FaultPlan.from_spec(spec, seed=7)
        b = FaultPlan.from_spec(spec, seed=7)
        for t in range(500):
            assert a.should_deny(float(t)) == b.should_deny(float(t))
            assert a.cell_outcome(float(t)) == b.cell_outcome(float(t))

    def test_adding_injector_does_not_perturb_others(self):
        # The denial stream must be identical whether or not cell loss is
        # also enabled (independent spawned child streams).
        a = FaultPlan.from_spec({"denial": {"rate": 0.3}}, seed=7)
        b = FaultPlan.from_spec(
            {"denial": {"rate": 0.3}, "cell_loss": {"probability": 0.5}},
            seed=7,
        )
        denials_a = [a.should_deny(float(t)) for t in range(500)]
        denials_b = []
        for t in range(500):
            denials_b.append(b.should_deny(float(t)))
            b.cell_outcome(float(t))  # interleave queries on the other stream
        assert denials_a == denials_b

    def test_registry_contains_all_injectors(self):
        assert set(INJECTOR_REGISTRY) >= {
            "denial", "cell_loss", "cell_delay", "duplication",
            "outage", "corruption",
        }


class TestRecoveryPolicies:
    def test_all_registered_policies_satisfy_protocol(self):
        for name in ("naive", "backoff", "downgrade", "drain"):
            policy = make_recovery_policy(name, seed=0)
            assert isinstance(policy, RecoveryPolicy)
            assert policy.name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown recovery policy"):
            make_recovery_policy("prayer")

    def test_backoff_suppresses_then_recovers(self):
        policy = ExponentialBackoffPolicy(base_slots=2, jitter=0.0, seed=0)
        policy.reset()
        assert policy.allow_request(0)
        policy.on_denial(0, 100.0)
        assert not policy.allow_request(1)
        assert not policy.allow_request(2)
        assert policy.allow_request(3)  # 0 + 1 + ceil(2)
        policy.on_denial(3, 100.0)  # doubled: next window is 4 slots
        assert not policy.allow_request(7)
        assert policy.allow_request(8)
        policy.on_grant(8, 100.0)
        policy.on_denial(9, 100.0)  # reset to base after the grant
        assert policy.allow_request(12)

    def test_backoff_caps_at_max_slots(self):
        policy = ExponentialBackoffPolicy(
            base_slots=1, factor=10.0, max_slots=4, jitter=0.0, seed=0
        )
        for slot in range(5):
            policy.on_denial(slot * 100, 1.0)
        policy.on_denial(1000, 1.0)
        assert policy.allow_request(1000 + 1 + 4)

    def test_downgrade_ladder_rungs(self):
        policy = DowngradeLadderPolicy(max_steps=4)
        quantize = OnlineScheduler(OnlineParams(granularity=100.0)).quantize
        rungs = policy.ladder(800.0, 400.0, quantize)
        assert rungs == (800.0, 700.0, 600.0, 500.0)
        # Decreases pass through untouched.
        assert policy.ladder(200.0, 400.0, quantize) == (200.0,)

    def test_downgrade_ladder_collapses_on_grid(self):
        # A gap of one granule cannot be subdivided: one rung only.
        policy = DowngradeLadderPolicy(max_steps=4)
        quantize = OnlineScheduler(OnlineParams(granularity=100.0)).quantize
        assert policy.ladder(500.0, 400.0, quantize) == (500.0,)

    def test_drain_hysteresis(self):
        policy = DrainPolicy(panic_fraction=0.9, resume_fraction=0.5)
        policy.reset()
        assert not policy.in_drain(800.0, 1000.0)
        assert policy.in_drain(950.0, 1000.0)  # panic
        assert policy.in_drain(700.0, 1000.0)  # still draining
        assert not policy.in_drain(400.0, 1000.0)  # resumed
        assert not policy.in_drain(700.0, 1000.0)  # no chatter
        # Without a finite buffer there is nothing to panic about.
        assert not policy.in_drain(1e12, None)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialBackoffPolicy(base_slots=0)
        with pytest.raises(ValueError):
            DowngradeLadderPolicy(max_steps=0)
        with pytest.raises(ValueError):
            DrainPolicy(panic_fraction=0.4, resume_fraction=0.5)


class TestNaiveEquivalence:
    def test_naive_policy_matches_no_policy(self):
        # The explicit baseline must reproduce the legacy code path bit
        # for bit, including under denials.
        rng = np.random.default_rng(42)
        workload = SlottedWorkload(rng.uniform(0, 2e5, size=400), 1 / 24)
        scheduler = OnlineScheduler(OnlineParams(granularity=64_000.0))

        def make_request_fn():
            deny_rng = np.random.default_rng(7)
            return lambda time, rate: bool(deny_rng.random() > 0.3)

        legacy = scheduler.schedule(
            workload, request_fn=make_request_fn(), buffer_size=300_000.0
        )
        explicit = scheduler.schedule(
            workload,
            request_fn=make_request_fn(),
            buffer_size=300_000.0,
            recovery=NaiveRetryPolicy(),
        )
        assert np.array_equal(legacy.schedule.rates, explicit.schedule.rates)
        assert legacy.requests_made == explicit.requests_made
        assert legacy.requests_denied == explicit.requests_denied
        assert legacy.bits_lost == explicit.bits_lost


class TestChaosHarness:
    def test_trial_replays_bit_identically(self):
        config = ChaosConfig(
            policy="downgrade", deny_rate=0.2, cell_loss=0.05,
            num_slots=600, seed=3,
        )
        first = run_chaos_trial(config)
        replay = run_chaos_trial(config)
        assert first.fingerprint == replay.fingerprint
        assert first == replay

    def test_no_in_flight_leaks(self):
        for policy in ("naive", "backoff", "downgrade", "drain"):
            config = ChaosConfig(
                policy=policy, deny_rate=0.3, cell_loss=0.1,
                outage_rate=0.05, outage_duration=0.5,
                num_slots=600, seed=1,
            )
            result = run_chaos_trial(config)
            assert result.in_flight_leaks == 0

    def test_fault_free_trial_is_lossless(self):
        config = ChaosConfig(policy="naive", deny_rate=0.0, num_slots=600, seed=0)
        result = run_chaos_trial(config)
        assert result.bits_lost == 0.0
        assert result.denied == 0
        assert result.recovery_episodes == 0

    def test_sweep_covers_grid(self):
        results = sweep_fault_recovery(
            deny_rates=(0.0, 0.2),
            policies=("naive", "downgrade"),
            base=ChaosConfig(num_slots=300, seed=0),
        )
        assert len(results) == 4
        assert {(r.deny_rate, r.policy) for r in results} == {
            (0.0, "naive"), (0.0, "downgrade"),
            (0.2, "naive"), (0.2, "downgrade"),
        }

    def test_soak_varies_seed(self):
        base = ChaosConfig(num_slots=300, deny_rate=0.2, seed=10)
        results = soak(base, repeats=3)
        assert [r.seed for r in results] == [10, 11, 12]
        assert len({r.fingerprint for r in results}) == 3

    def test_denial_injection_registers(self):
        config = ChaosConfig(
            policy="naive", deny_rate=0.4, mean_burst_slots=10.0,
            num_slots=1200, seed=2,
        )
        result = run_chaos_trial(config)
        assert result.denied > 0
        assert result.failure_fraction > 0.0
        assert result.recovery_episodes > 0
        assert result.mean_time_to_recover > 0.0


# ----------------------------------------------------------------------
# Worker chaos: the sweep-cell sabotage used by the supervision tests
# ----------------------------------------------------------------------
def _plain_cell(seed=None, scale=1.0):
    return {"scale": scale, "seeded": seed is not None}


class TestWorkerChaos:
    def test_worker_fault_validation(self):
        from repro.faults.harness import WorkerFault

        with pytest.raises(ValueError):
            WorkerFault(kind="segfault")
        for kind in ("kill", "hang", "raise", "raise-unpicklable"):
            WorkerFault(kind=kind)

    def test_unpicklable_error_refuses_to_pickle(self):
        import pickle

        from repro.faults.harness import UnpicklableChaosError

        with pytest.raises(TypeError):
            pickle.dumps(UnpicklableChaosError())

    def test_faulted_cell_raises_then_recovers(self, tmp_path):
        from repro.faults.harness import ChaosWorkerError, faulted_cell_fn

        marker = str(tmp_path / "cell.attempts")
        kwargs = dict(
            inner_fn=_plain_cell,
            inner_kwargs={"scale": 2.0},
            fault_kind="raise",
            fault_times=2,
            hang_seconds=0.0,
            marker_path=marker,
        )
        with pytest.raises(ChaosWorkerError):
            faulted_cell_fn(**kwargs)
        with pytest.raises(ChaosWorkerError):
            faulted_cell_fn(**kwargs)
        # Third attempt behaves, and injected kwargs win over inner ones.
        assert faulted_cell_fn(**kwargs, seed=np.random.SeedSequence(0)) == {
            "scale": 2.0, "seeded": True,
        }

    def test_permanent_fault_never_recovers(self, tmp_path):
        from repro.faults.harness import ChaosWorkerError, faulted_cell_fn

        marker = str(tmp_path / "cell.attempts")
        for _ in range(5):
            with pytest.raises(ChaosWorkerError):
                faulted_cell_fn(
                    inner_fn=_plain_cell,
                    inner_kwargs={},
                    fault_kind="raise",
                    fault_times=-1,
                    hang_seconds=0.0,
                    marker_path=marker,
                )

    def test_chaos_sweep_cells_wraps_only_faulted(self, tmp_path):
        from repro.faults.harness import WorkerFault, chaos_sweep_cells
        from repro.perf.engine import SweepCell

        cells = [
            SweepCell(
                name=f"c/{index}",
                fn=_plain_cell,
                kwargs={"scale": float(index)},
                cache_payload={"scale": float(index)},
                seed_arg="seed",
                meta={"figure": "fig0"},
            )
            for index in range(3)
        ]
        wrapped = chaos_sweep_cells(
            cells, {1: WorkerFault("raise", times=1)}, tmp_path / "markers"
        )
        assert wrapped[0] is cells[0] and wrapped[2] is cells[2]
        sabotaged = wrapped[1]
        assert sabotaged.name == "c/1"
        assert sabotaged.seed_arg == "seed"  # deterministic seeding kept
        assert sabotaged.meta == {"figure": "fig0"}
        assert sabotaged.cache_payload is None  # never memoize sabotage
        assert sabotaged.kwargs["inner_fn"] is _plain_cell
        assert sabotaged.kwargs["inner_kwargs"] == {"scale": 1.0}

    def test_chaos_config_retry_knobs_replay_bit_identically(self):
        config = ChaosConfig(
            policy="backoff", deny_rate=0.2, cell_loss=0.1,
            num_slots=600, max_retries=3, request_timeout=0.05,
            retry_backoff=2.0, retry_jitter=0.3, seed=5,
        )
        first = run_chaos_trial(config)
        assert first == run_chaos_trial(config)
        assert first.retries > 0

    def test_retry_knobs_leave_other_streams_untouched(self):
        # Adding backoff/jitter must not change the trace or fault
        # sample paths: losses differ only through timing, so the
        # offered traffic is identical.
        base = ChaosConfig(
            policy="naive", deny_rate=0.2, cell_loss=0.1,
            num_slots=600, seed=5,
        )
        jittered = dataclasses.replace(
            base, retry_backoff=2.0, retry_jitter=0.5
        )
        assert run_chaos_trial(base).offered_bits == run_chaos_trial(
            jittered
        ).offered_bits
