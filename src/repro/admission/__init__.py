"""Admission control for RCBR: Chernoff CAC, MBAC, call-level simulation.

Implements Section VI: the perfect-knowledge Chernoff test (eq. 12), the
memoryless certainty-equivalent MBAC the paper shows to be fragile, the
history-accumulating memory MBAC that fixes it, and the Poisson
call-level simulator that measures renegotiation failure probability and
utilization for Figs. 7-8.
"""

from repro.admission.controllers import (
    AdmissionController,
    AlwaysAdmit,
    PerfectKnowledgeCAC,
    MemorylessMBAC,
    MemoryMBAC,
    HeterogeneousKnowledgeCAC,
)
from repro.admission.callsim import (
    IntervalSample,
    CallCounters,
    CallSimResult,
    CallLevelSimulator,
    simulate_admission,
    arrival_rate_for_load,
)
from repro.admission.offered import OfferedLoadAccountant

__all__ = [
    "AdmissionController",
    "AlwaysAdmit",
    "PerfectKnowledgeCAC",
    "MemorylessMBAC",
    "MemoryMBAC",
    "HeterogeneousKnowledgeCAC",
    "IntervalSample",
    "CallCounters",
    "CallSimResult",
    "CallLevelSimulator",
    "simulate_admission",
    "arrival_rate_for_load",
    "OfferedLoadAccountant",
]
