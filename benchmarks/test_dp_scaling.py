"""Section IV-A's runtime claim: DP cost explodes with the level count.

"We have found that if we restrict |R| to about 20, optimizations can be
done in reasonable time ... For larger |R|, e.g., 100, it quickly becomes
impracticable because of an explosion in the number of paths."

We time the DP on a fixed trace prefix for growing |R| and check the
superlinear growth in both runtime proxy (expanded nodes) and frontier
size.  Absolute times differ from a 1995 UltraSparc, but the shape is
hardware-independent.
"""

from __future__ import annotations

import time

import pytest

from benchmarks._common import BUFFER_BITS, fmt, once, print_table, starwars_trace
from repro.analysis.empirical import windowed_peak_rate
from repro.core import OptimalScheduler, uniform_rate_levels
from repro.util.units import kbps

LEVEL_COUNTS = (5, 10, 20, 40)
PREFIX_FRAMES = 4800  # 200 seconds


@pytest.fixture(scope="module")
def workload():
    return starwars_trace().prefix(PREFIX_FRAMES).as_workload()


@pytest.fixture(scope="module")
def top_rate():
    # The paper's grid tops out at 2.4 Mb/s; widen if the synthetic
    # trace's one-second peak needs more (the grid must stay feasible).
    trace = starwars_trace().prefix(PREFIX_FRAMES)
    return max(kbps(2400), 1.2 * windowed_peak_rate(trace, 1.0))


def test_dp_cost_explodes_with_levels(benchmark, workload, top_rate):
    def run():
        rows = []
        for count in LEVEL_COUNTS:
            levels = uniform_rate_levels(kbps(48), top_rate, count)
            started = time.perf_counter()
            result = OptimalScheduler(levels, alpha=5e6).solve(
                workload, buffer_bits=BUFFER_BITS
            )
            rows.append(
                {
                    "levels": count,
                    "seconds": time.perf_counter() - started,
                    "nodes": result.nodes_expanded,
                    "frontier": result.max_frontier,
                    "cost": result.total_cost,
                }
            )
        return rows

    rows = once(benchmark, run)
    print_table(
        "Section IV-A: DP cost vs number of bandwidth levels |R|",
        ["|R|", "runtime (s)", "nodes expanded", "max frontier"],
        [
            [r["levels"], fmt(r["seconds"], 2), r["nodes"], r["frontier"]]
            for r in rows
        ],
    )

    nodes = [r["nodes"] for r in rows]
    # Superlinear growth: quadrupling |R| (5 -> 20) must grow the node
    # count by far more than 4x.
    assert nodes[2] > 4 * nodes[0]
    # Monotone growth in frontier and nodes.
    assert all(a <= b for a, b in zip(nodes, nodes[1:]))
    # A finer grid never produces a worse optimum (uniform grids here are
    # nested only approximately, so compare against a generous bound).
    assert rows[-1]["cost"] <= rows[0]["cost"] * 1.05
