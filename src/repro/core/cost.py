"""The paper's renegotiation cost model (eq. 1).

Total cost of a schedule = ``alpha`` per renegotiation plus ``beta`` per
unit of allocated bandwidth per slot: "we have assumed a constant cost per
renegotiation and a cost per allocated bandwidth and time unit".  The
network operator announces the prices; the user optimises against them —
sweeping the ratio ``alpha / beta`` traces the Fig. 2 tradeoff between
bandwidth efficiency and renegotiation frequency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schedule import RateSchedule


@dataclass(frozen=True)
class CostModel:
    """Prices: ``alpha`` per renegotiation, ``beta`` per (bit/s)-slot."""

    alpha: float
    beta: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("prices must be non-negative")
        if self.alpha == 0 and self.beta == 0:
            raise ValueError("at least one price must be positive")

    @property
    def ratio(self) -> float:
        """The cost ratio alpha/beta that shapes the optimum."""
        if self.beta == 0:
            return float("inf")
        return self.alpha / self.beta

    def schedule_cost(self, schedule: RateSchedule, slot_duration: float) -> float:
        """Evaluate eq. 1 for a schedule on its slot grid."""
        return schedule.cost(self.alpha, self.beta, slot_duration)

    def scaled(self, factor: float) -> "CostModel":
        """Uniformly scaled prices (leaves the optimum unchanged)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return CostModel(self.alpha * factor, self.beta * factor)


def ratio_for_interval(
    target_interval_seconds: float, slot_duration: float, typical_rate: float
) -> float:
    """A starting alpha/beta ratio aiming at a renegotiation interval.

    Heuristic calibration: a renegotiation is worth paying for when it
    saves roughly its own cost in bandwidth, i.e. when
    ``alpha ~ beta * typical_rate_saving * interval_in_slots``.  Useful to
    seed the Fig. 2 sweep; the sweep itself then explores around it.
    """
    if target_interval_seconds <= 0 or slot_duration <= 0 or typical_rate <= 0:
        raise ValueError("all arguments must be positive")
    interval_slots = target_interval_seconds / slot_duration
    return typical_rate * interval_slots
