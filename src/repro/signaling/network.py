"""Multi-hop renegotiation over a path of switch ports (Section III-C).

"As the mean number of hops in the network increases, the probability of
renegotiation failure is likely to increase since each hop is a possible
point of failure.  Moreover, the net renegotiation signaling load on the
network also increases."

This module replays renegotiation schedules over an N-hop path: each
renegotiation becomes an RM cell traversing the hops in order with a
per-hop propagation delay; an increase denied at hop ``k`` rolls back the
``k`` upstream hops (mirroring the returning RM cell); optional RM-cell
loss models the delta-drift problem, countered by periodic absolute
resynchronisation (footnote 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.schedule import RateSchedule
from repro.queueing.events import EventScheduler
from repro.signaling.messages import CellKind, RenegotiationRequest, RmCell
from repro.signaling.switch import SwitchPort
from repro.util.rng import SeedLike, as_generator


@dataclass
class PathStats:
    """Per-run signaling statistics."""

    requests: int = 0
    increase_requests: int = 0
    failures: int = 0
    cells_sent: int = 0
    cells_lost: int = 0
    failure_hops: List[int] = field(default_factory=list)

    @property
    def failure_fraction(self) -> float:
        if self.increase_requests == 0:
            return 0.0
        return self.failures / self.increase_requests


class SignalingPath:
    """An ordered list of switch ports between a source and its sink."""

    def __init__(
        self,
        ports: Sequence[SwitchPort],
        hop_delay: float = 0.001,
        cell_loss_probability: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        if not ports:
            raise ValueError("a path needs at least one port")
        if hop_delay < 0:
            raise ValueError("hop_delay must be non-negative")
        if not 0.0 <= cell_loss_probability < 1.0:
            raise ValueError("cell_loss_probability must be in [0, 1)")
        self.ports = list(ports)
        self.hop_delay = hop_delay
        self.cell_loss_probability = cell_loss_probability
        self.rng = as_generator(seed)
        self.stats = PathStats()

    @property
    def num_hops(self) -> int:
        return len(self.ports)

    @property
    def round_trip_time(self) -> float:
        """Source-to-sink-and-back signaling latency."""
        return 2.0 * self.hop_delay * self.num_hops

    # ------------------------------------------------------------------
    def send(self, cell: RmCell) -> bool:
        """Push one RM cell through the path synchronously.

        Returns True if every hop accepted.  On a denial, accepted
        upstream hops are rolled back.  A lost cell (loss sampled per
        traversal) never reaches any hop — for delta cells this leaves
        the source and switches disagreeing, i.e. drift.
        """
        self.stats.cells_sent += 1
        if (
            self.cell_loss_probability > 0.0
            and self.rng.random() < self.cell_loss_probability
        ):
            self.stats.cells_lost += 1
            return False
        accepted: List[SwitchPort] = []
        for hop_index, port in enumerate(self.ports):
            if port.process(cell):
                accepted.append(port)
            else:
                cell.deny(hop_index)
                for upstream in accepted:
                    upstream.rollback(cell)
                self.stats.failure_hops.append(hop_index)
                return False
        return True

    def renegotiate(self, request: RenegotiationRequest) -> bool:
        """Issue a renegotiation; returns True if the new rate is granted."""
        self.stats.requests += 1
        if request.delta > 0:
            self.stats.increase_requests += 1
        granted = self.send(request.as_cell())
        if not granted and request.delta > 0:
            self.stats.failures += 1
        return granted

    def resynchronize(self, vci: int, true_rate: float, time: float) -> bool:
        """Send an absolute-rate RM cell to repair any drift."""
        cell = RmCell(
            vci=vci, kind=CellKind.ABSOLUTE, er=true_rate, issued_at=time
        )
        return self.send(cell)

    def release(self, vci: int) -> None:
        for port in self.ports:
            port.release(vci)


@dataclass(frozen=True)
class PathSimulationResult:
    """Outcome of replaying schedules over a path."""

    stats: PathStats
    horizon: float
    cells_per_second: float
    source_failures: List[int]


def simulate_schedules_on_path(
    schedules: Sequence[RateSchedule],
    path: SignalingPath,
    resync_interval: Optional[float] = None,
    lead_time: float = 0.0,
) -> PathSimulationResult:
    """Replay renegotiation schedules through a multi-hop path.

    ``lead_time`` initiates each renegotiation early, the paper's offline
    compensation for path latency ("offline applications ... can
    compensate for an increased latency by initiating renegotiation
    earlier").  ``resync_interval`` adds periodic absolute-rate cells per
    source.  Per-source believed rates track grants, so statistics match
    what a real NIU would observe.
    """
    if not schedules:
        raise ValueError("need at least one schedule")
    if lead_time < 0:
        raise ValueError("lead_time must be non-negative")
    engine = EventScheduler()
    believed_rates = [0.0] * len(schedules)
    source_failures = [0] * len(schedules)
    horizon = max(schedule.duration for schedule in schedules)

    def issue(vci: int, new_rate: float) -> None:
        request = RenegotiationRequest(
            vci=vci,
            old_rate=believed_rates[vci],
            new_rate=new_rate,
            time=engine.now,
        )
        if path.renegotiate(request):
            believed_rates[vci] = new_rate
        elif request.delta > 0:
            source_failures[vci] += 1
        else:
            # A lost decrease leaves the network over-reserving (drift).
            believed_rates[vci] = new_rate

    def resync(vci: int) -> None:
        path.resynchronize(vci, believed_rates[vci], engine.now)
        if engine.now + resync_interval < horizon:
            engine.schedule_in(resync_interval, resync, vci)

    for vci, schedule in enumerate(schedules):
        for seg_start, _, rate in schedule.segments():
            fire_at = max(0.0, seg_start - lead_time)
            engine.schedule_at(fire_at, issue, vci, rate)
        if resync_interval is not None and resync_interval > 0:
            engine.schedule_at(resync_interval, resync, vci)

    engine.run(until=horizon)
    for vci in range(len(schedules)):
        path.release(vci)

    return PathSimulationResult(
        stats=path.stats,
        horizon=horizon,
        cells_per_second=path.stats.cells_sent / horizon if horizon else 0.0,
        source_failures=source_failures,
    )
