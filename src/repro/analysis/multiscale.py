"""Multiple time-scale large-deviations results (Section V-A).

Three quantities from the paper's analysis:

* **eq. 9** — the equivalent bandwidth of a multiple time-scale stream in
  the joint regime (rare scene transitions, buffer large enough to absorb
  fast fluctuations) is the *maximum of the subchain equivalent
  bandwidths*: buffering cannot smooth the slow time scale, so the
  worst-case subchain pins the CBR rate;
* **eq. 10** — the shared-buffer loss estimate for many multiplexed
  streams depends only on the slow marginal (subchain *mean* rates
  weighted by subchain occupancy probabilities);
* **eq. 11** — the RCBR renegotiation-failure estimate is the same
  Chernoff bound applied to the subchain *equivalent bandwidths*; since
  each EB exceeds its subchain mean, RCBR gives up exactly the fast
  time-scale smoothing component of the gain, and the gap closes as the
  fast fluctuations shrink.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.analysis.chernoff import overload_probability
from repro.analysis.effective_bw import effective_bandwidth, theta_for_buffer
from repro.traffic.markov import MultiTimescaleMarkovSource


def subchain_effective_bandwidths(
    source: MultiTimescaleMarkovSource, theta_per_bit: float
) -> np.ndarray:
    """e_i(theta): each subchain's equivalent bandwidth in isolation."""
    return np.array(
        [
            effective_bandwidth(
                sub.as_source(source.slot_duration), theta_per_bit
            )
            for sub in source.subchains
        ]
    )


def multiscale_effective_bandwidth(
    source: MultiTimescaleMarkovSource, theta_per_bit: float
) -> float:
    """eq. 9: EB of the whole stream = max over subchains.

    Valid in the joint asymptotic regime where scene transitions are rare
    and the buffer absorbs the fast time scale; the tests verify that the
    exact EB of the composed chain converges to this value as
    ``epsilon -> 0``.
    """
    return float(subchain_effective_bandwidths(source, theta_per_bit).max())


def shared_buffer_loss_estimate(
    source: MultiTimescaleMarkovSource,
    num_streams: int,
    capacity_per_stream: float,
) -> float:
    """eq. 10: loss estimate for N streams in a large shared buffer.

    Chernoff bound on the probability that the streams' subchain *mean*
    rates sum past the capacity — fast fluctuations are absorbed by the
    buffer, so only the slow marginal matters.
    """
    pi, means = source.slow_marginal()
    return overload_probability(
        means, pi, num_streams, num_streams * capacity_per_stream
    )


def rcbr_failure_estimate(
    source: MultiTimescaleMarkovSource,
    num_streams: int,
    capacity_per_stream: float,
    buffer_bits: float,
    loss_probability: float,
) -> float:
    """eq. 11: renegotiation-failure estimate for ideal RCBR.

    The ideal scheme renegotiates to the entered subchain's equivalent
    bandwidth (at the tilt implied by the per-source buffer and QoS), so
    the demand marginal places probability pi_i on e_i rather than on the
    subchain mean.
    """
    theta = theta_for_buffer(buffer_bits, loss_probability)
    pi = source.subchain_stationary_distribution()
    ebs = subchain_effective_bandwidths(source, theta)
    return overload_probability(
        ebs, pi, num_streams, num_streams * capacity_per_stream
    )


def gain_decomposition(
    source: MultiTimescaleMarkovSource,
    buffer_bits: float,
    loss_probability: float,
) -> Tuple[float, float, float]:
    """The paper's decomposition of the multiplexing gain, as rates.

    Returns ``(cbr_rate, rcbr_rate, shared_rate)`` — the per-stream
    capacity needed under, respectively, static CBR (eq. 9), ideal RCBR in
    the many-streams limit (the pi-weighted mean of subchain EBs), and
    unrestricted sharing in the many-streams limit (the overall mean
    rate).  ``cbr >= rcbr >= shared`` always; ``rcbr - shared`` is the
    fast time-scale smoothing component RCBR gives up.
    """
    theta = theta_for_buffer(buffer_bits, loss_probability)
    cbr = multiscale_effective_bandwidth(source, theta)
    pi = source.subchain_stationary_distribution()
    ebs = subchain_effective_bandwidths(source, theta)
    rcbr = float(pi @ ebs)
    shared = float(pi @ source.subchain_mean_rates())
    return cbr, rcbr, shared
