"""MPEG frame-structure modelling.

The fast time scale of compressed video comes from the codec's group of
pictures (GOP): large intra-coded I frames, medium predicted P frames, and
small bidirectional B frames ("the short-term burstiness of MPEG sources
due to the I, B, and P frame structure is well known", Section II).  The
MPEG-1 Star Wars trace uses a 12-frame GOP at 24 frames/s.

:class:`GopStructure` turns a pattern string like ``"IBBPBBPBBPBB"`` into a
sequence of per-frame size multipliers, normalised so a scene's mean rate
is independent of the GOP phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

#: Typical MPEG-1 relative frame sizes (I : P : B).
DEFAULT_TYPE_WEIGHTS: Dict[str, float] = {"I": 2.0, "P": 1.0, "B": 0.55}

#: The classic MPEG-1 12-frame GOP used by the Star Wars encoding.
DEFAULT_GOP_PATTERN = "IBBPBBPBBPBB"


@dataclass(frozen=True)
class GopStructure:
    """A repeating GOP pattern with per-frame-type size weights.

    The ``multipliers`` are the per-type weights rescaled so that their
    mean over one GOP equals 1: multiplying a scene's mean frame size by
    the multiplier sequence preserves the scene's average rate while
    adding the I/P/B sawtooth.
    """

    pattern: str = DEFAULT_GOP_PATTERN
    type_weights: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_TYPE_WEIGHTS)
    )

    def __post_init__(self) -> None:
        if not self.pattern:
            raise ValueError("GOP pattern must be non-empty")
        unknown = set(self.pattern) - set(self.type_weights)
        if unknown:
            raise ValueError(
                f"pattern uses frame types {sorted(unknown)} with no weight"
            )
        if any(weight <= 0 for weight in self.type_weights.values()):
            raise ValueError("frame-type weights must be positive")

    @property
    def gop_length(self) -> int:
        return len(self.pattern)

    def multipliers(self) -> np.ndarray:
        """Normalised per-frame multipliers for one GOP (mean exactly 1)."""
        raw = np.array([self.type_weights[symbol] for symbol in self.pattern])
        return raw / raw.mean()

    def frame_types(self, num_frames: int, phase: int = 0) -> np.ndarray:
        """Frame-type characters for ``num_frames`` frames starting at ``phase``."""
        if num_frames < 0:
            raise ValueError("num_frames must be non-negative")
        indices = (np.arange(num_frames) + phase) % self.gop_length
        symbols = np.array(list(self.pattern))
        return symbols[indices]

    def multiplier_sequence(self, num_frames: int, phase: int = 0) -> np.ndarray:
        """Per-frame multipliers for ``num_frames`` frames starting at ``phase``."""
        if num_frames < 0:
            raise ValueError("num_frames must be non-negative")
        base = self.multipliers()
        indices = (np.arange(num_frames) + phase) % self.gop_length
        return base[indices]

    def peak_to_mean(self) -> float:
        """Ratio of the largest frame multiplier to the mean (which is 1)."""
        return float(self.multipliers().max())
