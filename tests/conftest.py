"""Shared fixtures: short deterministic workloads and schedules.

Kept deliberately small so the unit-test suite stays fast; the benchmark
suite (benchmarks/) runs the paper-scale experiments.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OptimalScheduler, granular_rate_levels
from repro.traffic import generate_starwars_trace
from repro.util.units import kbits, kbps


@pytest.fixture(scope="session")
def short_trace():
    """A 60-second Star-Wars-like trace (1440 frames at 24 fps)."""
    return generate_starwars_trace(num_frames=1440, seed=42)


@pytest.fixture(scope="session")
def short_workload(short_trace):
    return short_trace.as_workload()


@pytest.fixture(scope="session")
def medium_trace():
    """A 5-minute trace for the slower integration tests."""
    return generate_starwars_trace(num_frames=7200, seed=7)


@pytest.fixture(scope="session")
def optimal_schedule(short_workload, short_trace):
    """The optimal schedule of the short trace at 300 kb buffer."""
    levels = granular_rate_levels(kbps(256), short_trace.peak_rate)
    result = OptimalScheduler(levels, alpha=5e6, beta=1.0).solve(
        short_workload, buffer_bits=kbits(300)
    )
    return result.schedule


@pytest.fixture
def rng():
    return np.random.default_rng(2024)
