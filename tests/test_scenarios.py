"""Declarative scenario suite: specs, registry, determinism, and
the hostile-neighborhood effects the roster exists to demonstrate."""

import json

import pytest

from repro.cli import main
from repro.faults.injectors import FaultPlan
from repro.scenarios import (
    SCENARIO_NAMES,
    BackgroundSpec,
    FlowGroupSpec,
    LinkSpec,
    ScenarioSpec,
    get_scenario,
    run_scenario,
)

SMOKE = dict(duration=2.0, snapshot_every=1.0)


def spec_kwargs(**overrides):
    base = dict(
        name="unit",
        description="unit-test spec",
        links=(LinkSpec("a", "b", 4e6),),
        flows=(FlowGroupSpec("calls", "a", "b", initial_calls=2),),
    )
    base.update(overrides)
    return base


class TestSpecValidation:
    def test_minimal_spec_builds(self):
        spec = ScenarioSpec(**spec_kwargs())
        assert spec.nodes == ("a", "b")
        assert spec.single_bottleneck
        assert spec.shard_compatible

    def test_link_endpoints_must_differ(self):
        with pytest.raises(ValueError, match="distinct"):
            LinkSpec("a", "a", 4e6)

    def test_link_capacity_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            LinkSpec("a", "b", 0.0)

    def test_duplicate_links_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ScenarioSpec(
                **spec_kwargs(
                    links=(
                        LinkSpec("a", "b", 4e6),
                        LinkSpec("b", "a", 4e6),
                    )
                )
            )

    def test_duplicate_flow_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ScenarioSpec(
                **spec_kwargs(
                    flows=(
                        FlowGroupSpec("calls", "a", "b"),
                        FlowGroupSpec("calls", "b", "a"),
                    )
                )
            )

    def test_flow_endpoints_must_exist(self):
        with pytest.raises(ValueError, match="unknown node"):
            ScenarioSpec(
                **spec_kwargs(flows=(FlowGroupSpec("calls", "a", "z"),))
            )

    def test_background_needs_an_existing_link(self):
        with pytest.raises(ValueError, match="unknown link"):
            ScenarioSpec(
                **spec_kwargs(background=(BackgroundSpec("a", "z"),))
            )

    def test_background_traffic_name_checked(self):
        with pytest.raises(ValueError, match="unknown background source"):
            ScenarioSpec(
                **spec_kwargs(
                    background=(BackgroundSpec("a", "b", traffic="fractal"),)
                )
            )

    def test_background_keeps_shard_compatibility(self):
        # The unified core's dense link carries time-varying background
        # capacity, so sharding composes with every spec.
        spec = ScenarioSpec(
            **spec_kwargs(background=(BackgroundSpec("a", "b"),))
        )
        assert spec.single_bottleneck and spec.shard_compatible

    def test_multi_bottleneck_accepts_full_control_plane(self):
        multi = spec_kwargs(
            links=(LinkSpec("a", "b", 4e6), LinkSpec("b", "c", 4e6)),
            flows=(FlowGroupSpec("calls", "a", "c", initial_calls=2),),
        )
        ScenarioSpec(**multi)  # fine with the defaults
        # Previously-illegal combinations are now first-class: per-link
        # overload planes and MBAC admission on any topology.
        assert (
            ScenarioSpec(
                **dict(multi, overload_policy="downgrade")
            ).overload_policy
            == "downgrade"
        )
        assert (
            ScenarioSpec(**dict(multi, controller="memory")).controller
            == "memory"
        )

    def test_replace_revalidates(self):
        spec = ScenarioSpec(**spec_kwargs())
        assert spec.replace(seed=9).seed == 9
        with pytest.raises(ValueError):
            spec.replace(duration=-1.0)


class TestRegistry:
    def test_roster_has_the_promised_scenarios(self):
        assert len(SCENARIO_NAMES) >= 6
        for required in (
            "parking-lot",
            "dumbbell-lrd",
            "satellite",
            "hotspot-collision",
            "mmpp-storm",
            "mixed-classes",
        ):
            assert required in SCENARIO_NAMES

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_builders_return_valid_named_specs(self, name):
        spec = get_scenario(name)
        assert spec.name == name
        assert spec.description
        # Builders return fresh specs; overrides never leak back.
        assert get_scenario(name, seed=123).seed == 123
        assert get_scenario(name).seed == spec.seed

    def test_unknown_name_lists_the_roster(self):
        with pytest.raises(ValueError, match="parking-lot"):
            get_scenario("does-not-exist")


class TestDeterminism:
    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_same_seed_same_fingerprint(self, name):
        first = run_scenario(name, seed=3, **SMOKE)
        second = run_scenario(name, seed=3, **SMOKE)
        assert first.fingerprint == second.fingerprint
        assert first.groups == second.groups
        assert first.links == second.links

    def test_different_seeds_diverge(self):
        assert (
            run_scenario("parking-lot", seed=1, **SMOKE).fingerprint
            != run_scenario("parking-lot", seed=2, **SMOKE).fingerprint
        )

    def test_shard_parity_where_compatible(self):
        # mixed-classes is the roster's shard-compatible scenario: one
        # link, no background, full overload plane.
        spec = get_scenario("mixed-classes")
        assert spec.shard_compatible
        plain = run_scenario("mixed-classes", shards=0, **SMOKE)
        sharded = run_scenario("mixed-classes", shards=1, **SMOKE)
        assert plain.fingerprint == sharded.fingerprint

    def test_background_shard_parity(self):
        plain = run_scenario("dumbbell-lrd", shards=0, **SMOKE)
        sharded = run_scenario("dumbbell-lrd", shards=1, **SMOKE)
        assert plain.fingerprint == sharded.fingerprint

    def test_multi_bottleneck_shard_parity(self):
        plain = run_scenario("parking-lot", shards=0, **SMOKE)
        sharded = run_scenario("parking-lot", shards=2, **SMOKE)
        assert plain.fingerprint == sharded.fingerprint
        assert plain.groups == sharded.groups
        assert plain.links == sharded.links

    def test_faulted_run_is_deterministic(self):
        faults = FaultPlan.from_json(
            '{"denial": {"rate": 0.3, "mean_burst": 4.0}}', seed=5
        )
        first = run_scenario("parking-lot", faults=faults, **SMOKE)
        refreshed = FaultPlan.from_json(
            '{"denial": {"rate": 0.3, "mean_burst": 4.0}}', seed=5
        )
        second = run_scenario("parking-lot", faults=refreshed, **SMOKE)
        assert first.fingerprint == second.fingerprint

    def test_snapshots_carry_the_network_section(self):
        result = run_scenario("parking-lot", **SMOKE)
        section = result.report.final.network
        assert section is not None
        assert set(section["groups"]) == {
            flow.name for flow in result.spec.flows
        }
        assert len(section["links"]) == len(result.spec.links)
        # Single-link runs keep the classic snapshot shape (network
        # omitted), so their fingerprints match the classic runtime.
        single = run_scenario("mixed-classes", **SMOKE)
        assert single.report.final.network is None


class TestMultiBottleneckEffects:
    def test_renegotiation_failure_grows_with_hop_count(self):
        # The parking lot: same per-link load everywhere, so the only
        # difference between hop1 and hop3 is how many constrained
        # links a renegotiation must win simultaneously.
        result = run_scenario("parking-lot", duration=20.0)

        def denial(group):
            stats = result.groups[group]
            assert stats["reneg_requests"] > 0
            return stats["reneg_denied"] / stats["reneg_requests"]

        assert denial("hop3") > denial("hop1") + 0.05
        assert denial("hop2") > denial("hop1") + 0.05

    def test_alternate_routing_reduces_denials(self):
        # route_k=2 lets hotspot calls escape to the quiet west side
        # of the ring; the east group's denial fraction must drop.
        congested = run_scenario("hotspot-collision", duration=15.0)
        balanced = run_scenario(
            "hotspot-collision", duration=15.0, route_k=2
        )

        def east_denial(result):
            stats = result.groups["east"]
            assert stats["reneg_requests"] > 0
            return stats["reneg_denied"] / stats["reneg_requests"]

        assert east_denial(balanced) < east_denial(congested) - 0.1

    def test_multi_bottleneck_background_squeezes_a_link(self):
        # ScenarioGateway's own background path: a 2-link chain whose
        # second link loses 60% of its capacity to cross-traffic.
        def chain(background):
            return ScenarioSpec(
                name="chain",
                description="2-hop chain for the background unit test",
                links=(LinkSpec("a", "b", 4e6), LinkSpec("b", "c", 4e6)),
                flows=(
                    FlowGroupSpec("calls", "a", "c", initial_calls=6),
                ),
                background=background,
                duration=4.0,
                snapshot_every=2.0,
            )

        quiet = run_scenario(chain(()))
        squeezed = run_scenario(
            chain(
                (
                    BackgroundSpec(
                        "b", "c", traffic="mmpp", mean_fraction=0.6
                    ),
                )
            )
        )
        assert squeezed.fingerprint != quiet.fingerprint
        assert (
            squeezed.links["b~c"]["lost_bits"]
            > quiet.links["b~c"]["lost_bits"]
        )
        assert squeezed.links["b~c"]["background"] > 0.0


class TestBackgroundHostility:
    def test_bursty_background_differs_from_poisson_at_equal_mean(self):
        # dumbbell-lrd and dumbbell-poisson share the topology, flows,
        # seed, and background *mean*; only the burst structure
        # differs, so any gap in losses or denials is burstiness.
        lrd = run_scenario("dumbbell-lrd", duration=12.0)
        poisson = run_scenario("dumbbell-poisson", duration=12.0)
        mmpp = run_scenario("mmpp-storm", duration=12.0)
        assert lrd.fingerprint != poisson.fingerprint
        assert mmpp.fingerprint != poisson.fingerprint

        def losses(result):
            final = result.report.final
            return final.bits_lost_overflow + final.bits_lost_link

        assert losses(poisson) > 0
        for hostile in (lrd, mmpp):
            ratio = losses(hostile) / losses(poisson)
            assert abs(ratio - 1.0) > 0.1

    def test_satellite_rtt_slows_the_control_loop(self):
        # Identical storm, 135x the propagation delay: the feedback
        # loop reacts six epochs late, so losses grow.
        terrestrial = run_scenario("mmpp-storm", duration=12.0)
        satellite = run_scenario("satellite", duration=12.0)
        assert (
            satellite.report.final.bits_lost_link
            > terrestrial.report.final.bits_lost_link
        )


class TestScenarioCli:
    def test_list_names_every_scenario(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIO_NAMES:
            assert name in out

    def test_describe(self, capsys):
        assert main(["scenario", "describe", "satellite"]) == 0
        out = capsys.readouterr().out
        assert "270" in out or "135" in out

    def test_run_writes_a_report(self, tmp_path, capsys):
        report_path = tmp_path / "scenario.json"
        assert (
            main(
                [
                    "scenario", "run", "mixed-classes",
                    "--duration", "2", "--seed", "4",
                    "--report", str(report_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        payload = json.loads(report_path.read_text())
        assert payload["scenario"]["name"] == "mixed-classes"
        assert payload["fingerprint"] in out

    def test_run_is_reproducible_through_the_cli(self, capsys):
        argv = [
            "scenario", "run", "parking-lot", "--duration", "2",
            "--seed", "6",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second


class TestSweepIntegration:
    def test_scenario_cells_cover_the_roster(self):
        from repro.perf.sweeps import scenario_cells

        cells = scenario_cells()
        names = [cell.name for cell in cells]
        for scenario in SCENARIO_NAMES:
            assert f"scenarios/{scenario}" in names
        assert "scenarios/hotspot-collision/k2" in names

    def test_scenario_cell_runs_and_fingerprints(self):
        from repro.perf.sweeps import scenario_cell

        value = scenario_cell("mixed-classes", seed=2, duration=2.0)
        again = scenario_cell("mixed-classes", seed=2, duration=2.0)
        assert value == again
        assert value["fingerprint"]
        assert value["arrivals"] > 0
