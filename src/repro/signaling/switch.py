"""Switch-port renegotiation processing (Section III-B).

The controller's fast path is two lookups and one comparison: "it checks
if the current port utilization plus the rate difference is less than the
port capacity.  If this is true, then the renegotiation request succeeds,
and the VCI and port statistics are updated.  Otherwise, the controller
modifies the ER field to deny the request."

Delta cells need no per-VCI state — only the aggregate utilization is
updated, which is the scaling argument of Section III-C ("RCBR support
does not require per-VCI state").  Absolute (resynchronisation) cells do
consult an optional per-VCI table; a port configured without one simply
treats them as refreshes of its aggregate from the table-less delta flow.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.signaling.messages import CellKind, RmCell


class SwitchPort:
    """One output port: capacity, aggregate utilization, counters."""

    def __init__(
        self,
        capacity: float,
        name: str = "port",
        track_per_vci: bool = True,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = float(capacity)
        self.name = name
        self.utilization = 0.0
        self.track_per_vci = track_per_vci
        self._vci_rates: Optional[Dict[int, float]] = {} if track_per_vci else None
        self._outages: List[Tuple[float, float]] = []
        self.cells_processed = 0
        self.requests_denied = 0

    # ------------------------------------------------------------------
    @property
    def headroom(self) -> float:
        return self.capacity - self.utilization

    def rate_of(self, vci: int) -> Optional[float]:
        if self._vci_rates is None:
            return None
        return self._vci_rates.get(vci)

    # ------------------------------------------------------------------
    # Transient outages
    # ------------------------------------------------------------------
    def schedule_outage(self, start: float, end: float) -> None:
        """Declare the port unreachable during ``[start, end)``.

        Cells arriving while a port is down are silently eaten by the
        path (no deny cell returns), so the source only learns of the
        failure via its request timeout.  Reservations survive an outage
        — only the control plane is down.
        """
        if start < 0 or end <= start:
            raise ValueError("need 0 <= start < end")
        self._outages.append((float(start), float(end)))
        self._outages.sort()

    def available_at(self, time: float) -> bool:
        if not self._outages:  # the common case, on every cell of every hop
            return True
        return not any(start <= time < end for start, end in self._outages)

    # ------------------------------------------------------------------
    def provision(self, vci: int, rate: float) -> None:
        """Install a connection's setup reservation directly.

        Call setup is the admission controller's decision, not the ER
        fast path's, so provisioning bypasses the capacity check: the
        port simply accounts the reserved rate so that subsequent delta
        cells see the true aggregate utilization.  A CAC that over-admits
        leaves the port above capacity, and every increase is then denied
        until departures bring the aggregate back down — which is exactly
        the back-pressure the renegotiation failure statistics measure.
        """
        if rate < 0:
            raise ValueError("rates must be non-negative")
        self.utilization += rate
        self._bump_vci(vci, rate)

    def reprovision(self, vci: int, delta: float) -> None:
        """Adjust a connection's reservation by ``delta`` switch-side.

        The overload control plane downgrades or restores granted rates
        at the link, not through the ER fast path, so the matching port
        accounting moves with it the same way :meth:`provision` does at
        setup: no capacity check, no denial — the plane has already
        decided.  Negative deltas free capacity immediately.
        """
        self.utilization = max(0.0, self.utilization + delta)
        self._bump_vci(vci, delta)

    def process(self, cell: RmCell) -> bool:
        """Apply one RM cell; returns True if this hop accepted it.

        A cell already denied upstream is forwarded untouched (the
        downstream hops must not commit resources for a doomed request).
        """
        self.cells_processed += 1
        if cell.denied:
            return False
        if cell.kind is CellKind.DELTA:
            return self._process_delta(cell)
        return self._process_absolute(cell)

    def _process_delta(self, cell: RmCell) -> bool:
        delta = cell.er
        if delta <= 0:
            # Decreases always succeed and free capacity immediately.
            self.utilization = max(0.0, self.utilization + delta)
            self._bump_vci(cell.vci, delta)
            return True
        if self.utilization + delta <= self.capacity + 1e-9:
            self.utilization += delta
            self._bump_vci(cell.vci, delta)
            return True
        self.requests_denied += 1
        return False

    def _process_absolute(self, cell: RmCell) -> bool:
        """Resynchronise a VCI to its true rate (needs the per-VCI table)."""
        if self._vci_rates is None:
            # Stateless port: cannot resolve the old rate; ignore silently
            # (the drift persists until a stateful hop or teardown).
            return True
        old = self._vci_rates.get(cell.vci, 0.0)
        delta = cell.er - old
        if delta <= 0 or self.utilization + delta <= self.capacity + 1e-9:
            self.utilization = max(0.0, self.utilization + delta)
            self._vci_rates[cell.vci] = cell.er
            return True
        self.requests_denied += 1
        return False

    def _bump_vci(self, vci: int, delta: float) -> None:
        if self._vci_rates is not None:
            new_rate = self._vci_rates.get(vci, 0.0) + delta
            if new_rate <= 1e-12:
                self._vci_rates.pop(vci, None)
            else:
                self._vci_rates[vci] = new_rate

    def rollback(self, cell: RmCell) -> None:
        """Undo a previously accepted increase (downstream hop denied)."""
        if cell.kind is not CellKind.DELTA or cell.er <= 0:
            return
        self.utilization = max(0.0, self.utilization - cell.er)
        self._bump_vci(cell.vci, -cell.er)

    def release(self, vci: int) -> None:
        """Tear down a connection, freeing its tracked bandwidth."""
        if self._vci_rates is None:
            return
        rate = self._vci_rates.pop(vci, 0.0)
        self.utilization = max(0.0, self.utilization - rate)

    def __repr__(self) -> str:
        return (
            f"SwitchPort({self.name!r}, util={self.utilization:.0f}/"
            f"{self.capacity:.0f}, cells={self.cells_processed})"
        )
