"""Switch-port renegotiation processing (Section III-B).

The controller's fast path is two lookups and one comparison: "it checks
if the current port utilization plus the rate difference is less than the
port capacity.  If this is true, then the renegotiation request succeeds,
and the VCI and port statistics are updated.  Otherwise, the controller
modifies the ER field to deny the request."

Delta cells need no per-VCI state — only the aggregate utilization is
updated, which is the scaling argument of Section III-C ("RCBR support
does not require per-VCI state").  Absolute (resynchronisation) cells do
consult an optional per-VCI table; a port configured without one simply
treats them as refreshes of its aggregate from the table-less delta flow.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.signaling.messages import CellKind, RmCell

#: Iteration cap for the batched denial fixpoint.  Each pass re-decides
#: every increase against its exact prefix utilization; real epochs
#: settle in two or three passes, and non-convergence just falls back
#: to the per-cell path, so the cap only bounds pathological ping-pong.
# Block length for the denial fixpoint in delta_batch_apply.  Each
# round's cost is a cumsum over the block, and rounds scale with the
# number of denials inside the block, so blocking bounds total work at
# O(denials * block) instead of O(denials * batch).  The left-collapse
# progress guarantee (>= 1 decision per round) caps rounds per block at
# the block length, so convergence never depends on a tuned limit.
FIXPOINT_BLOCK = 2048


class SwitchPort:
    """One output port: capacity, aggregate utilization, counters."""

    def __init__(
        self,
        capacity: float,
        name: str = "port",
        track_per_vci: bool = True,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = float(capacity)
        self.name = name
        self.utilization = 0.0
        self.track_per_vci = track_per_vci
        self._vci_rates: Optional[Dict[int, float]] = {} if track_per_vci else None
        self._outages: List[Tuple[float, float]] = []
        self.cells_processed = 0
        self.requests_denied = 0

    # ------------------------------------------------------------------
    @property
    def headroom(self) -> float:
        return self.capacity - self.utilization

    def rate_of(self, vci: int) -> Optional[float]:
        if self._vci_rates is None:
            return None
        return self._vci_rates.get(vci)

    # ------------------------------------------------------------------
    # Transient outages
    # ------------------------------------------------------------------
    def schedule_outage(self, start: float, end: float) -> None:
        """Declare the port unreachable during ``[start, end)``.

        Cells arriving while a port is down are silently eaten by the
        path (no deny cell returns), so the source only learns of the
        failure via its request timeout.  Reservations survive an outage
        — only the control plane is down.
        """
        if start < 0 or end <= start:
            raise ValueError("need 0 <= start < end")
        self._outages.append((float(start), float(end)))
        self._outages.sort()

    def available_at(self, time: float) -> bool:
        if not self._outages:  # the common case, on every cell of every hop
            return True
        return not any(start <= time < end for start, end in self._outages)

    @property
    def has_outages(self) -> bool:
        """Whether any outage window is scheduled (past or future)."""
        return bool(self._outages)

    # ------------------------------------------------------------------
    def provision(self, vci: int, rate: float) -> None:
        """Install a connection's setup reservation directly.

        Call setup is the admission controller's decision, not the ER
        fast path's, so provisioning bypasses the capacity check: the
        port simply accounts the reserved rate so that subsequent delta
        cells see the true aggregate utilization.  A CAC that over-admits
        leaves the port above capacity, and every increase is then denied
        until departures bring the aggregate back down — which is exactly
        the back-pressure the renegotiation failure statistics measure.
        """
        if rate < 0:
            raise ValueError("rates must be non-negative")
        self.utilization += rate
        self._bump_vci(vci, rate)

    def reprovision(self, vci: int, delta: float) -> None:
        """Adjust a connection's reservation by ``delta`` switch-side.

        The overload control plane downgrades or restores granted rates
        at the link, not through the ER fast path, so the matching port
        accounting moves with it the same way :meth:`provision` does at
        setup: no capacity check, no denial — the plane has already
        decided.  Negative deltas free capacity immediately.
        """
        self.utilization = max(0.0, self.utilization + delta)
        self._bump_vci(vci, delta)

    def process(self, cell: RmCell) -> bool:
        """Apply one RM cell; returns True if this hop accepted it.

        A cell already denied upstream is forwarded untouched (the
        downstream hops must not commit resources for a doomed request).
        """
        self.cells_processed += 1
        if cell.denied:
            return False
        if cell.kind is CellKind.DELTA:
            return self._process_delta(cell)
        return self._process_absolute(cell)

    def _process_delta(self, cell: RmCell) -> bool:
        delta = cell.er
        if delta <= 0:
            # Decreases always succeed and free capacity immediately.
            self.utilization = max(0.0, self.utilization + delta)
            self._bump_vci(cell.vci, delta)
            return True
        if self.utilization + delta <= self.capacity + 1e-9:
            self.utilization += delta
            self._bump_vci(cell.vci, delta)
            return True
        self.requests_denied += 1
        return False

    def _process_absolute(self, cell: RmCell) -> bool:
        """Resynchronise a VCI to its true rate (needs the per-VCI table)."""
        if self._vci_rates is None:
            # Stateless port: cannot resolve the old rate; ignore silently
            # (the drift persists until a stateful hop or teardown).
            return True
        old = self._vci_rates.get(cell.vci, 0.0)
        delta = cell.er - old
        if delta <= 0 or self.utilization + delta <= self.capacity + 1e-9:
            self.utilization = max(0.0, self.utilization + delta)
            self._vci_rates[cell.vci] = cell.er
            return True
        self.requests_denied += 1
        return False

    def _bump_vci(self, vci: int, delta: float) -> None:
        if self._vci_rates is not None:
            new_rate = self._vci_rates.get(vci, 0.0) + delta
            if new_rate <= 1e-12:
                self._vci_rates.pop(vci, None)
            else:
                self._vci_rates[vci] = new_rate

    # ------------------------------------------------------------------
    # Batched delta processing (the sharded gateway's epoch fast path)
    # ------------------------------------------------------------------
    def delta_batch_total(self, deltas: np.ndarray) -> Optional[float]:
        """Feasibility-check one epoch's delta cells as an exact fold.

        Evolves the utilization the scalar :meth:`_process_delta` loop
        would produce via ``np.cumsum`` — a strict left fold, so every
        prefix total is bit-identical to the running scalar value.
        Returns the final utilization iff every cell would be accepted
        *and* no decrease would engage the ``max(0.0, ...)`` clamp (a
        ``-0.0`` prefix counts as clamping: the scalar path normalises
        it to ``+0.0``); returns None otherwise, committing nothing, so
        the caller can fall back to the exact per-cell path.
        """
        totals = np.cumsum(np.concatenate(([self.utilization], deltas)))
        after = totals[1:]
        decreases = deltas <= 0.0
        if np.any(np.signbit(after[decreases])):
            return None
        if np.any(after[~decreases] > self.capacity + 1e-9):
            return None
        return float(totals[-1])

    def commit_delta_batch(
        self, vcis: Sequence, deltas: np.ndarray, total: float
    ) -> None:
        """Apply a batch vetted by :meth:`delta_batch_total`."""
        self.cells_processed += int(len(deltas))
        self.utilization = total
        self._bump_vci_batch(vcis, deltas)

    def delta_batch_apply(
        self, vcis: Sequence, deltas: np.ndarray
    ) -> Optional[np.ndarray]:
        """Resolve and commit one epoch's delta cells, denials included.

        Extends :meth:`delta_batch_total` from feasibility-check to the
        general case: the increases the scalar loop would deny are found
        by a bracketing fixpoint on the denied set.  Denying an entry
        only removes a positive delta, and IEEE addition is monotone, so
        the prefix utilizations are pointwise monotone *decreasing* in
        the denied set.  Each round therefore folds two ``np.cumsum``
        prefixes — an upper bound (only *confirmed* denials zeroed) and
        a lower bound (every still-undecided increase zeroed too) — and
        the sequential outcome is sandwiched between them: an increase
        that fits even at its upper prefix is confirmed accepted, and
        one that overflows even at its lower prefix is confirmed denied.
        The bracket collapses from the left — ahead of the first
        undecided entry everything is decided, so its two prefixes
        coincide and it is decided this round — hence no oscillation: a
        naive self-map on the denied set ping-pongs (denying one entry
        lets a later one in, which re-evicts another) precisely on the
        contended epochs this path exists for.  Once nothing is
        undecided, the confirmed set *is* the scalar loop's, each
        membership being forced by a bound the true prefix cannot cross,
        and the final fold (denied entries contribute ``0.0``, bit-exact
        on non-negative prefixes) commits.

        Rounds scale with the number of denials, and each round folds
        the whole span, so the fixpoint runs over ``FIXPOINT_BLOCK``
        slices: ``np.cumsum`` is a strict left fold, so carrying the
        running utilization from one block into the next replays the
        exact addition sequence of a single fold — work drops from
        O(denials * batch) to O(denials * block) with bit-identical
        results.  The left-collapse guarantee bounds rounds per block at
        the block length, so the sandwich always converges; the only
        remaining bail-out is a decrease prefix engaging the
        ``max(0.0, ...)`` clamp (``np.signbit`` — the only place a
        ``-0.0`` prefix can first appear), which returns None with
        nothing committed so the caller can replay the batch through the
        exact per-cell path.

        Returns the per-entry grant mask, or None.
        """
        count = int(len(deltas))
        increases = deltas > 0.0
        ceiling = self.capacity + 1e-9
        denied = np.zeros(count, dtype=bool)
        running = self.utilization
        start = 0
        while start < count:
            stop = min(start + FIXPOINT_BLOCK, count)
            block = deltas[start:stop]
            block_increases = increases[start:stop]
            length = stop - start
            block_denied = np.zeros(length, dtype=bool)
            undecided = block_increases.copy()
            effective = np.empty(length)
            head = np.empty(length + 1)
            head[0] = running
            for _ in range(length + 1):
                np.multiply(block, ~block_denied, out=effective)
                head[1:] = effective
                totals = np.cumsum(head)
                overflow_hi = totals[:-1] + block > ceiling
                undecided &= overflow_hi  # fits at upper bound: accepted
                if not undecided.any():
                    break
                np.multiply(
                    block, ~(block_denied | undecided), out=effective
                )
                head[1:] = effective
                lower = np.cumsum(head)
                confirmed = undecided & (lower[:-1] + block > ceiling)
                if confirmed.any():
                    block_denied |= confirmed
                    undecided &= ~confirmed
                    if not undecided.any():
                        np.multiply(block, ~block_denied, out=effective)
                        head[1:] = effective
                        totals = np.cumsum(head)
                        break
            if undecided.any():
                return None
            if np.any(np.signbit(totals[1:][~block_increases])):
                return None
            denied[start:stop] = block_denied
            running = float(totals[-1])
            start = stop
        granted = ~denied
        num_denied = count - int(np.count_nonzero(granted))
        self.cells_processed += count
        self.requests_denied += num_denied
        self.utilization = running
        if num_denied:
            self._bump_vci_batch(np.asarray(vcis)[granted], deltas[granted])
        else:
            self._bump_vci_batch(vcis, deltas)
        return granted

    def _bump_vci_batch(self, vcis: Sequence, deltas: np.ndarray) -> None:
        if self._vci_rates is None:
            return
        for index in range(len(deltas)):
            self._bump_vci(int(vcis[index]), float(deltas[index]))

    def rollback(self, cell: RmCell) -> None:
        """Undo a previously accepted increase (downstream hop denied)."""
        if cell.kind is not CellKind.DELTA or cell.er <= 0:
            return
        self.utilization = max(0.0, self.utilization - cell.er)
        self._bump_vci(cell.vci, -cell.er)

    def release(self, vci: int) -> None:
        """Tear down a connection, freeing its tracked bandwidth."""
        if self._vci_rates is None:
            return
        rate = self._vci_rates.pop(vci, 0.0)
        self.utilization = max(0.0, self.utilization - rate)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Export utilization, per-VCI rates, outages, and counters."""
        rates = self._vci_rates
        return {
            "capacity": self.capacity,
            "utilization": self.utilization,
            "vci_rates": dict(rates) if isinstance(rates, dict) else None,
            "outages": list(self._outages),
            "cells_processed": self.cells_processed,
            "requests_denied": self.requests_denied,
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` export."""
        rates = state["vci_rates"]
        if self.track_per_vci:
            self._vci_rates = dict(rates) if rates is not None else {}
        self._load_common(state)

    def _load_common(self, state: Dict[str, object]) -> None:
        self.capacity = float(state["capacity"])  # type: ignore[arg-type]
        self.utilization = float(state["utilization"])  # type: ignore[arg-type]
        self._outages = [
            (float(start), float(end))
            for start, end in state["outages"]  # type: ignore[union-attr]
        ]
        self.cells_processed = int(state["cells_processed"])  # type: ignore[arg-type]
        self.requests_denied = int(state["requests_denied"])  # type: ignore[arg-type]

    def __repr__(self) -> str:
        return (
            f"SwitchPort({self.name!r}, util={self.utilization:.0f}/"
            f"{self.capacity:.0f}, cells={self.cells_processed})"
        )


class DenseSwitchPort(SwitchPort):
    """A :class:`SwitchPort` whose VCIs are integer pool slots.

    Replaces the per-VCI dict with a dense float64 column indexed by
    slot, so the sharded gateway's batched epoch commit is one fancy
    index instead of ~40k dict operations.  Value semantics mirror the
    dict exactly: an absent VCI *is* a stored ``0.0`` (the dict pops
    entries at ``<= 1e-12``, then ``get(vci, 0.0)`` reads them back as
    ``0.0``), so every utilization fold is bit-identical.  The one
    intentional difference is :meth:`rate_of`, which reports a tracked
    zero-rate VCI as ``None`` — the dict distinguishes "absent" from "an
    absolute cell wrote exactly 0.0", the array cannot, and nothing in
    the runtime reads that distinction.

    ``utilization`` stays a Python float: every array read feeding it is
    ``float()``-cast so ``np.float64`` (whose numpy-2.x repr differs)
    can never leak into fingerprinted snapshot fields.
    """

    def __init__(
        self, capacity: float, num_slots: int, name: str = "port"
    ) -> None:
        super().__init__(capacity, name=name, track_per_vci=True)
        if num_slots < 1:
            raise ValueError("num_slots must be >= 1")
        self._vci_rates = np.zeros(num_slots)  # type: ignore[assignment]
        # Reserved (negative) VCIs — the background cross-traffic VCI —
        # live in a side dict: a negative index into the slot column
        # would silently alias the tail slot.
        self._reserved_rates: Dict[int, float] = {}

    @property
    def num_slots(self) -> int:
        return int(self._vci_rates.size)

    def grow(self, num_slots: int) -> None:
        """Widen the slot column (pool growth); zero-filled tail."""
        if num_slots < self.num_slots:
            raise ValueError("DenseSwitchPort can only grow")
        grown = np.zeros(num_slots)
        grown[: self._vci_rates.size] = self._vci_rates
        self._vci_rates = grown  # type: ignore[assignment]

    def rate_of(self, vci: int) -> Optional[float]:
        if vci < 0:
            rate = self._reserved_rates.get(vci, 0.0)
            return rate if rate != 0.0 else None
        rate = float(self._vci_rates[vci])
        return rate if rate != 0.0 else None

    def _process_absolute(self, cell: RmCell) -> bool:
        old = float(self._vci_rates[cell.vci])
        delta = cell.er - old
        if delta <= 0 or self.utilization + delta <= self.capacity + 1e-9:
            self.utilization = max(0.0, self.utilization + delta)
            self._vci_rates[cell.vci] = cell.er
            return True
        self.requests_denied += 1
        return False

    def _bump_vci(self, vci: int, delta: float) -> None:
        if vci < 0:
            new_rate = self._reserved_rates.get(vci, 0.0) + delta
            if new_rate <= 1e-12:
                self._reserved_rates.pop(vci, None)
            else:
                self._reserved_rates[vci] = new_rate
            return
        new_rate = float(self._vci_rates[vci]) + delta
        self._vci_rates[vci] = 0.0 if new_rate <= 1e-12 else new_rate

    def _bump_vci_batch(self, vcis: Sequence, deltas: np.ndarray) -> None:
        table = self._vci_rates
        new_rates = table[vcis] + deltas
        table[vcis] = np.where(new_rates <= 1e-12, 0.0, new_rates)

    def release(self, vci: int) -> None:
        if vci < 0:
            rate = self._reserved_rates.pop(vci, 0.0)
            self.utilization = max(0.0, self.utilization - rate)
            return
        rate = float(self._vci_rates[vci])
        self._vci_rates[vci] = 0.0
        self.utilization = max(0.0, self.utilization - rate)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        state = SwitchPort.state_dict(self)
        state["vci_rates"] = self._vci_rates.copy()
        state["reserved_rates"] = dict(self._reserved_rates)
        return state

    def load_state(self, state: Dict[str, object]) -> None:
        saved = np.asarray(state["vci_rates"])
        if saved.size > self.num_slots:
            self.grow(saved.size)
        self._vci_rates[:] = 0.0
        self._vci_rates[: saved.size] = saved
        # Absent in checkpoints predating reserved-VCI support (which
        # could not have carried background state anyway).
        self._reserved_rates = dict(state.get("reserved_rates") or {})
        self._load_common(state)

    def __repr__(self) -> str:
        return (
            f"DenseSwitchPort({self.name!r}, util={self.utilization:.0f}/"
            f"{self.capacity:.0f}, cells={self.cells_processed})"
        )
