"""Performance subsystem: parallel sweeps, result caching, bench records.

The paper's figures are parameter sweeps, and regenerating one at
``REPRO_SCALE=paper`` costs hours if every cell runs serially and every
heavy intermediate is recomputed.  This package makes regeneration cheap:

* :class:`SweepEngine` fans independent sweep cells out over a process
  pool with deterministic per-cell ``SeedSequence`` children, so serial
  and parallel runs are bit-identical;
* :class:`ResultCache` is a content-addressed on-disk memo (key = hash
  of workload fingerprint + solver/controller parameters + code
  version) shared between worker processes and across runs;
* :class:`BenchRecorder` timestamps every cell and writes
  ``BENCH_sweeps.json``, the repo's perf trajectory;
* :class:`SupervisedSweepEngine` wraps the engine with per-cell
  timeouts, bounded jittered retries, pool-death recovery with
  quarantine and serial degrade, and crash-safe checkpoint/resume
  through a :class:`SweepJournal` — without ever changing a surviving
  cell's bits;
* :mod:`repro.perf.sweeps` defines the concrete cells of the paper's
  grids (Figs. 2, 6, 7-9) plus the cached trace/DP-schedule builders.
"""

from repro.perf.cache import CACHE_SCHEMA, ResultCache, fingerprint
from repro.perf.engine import CellResult, SweepCell, SweepEngine
from repro.perf.journal import (
    JOURNAL_SCHEMA,
    JournalEntry,
    SweepJournal,
    sweep_fingerprint,
)
from repro.perf.recorder import BENCH_SCHEMA, BenchRecorder
from repro.perf.supervise import (
    CellReport,
    SupervisedRun,
    SupervisedSweepEngine,
    SupervisorPolicy,
    SweepReport,
)
from repro.perf.sweeps import (
    SWEEP_SCALES,
    SweepScale,
    current_scale,
    figs7_9_cells,
    mbac_cell,
    mbac_grid_cells,
    optimal_schedule_for,
    smg_cells,
    starwars_trace_for,
    tradeoff_cells,
)

__all__ = [
    "CACHE_SCHEMA",
    "ResultCache",
    "fingerprint",
    "CellResult",
    "SweepCell",
    "SweepEngine",
    "BENCH_SCHEMA",
    "BenchRecorder",
    "JOURNAL_SCHEMA",
    "JournalEntry",
    "SweepJournal",
    "sweep_fingerprint",
    "CellReport",
    "SupervisedRun",
    "SupervisedSweepEngine",
    "SupervisorPolicy",
    "SweepReport",
    "SWEEP_SCALES",
    "SweepScale",
    "current_scale",
    "figs7_9_cells",
    "mbac_cell",
    "mbac_grid_cells",
    "optimal_schedule_for",
    "smg_cells",
    "starwars_trace_for",
    "tradeoff_cells",
]
