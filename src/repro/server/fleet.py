"""The vectorized call fleet: batch-stepping every active call per epoch.

The gateway's hot path.  A fleet is a thin adapter between the gateway's
call-pool bookkeeping and the batched renegotiation kernel
(:mod:`repro.core.kernel`): it owns admission (pool slots, LIFO free
list, growth by doubling), the per-call traffic shifts, the in-flight
``pending`` mask, and per-epoch arrival gathering — while the per-slot
arithmetic of eqs. 6-8 (buffer update, AR(1) estimate, eq.-7
quantisation, eq.-8 threshold test) is one
:meth:`~repro.core.kernel.RenegotiationKernel.step` over the kernel's
structure-of-arrays state block.  50k concurrent calls step in well
under a millisecond, which is what makes a real-time gateway on one
core possible.

Bit-identical contract: the kernel is the *same* implementation the
scalar :class:`repro.core.online.OnlineScheduler` drives as a fleet of
one, so a fleet of one call produces exactly the float sequence the
scalar scheduler produces on the same shifted workload.
``tests/test_server_fleet.py`` locks this in.

Each call's traffic is a circular shift of one shared base workload — the
paper's Section VI construction ("each call is a randomly shifted version
of a Star Wars RCBR schedule"), applied at the arrival-process level so
the per-epoch gather is a single fancy-index into the shared array.
Inactive pool slots carry exact zeros everywhere; multiplying the
gathered arrivals by the activity mask keeps them at zero through every
kernel step, so no post-step masking is needed and whole-array
reductions (total buffered bits, total reserved rate) are exact.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import kernel as _kernel
from repro.core.kernel import RenegotiationKernel
from repro.core.online import OnlineParams
from repro.traffic.trace import SlottedWorkload
from repro.util.stats import per_class_counts, per_class_totals


def __getattr__(name: str):
    # Deprecated re-export: the quantiser guard moved to its single home
    # in repro.core.kernel alongside the rest of the eq.-7 arithmetic.
    if name == "QUANTIZE_EPSILON":
        warnings.warn(
            "repro.server.fleet.QUANTIZE_EPSILON is deprecated; import it "
            "from repro.core.kernel",
            DeprecationWarning,
            stacklevel=2,
        )
        return _kernel.QUANTIZE_EPSILON
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class EpochStep:
    """What one vectorized step produced: who wants to renegotiate.

    ``slots`` are pool-slot indices in ascending order (deterministic);
    ``candidates`` the quantized eq.-7 target rate of each.  Calls with a
    renegotiation already in flight are excluded — a source waits for the
    answer to its outstanding RM cell before signaling again.
    """

    tick: int
    slots: np.ndarray
    candidates: np.ndarray

    @property
    def num_requests(self) -> int:
        return int(self.slots.size)


class CallFleet:
    """Structure-of-arrays pool of active calls over one shared workload."""

    def __init__(
        self,
        workload: SlottedWorkload,
        params: OnlineParams,
        buffer_size: Optional[float] = None,
        initial_capacity: int = 256,
    ) -> None:
        if initial_capacity < 1:
            raise ValueError("initial_capacity must be >= 1")
        self.workload = workload
        self.params = params
        self.buffer_size = buffer_size
        self._bits = workload.bits_per_slot  # read-only shared base
        self._num_base_slots = int(self._bits.size)
        self._slot = workload.slot_duration
        self._kernel = RenegotiationKernel(
            params, workload.slot_duration, buffer_size=buffer_size
        )

        capacity = int(initial_capacity)
        self._capacity = capacity
        self._state = self._kernel.new_state(capacity)
        self.active = np.zeros(capacity, dtype=bool)
        self.shift = np.zeros(capacity, dtype=np.int64)
        self.pending = np.zeros(capacity, dtype=bool)
        self.streak = np.zeros(capacity, dtype=np.int64)
        self.call_id = np.full(capacity, -1, dtype=np.int64)
        self.call_class = np.zeros(capacity, dtype=np.int64)
        # LIFO free list ordered so the first admissions take slots 0, 1, …
        self._free = list(range(capacity - 1, -1, -1))

        self.num_active = 0
        self.peak_active = 0
        self.epochs_stepped = 0
        self.call_epochs_stepped = 0

    # ------------------------------------------------------------------
    # Kernel-owned state, exposed as the fleet's columns
    # ------------------------------------------------------------------
    @property
    def rate(self) -> np.ndarray:
        """Per-slot reserved rate (kernel state column)."""
        return self._state.rate

    @property
    def estimate(self) -> np.ndarray:
        """Per-slot AR(1) estimate (kernel state column)."""
        return self._state.estimate

    @property
    def buffer(self) -> np.ndarray:
        """Per-slot playout-buffer occupancy in bits (kernel state column)."""
        return self._state.buffer

    @property
    def bits_lost(self) -> float:
        """Cumulative playout-buffer overflow, accounted by the kernel."""
        return self._state.bits_lost

    @property
    def bits_downgraded(self) -> float:
        """Cumulative bits shed by resolution downgrade (kernel-accounted)."""
        return self._state.bits_downgraded

    # ------------------------------------------------------------------
    # Pool management
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Allocated pool slots (grows by doubling)."""
        return self._capacity

    def _grow(self) -> None:
        old = self._capacity
        new = old * 2
        self._state.grow(new)
        for name in (
            "active", "shift", "pending", "streak", "call_id", "call_class"
        ):
            column = getattr(self, name)
            grown = np.zeros(new, dtype=column.dtype)
            grown[:old] = column
            setattr(self, name, grown)
        self.call_id[old:] = -1
        self._free.extend(range(new - 1, old - 1, -1))
        self._capacity = new

    def quantize(self, rate_estimate: float) -> float:
        """eq. 7 on this fleet's grid (see :func:`repro.core.kernel.quantize`)."""
        return self._kernel.quantize(rate_estimate)

    def admit(
        self, call_id: int, shift: int, call_class: int = 0
    ) -> "tuple[int, float]":
        """Add a call whose arrivals start ``shift`` base slots in.

        Returns ``(pool_slot, initial_rate)`` where the initial rate is
        the first slot's arrival rate quantized to the grid — the causal
        setup-time choice the scalar scheduler makes.  ``call_class`` is
        the service class the overload control plane downgrades and
        sacrifices by (0 = the most-protected, premium class).
        """
        if call_class < 0:
            raise ValueError("call_class must be non-negative")
        if not 0 <= shift < self._num_base_slots:
            raise ValueError(f"shift must be in [0, {self._num_base_slots})")
        if not self._free:
            self._grow()
        slot = self._free.pop()
        initial_rate = self._kernel.initial_rate(float(self._bits[shift]))
        self.active[slot] = True
        self.shift[slot] = shift
        self._state.rate[slot] = initial_rate
        self._state.estimate[slot] = initial_rate
        self._state.buffer[slot] = 0.0
        self.pending[slot] = False
        self.streak[slot] = 0
        self.call_id[slot] = call_id
        self.call_class[slot] = call_class
        self.num_active += 1
        if self.num_active > self.peak_active:
            self.peak_active = self.num_active
        return slot, initial_rate

    def remove(self, slot: int) -> None:
        """Release a pool slot, zeroing its state exactly."""
        if not self.active[slot]:
            raise ValueError(f"slot {slot} is not active")
        self.active[slot] = False
        self.shift[slot] = 0
        self._state.clear_slot(slot)
        self.pending[slot] = False
        self.streak[slot] = 0
        self.call_id[slot] = -1
        self.call_class[slot] = 0
        self.num_active -= 1
        self._free.append(slot)

    def set_rate(self, slot: int, rate: float) -> None:
        self._state.rate[slot] = rate

    # ------------------------------------------------------------------
    # The vectorized epoch step
    # ------------------------------------------------------------------
    def step(
        self, tick: int, downgrade: Optional[np.ndarray] = None
    ) -> EpochStep:
        """Advance every active call through base slot ``tick``.

        One kernel batch step across the whole fleet.  Returns the calls
        whose buffer crossed a threshold in the matching direction
        (eq. 8) and are free to signal.  ``downgrade``, if given, is the
        overload plane's per-slot resolution scale array (see
        :meth:`repro.core.kernel.RenegotiationKernel.step`); ``None``
        keeps the step bit-identical to the undowngraded path.
        """
        active = self.active

        # Gather this epoch's arrivals: base_bits[(shift + tick) % L],
        # zeroed for inactive slots so their state stays exactly 0.
        index = self.shift + (tick % self._num_base_slots)
        np.subtract(
            index, self._num_base_slots, out=index,
            where=index >= self._num_base_slots,
        )
        amount = self._bits[index] * active

        wants, candidate = self._kernel.step(
            self._state, amount, downgrade=downgrade
        )

        # Eligibility on top of the raw eq.-8 crossings: the call must be
        # active and must not have a renegotiation cell already in flight.
        wants &= active
        wants &= ~self.pending

        self.epochs_stepped += 1
        self.call_epochs_stepped += self.num_active
        slots = np.flatnonzero(wants)
        return EpochStep(
            tick=tick, slots=slots, candidates=candidate[slots]
        )

    # ------------------------------------------------------------------
    # Whole-fleet observables (exact: inactive slots are exact zeros)
    # ------------------------------------------------------------------
    def total_buffered_bits(self) -> float:
        return float(self.buffer.sum())

    def total_reserved_rate(self) -> float:
        return float(self.rate.sum())

    def class_counts(self, num_classes: int) -> np.ndarray:
        """Active calls per service class (dense, length ``num_classes``)."""
        return per_class_counts(self.call_class[self.active], num_classes)

    def class_reserved_rates(self, num_classes: int) -> np.ndarray:
        """Total reserved rate per service class."""
        return per_class_totals(
            self.call_class[self.active], self.rate[self.active], num_classes
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Export slot metadata, the free list, counters, and the kernel
        columns.  The workload and parameters are *not* exported: they
        are a pure function of the gateway config, which the checkpoint
        layer hashes and validates instead."""
        return {
            "capacity": self._capacity,
            "kernel": self._state.state_dict(),
            "active": self.active.copy(),
            "shift": self.shift.copy(),
            "pending": self.pending.copy(),
            "streak": self.streak.copy(),
            "call_id": self.call_id.copy(),
            "call_class": self.call_class.copy(),
            "free": list(self._free),
            "num_active": self.num_active,
            "peak_active": self.peak_active,
            "epochs_stepped": self.epochs_stepped,
            "call_epochs_stepped": self.call_epochs_stepped,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` export, growing the pool first.

        Growth happens through :meth:`_grow` so subclasses keep their
        invariants (the sharded fleet re-points columns at a fresh
        shared block and notifies the gateway to widen link/ports).
        Capacities must then match exactly — both sides double from the
        same config-derived initial size, so any mismatch means the
        checkpoint belongs to a different config and is refused.
        """
        saved_capacity = int(state["capacity"])
        while self._capacity < saved_capacity:
            self._grow()
        if self._capacity != saved_capacity:
            raise ValueError(
                f"fleet capacity {self._capacity} cannot match checkpointed "
                f"capacity {saved_capacity} (different initial pool size?)"
            )
        self._state.load_state(state["kernel"])
        for name in (
            "active", "shift", "pending", "streak", "call_id", "call_class"
        ):
            column = getattr(self, name)
            column[:] = np.asarray(state[name])
        self._free = [int(slot) for slot in state["free"]]
        self.num_active = int(state["num_active"])
        self.peak_active = int(state["peak_active"])
        self.epochs_stepped = int(state["epochs_stepped"])
        self.call_epochs_stepped = int(state["call_epochs_stepped"])
