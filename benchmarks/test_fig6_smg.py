"""Fig. 6: statistical multiplexing gain achievable for 1e-6 loss.

Per-stream capacity c(N) needed under the three Fig. 3 scenarios:

* (a) static CBR — flat at the (sigma, rho) point, ~4x the mean;
* (b) unrestricted sharing — falls steeply with N (the full SMG);
* (c) RCBR — tracks (b) closely from above, extracting most of the gain
  (at N = 100 the paper needs less than a third of the CBR bandwidth),
  and approaches 1/bandwidth-efficiency of the schedule asymptotically.

The search procedure is the paper's: binary search on c, many randomized
phasings per step, repeated until the sample standard deviation is within
20% of the estimate.
"""

from __future__ import annotations

import pytest

from benchmarks._common import (
    BUFFER_BITS,
    fmt,
    once,
    optimal_schedule,
    print_table,
    scale,
    starwars_trace,
)
from repro.queueing.mux import (
    scenario_a_rate,
    scenario_b_min_rate,
    scenario_c_min_rate,
)

LOSS = 1e-6


@pytest.fixture(scope="module")
def trace():
    return starwars_trace()


@pytest.fixture(scope="module")
def schedule():
    return optimal_schedule()


def test_fig6_smg(benchmark, trace, schedule):
    counts = scale().smg_sources
    mean = trace.mean_rate

    def run():
        workload = trace.as_workload()
        cbr = scenario_a_rate(workload, BUFFER_BITS, LOSS)
        rows = []
        for n in counts:
            shared = scenario_b_min_rate(
                trace, n, BUFFER_BITS, LOSS, seed=100 + n
            )
            rcbr = scenario_c_min_rate(schedule, n, LOSS, seed=200 + n)
            rows.append({"n": n, "cbr": cbr, "shared": shared, "rcbr": rcbr})
        return rows

    rows = once(benchmark, run)
    efficiency = schedule.bandwidth_efficiency(mean)

    print_table(
        "Fig. 6: per-stream capacity c(N) for 1e-6 loss (multiples of mean)",
        ["N", "CBR (a)", "shared (b)", "RCBR (c)"],
        [
            [r["n"], fmt(r["cbr"] / mean, 3), fmt(r["shared"] / mean, 3),
             fmt(r["rcbr"] / mean, 3)]
            for r in rows
        ],
    )
    print(
        f"\nschedule bandwidth efficiency = {efficiency:.4f} -> RCBR "
        f"asymptote 1/eff = {1 / efficiency:.4f} x mean"
    )

    # --- Shape assertions ------------------------------------------------
    # (a) is flat and several times the mean.
    cbr = rows[0]["cbr"]
    assert 2.5 * mean <= cbr <= 6.0 * mean

    # Both multiplexed scenarios improve (weakly) with N.
    shared_rates = [r["shared"] for r in rows]
    rcbr_rates = [r["rcbr"] for r in rows]
    slack = 0.06 * mean  # stochastic search tolerance
    assert all(a >= b - slack for a, b in zip(shared_rates, shared_rates[1:]))
    assert all(a >= b - slack for a, b in zip(rcbr_rates, rcbr_rates[1:]))

    # RCBR needs at least as much as unrestricted sharing (it gives up
    # the fast time-scale smoothing), but stays below static CBR.
    for row in rows[1:]:
        assert row["rcbr"] >= row["shared"] - slack
        assert row["rcbr"] < cbr

    # The headline gain: at the largest N, RCBR needs well under half of
    # the static CBR bandwidth (the paper reports < 1/3 at N = 100).
    largest = rows[-1]
    assert largest["rcbr"] < 0.55 * cbr

    # The asymptote: c(N) approaches 1/efficiency from above.
    assert largest["rcbr"] / mean >= 1.0 / efficiency - 0.1
