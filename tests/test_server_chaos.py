"""Chaos smoke: the gateway under a fault plan with a mid-run outage.

Satellite of the server PR: run the service through injected denial
bursts plus a switch outage window in the middle of the run, and assert
three things — liveness (snapshots keep flowing at their cadence),
denial-accounting consistency, and bit-identical replay from the same
seeds.
"""

import pytest

from repro.faults.injectors import FaultPlan
from repro.server import RcbrGateway, ServerConfig
from repro.traffic.starwars import generate_starwars_trace

FAULT_SPEC = {
    "denial": {"rate": 0.3, "mean_burst": 4.0},
    "cell_loss": {"probability": 0.05},
}
FAULT_SEED = 77
OUTAGE = (4.0, 6.0)  # the bottleneck hop goes dark mid-run
DURATION = 10.0
SNAPSHOT_EVERY = 1.0


@pytest.fixture(scope="module")
def workload():
    return generate_starwars_trace(num_frames=400, seed=1995).as_workload()


def run_chaos(workload, abandon_after=None):
    config = ServerConfig(
        capacity=30 * workload.mean_rate,
        load=0.8,
        controller="always",
        seed=13,
        initial_calls=12,
        abandon_after=abandon_after,
        max_retries=1,
    )
    faults = FaultPlan.from_spec(FAULT_SPEC, seed=FAULT_SEED)
    gateway = RcbrGateway(workload, config, faults=faults)
    gateway.ports[-1].schedule_outage(*OUTAGE)
    report = gateway.run(DURATION, snapshot_every=SNAPSHOT_EVERY)
    return gateway, report


@pytest.fixture(scope="module")
def chaos():
    return run_chaos(
        generate_starwars_trace(num_frames=400, seed=1995).as_workload()
    )


class TestLiveness:
    def test_snapshots_keep_flowing_through_the_outage(self, chaos):
        _, report = chaos
        assert len(report.snapshots) == int(DURATION / SNAPSHOT_EVERY)
        times = [snapshot.time for snapshot in report.snapshots]
        assert times == sorted(times)
        # Snapshots emitted inside the outage window too, not just around it.
        inside = [t for t in times if OUTAGE[0] < t <= OUTAGE[1]]
        assert inside

    def test_faults_actually_fired(self, chaos):
        gateway, report = chaos
        stats = gateway.path.stats
        assert stats.outage_drops > 0  # cells eaten by the dark switch
        assert stats.cells_lost > 0
        assert stats.timeouts > 0
        assert report.final.injected_denials > 0

    def test_service_survives(self, chaos):
        _, report = chaos
        final = report.final
        assert final.active_calls > 0
        assert final.reneg_requests > 0
        # The gateway kept serving after the outage: renegotiations in the
        # post-outage window.
        after = [s for s in report.snapshots if s.time > OUTAGE[1]]
        assert after
        assert after[-1].reneg_requests > max(
            s.reneg_requests for s in report.snapshots if s.time <= OUTAGE[1]
        )


class TestDenialAccounting:
    def test_denial_consistency(self, chaos):
        gateway, report = chaos
        final = report.final
        assert final.arrivals == final.blocked + final.admitted
        assert final.departed == final.completed + final.abandoned
        assert final.active_calls == final.admitted - final.departed
        assert final.injected_denials <= final.reneg_denied
        assert final.reneg_denied <= final.reneg_requests
        # Injected denials never reach the wire; everything else does.
        assert (
            gateway.path.stats.requests
            == final.reneg_requests - final.injected_denials
        )
        assert 0.0 <= final.signaling_failure_fraction <= 1.0

    def test_abandonment_under_sustained_denials(self, workload):
        _, report = run_chaos(workload, abandon_after=1)
        final = report.final
        assert final.abandoned > 0
        assert final.departed == final.completed + final.abandoned


class TestReplay:
    def test_bit_identical_replay(self, workload):
        first = run_chaos(workload)[1]
        second = run_chaos(workload)[1]
        assert first.fingerprint == second.fingerprint
        assert [s.canonical() for s in first.snapshots] == [
            s.canonical() for s in second.snapshots
        ]

    def test_different_fault_seed_diverges(self, workload):
        config = ServerConfig(
            capacity=30 * workload.mean_rate,
            load=0.8,
            controller="always",
            seed=13,
            initial_calls=12,
        )

        def fingerprint(fault_seed):
            faults = FaultPlan.from_spec(FAULT_SPEC, seed=fault_seed)
            gateway = RcbrGateway(workload, config, faults=faults)
            return gateway.run(DURATION, snapshot_every=SNAPSHOT_EVERY).fingerprint

        assert fingerprint(1) != fingerprint(2)
