"""Extension: admission control for a heterogeneous call mix.

The paper's Section VI studies a single call class.  Real links carry a
mix — here, RCBR video calls sharing a link with much smaller constant
audio calls.  The mixture Chernoff bound (a direct generalisation of
eq. 12) drives admission per class.  Expected shape:

* the homogeneous bound applied to the pooled average marginal
  *misprices* the mix — smearing the video tail across the many audio
  calls inflates the estimated risk, so a pooled controller would block
  audio calls the class-aware bound can safely admit;
* simulated failure probability under the heterogeneous controller
  respects the target while utilization stays healthy.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._common import fmt, once, optimal_schedule, print_table, scale
from repro.admission.callsim import CallLevelSimulator
from repro.admission.controllers import HeterogeneousKnowledgeCAC
from repro.analysis.chernoff import (
    heterogeneous_overload_probability,
    overload_probability,
)
from repro.core.schedule import RateSchedule, empirical_rate_distribution
from repro.util.units import kbps

FAILURE_TARGET = 1e-3
AUDIO_RATE = kbps(64)


@pytest.fixture(scope="module")
def video_schedule():
    return optimal_schedule()


def test_heterogeneous_admission(benchmark, video_schedule):
    video_levels, video_fractions = empirical_rate_distribution(video_schedule)
    audio_levels = np.array([AUDIO_RATE])
    audio_fractions = np.array([1.0])
    mean_video = video_schedule.average_rate()
    capacity = 12 * mean_video

    def run():
        # Static comparison: risk of a 50/50-by-bandwidth mix.
        num_video = 8
        num_audio = int(round(2 * mean_video / AUDIO_RATE))
        classes = [
            (audio_levels, audio_fractions, num_audio),
            (video_levels, video_fractions, num_video),
        ]
        class_aware = heterogeneous_overload_probability(classes, capacity)
        # Naive pooled marginal: every call looks like the average call.
        pooled_levels = np.concatenate([audio_levels, video_levels])
        pooled_fractions = np.concatenate(
            [
                num_audio * audio_fractions,
                num_video * video_fractions,
            ]
        )
        pooled_fractions = pooled_fractions / pooled_fractions.sum()
        naive = overload_probability(
            pooled_levels, pooled_fractions, num_audio + num_video, capacity
        )

        # Dynamic simulation with the class-aware controller.
        audio_schedule = RateSchedule.constant(
            AUDIO_RATE, video_schedule.duration
        )
        controller = HeterogeneousKnowledgeCAC(
            [
                (audio_levels, audio_fractions),
                (video_levels, video_fractions),
            ],
            FAILURE_TARGET,
        )
        simulator = CallLevelSimulator(
            [audio_schedule, video_schedule],
            capacity=capacity,
            arrival_rate=20.0 / video_schedule.duration,
            controller=controller,
            seed=33,
            class_weights=[0.6, 0.4],
        )
        samples = [
            simulator.run_interval()
            for _ in range(max(4, scale().mbac_max_intervals // 2))
        ]
        failure = float(np.mean([s.failure_fraction for s in samples]))
        utilization = float(np.mean([s.utilization for s in samples]))
        blocking = float(np.mean([s.blocking_fraction for s in samples]))
        return class_aware, naive, failure, utilization, blocking

    class_aware, naive, failure, utilization, blocking = once(benchmark, run)

    print_table(
        "Heterogeneous admission: audio + RCBR video on one link",
        ["quantity", "value"],
        [
            ["class-aware Chernoff estimate", fmt(class_aware)],
            ["pooled-marginal (naive) estimate", fmt(naive)],
            ["simulated failure probability", fmt(failure)],
            ["simulated utilization", fmt(utilization, 3)],
            ["simulated blocking", fmt(blocking, 3)],
        ],
    )

    # The class-aware bound is sane and the naive pooled bound does not
    # overstate it (pooling smears the video tail across audio calls).
    assert 0.0 <= class_aware <= 1.0
    assert naive <= class_aware * 10 + 1e-12
    # The controller holds the measured failure probability near target.
    assert failure <= 30 * FAILURE_TARGET
    # And still does useful work.
    assert utilization > 0.1
