"""Ablation: optimal smoothing vs renegotiation (Section V-A / VIII).

The theory says buffering/smoothing alone cannot rescue multiple
time-scale traffic: the smoothed schedule's *peak* is pinned by the worst
scene, so a one-shot CBR reservation barely improves, while RCBR's
*average* reservation is what matters and sits near the source mean.

Rows compare, on the same trace and the same 300 kb buffer:

* optimal smoothing (Salehi et al.) — minimal-peak one-shot plan;
* the optimal RCBR schedule — renegotiated plan.
"""

from __future__ import annotations

import pytest

from benchmarks._common import (
    BUFFER_BITS,
    fmt,
    once,
    optimal_schedule,
    print_table,
    starwars_trace,
)
from repro.core.smoothing import optimal_smoothing
from repro.util.units import mbits


@pytest.fixture(scope="module")
def trace():
    return starwars_trace()


def test_smoothing_cannot_beat_slow_timescale(benchmark, trace):
    workload = trace.as_workload()
    mean = trace.mean_rate

    def run():
        smooth_small = optimal_smoothing(workload, BUFFER_BITS)
        smooth_large = optimal_smoothing(workload, mbits(10))
        return smooth_small, smooth_large

    smooth_small, smooth_large = once(benchmark, run)
    rcbr = optimal_schedule()

    print_table(
        "Smoothing vs renegotiation on the same trace",
        ["plan", "one-shot reservation needs", "avg reserved", "renegs"],
        [
            ["optimal smoothing, 300 kb",
             fmt(smooth_small.peak_rate / mean, 2) + "x mean (peak)",
             fmt(smooth_small.schedule.average_rate() / mean, 3) + "x", "0"],
            ["optimal smoothing, 10 Mb",
             fmt(smooth_large.peak_rate / mean, 2) + "x mean (peak)",
             fmt(smooth_large.schedule.average_rate() / mean, 3) + "x", "0"],
            ["RCBR, 300 kb",
             fmt(rcbr.average_rate() / mean, 3) + "x mean (average)",
             fmt(rcbr.average_rate() / mean, 3) + "x",
             str(rcbr.num_renegotiations)],
        ],
    )

    # Smoothing with the RCBR-sized buffer still needs a near-worst-scene
    # peak reservation (the slow time scale is untouched)...
    assert smooth_small.peak_rate > 3.0 * mean
    # ...and even a 30x bigger buffer leaves the peak far above the mean.
    assert smooth_large.peak_rate > 1.5 * mean
    # RCBR reserves near the mean on average with slow renegotiation.
    assert rcbr.average_rate() < 1.2 * mean
    assert rcbr.mean_renegotiation_interval() > 2.0
    # Sanity: the smoothing plan respects its buffer (up to the float
    # rounding of the piecewise rates).
    assert smooth_small.schedule.max_buffer(workload) <= BUFFER_BITS + 1.0
