"""Frame-size traces.

A :class:`FrameTrace` is the workload object used throughout the
reproduction: a sequence of frame sizes (in bits) produced at a fixed frame
rate.  The paper's experiments all consume the MPEG-1 *Star Wars* trace in
this form ("for video, a time slot would typically be the duration of a
frame", Section IV-A).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Union

import numpy as np

from repro.util.rng import SeedLike, as_generator


@dataclass(frozen=True)
class FrameTrace:
    """A fixed-frame-rate video trace.

    Parameters
    ----------
    frame_bits:
        Size of each frame in bits, one entry per frame.
    frames_per_second:
        Playback frame rate (the paper's trace is 24 frames/s MPEG-1).
    name:
        Optional human-readable label carried through experiments.
    """

    frame_bits: np.ndarray
    frames_per_second: float = 24.0
    name: str = "trace"
    _metadata: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        array = np.asarray(self.frame_bits, dtype=float)
        if array.ndim != 1:
            raise ValueError(f"frame_bits must be 1-D, got shape {array.shape}")
        if array.size == 0:
            raise ValueError("a trace must contain at least one frame")
        if np.any(array < 0):
            raise ValueError("frame sizes must be non-negative")
        if self.frames_per_second <= 0:
            raise ValueError("frames_per_second must be positive")
        object.__setattr__(self, "frame_bits", array)
        array.setflags(write=False)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_frames(self) -> int:
        return int(self.frame_bits.size)

    @property
    def frame_duration(self) -> float:
        """Duration of one frame slot in seconds."""
        return 1.0 / self.frames_per_second

    @property
    def duration(self) -> float:
        """Total playback duration in seconds."""
        return self.num_frames * self.frame_duration

    @property
    def total_bits(self) -> float:
        return float(self.frame_bits.sum())

    @property
    def mean_rate(self) -> float:
        """Long-term average rate in bits per second."""
        return self.total_bits / self.duration

    @property
    def peak_rate(self) -> float:
        """Largest single-frame rate in bits per second."""
        return float(self.frame_bits.max()) * self.frames_per_second

    @property
    def rates(self) -> np.ndarray:
        """Per-frame instantaneous rates in bits per second."""
        return self.frame_bits * self.frames_per_second

    def cumulative_bits(self) -> np.ndarray:
        """A(t): cumulative arrivals after each frame, length ``num_frames``."""
        return np.cumsum(self.frame_bits)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def shifted(self, offset_frames: int, name: str = "") -> "FrameTrace":
        """Circularly shift the trace by ``offset_frames`` frames.

        The paper builds multiplexed workloads from "randomly shifted
        versions of this trace" (Section V-B); circular shifting preserves
        the marginal statistics while decorrelating the sources.
        """
        offset = int(offset_frames) % self.num_frames
        rolled = np.roll(self.frame_bits, -offset)
        return FrameTrace(
            rolled,
            self.frames_per_second,
            name or f"{self.name}+{offset}f",
        )

    def random_shift(self, seed: SeedLike = None) -> "FrameTrace":
        """A uniformly random circular shift of the trace."""
        rng = as_generator(seed)
        return self.shifted(int(rng.integers(self.num_frames)))

    def prefix(self, num_frames: int, name: str = "") -> "FrameTrace":
        """The first ``num_frames`` frames, e.g. for fast benchmarks."""
        if not 1 <= num_frames <= self.num_frames:
            raise ValueError(
                f"num_frames must be in [1, {self.num_frames}], got {num_frames}"
            )
        return FrameTrace(
            self.frame_bits[:num_frames].copy(),
            self.frames_per_second,
            name or f"{self.name}[:{num_frames}]",
        )

    def aggregate(self, frames_per_slot: int) -> "SlottedWorkload":
        """Aggregate frames into coarser slots (sums of consecutive frames).

        Useful to run the renegotiation DP on long traces at a coarser
        renegotiation granularity, trading schedule precision for speed.
        """
        if frames_per_slot < 1:
            raise ValueError("frames_per_slot must be >= 1")
        count = self.num_frames // frames_per_slot
        if count == 0:
            raise ValueError("trace shorter than one aggregated slot")
        trimmed = self.frame_bits[: count * frames_per_slot]
        sums = trimmed.reshape(count, frames_per_slot).sum(axis=1)
        return SlottedWorkload(
            bits_per_slot=sums,
            slot_duration=frames_per_slot * self.frame_duration,
            name=f"{self.name}/agg{frames_per_slot}",
        )

    def as_workload(self) -> "SlottedWorkload":
        """View the trace as a slotted workload (one slot per frame)."""
        return SlottedWorkload(
            bits_per_slot=self.frame_bits,
            slot_duration=self.frame_duration,
            name=self.name,
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Save to ``.npz`` (compressed) with metadata."""
        path = Path(path)
        np.savez_compressed(
            path,
            frame_bits=self.frame_bits,
            frames_per_second=np.asarray(self.frames_per_second),
            name=np.asarray(self.name),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FrameTrace":
        """Load a trace previously written with :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as data:
            return cls(
                frame_bits=data["frame_bits"],
                frames_per_second=float(data["frames_per_second"]),
                name=str(data["name"]),
            )

    def save_text(self, path: Union[str, Path]) -> None:
        """Save in the classic one-frame-size-per-line text format.

        This is the format the original Garrett/Willinger Star Wars trace
        was distributed in (frame sizes in bits, one per line), with a JSON
        header line for the frame rate.
        """
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            header = {"frames_per_second": self.frames_per_second, "name": self.name}
            handle.write("# " + json.dumps(header) + "\n")
            for size in self.frame_bits:
                handle.write(f"{size:.0f}\n")

    @classmethod
    def load_text(
        cls, path: Union[str, Path], frames_per_second: float = 24.0
    ) -> "FrameTrace":
        """Load a one-frame-per-line text trace (optionally with JSON header)."""
        path = Path(path)
        name = path.stem
        sizes = []
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    try:
                        header = json.loads(line[1:].strip())
                        frames_per_second = header.get(
                            "frames_per_second", frames_per_second
                        )
                        name = header.get("name", name)
                    except json.JSONDecodeError:
                        pass
                    continue
                sizes.append(float(line))
        return cls(np.asarray(sizes), frames_per_second, name)

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_frames

    def __iter__(self) -> Iterable[float]:
        return iter(self.frame_bits)


@dataclass(frozen=True)
class SlottedWorkload:
    """A generic slotted arrival process: bits arriving per fixed slot.

    This is the form consumed by the renegotiation schedulers and the fluid
    queues.  ``FrameTrace.as_workload()`` produces one slot per frame;
    ``FrameTrace.aggregate()`` produces coarser slots.
    """

    bits_per_slot: np.ndarray
    slot_duration: float
    name: str = "workload"

    def __post_init__(self) -> None:
        array = np.asarray(self.bits_per_slot, dtype=float)
        if array.ndim != 1 or array.size == 0:
            raise ValueError("bits_per_slot must be a non-empty 1-D array")
        if np.any(array < 0):
            raise ValueError("arrivals must be non-negative")
        if self.slot_duration <= 0:
            raise ValueError("slot_duration must be positive")
        object.__setattr__(self, "bits_per_slot", array)
        array.setflags(write=False)

    @property
    def num_slots(self) -> int:
        return int(self.bits_per_slot.size)

    @property
    def duration(self) -> float:
        return self.num_slots * self.slot_duration

    @property
    def total_bits(self) -> float:
        return float(self.bits_per_slot.sum())

    @property
    def mean_rate(self) -> float:
        return self.total_bits / self.duration

    @property
    def peak_rate(self) -> float:
        return float(self.bits_per_slot.max()) / self.slot_duration

    @property
    def rates(self) -> np.ndarray:
        """Per-slot instantaneous rates in bits per second."""
        return self.bits_per_slot / self.slot_duration

    def __len__(self) -> int:
        return self.num_slots
