"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis.chernoff import log_mgf, overload_probability, rate_function
from repro.core.optimal import OptimalScheduler
from repro.core.schedule import RateSchedule, empirical_rate_distribution
from repro.queueing.fluid import required_buffer, simulate_fluid_queue
from repro.queueing.leaky_bucket import TokenBucket, minimal_bucket_depth
from repro.queueing.link import RcbrLink
from repro.queueing.mux import rcbr_overflow_bits
from repro.traffic.trace import SlottedWorkload

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
arrivals_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 40),
    elements=st.floats(0.0, 1000.0, allow_nan=False, allow_infinity=False),
)

positive_rates = st.floats(0.1, 2000.0, allow_nan=False, allow_infinity=False)

slot_rate_lists = st.lists(
    st.sampled_from([0.0, 10.0, 25.0, 70.0, 200.0]), min_size=1, max_size=50
)


# ----------------------------------------------------------------------
# Fluid queue invariants
# ----------------------------------------------------------------------
class TestFluidQueueProperties:
    @given(arrivals=arrivals_arrays, drain=positive_rates,
           buffer_bits=st.floats(0.0, 5000.0))
    @settings(max_examples=100, deadline=None)
    def test_conservation_and_bounds(self, arrivals, drain, buffer_bits):
        result = simulate_fluid_queue(arrivals, drain, buffer_bits)
        assert 0.0 <= result.final_occupancy <= buffer_bits + 1e-9
        assert 0.0 <= result.lost_bits <= result.arrived_bits + 1e-9
        assert result.max_occupancy <= buffer_bits + 1e-9
        served = result.arrived_bits - result.lost_bits - result.final_occupancy
        # Served work cannot exceed total drain capacity.
        assert served <= drain * arrivals.size + 1e-6
        assert served >= -1e-9

    @given(arrivals=arrivals_arrays, drain=positive_rates)
    @settings(max_examples=100, deadline=None)
    def test_infinite_buffer_no_loss(self, arrivals, drain):
        result = simulate_fluid_queue(arrivals, drain)
        assert result.lost_bits == 0.0

    @given(arrivals=arrivals_arrays, drain=positive_rates)
    @settings(max_examples=60, deadline=None)
    def test_loss_decreases_with_buffer(self, arrivals, drain):
        small = simulate_fluid_queue(arrivals, drain, buffer_bits=100.0)
        large = simulate_fluid_queue(arrivals, drain, buffer_bits=500.0)
        assert large.lost_bits <= small.lost_bits + 1e-9

    @given(arrivals=arrivals_arrays)
    @settings(max_examples=60, deadline=None)
    def test_required_buffer_monotone_in_drain(self, arrivals):
        low = required_buffer(arrivals, 5.0)
        high = required_buffer(arrivals, 50.0)
        assert high <= low + 1e-9


# ----------------------------------------------------------------------
# Schedule invariants
# ----------------------------------------------------------------------
class TestScheduleProperties:
    @given(rates=slot_rate_lists, slot=st.floats(0.01, 2.0))
    @settings(max_examples=100, deadline=None)
    def test_slot_rate_roundtrip(self, rates, slot):
        schedule = RateSchedule.from_slot_rates(rates, slot)
        assert np.allclose(schedule.slot_rates(slot, len(rates)), rates)

    @given(rates=slot_rate_lists, slot=st.floats(0.01, 2.0),
           offset=st.floats(0.0, 100.0))
    @settings(max_examples=100, deadline=None)
    def test_shift_invariants(self, rates, slot, offset):
        schedule = RateSchedule.from_slot_rates(rates, slot)
        shifted = schedule.shifted(offset)
        assert shifted.duration == pytest.approx(schedule.duration)
        assert shifted.average_rate() == pytest.approx(
            schedule.average_rate(), rel=1e-9, abs=1e-9
        )

    @given(rates=slot_rate_lists, slot=st.floats(0.01, 2.0))
    @settings(max_examples=100, deadline=None)
    def test_marginal_sums_to_one(self, rates, slot):
        schedule = RateSchedule.from_slot_rates(rates, slot)
        _, fractions = empirical_rate_distribution(schedule)
        assert fractions.sum() == pytest.approx(1.0)
        assert np.all(fractions > 0.0)

    @given(rates=slot_rate_lists, slot=st.floats(0.01, 2.0),
           offset=st.floats(0.0, 100.0))
    @settings(max_examples=60, deadline=None)
    def test_shift_preserves_marginal(self, rates, slot, offset):
        schedule = RateSchedule.from_slot_rates(rates, slot)
        la, fa = empirical_rate_distribution(schedule)
        lb, fb = empirical_rate_distribution(schedule.shifted(offset))
        assert np.allclose(la, lb)
        assert np.allclose(fa, fb, atol=1e-9)


# ----------------------------------------------------------------------
# Optimal DP invariants
# ----------------------------------------------------------------------
class TestOptimalProperties:
    @given(
        arrivals=hnp.arrays(
            dtype=np.float64, shape=st.integers(2, 10),
            elements=st.floats(0.0, 8.0),
        ),
        alpha=st.floats(0.0, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_schedule_feasible_and_cost_consistent(self, arrivals, alpha):
        levels = [2.0, 5.0, 9.0]
        buffer_bits = 6.0
        workload = SlottedWorkload(arrivals, slot_duration=1.0)
        scheduler = OptimalScheduler(levels, alpha=alpha, beta=1.0)
        result = scheduler.solve(workload, buffer_bits=buffer_bits)
        assert result.schedule.is_feasible(workload, buffer_bits)
        recomputed = result.schedule.cost(alpha, 1.0, 1.0)
        assert result.total_cost == pytest.approx(recomputed, rel=1e-9)

    @given(
        arrivals=hnp.arrays(
            dtype=np.float64, shape=st.integers(2, 10),
            elements=st.floats(0.0, 8.0),
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_optimal_no_worse_than_constant_peak(self, arrivals):
        """The constant-max-level schedule is always feasible, so the
        optimum must not cost more."""
        levels = [2.0, 5.0, 9.0]
        alpha = 1.0
        workload = SlottedWorkload(arrivals, slot_duration=1.0)
        result = OptimalScheduler(levels, alpha=alpha).solve(
            workload, buffer_bits=8.0
        )
        constant_cost = 9.0 * arrivals.size  # no renegotiations
        assert result.total_cost <= constant_cost + 1e-9


# ----------------------------------------------------------------------
# Token bucket invariants
# ----------------------------------------------------------------------
class TestTokenBucketProperties:
    @given(arrivals=arrivals_arrays, rate=positive_rates,
           depth=st.floats(0.0, 3000.0))
    @settings(max_examples=100, deadline=None)
    def test_police_partition(self, arrivals, rate, depth):
        workload = SlottedWorkload(arrivals, 1.0) if arrivals.sum() > 0 else None
        if workload is None:
            return
        bucket = TokenBucket(rate, depth)
        conformant, excess = bucket.police(workload)
        assert np.allclose(conformant + excess, workload.bits_per_slot)
        assert np.all(conformant >= -1e-12)
        assert np.all(excess >= -1e-12)

    @given(arrivals=arrivals_arrays, rate=positive_rates)
    @settings(max_examples=60, deadline=None)
    def test_minimal_depth_is_tight(self, arrivals, rate):
        if arrivals.sum() == 0:
            return
        workload = SlottedWorkload(arrivals, 1.0)
        depth = minimal_bucket_depth(workload, rate)
        assert TokenBucket(rate, depth + 1e-6).conforms(workload)

    @given(arrivals=arrivals_arrays, rate=positive_rates,
           depth=st.floats(1.0, 3000.0))
    @settings(max_examples=60, deadline=None)
    def test_shaped_output_conforms(self, arrivals, rate, depth):
        if arrivals.sum() == 0:
            return
        workload = SlottedWorkload(arrivals, 1.0)
        bucket = TokenBucket(rate, depth)
        shaped = bucket.shape(workload).as_workload()
        assert bucket.conforms(shaped)


# ----------------------------------------------------------------------
# Chernoff invariants
# ----------------------------------------------------------------------
class TestChernoffProperties:
    marginals = st.lists(
        st.tuples(st.floats(0.0, 100.0), st.floats(0.01, 1.0)),
        min_size=1, max_size=6,
    )

    @given(marginal=marginals, theta=st.floats(0.0, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_log_mgf_convexity_point(self, marginal, theta):
        levels = [m[0] for m in marginal]
        probs = [m[1] for m in marginal]
        # Midpoint convexity at (0, theta): Lambda(theta/2) <= Lambda(theta)/2
        half = log_mgf(levels, probs, theta / 2)
        full = log_mgf(levels, probs, theta)
        assert half <= full / 2 + 1e-9

    @given(marginal=marginals, capacity=st.floats(1.0, 500.0),
           calls=st.integers(1, 50))
    @settings(max_examples=100, deadline=None)
    def test_overload_probability_in_unit_interval(
        self, marginal, capacity, calls
    ):
        levels = [m[0] for m in marginal]
        probs = [m[1] for m in marginal]
        value = overload_probability(levels, probs, calls, capacity)
        assert 0.0 <= value <= 1.0

    @given(marginal=marginals, c=st.floats(0.0, 120.0))
    @settings(max_examples=100, deadline=None)
    def test_rate_function_nonnegative(self, marginal, c):
        levels = [m[0] for m in marginal]
        probs = [m[1] for m in marginal]
        value = rate_function(levels, probs, c)
        assert value >= 0.0 or math.isinf(value)


# ----------------------------------------------------------------------
# RCBR link invariants
# ----------------------------------------------------------------------
class TestLinkProperties:
    @given(
        requests=st.lists(
            st.tuples(st.integers(0, 5), st.floats(0.0, 600.0)),
            min_size=1, max_size=30,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_capacity_never_exceeded_and_work_conserving(self, requests):
        link = RcbrLink(1000.0)
        for time, (source, rate) in enumerate(requests):
            link.request(source, rate, float(time))
            assert link.allocated <= link.capacity + 1e-6
            expected = min(link.total_demand, link.capacity)
            assert link.allocated == pytest.approx(expected, abs=1e-6)

    @given(
        segments=st.lists(
            st.sampled_from([100.0, 250.0, 400.0, 700.0]),
            min_size=1, max_size=8, unique=False,
        ),
        capacity_factor=st.floats(0.5, 1.5),
        num_sources=st.integers(1, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_aggregate_loss_matches_event_sim(
        self, segments, capacity_factor, num_sources
    ):
        from repro.core.service import simulate_rcbr_link

        deduped = [segments[0]]
        for rate in segments[1:]:
            if rate != deduped[-1]:
                deduped.append(rate)
        times = [float(i) for i in range(len(deduped))]
        schedule = RateSchedule(times, deduped, duration=len(deduped))
        schedules = [
            schedule.shifted(i * schedule.duration / num_sources)
            for i in range(num_sources)
        ]
        capacity = max(
            1.0, num_sources * schedule.average_rate() * capacity_factor
        )
        detailed = simulate_rcbr_link(schedules, capacity)
        lost, _ = rcbr_overflow_bits(schedules, capacity)
        assert detailed.lost_bits == pytest.approx(lost, rel=1e-6, abs=1e-6)
