"""Markov-modulated traffic sources.

Section V-A of the paper models a video source as a discrete-time process
``{X_t}`` whose rate is a function of the state of an irreducible
finite-state Markov chain.  The state space decomposes into *subchains*:
fast time-scale dynamics happen inside a subchain, while transitions
*between* subchains are rare (probability ``epsilon``), modelling scene
changes.  Figure 4 shows a three-subchain example.

:class:`MarkovChain` provides the linear-algebra plumbing (validation,
stationary distribution, sampling), :class:`MarkovModulatedSource` attaches
per-state rates, and :class:`MultiTimescaleMarkovSource` composes subchains
exactly as in the paper so that the large-deviations results of
:mod:`repro.analysis` can be checked against simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.traffic.trace import SlottedWorkload
from repro.util.rng import SeedLike, as_generator


class MarkovChain:
    """A finite, discrete-time Markov chain given by a row-stochastic matrix."""

    def __init__(self, transition_matrix: Sequence[Sequence[float]]) -> None:
        matrix = np.asarray(transition_matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"transition matrix must be square, got {matrix.shape}")
        if matrix.shape[0] == 0:
            raise ValueError("transition matrix must be non-empty")
        if np.any(matrix < -1e-12):
            raise ValueError("transition probabilities must be non-negative")
        row_sums = matrix.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=1e-8):
            raise ValueError(
                f"rows of the transition matrix must sum to 1, got {row_sums}"
            )
        # Renormalise away float dust so long sample paths stay unbiased.
        self._matrix = np.clip(matrix, 0.0, None)
        self._matrix /= self._matrix.sum(axis=1, keepdims=True)
        self._stationary: Optional[np.ndarray] = None

    @property
    def num_states(self) -> int:
        return self._matrix.shape[0]

    @property
    def transition_matrix(self) -> np.ndarray:
        return self._matrix.copy()

    def stationary_distribution(self) -> np.ndarray:
        """The stationary distribution pi with pi P = pi.

        Solved as the null space of (P^T - I) with the normalisation
        constraint appended, which is robust for nearly decomposable
        chains (our multiple time-scale chains are exactly that).
        """
        if self._stationary is None:
            n = self.num_states
            system = np.vstack([self._matrix.T - np.eye(n), np.ones((1, n))])
            rhs = np.zeros(n + 1)
            rhs[-1] = 1.0
            solution, *_ = np.linalg.lstsq(system, rhs, rcond=None)
            solution = np.clip(solution, 0.0, None)
            total = solution.sum()
            if total <= 0:
                raise ValueError("failed to compute stationary distribution")
            self._stationary = solution / total
        return self._stationary.copy()

    def sample_path(
        self,
        num_steps: int,
        seed: SeedLike = None,
        initial_state: Optional[int] = None,
    ) -> np.ndarray:
        """Sample a state path of length ``num_steps``.

        If ``initial_state`` is None the path starts from the stationary
        distribution, so sample paths are (statistically) stationary from
        the first step.
        """
        if num_steps < 1:
            raise ValueError("num_steps must be >= 1")
        rng = as_generator(seed)
        cumulative = np.cumsum(self._matrix, axis=1)
        path = np.empty(num_steps, dtype=np.int64)
        if initial_state is None:
            state = int(
                rng.choice(self.num_states, p=self.stationary_distribution())
            )
        else:
            if not 0 <= initial_state < self.num_states:
                raise ValueError(f"initial_state out of range: {initial_state}")
            state = int(initial_state)
        uniforms = rng.random(num_steps)
        for step in range(num_steps):
            path[step] = state
            state = int(np.searchsorted(cumulative[state], uniforms[step]))
            if state >= self.num_states:  # guard against u == 1.0 edge
                state = self.num_states - 1
        return path


@dataclass(frozen=True)
class MarkovModulatedSource:
    """A Markov chain with a data rate attached to each state.

    ``rates`` are in bits per second; the source emits
    ``rate[state] * slot_duration`` bits in each slot.
    """

    chain: MarkovChain
    rates: np.ndarray
    slot_duration: float = 1.0 / 24.0
    name: str = "mmrp"

    def __post_init__(self) -> None:
        rates = np.asarray(self.rates, dtype=float)
        if rates.ndim != 1 or rates.size != self.chain.num_states:
            raise ValueError(
                "rates must be a vector with one entry per chain state "
                f"(chain has {self.chain.num_states} states, rates shape {rates.shape})"
            )
        if np.any(rates < 0):
            raise ValueError("rates must be non-negative")
        if self.slot_duration <= 0:
            raise ValueError("slot_duration must be positive")
        object.__setattr__(self, "rates", rates)
        rates.setflags(write=False)

    @property
    def num_states(self) -> int:
        return self.chain.num_states

    @property
    def bits_per_slot_by_state(self) -> np.ndarray:
        """a_i: bits emitted per slot in each state."""
        return self.rates * self.slot_duration

    def mean_rate(self) -> float:
        """Stationary mean rate in bits per second."""
        return float(self.chain.stationary_distribution() @ self.rates)

    def peak_rate(self) -> float:
        return float(self.rates.max())

    def sample_states(
        self,
        num_slots: int,
        seed: SeedLike = None,
        initial_state: Optional[int] = None,
    ) -> np.ndarray:
        return self.chain.sample_path(num_slots, seed, initial_state)

    def sample_workload(
        self,
        num_slots: int,
        seed: SeedLike = None,
        initial_state: Optional[int] = None,
    ) -> SlottedWorkload:
        """Sample arrivals: bits per slot along a state path."""
        states = self.sample_states(num_slots, seed, initial_state)
        bits = self.bits_per_slot_by_state[states]
        return SlottedWorkload(bits, self.slot_duration, name=self.name)


@dataclass(frozen=True)
class Subchain:
    """One fast time-scale subchain of a multiple time-scale source."""

    transition_matrix: np.ndarray
    rates: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        chain = MarkovChain(self.transition_matrix)  # validates
        rates = np.asarray(self.rates, dtype=float)
        if rates.size != chain.num_states:
            raise ValueError("rates must match subchain size")
        object.__setattr__(self, "transition_matrix", chain.transition_matrix)
        object.__setattr__(self, "rates", rates)

    @property
    def num_states(self) -> int:
        return int(self.rates.size)

    def as_source(self, slot_duration: float) -> MarkovModulatedSource:
        """The subchain viewed in isolation as a source."""
        return MarkovModulatedSource(
            MarkovChain(self.transition_matrix),
            self.rates,
            slot_duration,
            name=self.name or "subchain",
        )

    def mean_rate(self) -> float:
        """m_i: the stationary mean rate of the subchain in isolation."""
        return float(
            MarkovChain(self.transition_matrix).stationary_distribution()
            @ self.rates
        )


class MultiTimescaleMarkovSource:
    """The paper's multiple time-scale Markov-modulated source (Fig. 4).

    The state space is the union of the subchains' state spaces.  At every
    slot, with probability ``1 - epsilon`` the source moves inside its
    current subchain (per that subchain's transition matrix); with the
    rare probability ``epsilon`` it jumps to another subchain chosen from
    the row of ``subchain_transitions``, landing in that subchain's
    stationary distribution.  Small ``epsilon`` means long scene
    dwell-times: the expected dwell in a subchain is ``1/epsilon`` slots.
    """

    def __init__(
        self,
        subchains: Sequence[Subchain],
        subchain_transitions: Sequence[Sequence[float]],
        epsilon: float,
        slot_duration: float = 1.0 / 24.0,
        name: str = "multiscale",
    ) -> None:
        if len(subchains) < 2:
            raise ValueError("need at least two subchains for multiple time scales")
        if not 0.0 < epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        slow = np.asarray(subchain_transitions, dtype=float)
        if slow.shape != (len(subchains), len(subchains)):
            raise ValueError(
                "subchain_transitions must be square with one row per subchain"
            )
        if np.any(np.diag(slow) != 0.0):
            raise ValueError(
                "subchain_transitions must have zero diagonal (self-jumps are "
                "the 1 - epsilon case)"
            )
        if not np.allclose(slow.sum(axis=1), 1.0, atol=1e-8):
            raise ValueError("rows of subchain_transitions must sum to 1")

        self.subchains = list(subchains)
        self.subchain_transitions = slow
        self.epsilon = float(epsilon)
        self.slot_duration = float(slot_duration)
        self.name = name

        # Build the flat composed chain.
        sizes = [sub.num_states for sub in self.subchains]
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        total = int(offsets[-1])
        matrix = np.zeros((total, total))
        rates = np.zeros(total)
        entry_distributions = [
            MarkovChain(sub.transition_matrix).stationary_distribution()
            for sub in self.subchains
        ]
        for i, sub in enumerate(self.subchains):
            lo, hi = offsets[i], offsets[i + 1]
            matrix[lo:hi, lo:hi] = (1.0 - epsilon) * sub.transition_matrix
            rates[lo:hi] = sub.rates
            for j, _ in enumerate(self.subchains):
                if j == i:
                    continue
                jlo, jhi = offsets[j], offsets[j + 1]
                jump = epsilon * slow[i, j]
                matrix[lo:hi, jlo:jhi] += jump * entry_distributions[j][None, :]
        self._offsets = offsets
        self._state_subchain = np.concatenate(
            [np.full(size, index) for index, size in enumerate(sizes)]
        )
        self._source = MarkovModulatedSource(
            MarkovChain(matrix), rates, slot_duration, name=name
        )

    # ------------------------------------------------------------------
    @property
    def flat_source(self) -> MarkovModulatedSource:
        """The composed source over the union state space."""
        return self._source

    @property
    def num_subchains(self) -> int:
        return len(self.subchains)

    @property
    def state_subchain(self) -> np.ndarray:
        """Map from flat state index to subchain index."""
        return self._state_subchain.copy()

    def mean_rate(self) -> float:
        return self._source.mean_rate()

    def peak_rate(self) -> float:
        return self._source.peak_rate()

    def subchain_stationary_distribution(self) -> np.ndarray:
        """pi_i: stationary probability of residing in each subchain."""
        pi = self._source.chain.stationary_distribution()
        return np.array(
            [
                pi[self._offsets[i] : self._offsets[i + 1]].sum()
                for i in range(self.num_subchains)
            ]
        )

    def subchain_mean_rates(self) -> np.ndarray:
        """m_i: mean rate of each subchain considered in isolation."""
        return np.array([sub.mean_rate() for sub in self.subchains])

    def slow_marginal(self):
        """(pi, m): the slow time-scale marginal used by eqs. 10-12.

        A random variable taking value ``m[i]`` (the mean rate of subchain
        ``i``) with probability ``pi[i]``.
        """
        return self.subchain_stationary_distribution(), self.subchain_mean_rates()

    def sample_workload(
        self, num_slots: int, seed: SeedLike = None
    ) -> SlottedWorkload:
        return self._source.sample_workload(num_slots, seed)

    def sample_states(self, num_slots: int, seed: SeedLike = None) -> np.ndarray:
        return self._source.sample_states(num_slots, seed)


def two_state_onoff_subchain(
    peak_rate: float,
    activity: float,
    mixing: float = 0.5,
    name: str = "",
) -> Subchain:
    """A two-state on/off subchain with given peak rate and on-probability.

    ``activity`` is the stationary probability of the ON state;
    ``mixing`` controls how fast the subchain mixes (larger = faster).
    """
    if not 0.0 < activity < 1.0:
        raise ValueError("activity must be in (0, 1)")
    if not 0.0 < mixing <= 1.0:
        raise ValueError("mixing must be in (0, 1]")
    p_on_off = mixing * (1.0 - activity)
    p_off_on = mixing * activity
    matrix = np.array(
        [
            [1.0 - p_off_on, p_off_on],
            [p_on_off, 1.0 - p_on_off],
        ]
    )
    return Subchain(matrix, np.array([0.0, peak_rate]), name=name)


def fig4_example(
    slot_duration: float = 1.0 / 24.0,
    epsilon: float = 1e-3,
    base_rate: float = 374_000.0,
) -> MultiTimescaleMarkovSource:
    """A three-subchain source in the spirit of the paper's Fig. 4.

    Three scene classes — quiet, normal, and action — each an internally
    fast-mixing two-state chain whose mean rates are well separated, with
    rare (probability ``epsilon`` per slot) scene changes.  ``base_rate``
    sets the overall scale (default: the Star Wars mean rate).
    """
    quiet = two_state_onoff_subchain(0.8 * base_rate, 0.5, mixing=0.6, name="quiet")
    normal = two_state_onoff_subchain(1.6 * base_rate, 0.6, mixing=0.6, name="normal")
    action = two_state_onoff_subchain(4.5 * base_rate, 0.7, mixing=0.6, name="action")
    # Scene-change preferences: quiet <-> normal more common than jumps
    # straight between quiet and action.
    slow = np.array(
        [
            [0.0, 0.8, 0.2],
            [0.5, 0.0, 0.5],
            [0.2, 0.8, 0.0],
        ]
    )
    return MultiTimescaleMarkovSource(
        [quiet, normal, action], slow, epsilon, slot_duration, name="fig4"
    )
