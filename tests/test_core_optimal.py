"""The Viterbi-like optimal renegotiation DP (Section IV-A)."""

import itertools

import numpy as np
import pytest

from repro.core.optimal import (
    InfeasibleScheduleError,
    OptimalScheduler,
    granular_rate_levels,
    uniform_rate_levels,
)
from repro.traffic.trace import SlottedWorkload


def brute_force_optimum(arrivals, levels, alpha, beta, buffer_bits, slot=1.0):
    """Exhaustive search over all rate sequences (tiny instances only)."""
    best_cost = np.inf
    best_seq = None
    num_slots = len(arrivals)
    for sequence in itertools.product(range(len(levels)), repeat=num_slots):
        q = 0.0
        cost = 0.0
        feasible = True
        prev = None
        for t, idx in enumerate(sequence):
            rate = levels[idx]
            q = max(0.0, q + arrivals[t] - rate * slot)
            if q > buffer_bits + 1e-9:
                feasible = False
                break
            cost += beta * rate
            if prev is not None and idx != prev:
                cost += alpha
            prev = idx
        if feasible and cost < best_cost:
            best_cost = cost
            best_seq = sequence
    return best_cost, best_seq


class TestLevelFactories:
    def test_uniform_levels(self):
        levels = uniform_rate_levels(48_000, 2_400_000, 20)
        assert levels.size == 20
        assert levels[0] == 48_000
        assert levels[-1] == 2_400_000

    def test_uniform_levels_validation(self):
        with pytest.raises(ValueError):
            uniform_rate_levels(10, 5, 3)
        with pytest.raises(ValueError):
            uniform_rate_levels(0, 10, 1)

    def test_granular_levels_cover_max(self):
        levels = granular_rate_levels(64_000, 374_000)
        assert levels[-1] >= 374_000
        assert np.allclose(np.diff(levels), 64_000)

    def test_granular_levels_zero_flag(self):
        with_zero = granular_rate_levels(1000, 3000, include_zero=True)
        without = granular_rate_levels(1000, 3000)
        assert with_zero[0] == 0.0
        assert without[0] == 1000.0

    def test_granular_exact_multiple(self):
        levels = granular_rate_levels(100, 300)
        assert np.allclose(levels, [100, 200, 300])

    def test_granular_validation(self):
        with pytest.raises(ValueError):
            granular_rate_levels(0, 100)
        with pytest.raises(ValueError):
            granular_rate_levels(10, 0)


class TestDpAgainstBruteForce:
    """The DP must find the brute-force optimum on small instances."""

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_exhaustive_search(self, seed):
        rng = np.random.default_rng(seed)
        num_slots = 6
        levels = [1.0, 2.0, 4.0]
        arrivals = rng.uniform(0.0, 4.0, size=num_slots)
        alpha, beta, buffer_bits = 1.5, 1.0, 3.0
        expected_cost, _ = brute_force_optimum(
            arrivals, levels, alpha, beta, buffer_bits
        )
        if np.isinf(expected_cost):
            pytest.skip("instance infeasible")
        workload = SlottedWorkload(arrivals, slot_duration=1.0)
        result = OptimalScheduler(levels, alpha, beta).solve(
            workload, buffer_bits=buffer_bits
        )
        assert result.total_cost == pytest.approx(expected_cost)

    @pytest.mark.parametrize("alpha", [0.0, 0.3, 5.0, 100.0])
    def test_matches_exhaustive_for_various_alpha(self, alpha):
        rng = np.random.default_rng(99)
        levels = [1.0, 3.0]
        arrivals = rng.uniform(0.0, 3.0, size=7)
        expected_cost, _ = brute_force_optimum(
            arrivals, levels, alpha, 1.0, buffer_bits=2.0
        )
        if np.isinf(expected_cost):
            pytest.skip("instance infeasible")
        workload = SlottedWorkload(arrivals, slot_duration=1.0)
        result = OptimalScheduler(levels, alpha, 1.0).solve(
            workload, buffer_bits=2.0
        )
        assert result.total_cost == pytest.approx(expected_cost)


class TestDpBehaviour:
    def test_schedule_respects_buffer(self, short_workload):
        levels = granular_rate_levels(256_000, short_workload.peak_rate)
        result = OptimalScheduler(levels, alpha=1e6).solve(
            short_workload, buffer_bits=300_000
        )
        assert result.schedule.is_feasible(short_workload, 300_000)

    def test_cost_matches_schedule_cost(self, short_workload):
        levels = granular_rate_levels(256_000, short_workload.peak_rate)
        scheduler = OptimalScheduler(levels, alpha=1e6, beta=1.0)
        result = scheduler.solve(short_workload, buffer_bits=300_000)
        recomputed = result.schedule.cost(
            1e6, 1.0, short_workload.slot_duration
        )
        assert result.total_cost == pytest.approx(recomputed, rel=1e-9)

    def test_higher_alpha_fewer_renegotiations(self, short_workload):
        levels = granular_rate_levels(128_000, short_workload.peak_rate)
        cheap = OptimalScheduler(levels, alpha=1e5).solve(
            short_workload, buffer_bits=300_000
        )
        expensive = OptimalScheduler(levels, alpha=5e7).solve(
            short_workload, buffer_bits=300_000
        )
        assert expensive.num_renegotiations <= cheap.num_renegotiations

    def test_higher_alpha_lower_efficiency(self, short_workload):
        """The Fig. 2 tradeoff: pricier renegotiation costs bandwidth."""
        levels = granular_rate_levels(128_000, short_workload.peak_rate)
        cheap = OptimalScheduler(levels, alpha=1e5).solve(
            short_workload, buffer_bits=300_000
        )
        expensive = OptimalScheduler(levels, alpha=5e7).solve(
            short_workload, buffer_bits=300_000
        )
        assert (
            expensive.schedule.average_rate() >= cheap.schedule.average_rate()
        )

    def test_bigger_buffer_no_worse_cost(self, short_workload):
        levels = granular_rate_levels(256_000, short_workload.peak_rate)
        scheduler = OptimalScheduler(levels, alpha=1e6)
        small = scheduler.solve(short_workload, buffer_bits=150_000)
        large = scheduler.solve(short_workload, buffer_bits=600_000)
        assert large.total_cost <= small.total_cost + 1e-6

    def test_huge_alpha_yields_cbr(self):
        arrivals = np.array([1.0, 3.0, 1.0, 3.0, 1.0])
        workload = SlottedWorkload(arrivals, slot_duration=1.0)
        result = OptimalScheduler([1.0, 2.0, 3.0], alpha=1e9).solve(
            workload, buffer_bits=100.0
        )
        assert result.num_renegotiations == 0

    def test_single_level(self):
        arrivals = np.array([1.0, 1.0])
        workload = SlottedWorkload(arrivals, slot_duration=1.0)
        result = OptimalScheduler([2.0], alpha=1.0).solve(
            workload, buffer_bits=10.0
        )
        assert result.schedule.average_rate() == pytest.approx(2.0)

    def test_infeasible_raises(self):
        arrivals = np.array([100.0])
        workload = SlottedWorkload(arrivals, slot_duration=1.0)
        with pytest.raises(InfeasibleScheduleError):
            OptimalScheduler([1.0], alpha=1.0).solve(workload, buffer_bits=1.0)

    def test_requires_some_constraint(self, short_workload):
        scheduler = OptimalScheduler([1.0], alpha=1.0)
        with pytest.raises(ValueError):
            scheduler.solve(short_workload)

    def test_validation(self):
        with pytest.raises(ValueError):
            OptimalScheduler([], alpha=1.0)
        with pytest.raises(ValueError):
            OptimalScheduler([1.0], alpha=-1.0)
        with pytest.raises(ValueError):
            OptimalScheduler([1.0], alpha=0.0, beta=0.0)
        with pytest.raises(ValueError):
            OptimalScheduler([-5.0], alpha=1.0)


class TestDelayBound:
    def test_delay_bound_equivalent_occupancy_limit(self):
        # With delay bound D slots, q_t may not exceed the last D slots'
        # arrivals.  Serve a burst then silence: the burst must drain
        # within D slots.
        arrivals = np.array([10.0, 0.0, 0.0, 0.0])
        workload = SlottedWorkload(arrivals, slot_duration=1.0)
        result = OptimalScheduler([1.0, 5.0, 10.0], alpha=0.1).solve(
            workload, delay_bound_slots=2
        )
        # Data from slot 0 must be gone by end of slot 2: cumulative
        # service through slot 2 must reach 10 bits.
        rates = result.schedule.slot_rates(1.0, 4)
        assert rates[:2].sum() >= 10.0 - 1e-9

    def test_tighter_delay_bound_costs_more(self, short_workload):
        levels = granular_rate_levels(256_000, short_workload.peak_rate)
        scheduler = OptimalScheduler(levels, alpha=1e6)
        tight = scheduler.solve(short_workload, delay_bound_slots=6)
        loose = scheduler.solve(short_workload, delay_bound_slots=48)
        assert tight.total_cost >= loose.total_cost - 1e-6

    def test_combined_bounds_use_tighter(self):
        arrivals = np.array([4.0, 4.0, 4.0])
        workload = SlottedWorkload(arrivals, slot_duration=1.0)
        scheduler = OptimalScheduler([1.0, 4.0, 8.0], alpha=0.1)
        combined = scheduler.solve(
            workload, buffer_bits=100.0, delay_bound_slots=1
        )
        delay_only = scheduler.solve(workload, delay_bound_slots=1)
        assert combined.total_cost == pytest.approx(delay_only.total_cost)

    def test_delay_bound_validation(self, short_workload):
        scheduler = OptimalScheduler([1.0], alpha=1.0)
        with pytest.raises(ValueError):
            scheduler.solve(short_workload, delay_bound_slots=0)


class TestDiagnostics:
    def test_nodes_expanded_positive(self, short_workload):
        levels = granular_rate_levels(256_000, short_workload.peak_rate)
        result = OptimalScheduler(levels, alpha=1e6).solve(
            short_workload, buffer_bits=300_000
        )
        assert result.nodes_expanded > 0
        assert result.max_frontier >= 1

    def test_duplicate_levels_deduplicated(self):
        scheduler = OptimalScheduler([1.0, 1.0, 2.0], alpha=1.0)
        assert scheduler.rate_levels.size == 2
