"""Renegotiation schedules.

A renegotiation schedule is the central RCBR object: a piecewise-constant
(stepwise CBR) service-rate function together with the renegotiation
instants at which the rate changes (Section IV).  Both the offline optimal
algorithm and the online heuristic produce a :class:`RateSchedule`; the
multiplexing simulators and the admission controllers consume them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.traffic.trace import SlottedWorkload
from repro.util.rng import SeedLike, as_generator


@dataclass(frozen=True)
class Renegotiation:
    """One renegotiation event: at ``time`` the service rate becomes ``new_rate``."""

    time: float
    new_rate: float
    old_rate: float

    @property
    def delta(self) -> float:
        """Rate change carried in the RM cell (Section III-B uses deltas)."""
        return self.new_rate - self.old_rate


class RateSchedule:
    """A piecewise-constant service-rate function on ``[0, duration)``.

    Parameters
    ----------
    start_times:
        Segment start times in seconds; must begin at 0 and be strictly
        increasing.
    rates:
        Service rate (bits/second) of each segment; adjacent segments must
        have different rates (equal neighbours are merged by the factory
        constructors).
    duration:
        Total schedule length in seconds.
    """

    def __init__(
        self,
        start_times: Sequence[float],
        rates: Sequence[float],
        duration: float,
        name: str = "schedule",
    ) -> None:
        times = np.asarray(start_times, dtype=float)
        rate_array = np.asarray(rates, dtype=float)
        if times.ndim != 1 or times.size == 0:
            raise ValueError("start_times must be a non-empty 1-D sequence")
        if times.shape != rate_array.shape:
            raise ValueError("start_times and rates must have the same length")
        if times[0] != 0.0:
            raise ValueError(f"first segment must start at 0, got {times[0]}")
        if np.any(np.diff(times) <= 0):
            raise ValueError("start_times must be strictly increasing")
        if duration <= times[-1]:
            raise ValueError(
                f"duration ({duration}) must exceed the last start time ({times[-1]})"
            )
        if np.any(rate_array < 0):
            raise ValueError("rates must be non-negative")
        self._times = times
        self._rates = rate_array
        self._times.setflags(write=False)
        self._rates.setflags(write=False)
        self.duration = float(duration)
        self.name = name

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(
        cls, rate: float, duration: float, name: str = "cbr"
    ) -> "RateSchedule":
        """A static CBR schedule (the degenerate no-renegotiation case)."""
        return cls([0.0], [rate], duration, name=name)

    @classmethod
    def from_slot_rates(
        cls,
        slot_rates: Sequence[float],
        slot_duration: float,
        name: str = "schedule",
    ) -> "RateSchedule":
        """Compress a per-slot rate array into a schedule.

        Runs of equal rates collapse into single segments; this is how the
        DP and heuristic outputs (one rate per slot) become schedules.
        """
        rates = np.asarray(slot_rates, dtype=float)
        if rates.ndim != 1 or rates.size == 0:
            raise ValueError("slot_rates must be a non-empty 1-D sequence")
        if slot_duration <= 0:
            raise ValueError("slot_duration must be positive")
        change = np.flatnonzero(np.diff(rates)) + 1
        starts = np.concatenate([[0], change])
        return cls(
            starts * slot_duration,
            rates[starts],
            duration=rates.size * slot_duration,
            name=name,
        )

    @classmethod
    def from_segments(
        cls,
        segments: Sequence[Tuple[float, float]],
        duration: float,
        name: str = "schedule",
    ) -> "RateSchedule":
        """Build from ``(start_time, rate)`` pairs, merging equal neighbours."""
        if not segments:
            raise ValueError("segments must be non-empty")
        starts: List[float] = []
        rates: List[float] = []
        for start, rate in segments:
            if rates and rate == rates[-1]:
                continue
            starts.append(start)
            rates.append(rate)
        return cls(starts, rates, duration, name=name)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def start_times(self) -> np.ndarray:
        return self._times

    @property
    def rates(self) -> np.ndarray:
        return self._rates

    @property
    def num_segments(self) -> int:
        return int(self._times.size)

    @property
    def num_renegotiations(self) -> int:
        """Rate changes after the initial setup (the paper's count)."""
        return self.num_segments - 1

    def segments(self) -> Iterator[Tuple[float, float, float]]:
        """Yield ``(start, end, rate)`` triples."""
        ends = np.concatenate([self._times[1:], [self.duration]])
        for start, end, rate in zip(self._times, ends, self._rates):
            yield float(start), float(end), float(rate)

    def renegotiations(self) -> Iterator[Renegotiation]:
        """Yield the renegotiation events (excluding initial setup)."""
        for index in range(1, self.num_segments):
            yield Renegotiation(
                time=float(self._times[index]),
                new_rate=float(self._rates[index]),
                old_rate=float(self._rates[index - 1]),
            )

    def rate_at(self, time: float) -> float:
        """Service rate at time ``time`` (right-continuous)."""
        if not 0.0 <= time < self.duration:
            raise ValueError(f"time {time} outside [0, {self.duration})")
        index = int(np.searchsorted(self._times, time, side="right")) - 1
        return float(self._rates[index])

    def slot_rates(self, slot_duration: float, num_slots: Optional[int] = None):
        """Sample the schedule back onto a slot grid (rate per slot)."""
        if slot_duration <= 0:
            raise ValueError("slot_duration must be positive")
        if num_slots is None:
            num_slots = int(round(self.duration / slot_duration))
        slot_starts = np.arange(num_slots) * slot_duration
        indices = np.searchsorted(self._times, slot_starts, side="right") - 1
        return self._rates[indices]

    # ------------------------------------------------------------------
    # Metrics (Section IV-A)
    # ------------------------------------------------------------------
    def average_rate(self) -> float:
        """Time-weighted mean service rate in bits per second."""
        ends = np.concatenate([self._times[1:], [self.duration]])
        widths = ends - self._times
        return float((widths * self._rates).sum() / self.duration)

    def total_bits(self) -> float:
        """Total reserved transmission capacity over the schedule, in bits."""
        return self.average_rate() * self.duration

    def bandwidth_efficiency(self, source_mean_rate: float) -> float:
        """eta = (source average rate) / (schedule average rate), eq. in IV-A."""
        if source_mean_rate <= 0:
            raise ValueError("source_mean_rate must be positive")
        return source_mean_rate / self.average_rate()

    def mean_renegotiation_interval(self) -> float:
        """Average seconds between renegotiations (inf if there are none)."""
        if self.num_renegotiations == 0:
            return float("inf")
        return self.duration / self.num_renegotiations

    def cost(self, alpha: float, beta: float, slot_duration: float) -> float:
        """The paper's total cost (eq. 1) in slot units.

        ``alpha`` is the constant cost per renegotiation; ``beta`` the cost
        per unit bandwidth per slot.  The schedule is evaluated on the slot
        grid it was built on so that DP costs are reproduced exactly.
        """
        rates = self.slot_rates(slot_duration)
        return alpha * self.num_renegotiations + beta * float(rates.sum())

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def shifted(self, offset_seconds: float, name: str = "") -> "RateSchedule":
        """Circular shift by ``offset_seconds`` (wrapping at ``duration``).

        Mirrors :meth:`FrameTrace.shifted`: the admission-control
        experiments use "randomly shifted versions of a Star Wars RCBR
        schedule" (Section VI), which is also how the simulation gains the
        efficiency of handling renegotiation events only (footnote 4).
        """
        offset = float(offset_seconds) % self.duration
        if offset == 0.0:
            return self
        shifted_times = (self._times - offset) % self.duration
        # Float guard: a breakpoint numerically at `duration` wrapped all
        # the way around and belongs at 0.
        snap = np.isclose(
            shifted_times, self.duration, rtol=0.0, atol=1e-9 * self.duration
        )
        shifted_times[snap] = 0.0
        order = np.argsort(shifted_times, kind="stable")
        times = shifted_times[order]
        rates = self._rates[order]
        # Collapse (sub-nanosecond) zero-length segments from the snap:
        # the later entry at an equal time is the segment that actually
        # covers forward from it.
        keep_time = np.concatenate([np.diff(times) > 0, [True]])
        times = times[keep_time]
        rates = rates[keep_time]
        if times[0] != 0.0:
            # The segment containing the wrap point becomes the new head.
            times = np.concatenate([[0.0], times])
            rates = np.concatenate([[rates[-1]], rates])
        # Merge equal neighbours created by the wrap.
        keep = np.concatenate([[True], np.diff(rates) != 0])
        return RateSchedule(
            times[keep],
            rates[keep],
            self.duration,
            name or f"{self.name}<<{offset:.3f}s",
        )

    def random_shift(self, seed: SeedLike = None) -> "RateSchedule":
        rng = as_generator(seed)
        return self.shifted(float(rng.uniform(0.0, self.duration)))

    # ------------------------------------------------------------------
    # Verification against the workload it serves
    # ------------------------------------------------------------------
    def buffer_trajectory(self, workload: SlottedWorkload) -> np.ndarray:
        """Buffer occupancy after each slot when serving ``workload``.

        The queue drains at the scheduled rate and cannot go negative
        (eq. 3): ``q_t = max(0, q_{t-1} + a_t - c_t * slot)``.
        """
        rates = self.slot_rates(workload.slot_duration, workload.num_slots)
        drains = rates * workload.slot_duration
        arrivals = workload.bits_per_slot
        occupancy = np.empty(workload.num_slots)
        level = 0.0
        for index in range(workload.num_slots):
            level = max(0.0, level + arrivals[index] - drains[index])
            occupancy[index] = level
        return occupancy

    def max_buffer(self, workload: SlottedWorkload) -> float:
        """Peak buffer occupancy while serving ``workload`` (losslessly)."""
        return float(self.buffer_trajectory(workload).max())

    def is_feasible(self, workload: SlottedWorkload, buffer_bits: float) -> bool:
        """True if the buffer bound is never exceeded (eq. 2)."""
        return self.max_buffer(workload) <= buffer_bits + 1e-6

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A plain-JSON-serialisable representation."""
        return {
            "name": self.name,
            "duration": self.duration,
            "start_times": self._times.tolist(),
            "rates": self._rates.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RateSchedule":
        return cls(
            data["start_times"],
            data["rates"],
            data["duration"],
            name=data.get("name", "schedule"),
        )

    def save(self, path) -> None:
        """Write the schedule as JSON."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict()), encoding="utf-8")

    @classmethod
    def load(cls, path) -> "RateSchedule":
        """Read a schedule previously written with :meth:`save`."""
        import json
        from pathlib import Path

        return cls.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )

    def __repr__(self) -> str:
        return (
            f"RateSchedule(name={self.name!r}, segments={self.num_segments}, "
            f"duration={self.duration:.1f}s, avg_rate={self.average_rate():.0f}b/s)"
        )


def empirical_rate_distribution(
    schedule: RateSchedule,
) -> Tuple[np.ndarray, np.ndarray]:
    """The schedule's marginal bandwidth distribution.

    Returns ``(levels, fractions)``: the distinct rate levels used and the
    fraction of time each level is held.  This is "the empirical
    distribution (histogram) of bandwidth requirements throughout the
    lifetime of a call ... viewed as the traffic descriptor of the call"
    (Section VI), the input to the Chernoff admission test.
    """
    ends = np.concatenate([schedule.start_times[1:], [schedule.duration]])
    widths = ends - schedule.start_times
    levels, inverse = np.unique(schedule.rates, return_inverse=True)
    fractions = np.zeros(levels.size)
    np.add.at(fractions, inverse, widths)
    fractions /= schedule.duration
    return levels, fractions
