"""The causal AR(1) renegotiation heuristic (Section IV-B)."""

import numpy as np
import pytest

from repro.core.online import OnlineParams, OnlineScheduler
from repro.traffic.trace import SlottedWorkload
from tests.golden_reference import golden_schedule


def constant_workload(rate, num_slots=100, slot=1.0):
    return SlottedWorkload(np.full(num_slots, rate * slot), slot)


class TestParams:
    def test_defaults_match_paper(self):
        params = OnlineParams(granularity=25_000.0)
        assert params.low_threshold == 10_000.0  # B_l = 10 kb
        assert params.high_threshold == 150_000.0  # B_h = 150 kb
        assert params.time_constant_slots == 5.0  # T = 5 frames

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineParams(granularity=0.0)
        with pytest.raises(ValueError):
            OnlineParams(granularity=1.0, low_threshold=-1.0)
        with pytest.raises(ValueError):
            OnlineParams(granularity=1.0, low_threshold=10, high_threshold=5)
        with pytest.raises(ValueError):
            OnlineParams(granularity=1.0, time_constant_slots=0.0)
        with pytest.raises(ValueError):
            OnlineParams(granularity=1.0, ar_coefficient=1.0)
        with pytest.raises(ValueError):
            OnlineParams(granularity=1.0, max_rate=0.0)


class TestQuantization:
    def test_rounds_up_to_grid(self):
        scheduler = OnlineScheduler(OnlineParams(granularity=100.0))
        assert scheduler.quantize(1.0) == 100.0
        assert scheduler.quantize(100.0) == 100.0
        assert scheduler.quantize(101.0) == 200.0

    def test_zero_maps_to_zero(self):
        scheduler = OnlineScheduler(OnlineParams(granularity=100.0))
        assert scheduler.quantize(0.0) == 0.0

    def test_max_rate_caps(self):
        scheduler = OnlineScheduler(
            OnlineParams(granularity=100.0, max_rate=250.0)
        )
        assert scheduler.quantize(1000.0) == 250.0


class TestSchedulingBehaviour:
    def test_constant_source_never_renegotiates(self):
        workload = constant_workload(1000.0)
        params = OnlineParams(granularity=100.0, low_threshold=1, high_threshold=50)
        result = OnlineScheduler(params).schedule(workload)
        assert result.num_renegotiations == 0
        assert result.schedule.average_rate() == pytest.approx(1000.0)

    def test_step_up_source_renegotiates_up(self):
        rates = np.concatenate([np.full(50, 100.0), np.full(50, 1000.0)])
        workload = SlottedWorkload(rates, slot_duration=1.0)
        params = OnlineParams(
            granularity=100.0, low_threshold=10, high_threshold=100
        )
        result = OnlineScheduler(params).schedule(workload)
        assert result.num_renegotiations >= 1
        # Final rate should have risen to cover the new level.
        assert result.schedule.rates[-1] >= 1000.0

    def test_step_down_source_renegotiates_down(self):
        rates = np.concatenate([np.full(50, 1000.0), np.full(100, 100.0)])
        workload = SlottedWorkload(rates, slot_duration=1.0)
        params = OnlineParams(
            granularity=100.0, low_threshold=10, high_threshold=100
        )
        result = OnlineScheduler(params).schedule(workload)
        assert result.schedule.rates[-1] < 1000.0

    def test_max_buffer_reported_matches_schedule_replay(self, short_workload):
        params = OnlineParams(granularity=64_000.0)
        result = OnlineScheduler(params).schedule(short_workload)
        replay = result.schedule.max_buffer(short_workload)
        assert result.max_buffer == pytest.approx(replay, rel=1e-9)

    def test_finer_granularity_more_renegotiations(self, short_workload):
        fine = OnlineScheduler(OnlineParams(granularity=25_000.0)).schedule(
            short_workload
        )
        coarse = OnlineScheduler(OnlineParams(granularity=400_000.0)).schedule(
            short_workload
        )
        assert fine.num_renegotiations >= coarse.num_renegotiations

    def test_finer_granularity_better_efficiency(self, short_workload):
        """The Fig. 2 heuristic tradeoff, swept by delta."""
        fine = OnlineScheduler(OnlineParams(granularity=25_000.0)).schedule(
            short_workload
        )
        coarse = OnlineScheduler(OnlineParams(granularity=400_000.0)).schedule(
            short_workload
        )
        mean = short_workload.mean_rate
        assert fine.schedule.bandwidth_efficiency(
            mean
        ) >= coarse.schedule.bandwidth_efficiency(mean)

    def test_buffer_stays_moderate_on_video(self, short_workload):
        """Fig. 2's caption: occupancy never exceeded B = 300 kb."""
        params = OnlineParams(granularity=100_000.0)
        result = OnlineScheduler(params).schedule(short_workload)
        assert result.max_buffer < 400_000.0

    def test_initial_rate_explicit(self):
        workload = constant_workload(500.0, num_slots=10)
        params = OnlineParams(granularity=100.0)
        result = OnlineScheduler(params).schedule(workload, initial_rate=700.0)
        assert result.schedule.rates[0] == 700.0

    def test_initial_rate_negative_rejected(self):
        workload = constant_workload(10.0, num_slots=5)
        scheduler = OnlineScheduler(OnlineParams(granularity=100.0))
        with pytest.raises(ValueError):
            scheduler.schedule(workload, initial_rate=-1.0)


class TestRequestDenial:
    def test_denied_requests_keep_old_rate(self):
        rates = np.concatenate([np.full(20, 100.0), np.full(80, 2000.0)])
        workload = SlottedWorkload(rates, slot_duration=1.0)
        params = OnlineParams(
            granularity=100.0, low_threshold=10, high_threshold=100
        )
        deny_all = OnlineScheduler(params).schedule(
            workload, request_fn=lambda time, rate: False
        )
        assert deny_all.requests_denied == deny_all.requests_made
        assert deny_all.num_renegotiations == 0

    def test_denied_then_granted_retries(self):
        rates = np.concatenate([np.full(20, 100.0), np.full(80, 2000.0)])
        workload = SlottedWorkload(rates, slot_duration=1.0)
        params = OnlineParams(
            granularity=100.0, low_threshold=10, high_threshold=100
        )
        calls = []

        def grant_after_three(time, rate):
            calls.append(time)
            return len(calls) > 3

        result = OnlineScheduler(params).schedule(
            workload, request_fn=grant_after_three
        )
        assert result.requests_denied == 3
        assert result.num_renegotiations >= 1


class TestFiniteBuffer:
    def step_up_workload(self):
        rates = np.concatenate([np.full(20, 100.0), np.full(80, 2000.0)])
        return SlottedWorkload(rates, slot_duration=1.0)

    def params(self):
        return OnlineParams(
            granularity=100.0, low_threshold=10, high_threshold=100
        )

    def test_overflow_counts_bits_lost(self):
        workload = self.step_up_workload()
        result = OnlineScheduler(self.params()).schedule(
            workload,
            request_fn=lambda time, rate: False,  # every increase denied
            buffer_size=500.0,
        )
        assert result.bits_lost > 0.0
        assert result.max_buffer <= 500.0
        # With every increase denied the rate stays at 100 and each
        # steady-state slot overflows by the full deficit.
        assert result.bits_lost == pytest.approx((2000.0 - 100.0) * 80, rel=0.05)

    def test_unbounded_buffer_loses_nothing(self):
        workload = self.step_up_workload()
        result = OnlineScheduler(self.params()).schedule(
            workload, request_fn=lambda time, rate: False
        )
        assert result.bits_lost == 0.0

    def test_buffer_size_must_be_positive(self):
        workload = self.step_up_workload()
        scheduler = OnlineScheduler(self.params())
        with pytest.raises(ValueError):
            scheduler.schedule(workload, buffer_size=0.0)

    def test_granted_requests_avoid_overflow(self):
        workload = self.step_up_workload()
        result = OnlineScheduler(self.params()).schedule(
            workload, buffer_size=500_000.0
        )
        assert result.bits_lost == 0.0

    def test_result_defaults_keep_legacy_constructors_working(self):
        # Callers constructing OnlineScheduleResult without the new
        # fields (e.g. the GoP-aware variant) still work.
        from repro.core.online import OnlineScheduleResult
        from repro.core.schedule import RateSchedule

        schedule = RateSchedule([0.0], [100.0], duration=1.0)
        result = OnlineScheduleResult(
            schedule=schedule, max_buffer=0.0, final_buffer=0.0,
            requests_made=0, requests_denied=0,
        )
        assert result.bits_lost == 0.0
        assert result.drain_slots == 0
        assert result.requests_suppressed == 0


class TestKernelVsGolden:
    """The kernel-backed scheduler must match the pre-refactor floats.

    ``schedule()`` now drives :class:`repro.core.kernel.RenegotiationKernel`
    slot by slot (the old scalar loop and the dedicated ``_schedule_fast``
    path are both gone); these regressions replay the frozen pre-refactor
    loop from :mod:`tests.golden_reference` and require every float of
    the two results to be *exactly* equal — the Fig. 2 curve and the
    MBAC per-source schedules depend on the kernel being a drop-in.
    """

    def random_workload(self, seed, num_slots=400):
        rng = np.random.default_rng(seed)
        # Bursty, AR-correlated arrivals so both threshold branches and
        # the zero-clamp in the quantiser get exercised.
        base = rng.gamma(shape=2.0, scale=40_000.0, size=num_slots)
        burst = (rng.random(num_slots) < 0.05) * rng.uniform(
            5e5, 2e6, size=num_slots
        )
        return SlottedWorkload(base + burst, slot_duration=1.0 / 24.0)

    @staticmethod
    def assert_bit_identical(result, golden, slot_duration=1.0 / 24.0):
        from repro.core.schedule import RateSchedule

        expected = RateSchedule.from_slot_rates(
            golden.slot_rates, slot_duration
        )
        assert result.max_buffer == golden.max_buffer
        assert result.final_buffer == golden.final_buffer
        assert result.requests_made == golden.requests_made
        assert result.requests_denied == golden.requests_denied
        assert result.bits_lost == golden.bits_lost
        assert np.array_equal(result.schedule.rates, expected.rates)
        assert np.array_equal(
            result.schedule.start_times, expected.start_times
        )
        assert result.schedule.duration == expected.duration

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_golden_loop(self, seed):
        params = OnlineParams(granularity=64_000.0)
        workload = self.random_workload(seed)
        result = OnlineScheduler(params).schedule(workload)
        golden = golden_schedule(params, workload)
        self.assert_bit_identical(result, golden)

    def test_matches_with_max_rate_cap(self):
        params = OnlineParams(granularity=64_000.0, max_rate=600_000.0)
        workload = self.random_workload(3)
        result = OnlineScheduler(params).schedule(workload)
        golden = golden_schedule(params, workload)
        self.assert_bit_identical(result, golden)
        assert result.schedule.rates.max() <= 600_000.0

    def test_matches_with_explicit_initial_rate(self):
        params = OnlineParams(granularity=25_000.0)
        workload = self.random_workload(4)
        result = OnlineScheduler(params).schedule(
            workload, initial_rate=100_000.0
        )
        golden = golden_schedule(params, workload, initial_rate=100_000.0)
        self.assert_bit_identical(result, golden)

    def test_matches_with_denials_and_finite_buffer(self):
        params = OnlineParams(granularity=64_000.0)
        workload = self.random_workload(5)

        def deny_every_third():
            count = [0]

            def fn(time, rate):
                count[0] += 1
                return count[0] % 3 != 0

            return fn

        result = OnlineScheduler(params).schedule(
            workload, request_fn=deny_every_third(), buffer_size=200_000.0
        )
        golden = golden_schedule(
            params,
            workload,
            request_fn=deny_every_third(),
            buffer_size=200_000.0,
        )
        self.assert_bit_identical(result, golden)

    def test_kernel_handles_idle_source(self):
        workload = SlottedWorkload(np.zeros(50), slot_duration=1.0)
        result = OnlineScheduler(
            OnlineParams(granularity=1000.0)
        ).schedule(workload)
        assert result.schedule.average_rate() == 0.0
        assert result.max_buffer == 0.0
