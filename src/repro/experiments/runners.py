"""The experiment runners (see the package docstring)."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.analysis.empirical import sigma_rho_for_loss, windowed_peak_rate
from repro.core import OptimalScheduler, granular_rate_levels
from repro.core.schedule import RateSchedule
from repro.perf.cache import ResultCache
from repro.perf.engine import SweepEngine
from repro.perf.recorder import BenchRecorder
from repro.perf.supervise import SupervisedSweepEngine, SupervisorPolicy
from repro.perf.sweeps import mbac_grid_cells, smg_cells, tradeoff_cells
from repro.queueing.mux import scenario_a_rate
from repro.traffic.trace import FrameTrace
from repro.util.rng import SeedLike
from repro.util.units import kbits, kbps

DEFAULT_BUFFER = kbits(300)
DEFAULT_GRANULARITY = kbps(64)


def make_sweep_engine(
    workers: int,
    cache: Optional[ResultCache],
    recorder: Optional[BenchRecorder],
    namespace: str,
    policy: Optional[SupervisorPolicy] = None,
    journal: Union[None, str, Path] = None,
    resume: bool = False,
) -> SweepEngine:
    """The engine for a runner: plain, or supervised when asked.

    A runner with no supervision arguments keeps the exact PR 2 engine;
    any of ``policy``/``journal``/``resume`` upgrades it to a
    :class:`SupervisedSweepEngine`, whose happy path is bit-identical.
    """
    if policy is None and journal is None and not resume:
        return SweepEngine(
            workers=workers, cache=cache, recorder=recorder,
            namespace=namespace,
        )
    return SupervisedSweepEngine(
        workers=workers,
        cache=cache,
        recorder=recorder,
        namespace=namespace,
        policy=policy,
        journal_path=journal,
        resume=resume,
    )


def rate_levels_for(trace: FrameTrace, granularity: float) -> np.ndarray:
    """The paper-style rate grid, widened to keep the DP feasible."""
    top = max(kbps(2400), 1.1 * windowed_peak_rate(trace, 1.0))
    return granular_rate_levels(granularity, top)


def compute_optimal_schedule(
    trace: FrameTrace,
    alpha: float,
    buffer_bits: float = DEFAULT_BUFFER,
    granularity: float = DEFAULT_GRANULARITY,
    frames_per_slot: int = 2,
) -> RateSchedule:
    """The trace's optimal RCBR schedule at the paper's parameters."""
    workload = (
        trace.aggregate(frames_per_slot)
        if frames_per_slot > 1
        else trace.as_workload()
    )
    levels = rate_levels_for(trace, granularity)
    result = OptimalScheduler(levels, alpha=alpha, beta=1.0).solve(
        workload, buffer_bits=buffer_bits
    )
    return result.schedule


# ----------------------------------------------------------------------
# Fig. 2: the efficiency / renegotiation-interval tradeoff
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TradeoffPoint:
    """One point on a Fig. 2 curve."""

    parameter: float  # alpha for OPT, delta for the heuristic
    mean_interval: float
    efficiency: float
    max_buffer: float


@dataclass
class TradeoffResult:
    optimal: List[TradeoffPoint] = field(default_factory=list)
    heuristic: List[TradeoffPoint] = field(default_factory=list)


def run_tradeoff(
    trace: FrameTrace,
    alphas: Sequence[float] = (2e5, 1e6, 6e6, 3e7),
    deltas: Sequence[float] = (kbps(25), kbps(50), kbps(100), kbps(400)),
    buffer_bits: float = DEFAULT_BUFFER,
    granularity: float = DEFAULT_GRANULARITY,
    frames_per_slot: int = 2,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    recorder: Optional[BenchRecorder] = None,
    policy: Optional[SupervisorPolicy] = None,
    journal: Union[None, str, Path] = None,
    resume: bool = False,
) -> TradeoffResult:
    """Fig. 2: sweep the OPT cost ratio and the heuristic granularity.

    Each alpha (DP solve) and each delta (heuristic run) is an
    independent cell of a :class:`~repro.perf.engine.SweepEngine` sweep:
    ``workers`` fans them out, ``cache`` memoizes them on disk, and
    ``recorder`` collects per-cell timings.  The serial defaults
    reproduce the historical results exactly; ``policy``/``journal``/
    ``resume`` run the sweep supervised (retries, quarantine,
    checkpoint/resume) without changing any surviving value.
    """
    cells = tradeoff_cells(
        trace, alphas, deltas, buffer_bits, granularity, frames_per_slot
    )
    engine = make_sweep_engine(
        workers, cache, recorder, "tradeoff",
        policy=policy, journal=journal, resume=resume,
    )
    values = [cell_result.value for cell_result in engine.run(cells)]
    result = TradeoffResult()
    for value in values:
        point = TradeoffPoint(
            parameter=value["parameter"],
            mean_interval=value["mean_interval"],
            efficiency=value["efficiency"],
            max_buffer=value["max_buffer"],
        )
        if "nodes_expanded" in value:
            result.optimal.append(point)
        else:
            result.heuristic.append(point)
    return result


# ----------------------------------------------------------------------
# Fig. 5: the (sigma, rho) curve
# ----------------------------------------------------------------------
@dataclass
class SigmaRhoResult:
    buffers: np.ndarray
    rates: np.ndarray
    mean_rate: float

    def normalized(self) -> np.ndarray:
        """rho / mean for each buffer."""
        return self.rates / self.mean_rate


def run_sigma_rho(
    trace: FrameTrace,
    buffers: Sequence[float] = (
        kbits(50), kbits(100), kbits(300), kbits(1000), kbits(3000),
        kbits(10_000),
    ),
    loss_target: float = 1e-6,
) -> SigmaRhoResult:
    """Fig. 5: min CBR rate vs buffer size at the loss target."""
    curve = sigma_rho_for_loss(trace.as_workload(), buffers, loss_target)
    return SigmaRhoResult(
        buffers=curve[:, 0], rates=curve[:, 1], mean_rate=trace.mean_rate
    )


# ----------------------------------------------------------------------
# Fig. 6: statistical multiplexing gain
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SmgPoint:
    num_sources: int
    cbr_rate: float
    shared_rate: float
    rcbr_rate: float


@dataclass
class SmgResult:
    points: List[SmgPoint]
    mean_rate: float
    schedule_efficiency: float


def run_smg(
    trace: FrameTrace,
    schedule: RateSchedule,
    source_counts: Sequence[int] = (1, 2, 4, 8, 16),
    loss_target: float = 1e-6,
    buffer_bits: float = DEFAULT_BUFFER,
    seed: SeedLike = 0,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    recorder: Optional[BenchRecorder] = None,
    policy: Optional[SupervisorPolicy] = None,
    journal: Union[None, str, Path] = None,
    resume: bool = False,
) -> SmgResult:
    """Fig. 6: per-stream capacity under scenarios (a), (b), (c).

    The per-source-count cells run through the sweep engine with the
    historical per-index seeds, so serial and parallel runs match the
    old serial loop bit for bit; scenario (a) is N-independent and
    computed once inline.
    """
    workload = trace.as_workload()
    cbr = scenario_a_rate(workload, buffer_bits, loss_target)
    cells = smg_cells(
        trace, schedule, source_counts, buffer_bits, loss_target, seed=seed
    )
    engine = make_sweep_engine(
        workers, cache, recorder, "smg",
        policy=policy, journal=journal, resume=resume,
    )
    points = [
        SmgPoint(
            num_sources=cell_result.value["num_sources"],
            cbr_rate=cbr,
            shared_rate=cell_result.value["shared_rate"],
            rcbr_rate=cell_result.value["rcbr_rate"],
        )
        for cell_result in engine.run(cells)
    ]
    return SmgResult(
        points=points,
        mean_rate=trace.mean_rate,
        schedule_efficiency=schedule.bandwidth_efficiency(trace.mean_rate),
    )


# ----------------------------------------------------------------------
# Section VI: MBAC comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MbacPoint:
    controller: str
    capacity_multiple: float
    load: float
    failure_probability: float
    utilization: float
    blocking_probability: float


@dataclass
class MbacResult:
    points: List[MbacPoint]
    failure_target: float

    def by_controller(self, name: str) -> List[MbacPoint]:
        return [point for point in self.points if point.controller == name]


def run_mbac_comparison(
    schedule: RateSchedule,
    capacity_multiples: Sequence[float] = (6.0, 12.0),
    loads: Sequence[float] = (0.6, 1.0),
    failure_target: float = 1e-3,
    controllers: Sequence[str] = ("memoryless", "memory", "perfect"),
    seed_base: int = 10_000,
    min_intervals: int = 5,
    max_intervals: int = 10,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    recorder: Optional[BenchRecorder] = None,
    policy: Optional[SupervisorPolicy] = None,
    journal: Union[None, str, Path] = None,
    resume: bool = False,
) -> MbacResult:
    """Figs. 7-8 and the memory fix: failure probability and utilization.

    The (capacity, load, controller) grid runs through the sweep
    engine; per-point seeds follow the historical
    ``seed_base + int(100 * capacity + 10 * load)`` scheme (shared by
    every controller at a point), so any worker count reproduces the
    old serial loop exactly.
    """
    cells = mbac_grid_cells(
        schedule,
        capacity_multiples,
        loads,
        controllers,
        seed_base=seed_base,
        failure_target=failure_target,
        min_intervals=min_intervals,
        max_intervals=max_intervals,
    )
    engine = make_sweep_engine(
        workers, cache, recorder, "mbac",
        policy=policy, journal=journal, resume=resume,
    )
    points = [
        MbacPoint(
            controller=cell_result.value["controller"],
            capacity_multiple=cell_result.value["capacity_multiple"],
            load=cell_result.value["load"],
            failure_probability=cell_result.value["failure_probability"],
            utilization=cell_result.value["utilization"],
            blocking_probability=cell_result.value["blocking_probability"],
        )
        for cell_result in engine.run(cells)
    ]
    return MbacResult(points=points, failure_target=failure_target)
