"""The parallel sweep engine.

A sweep is a list of independent *cells* — (capacity, load, controller)
points of the MBAC grid, alpha values of the Fig. 2 curve, source counts
of Fig. 6.  The engine fans cells out over a ``ProcessPoolExecutor``,
memoizes them through a :class:`~repro.perf.cache.ResultCache`, and
records per-cell wall-clock in a
:class:`~repro.perf.recorder.BenchRecorder`.

Determinism contract: a cell that asks for a seed (``seed_arg``) gets a
``numpy.random.SeedSequence`` child derived *only* from the engine's
``base_seed`` and the cell's position in the sweep —
``SeedSequence(base_seed, spawn_key=(index,))`` — never from worker
identity, scheduling order, or cache state.  Serial (``workers=1``) and
parallel runs of the same sweep therefore produce bit-identical results,
and a cache-warm rerun returns exactly the values a cold run computed.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.perf.cache import ResultCache
from repro.perf.recorder import BenchRecorder


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work.

    Parameters
    ----------
    name:
        Display/record label, e.g. ``"mbac/cap6/load1/memoryless"``.
    fn:
        A **module-level** callable (it must pickle for the process
        pool) invoked as ``fn(**kwargs)``.
    kwargs:
        Keyword arguments; every value must pickle.
    cache_payload:
        Everything that determines the result, for the cache key; the
        common choice is the ``kwargs`` dict itself.  ``None`` disables
        caching for this cell.
    seed_arg:
        Name of a keyword argument to fill with the cell's deterministic
        ``SeedSequence`` child.  Leave ``None`` when ``kwargs`` already
        carries an explicit seed.
    meta:
        Static metadata copied into the cell's bench record.
    """

    name: str
    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    cache_payload: Any = None
    seed_arg: Optional[str] = None
    meta: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CellResult:
    """A cell's value plus how it was obtained."""

    name: str
    value: Any
    seconds: float
    cached: bool


def _execute_cell(fn: Callable[..., Any], kwargs: Dict[str, Any]):
    """Run one cell (in a worker or inline) and time it."""
    start = time.perf_counter()
    value = fn(**kwargs)
    return value, time.perf_counter() - start


def abandon_pool(pool: ProcessPoolExecutor) -> None:
    """Shut a pool down *now*: drop queued work, reap workers.

    Used on Ctrl-C (so a big sweep exits promptly instead of draining
    its queue) and by the supervisor when it declares a pool dead or
    hung.  Workers still running are terminated — the only way to
    reclaim a truly hung child — which is safe because every cell is
    side-effect-free by the engine's contract and any lost cell is
    either re-raised to the caller or resubmitted by the supervisor.
    """
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already-reaped worker
            pass


class SweepEngine:
    """Run sweep cells — serially or across worker processes.

    Parameters
    ----------
    workers:
        Process count.  ``1`` runs everything inline (no pool, no
        pickling), which is also the fully deterministic reference the
        parallel path is tested against.
    cache:
        Optional :class:`ResultCache`; cells with a ``cache_payload``
        are looked up before any work is scheduled and stored after.
    recorder:
        Optional :class:`BenchRecorder` receiving one record per cell.
    base_seed:
        Root of the per-cell ``SeedSequence`` derivation.
    namespace:
        Cache namespace, so unrelated sweeps never share keys.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        recorder: Optional[BenchRecorder] = None,
        base_seed: int = 0,
        namespace: str = "sweep",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self.cache = cache
        self.recorder = recorder
        self.base_seed = int(base_seed)
        self.namespace = namespace

    # ------------------------------------------------------------------
    def _cell_kwargs(self, cell: SweepCell, index: int) -> Dict[str, Any]:
        if cell.seed_arg is None:
            return cell.kwargs
        kwargs = dict(cell.kwargs)
        kwargs[cell.seed_arg] = np.random.SeedSequence(
            self.base_seed, spawn_key=(index,)
        )
        return kwargs

    def _cache_key(self, cell: SweepCell, index: int) -> Optional[str]:
        if self.cache is None or not self.cache.enabled:
            return None
        if cell.cache_payload is None:
            return None
        payload = (
            cell.name,
            cell.cache_payload,
            ("seed", self.base_seed, index) if cell.seed_arg else None,
        )
        return self.cache.key(self.namespace, payload)

    def _record(self, cell: SweepCell, seconds: float, cached: bool) -> None:
        if self.recorder is not None:
            self.recorder.add(
                cell.name,
                seconds,
                cached=cached,
                workers=self.workers,
                **cell.meta,
            )

    # ------------------------------------------------------------------
    def run(self, cells: Sequence[SweepCell]) -> List[CellResult]:
        """Run every cell; results come back in input order."""
        cells = list(cells)
        results: List[Optional[CellResult]] = [None] * len(cells)
        keys: List[Optional[str]] = [None] * len(cells)
        pending: List[int] = []

        for index, cell in enumerate(cells):
            key = self._cache_key(cell, index)
            keys[index] = key
            if key is not None:
                start = time.perf_counter()
                hit, value = self.cache.get(key)
                if hit:
                    elapsed = time.perf_counter() - start
                    results[index] = CellResult(
                        cell.name, value, elapsed, cached=True
                    )
                    self._record(cell, elapsed, cached=True)
                    continue
            pending.append(index)

        if pending:
            if self.workers == 1 or len(pending) == 1:
                for index in pending:
                    cell = cells[index]
                    value, seconds = _execute_cell(
                        cell.fn, self._cell_kwargs(cell, index)
                    )
                    self._finish(cells, results, keys, index, value, seconds)
            else:
                self._run_pool(cells, results, keys, pending)

        return [result for result in results if result is not None]

    def _finish(self, cells, results, keys, index, value, seconds) -> None:
        cell = cells[index]
        if keys[index] is not None:
            self.cache.put(keys[index], value)
        results[index] = CellResult(cell.name, value, seconds, cached=False)
        self._record(cell, seconds, cached=False)

    def _run_pool(self, cells, results, keys, pending) -> None:
        max_workers = min(self.workers, len(pending))
        pool = ProcessPoolExecutor(max_workers=max_workers)
        try:
            futures = {
                pool.submit(
                    _execute_cell,
                    cells[index].fn,
                    self._cell_kwargs(cells[index], index),
                ): index
                for index in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    value, seconds = future.result()
                    self._finish(cells, results, keys, index, value, seconds)
        except BaseException:
            # Ctrl-C (or a poisoned cell) must not drain the queue:
            # cancel everything pending and exit promptly.
            abandon_pool(pool)
            raise
        else:
            pool.shutdown(wait=True)
