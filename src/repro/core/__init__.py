"""The RCBR core: schedules, the optimal DP, the online heuristic, service.

This package is the paper's primary contribution:

* :class:`RateSchedule` — the stepwise-CBR renegotiation schedule;
* :class:`OptimalScheduler` — the Viterbi-like offline optimum (IV-A);
* :class:`RenegotiationKernel` — the one batched implementation of the
  AR(1)/quantise/threshold step (eqs. 6-8) every consumer drives;
* :class:`OnlineScheduler` — the causal AR(1) heuristic (IV-B), a fleet
  of one over the kernel;
* :func:`simulate_rcbr_link` / :class:`OnlineRcbrSource` — the service
  façade joining sources to a renegotiated link (III).
"""

from repro.core.schedule import (
    RateSchedule,
    Renegotiation,
    empirical_rate_distribution,
)
from repro.core.cost import CostModel, ratio_for_interval
from repro.core.optimal import (
    OptimalScheduler,
    OptimalScheduleResult,
    InfeasibleScheduleError,
    uniform_rate_levels,
    granular_rate_levels,
)
from repro.core.kernel import (
    KernelState,
    RenegotiationKernel,
    QUANTIZE_EPSILON,
)
from repro.core.online import OnlineParams, OnlineScheduler, OnlineScheduleResult
from repro.core.smoothing import SmoothingResult, optimal_smoothing
from repro.core.online_gop import GopAwareParams, GopAwareOnlineScheduler
from repro.core.service import (
    LinkSimulationResult,
    simulate_rcbr_link,
    OnlineRcbrSource,
)

__all__ = [
    "RateSchedule",
    "Renegotiation",
    "empirical_rate_distribution",
    "CostModel",
    "ratio_for_interval",
    "OptimalScheduler",
    "OptimalScheduleResult",
    "InfeasibleScheduleError",
    "uniform_rate_levels",
    "granular_rate_levels",
    "KernelState",
    "RenegotiationKernel",
    "QUANTIZE_EPSILON",
    "OnlineParams",
    "OnlineScheduler",
    "OnlineScheduleResult",
    "SmoothingResult",
    "optimal_smoothing",
    "GopAwareParams",
    "GopAwareOnlineScheduler",
    "LinkSimulationResult",
    "simulate_rcbr_link",
    "OnlineRcbrSource",
]
