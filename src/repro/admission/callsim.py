"""Call-level dynamics: Poisson arrivals of RCBR calls (Section VI).

"The simulation set-up is as follows.  Each call is a randomly shifted
version of a Star Wars RCBR schedule.  Calls arrive according to a
Poisson process of rate lambda.  We measure both the average utilization
and the renegotiation failure probability.  Each interval of the length
of the trace provides us with one sample for these probabilities.  We
collect samples until the 95% confidence interval for both probabilities
is sufficiently small with respect to the estimated value (within 20%)."

This module is that simulator, with the admission controller pluggable
(:mod:`repro.admission.controllers`).  As the paper notes in footnote 4,
using RCBR schedules instead of per-frame traces means only renegotiation
events are simulated, which is what makes these long runs tractable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.admission.controllers import AdmissionController
from repro.core.schedule import RateSchedule
from repro.queueing.events import EventScheduler
from repro.queueing.link import RcbrLink
from repro.util.rng import SeedLike, as_generator
from repro.util.stats import (
    ConfidenceInterval,
    RelativePrecisionStopper,
    mean_confidence_interval,
)


@dataclass(frozen=True)
class IntervalSample:
    """One trace-length measurement interval."""

    failure_fraction: float
    utilization: float
    blocking_fraction: float
    arrivals: int
    increase_attempts: int
    abandoned: int = 0  # calls that departed early under sustained denials


@dataclass(frozen=True)
class CallCounters:
    """Whole-run, per-call lifetime and denial accounting.

    Interval samples (the paper's measurement unit) only keep ratios, so
    absolute call counts were lost after :meth:`CallLevelSimulator.run_interval`.
    The server runtime (:mod:`repro.server`) reports these same counters in
    its snapshots, and the two must agree on definitions:

    * ``arrivals = blocked + admitted`` (every arrival is decided once);
    * ``departed = completed + abandoned`` (every departure has one cause);
    * ``admitted - departed`` is the number of calls still in the system;
    * ``total_call_seconds`` sums the lifetimes of *departed* calls only.
    """

    arrivals: int = 0
    blocked: int = 0
    admitted: int = 0
    departed: int = 0
    completed: int = 0
    abandoned: int = 0
    increase_attempts: int = 0
    increase_denials: int = 0
    injected_denials: int = 0
    total_call_seconds: float = 0.0

    @property
    def active(self) -> int:
        """Calls admitted and not yet departed."""
        return self.admitted - self.departed

    @property
    def blocking_fraction(self) -> float:
        return self.blocked / self.arrivals if self.arrivals else 0.0

    @property
    def denial_fraction(self) -> float:
        if self.increase_attempts == 0:
            return 0.0
        return self.increase_denials / self.increase_attempts

    @property
    def mean_lifetime(self) -> float:
        """Mean lifetime in seconds of the calls that departed."""
        if self.departed == 0:
            return 0.0
        return self.total_call_seconds / self.departed


@dataclass
class CallSimResult:
    """Aggregated call-level simulation output."""

    samples: List[IntervalSample] = field(default_factory=list)
    failure_interval: Optional[ConfidenceInterval] = None
    utilization_interval: Optional[ConfidenceInterval] = None
    counters: Optional[CallCounters] = None

    @property
    def failure_probability(self) -> float:
        return float(np.mean([s.failure_fraction for s in self.samples]))

    @property
    def utilization(self) -> float:
        return float(np.mean([s.utilization for s in self.samples]))

    @property
    def blocking_probability(self) -> float:
        return float(np.mean([s.blocking_fraction for s in self.samples]))

    @property
    def num_intervals(self) -> int:
        return len(self.samples)

    @property
    def total_abandoned(self) -> int:
        return sum(sample.abandoned for sample in self.samples)


class CallLevelSimulator:
    """Poisson arrivals of randomly shifted schedules through a controller."""

    def __init__(
        self,
        base_schedule,
        capacity: float,
        arrival_rate: float,
        controller: AdmissionController,
        seed: SeedLike = None,
        class_weights: Optional[List[float]] = None,
        faults=None,
        abandon_after: Optional[int] = None,
    ) -> None:
        """``base_schedule`` may be one :class:`RateSchedule` or a list of
        them (one per traffic class); arriving calls draw their class
        from ``class_weights`` (uniform by default).

        ``faults`` (a :class:`~repro.faults.injectors.FaultPlan`) injects
        renegotiation denials on top of the link's honest capacity check.
        ``abandon_after``, if set, makes a call depart early once it has
        suffered that many *consecutive* denied increases — an impatient
        user hanging up under sustained faults — freeing its bandwidth
        and cancelling its remaining renegotiations.
        """
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if isinstance(base_schedule, RateSchedule):
            self.class_schedules = [base_schedule]
        else:
            self.class_schedules = list(base_schedule)
            if not self.class_schedules:
                raise ValueError("need at least one schedule class")
        if class_weights is None:
            weights = np.ones(len(self.class_schedules))
        else:
            weights = np.asarray(class_weights, dtype=float)
            if weights.size != len(self.class_schedules):
                raise ValueError("class_weights must match schedule classes")
            if np.any(weights < 0) or weights.sum() <= 0:
                raise ValueError("class_weights must be non-negative, not all 0")
        self.class_probabilities = weights / weights.sum()
        self.base_schedule = self.class_schedules[0]
        self.capacity = capacity
        self.arrival_rate = arrival_rate
        self.controller = controller
        self.rng = as_generator(seed)

        if abandon_after is not None and abandon_after < 1:
            raise ValueError("abandon_after must be >= 1 denial")
        self.faults = faults
        self.abandon_after = abandon_after

        self.engine = EventScheduler()
        self.link = RcbrLink(capacity)
        self._ids = itertools.count()
        self._call_events: dict = {}
        self._denial_streak: dict = {}

        # Cumulative counters (interval samples take deltas of these).
        self._arrivals = 0
        self._blocked = 0
        self._admitted = 0
        self._departed = 0
        self._increase_attempts = 0
        self._increase_failures = 0
        self._abandoned = 0
        self._injected_denials = 0
        self._allocated_mark = 0.0
        self._admit_time: dict = {}
        self._call_seconds = 0.0

        self._schedule_next_arrival()

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _schedule_next_arrival(self) -> None:
        gap = float(self.rng.exponential(1.0 / self.arrival_rate))
        self.engine.schedule_in(gap, self._handle_arrival)

    def _handle_arrival(self) -> None:
        self._schedule_next_arrival()
        now = self.engine.now
        self._arrivals += 1
        call_class = int(
            self.rng.choice(len(self.class_schedules), p=self.class_probabilities)
        )
        if not self.controller.admit(self.capacity, now, call_class=call_class):
            self._blocked += 1
            return
        call_id = next(self._ids)
        base = self.class_schedules[call_class]
        schedule = base.shifted(float(self.rng.uniform(0.0, base.duration)))
        # A call posts one event per renegotiation, so convert the whole
        # schedule in two batched passes instead of unboxing each rate
        # and absolute time scalar individually.
        rates = schedule.rates.tolist()
        at_times = (now + schedule.start_times).tolist()
        self._request(call_id, rates[0], setup=True)
        self._admitted += 1
        self._admit_time[call_id] = now
        self.controller.on_admit(
            call_id, rates[0], now, call_class=call_class
        )
        schedule_at = self.engine.schedule_at
        renegotiate = self._handle_renegotiation
        events = [
            schedule_at(at_times[index], renegotiate, call_id, rates[index])
            for index in range(1, len(rates))
        ]
        events.append(
            self.engine.schedule_at(
                now + schedule.duration, self._handle_departure, call_id
            )
        )
        self._call_events[call_id] = events

    def _handle_renegotiation(self, call_id, new_rate: float) -> None:
        self._request(call_id, new_rate, setup=False)
        if call_id in self._call_events:  # still alive (may have abandoned)
            self.controller.on_reservation(call_id, new_rate, self.engine.now)

    def _handle_departure(self, call_id) -> None:
        self._call_events.pop(call_id, None)
        self._denial_streak.pop(call_id, None)
        admitted_at = self._admit_time.pop(call_id, None)
        if admitted_at is not None:
            self._departed += 1
            self._call_seconds += self.engine.now - admitted_at
        self.link.release(call_id, self.engine.now)
        self.controller.on_departure(call_id, self.engine.now)

    def _request(self, call_id, new_rate: float, setup: bool) -> None:
        old = self.link.grant_of(call_id)
        is_increase = new_rate > old
        if is_increase and not setup:
            # Injected denial bursts hit renegotiations, not setup (setup
            # admission is the controller's job, already modelled).
            if self.faults is not None and self.faults.should_deny(
                self.engine.now
            ):
                self._increase_attempts += 1
                self._increase_failures += 1
                self._injected_denials += 1
                self._note_denial(call_id)
                return
        outcome = self.link.request(call_id, new_rate, self.engine.now)
        if is_increase:
            self._increase_attempts += 1
            if outcome.failed:
                self._increase_failures += 1
                if not setup:
                    self._note_denial(call_id)
            else:
                self._denial_streak.pop(call_id, None)

    def _note_denial(self, call_id) -> None:
        streak = self._denial_streak.get(call_id, 0) + 1
        self._denial_streak[call_id] = streak
        if self.abandon_after is not None and streak >= self.abandon_after:
            self._abandon(call_id)

    def _abandon(self, call_id) -> None:
        """The call gives up: cancel its future events and depart now."""
        for event in self._call_events.get(call_id, ()):
            event.cancel()
        self._abandoned += 1
        self._handle_departure(call_id)

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def counters(self) -> CallCounters:
        """Whole-run call accounting (see :class:`CallCounters`)."""
        return CallCounters(
            arrivals=self._arrivals,
            blocked=self._blocked,
            admitted=self._admitted,
            departed=self._departed,
            completed=self._departed - self._abandoned,
            abandoned=self._abandoned,
            increase_attempts=self._increase_attempts,
            increase_denials=self._increase_failures,
            injected_denials=self._injected_denials,
            total_call_seconds=self._call_seconds,
        )

    def run_interval(self, interval_seconds: Optional[float] = None) -> IntervalSample:
        """Advance one measurement interval and return its sample."""
        if interval_seconds is None:
            interval_seconds = self.base_schedule.duration
        if interval_seconds <= 0:
            raise ValueError("interval must be positive")
        arrivals0 = self._arrivals
        blocked0 = self._blocked
        attempts0 = self._increase_attempts
        failures0 = self._increase_failures
        abandoned0 = self._abandoned

        end = self.engine.now + interval_seconds
        self.engine.run(until=end)
        self.link.finish(end)

        arrivals = self._arrivals - arrivals0
        blocked = self._blocked - blocked0
        attempts = self._increase_attempts - attempts0
        failures = self._increase_failures - failures0
        abandoned = self._abandoned - abandoned0
        allocated = self.link.allocated_bit_seconds - self._allocated_mark
        self._allocated_mark = self.link.allocated_bit_seconds

        return IntervalSample(
            failure_fraction=failures / attempts if attempts else 0.0,
            utilization=allocated / (self.capacity * interval_seconds),
            blocking_fraction=blocked / arrivals if arrivals else 0.0,
            arrivals=arrivals,
            increase_attempts=attempts,
            abandoned=abandoned,
        )


def simulate_admission(
    base_schedule: RateSchedule,
    capacity: float,
    arrival_rate: float,
    controller: AdmissionController,
    seed: SeedLike = None,
    warmup_intervals: int = 1,
    min_intervals: int = 5,
    max_intervals: int = 60,
    relative_precision: float = 0.2,
    failure_target: Optional[float] = None,
    faults=None,
    abandon_after: Optional[int] = None,
) -> CallSimResult:
    """Run the Section VI experiment to the paper's stopping rule.

    Collects trace-length interval samples of the renegotiation failure
    fraction and utilization until both 95% confidence intervals are
    within ``relative_precision`` of their estimates — stopping early on
    the failure probability "if the target failure probability lies to
    the right of the confidence interval".
    """
    simulator = CallLevelSimulator(
        base_schedule,
        capacity,
        arrival_rate,
        controller,
        seed,
        faults=faults,
        abandon_after=abandon_after,
    )
    for _ in range(warmup_intervals):
        simulator.run_interval()

    failure_stopper = RelativePrecisionStopper(
        relative_precision=relative_precision,
        min_samples=min_intervals,
        max_samples=max_intervals,
        target_below=failure_target,
    )
    utilization_stopper = RelativePrecisionStopper(
        relative_precision=relative_precision,
        min_samples=min_intervals,
        max_samples=max_intervals,
    )
    result = CallSimResult()
    while True:
        sample = simulator.run_interval()
        result.samples.append(sample)
        failure_stopper.add(sample.failure_fraction)
        utilization_stopper.add(sample.utilization)
        if failure_stopper.should_stop() and utilization_stopper.should_stop():
            break
    result.failure_interval = mean_confidence_interval(failure_stopper.stats)
    result.utilization_interval = mean_confidence_interval(
        utilization_stopper.stats
    )
    result.counters = simulator.counters()
    return result


def arrival_rate_for_load(
    normalized_load: float,
    capacity: float,
    mean_call_rate: float,
    holding_time: float,
) -> float:
    """lambda for a target normalized offered load.

    normalized load = lambda * holding * mean_rate / capacity, so
    lambda = load * capacity / (mean_rate * holding).
    """
    if normalized_load <= 0:
        raise ValueError("normalized_load must be positive")
    if capacity <= 0 or mean_call_rate <= 0 or holding_time <= 0:
        raise ValueError("capacity, mean rate, and holding time must be positive")
    return normalized_load * capacity / (mean_call_rate * holding_time)
