"""Gateway throughput benchmark: the ">=50k concurrent calls, one core"
acceptance number.

Preloads a fleet of ``num_calls`` calls (no open-loop arrivals, an
always-admit controller, capacity sized with headroom above the fleet's
aggregate mean) and times the vectorized service loop for a fixed number
of epochs.  The headline figures are ``realtime_factor`` — simulated
seconds per wall-clock second, which must stay >= 1 for the gateway to
keep up with real time — and ``call_epochs_per_second``, the
size-independent throughput of the vector step.  Results land in
``BENCH_server.json`` via the shared :class:`~repro.perf.recorder.BenchRecorder`.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.perf.recorder import BenchRecorder
from repro.perf.sweeps import GRANULARITY, TRACE_SEED
from repro.server.config import ServerConfig
from repro.server.gateway import RcbrGateway
from repro.traffic.starwars import generate_starwars_trace
from repro.traffic.trace import SlottedWorkload


def bench_workload(num_frames: int = 4_096, seed: int = TRACE_SEED) -> SlottedWorkload:
    """A short synthetic Star Wars segment shared by all bench calls."""
    return generate_starwars_trace(num_frames=num_frames, seed=seed).as_workload()


def run_server_benchmark(
    num_calls: int = 50_000,
    epochs: int = 48,
    warmup_epochs: int = 48,
    seed: int = 0,
    workload: Optional[SlottedWorkload] = None,
    capacity_headroom: float = 1.1,
    out: Optional[Union[str, Path]] = None,
    recorder: Optional[BenchRecorder] = None,
) -> Dict[str, Any]:
    """Time ``epochs`` steady-state vector steps of a ``num_calls`` fleet.

    Capacity is ``num_calls * mean_rate * headroom`` so the link runs hot
    but not saturated — renegotiations mostly succeed, exercising the
    signaling path and link accounting, not just the numpy step.

    Fleet construction (:meth:`RcbrGateway.preload`) and the first
    ``warmup_epochs`` are run *untimed*: every call is admitted at t=0
    with a setup-time rate guess, so the opening epochs carry an AR(1)
    convergence burst of renegotiations that no long-lived service ever
    sees again.  The timed window measures steady-state serving, which is
    what "keeps up with real time" means for a gateway.  Both phases are
    still recorded (``server/preload``, ``server/warmup``) so the
    transient cost stays visible in the artifact.
    """
    if num_calls < 1:
        raise ValueError("num_calls must be >= 1")
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    if warmup_epochs < 0:
        raise ValueError("warmup_epochs must be non-negative")
    if workload is None:
        workload = bench_workload()
    config = ServerConfig(
        capacity=num_calls * workload.mean_rate * capacity_headroom,
        load=0.0,
        controller="always",
        granularity=GRANULARITY,
        initial_calls=num_calls,
        seed=seed,
    )
    if recorder is None:
        recorder = BenchRecorder(
            context={"benchmark": "server", "seed": seed}
        )

    slot = workload.slot_duration
    gateway = RcbrGateway(workload, config)
    build_start = time.perf_counter()
    gateway.preload()
    build_seconds = time.perf_counter() - build_start
    recorder.add("server/preload", build_seconds, num_calls=num_calls)

    if warmup_epochs:
        warmup_start = time.perf_counter()
        warmup = gateway.run(warmup_epochs * slot)
        recorder.add(
            "server/warmup",
            time.perf_counter() - warmup_start,
            epochs=warmup_epochs,
            reneg_requests=warmup.final.reneg_requests,
        )

    duration = epochs * slot
    renegs_before = gateway.reneg_requests
    call_epochs_before = gateway.fleet.call_epochs_stepped
    run_start = time.perf_counter()
    report = gateway.run(duration)
    run_seconds = time.perf_counter() - run_start

    call_epochs = report.call_epochs_stepped - call_epochs_before
    reneg_requests = report.final.reneg_requests - renegs_before
    realtime_factor = duration / run_seconds if run_seconds > 0 else float("inf")
    call_epochs_per_second = (
        call_epochs / run_seconds if run_seconds > 0 else float("inf")
    )
    recorder.add(
        "server/run",
        run_seconds,
        num_calls=num_calls,
        epochs=report.epochs,
        call_epochs=call_epochs,
        reneg_requests=reneg_requests,
    )
    recorder.annotate(
        num_calls=num_calls,
        epochs=report.epochs,
        warmup_epochs=warmup_epochs,
        simulated_seconds=round(duration, 6),
        realtime_factor=round(realtime_factor, 3),
        call_epochs_per_second=round(call_epochs_per_second, 1),
        mean_utilization=round(report.mean_utilization, 6),
        fingerprint=report.fingerprint,
    )
    if out is not None:
        recorder.write(out)

    return {
        "num_calls": num_calls,
        "epochs": report.epochs,
        "warmup_epochs": warmup_epochs,
        "simulated_seconds": duration,
        "build_seconds": build_seconds,
        "run_seconds": run_seconds,
        "realtime_factor": realtime_factor,
        "call_epochs_per_second": call_epochs_per_second,
        "reneg_requests": reneg_requests,
        "mean_utilization": report.mean_utilization,
        "fingerprint": report.fingerprint,
    }
