"""The three multiplexing scenarios of Fig. 3.

Scenario (a): traditional CBR — each source has its own buffer ``B`` and a
fixed CBR rate ``c``; no multiplexing between sources.

Scenario (b): unrestricted sharing — ``N`` sources feed one shared server
of rate ``N c`` and buffer ``N B``; this is the maximum achievable
statistical multiplexing gain.

Scenario (c): RCBR — each source is smoothed into a stepwise-CBR stream by
its own buffer ``B`` and the streams share a *bufferless* link of rate
``N c``; bits are lost when renegotiations fail.

All three keep the total service rate ``N c`` and the total buffering
``N B`` fixed, exactly as in the paper, so the per-source rate ``c(N)``
needed for a target loss probability is directly comparable (Fig. 6).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.core.schedule import RateSchedule
from repro.queueing.fluid import min_rate_for_loss, simulate_fluid_queue
from repro.traffic.trace import FrameTrace, SlottedWorkload
from repro.util.rng import SeedLike, as_generator
from repro.util.search import binary_search_min_feasible
from repro.util.stats import RunningStats


# ----------------------------------------------------------------------
# Workload assembly
# ----------------------------------------------------------------------
def aggregate_shifted_arrivals(
    trace: FrameTrace, num_sources: int, seed: SeedLike = None
) -> np.ndarray:
    """Sum of ``num_sources`` randomly circular-shifted copies of the trace.

    "The sources are randomly shifted versions of this trace"
    (Section V-B).  Returns per-slot aggregate arrivals in bits.
    """
    if num_sources < 1:
        raise ValueError("num_sources must be >= 1")
    rng = as_generator(seed)
    total = np.zeros(trace.num_frames)
    for _ in range(num_sources):
        offset = int(rng.integers(trace.num_frames))
        total += np.roll(trace.frame_bits, -offset)
    return total


# ----------------------------------------------------------------------
# Scenario (a): static CBR
# ----------------------------------------------------------------------
def scenario_a_rate(
    workload: SlottedWorkload,
    buffer_bits: float,
    loss_target: float,
    tolerance: Optional[float] = None,
) -> float:
    """Per-source CBR rate for scenario (a).

    Independent of ``N``: with no sharing, every source needs the rate
    that meets the loss target through its own buffer — one point of the
    trace's (sigma, rho) curve (Fig. 5).
    """
    return min_rate_for_loss(workload, buffer_bits, loss_target, tolerance)


# ----------------------------------------------------------------------
# Scenario (b): unrestricted sharing
# ----------------------------------------------------------------------
def scenario_b_loss(
    trace: FrameTrace,
    num_sources: int,
    rate_per_source: float,
    buffer_per_source: float,
    seed: SeedLike = None,
) -> float:
    """One randomized-phasing sample of the shared-buffer loss fraction."""
    arrivals = aggregate_shifted_arrivals(trace, num_sources, seed)
    drain = num_sources * rate_per_source * trace.frame_duration
    result = simulate_fluid_queue(
        arrivals, drain, buffer_bits=num_sources * buffer_per_source
    )
    return result.loss_fraction


# ----------------------------------------------------------------------
# Scenario (c): RCBR over a bufferless link
# ----------------------------------------------------------------------
def schedule_step_events(schedule: RateSchedule) -> Tuple[np.ndarray, np.ndarray]:
    """``(times, deltas)`` of a schedule's demand steps (initial rate included)."""
    rates = schedule.rates
    deltas = np.empty_like(rates)
    deltas[0] = rates[0]
    deltas[1:] = np.diff(rates)
    return schedule.start_times.copy(), deltas


def aggregate_demand(
    schedules: Sequence[RateSchedule],
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Merge schedules into one stepwise aggregate demand function.

    Returns ``(times, demand, duration)`` where ``demand[k]`` holds on
    ``[times[k], times[k+1])``.  All schedules must share one duration.
    """
    if not schedules:
        raise ValueError("need at least one schedule")
    duration = schedules[0].duration
    for schedule in schedules:
        if abs(schedule.duration - duration) > 1e-9:
            raise ValueError("all schedules must have the same duration")
    times = np.concatenate([s.start_times for s in schedules])
    rates = np.concatenate([s.rates for s in schedules])
    # Demand deltas of every schedule in one batched pass: within a
    # schedule the delta is the rate difference, and at each schedule's
    # first event it is the initial rate itself, so take the global
    # difference and then overwrite the per-schedule start positions.
    deltas = np.empty_like(rates)
    deltas[0] = rates[0]
    np.subtract(rates[1:], rates[:-1], out=deltas[1:])
    sizes = [s.start_times.size for s in schedules]
    starts = np.cumsum([0] + sizes[:-1])
    deltas[starts] = rates[starts]
    order = np.argsort(times, kind="stable")
    times = times[order]
    demand = np.cumsum(deltas[order])
    # Collapse simultaneous events so each breakpoint appears once.
    keep = np.empty(times.size, dtype=bool)
    keep[-1] = True
    np.greater(times[1:], times[:-1], out=keep[:-1])
    return times[keep], demand[keep], duration


def rcbr_overflow_bits(
    schedules: Sequence[RateSchedule], capacity: float
) -> Tuple[float, float]:
    """``(lost_bits, offered_bits)`` on a bufferless link of ``capacity``.

    Uses the work-conserving reallocation model of Section V-B: at any
    instant the link carries ``min(total demand, capacity)``, so the bits
    lost to renegotiation failures are the integral of the excess demand.
    This is exact when freed capacity is immediately redistributed to
    shortfall sources (see :class:`repro.queueing.link.RcbrLink`).
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    times, demand, duration = aggregate_demand(schedules)
    widths = np.empty_like(times)
    np.subtract(times[1:], times[:-1], out=widths[:-1])
    widths[-1] = duration - times[-1]
    excess = np.maximum(demand - capacity, 0.0)
    lost = float((excess * widths).sum())
    offered = float((demand * widths).sum())
    return lost, offered


def scenario_c_loss(
    schedule: RateSchedule,
    num_sources: int,
    rate_per_source: float,
    seed: SeedLike = None,
) -> float:
    """One randomized-phasing sample of the RCBR loss fraction.

    Each source is an independently circular-shifted copy of ``schedule``
    ("each call is a randomly shifted version of a Star Wars RCBR
    schedule").  Only renegotiation events are simulated (footnote 4).
    """
    if num_sources < 1:
        raise ValueError("num_sources must be >= 1")
    rng = as_generator(seed)
    shifted = [schedule.random_shift(rng) for _ in range(num_sources)]
    lost, offered = rcbr_overflow_bits(shifted, num_sources * rate_per_source)
    if offered == 0.0:
        return 0.0
    return lost / offered


# ----------------------------------------------------------------------
# Loss-targeted rate search (the Fig. 6 procedure)
# ----------------------------------------------------------------------
def estimate_mean_loss(
    sample_fn: Callable[[], float],
    relative_std: float = 0.2,
    min_samples: int = 4,
    max_samples: int = 48,
) -> float:
    """Average repeated loss samples per the paper's stopping rule.

    "At each step, we repeat the simulations until the sample standard
    deviation of the estimate is less than 20% of the estimate"
    (Section V-B).  All-zero samples short-circuit to zero.
    """
    stats = RunningStats()
    while True:
        stats.add(float(sample_fn()))
        if stats.count >= min_samples:
            if stats.mean == 0.0:
                return 0.0
            if stats.std_error <= relative_std * abs(stats.mean):
                return stats.mean
        if stats.count >= max_samples:
            return stats.mean


def scenario_b_min_rate(
    trace: FrameTrace,
    num_sources: int,
    buffer_per_source: float,
    loss_target: float,
    seed: SeedLike = None,
    tolerance: Optional[float] = None,
    relative_std: float = 0.2,
) -> float:
    """Minimum per-source rate for scenario (b) at the loss target.

    Binary search on ``c`` with randomized phasings at each step,
    exactly the Fig. 6 procedure.
    """
    rng = as_generator(seed)
    mean = trace.mean_rate
    peak = trace.peak_rate
    if tolerance is None:
        tolerance = max(1.0, 0.01 * mean)

    def feasible(rate: float) -> bool:
        loss = estimate_mean_loss(
            lambda: scenario_b_loss(
                trace, num_sources, rate, buffer_per_source, rng
            ),
            relative_std=relative_std,
        )
        return loss <= loss_target

    if feasible(mean):
        return mean
    return binary_search_min_feasible(feasible, mean, peak, tolerance)


def scenario_c_min_rate(
    schedule: RateSchedule,
    num_sources: int,
    loss_target: float,
    seed: SeedLike = None,
    tolerance: Optional[float] = None,
    relative_std: float = 0.2,
) -> float:
    """Minimum per-source rate for scenario (c) at the loss target."""
    rng = as_generator(seed)
    low = schedule.average_rate() * 0.5
    high = float(schedule.rates.max())
    if tolerance is None:
        tolerance = max(1.0, 0.01 * schedule.average_rate())

    def feasible(rate: float) -> bool:
        loss = estimate_mean_loss(
            lambda: scenario_c_loss(schedule, num_sources, rate, rng),
            relative_std=relative_std,
        )
        return loss <= loss_target

    if feasible(low):
        return low
    return binary_search_min_feasible(feasible, low, high, tolerance)
