"""Link-level overload control: downgrade, sacrifice, and drain beyond
admission blocking.

The paper's RCBR service only ever says "no" at admission time; when
offered load *stays* above capacity, blocking alone leaves every
admitted call fighting over a saturated link and the playout buffers
bleeding bits.  This package adds the missing link-level policy layer,
in the spirit of Fricker et al.'s downgrading allocation schemes:

* :class:`~repro.overload.plane.OverloadControlPlane` — watches
  utilization/demand pressure on the shared link with hysteresis
  (enter/exit thresholds plus a dwell time) so the policy cannot flap;
* :class:`~repro.overload.policies.BlockOnlyPolicy` — the baseline:
  admission blocking is the only control (today's behaviour, byte-for-
  byte);
* :class:`~repro.overload.policies.DowngradePolicy` — walks service
  classes down a resolution ladder, shrinking granted rates through the
  kernel's batched downgrade mask and restoring premium classes first
  when pressure clears;
* :class:`~repro.overload.policies.SacrificePolicy` — temporarily
  evicts the cheapest-to-displace calls (deterministic, seeded victim
  selection) into a bounded requeue, readmitting them once the link
  recovers;
* :class:`~repro.overload.linkagent.LinkScopedOverloadAgent` — scopes
  one plane+policy pair to a single bottleneck edge of a multi-link
  gateway, so every topology gets per-link overload control through
  the same policies.
"""

from repro.overload.linkagent import LinkScopedOverloadAgent
from repro.overload.plane import OverloadControlPlane
from repro.overload.policies import (
    OVERLOAD_POLICY_NAMES,
    BlockOnlyPolicy,
    DowngradePolicy,
    OverloadPolicy,
    SacrificePolicy,
    make_overload_policy,
)

__all__ = [
    "LinkScopedOverloadAgent",
    "OverloadControlPlane",
    "OVERLOAD_POLICY_NAMES",
    "OverloadPolicy",
    "BlockOnlyPolicy",
    "DowngradePolicy",
    "SacrificePolicy",
    "make_overload_policy",
]
