"""Shared utilities: units, RNG management, statistics, stochastic search.

These helpers underpin every experiment in the reproduction.  They are
deliberately small and dependency-light so that the substantive packages
(:mod:`repro.traffic`, :mod:`repro.queueing`, ...) stay focused on the
paper's algorithms.
"""

from repro.util.units import (
    KILO,
    MEGA,
    GIGA,
    kbps,
    mbps,
    gbps,
    kbits,
    mbits,
    bits_to_kbits,
    bits_to_mbits,
    rate_to_kbps,
    rate_to_mbps,
    format_rate,
    format_bits,
)
from repro.util.io import atomic_write
from repro.util.rng import RngMixin, as_generator, spawn_generators
from repro.util.stats import (
    RunningStats,
    ConfidenceInterval,
    mean_confidence_interval,
    RelativePrecisionStopper,
    jain_fairness,
    per_class_counts,
    per_class_means,
    per_class_totals,
)
from repro.util.search import binary_search_min_feasible

__all__ = [
    "KILO",
    "MEGA",
    "GIGA",
    "kbps",
    "mbps",
    "gbps",
    "kbits",
    "mbits",
    "bits_to_kbits",
    "bits_to_mbits",
    "rate_to_kbps",
    "rate_to_mbps",
    "format_rate",
    "format_bits",
    "atomic_write",
    "RngMixin",
    "as_generator",
    "spawn_generators",
    "RunningStats",
    "ConfidenceInterval",
    "mean_confidence_interval",
    "RelativePrecisionStopper",
    "jain_fairness",
    "per_class_counts",
    "per_class_means",
    "per_class_totals",
    "binary_search_min_feasible",
]
