"""Per-cell timing records for the sweep benchmarks.

A :class:`BenchRecorder` collects one record per unit of work — a sweep
cell, a DP solve, a trace generation — with its wall-clock cost, whether
it was served from the result cache, and any extra metadata the caller
wants to keep (nodes expanded, interval counts, …).  ``write()`` emits
the ``BENCH_sweeps.json`` format consumed by CI and by humans comparing
perf trajectories across commits.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.util.io import atomic_write

#: Format version of the emitted JSON.
BENCH_SCHEMA = 1


class BenchRecorder:
    """Accumulates ``(name, seconds, cached, **meta)`` records."""

    def __init__(self, context: Optional[Dict[str, Any]] = None) -> None:
        self.context: Dict[str, Any] = dict(context or {})
        self.records: List[Dict[str, Any]] = []
        self.sweep_report: Optional[Dict[str, Any]] = None
        self.history: Optional[List[Dict[str, Any]]] = None
        self._started = time.time()

    # ------------------------------------------------------------------
    def add(
        self, name: str, seconds: float, cached: bool = False, **meta: Any
    ) -> None:
        record: Dict[str, Any] = {
            "name": name,
            "seconds": round(float(seconds), 6),
            "cached": bool(cached),
        }
        for key, value in meta.items():
            if value is not None:
                record[key] = value
        self.records.append(record)

    def annotate(self, **context: Any) -> None:
        """Merge key/value pairs into the recorder's context.

        Lets a benchmark stamp derived results (a realtime factor, a
        throughput figure) onto the artifact after the timed runs, without
        rebuilding the recorder.
        """
        for key, value in context.items():
            if value is not None:
                self.context[key] = value

    def attach_report(self, report: Dict[str, Any]) -> None:
        """Attach a supervised sweep's :class:`SweepReport` dict.

        Emitted under ``"sweep_report"`` in :meth:`as_dict`, so bench
        artifacts carry the retry/timeout/quarantine story of the run
        that produced them.
        """
        self.sweep_report = dict(report)

    def attach_history(self, legs: List[Dict[str, Any]]) -> None:
        """Attach the artifact's per-commit history array.

        Benchmarks that gate on regressions (the server throughput
        bench) append one compact leg per run instead of overwriting the
        file, so the artifact carries the perf trajectory across
        commits.  Emitted under ``"history"`` in :meth:`as_dict`.
        """
        self.history = [dict(leg) for leg in legs]

    @contextmanager
    def time(self, name: str, **meta: Any):
        """Context manager timing a block as one record."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start, **meta)

    # ------------------------------------------------------------------
    def total_seconds(self) -> float:
        return float(sum(record["seconds"] for record in self.records))

    def summary(self) -> Dict[str, Any]:
        cached = sum(1 for record in self.records if record["cached"])
        return {
            "records": len(self.records),
            "cache_hits": cached,
            "cache_misses": len(self.records) - cached,
            "total_seconds": round(self.total_seconds(), 6),
        }

    def as_dict(self) -> Dict[str, Any]:
        payload = {
            "schema": BENCH_SCHEMA,
            "context": self.context,
            "summary": self.summary(),
            "records": self.records,
        }
        if self.sweep_report is not None:
            payload["sweep_report"] = self.sweep_report
        if self.history is not None:
            payload["history"] = self.history
        return payload

    def write(self, path: Union[str, Path]) -> None:
        """Atomically write the records as pretty-printed JSON."""
        atomic_write(path, json.dumps(self.as_dict(), indent=2) + "\n")

    def __len__(self) -> int:
        return len(self.records)
