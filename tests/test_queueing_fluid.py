"""Fluid-queue simulation kernels."""

import math

import numpy as np
import pytest

from repro.queueing.fluid import (
    loss_fraction_for_rate,
    min_rate_for_loss,
    required_buffer,
    sigma_rho_curve,
    simulate_downgrade_fluid,
    simulate_fluid_queue,
)
from repro.traffic.trace import SlottedWorkload


class TestSimulateFluidQueue:
    def test_stable_queue_no_loss(self):
        result = simulate_fluid_queue([1.0, 1.0, 1.0], 2.0, buffer_bits=10.0)
        assert result.lost_bits == 0.0
        assert result.loss_fraction == 0.0
        assert result.final_occupancy == 0.0

    def test_conservation(self):
        arrivals = [5.0, 0.0, 7.0, 1.0]
        result = simulate_fluid_queue(arrivals, 2.0, buffer_bits=4.0)
        served = result.arrived_bits - result.lost_bits - result.final_occupancy
        assert served >= 0
        assert result.arrived_bits == pytest.approx(13.0)

    def test_overflow_accounting(self):
        # One slot of 10 bits into a 4-bit buffer: 6 lost immediately.
        result = simulate_fluid_queue([10.0], 0.0, buffer_bits=4.0)
        assert result.lost_bits == pytest.approx(6.0)
        assert result.final_occupancy == pytest.approx(4.0)

    def test_occupancy_never_negative(self):
        result = simulate_fluid_queue(
            [1.0, 0.0, 0.0], 100.0, record_occupancy=True
        )
        assert np.all(result.occupancy >= 0.0)

    def test_occupancy_trajectory(self):
        result = simulate_fluid_queue(
            [3.0, 3.0, 0.0], 1.0, buffer_bits=100.0, record_occupancy=True
        )
        assert np.allclose(result.occupancy, [2.0, 4.0, 3.0])

    def test_max_occupancy_is_post_service(self):
        # Eq. 2/3 convention: the bound applies after the slot's service.
        result = simulate_fluid_queue([5.0, 5.0], 5.0, buffer_bits=100.0)
        assert result.max_occupancy == pytest.approx(0.0)
        result = simulate_fluid_queue([5.0, 5.0], 3.0, buffer_bits=100.0)
        assert result.max_occupancy == pytest.approx(4.0)

    def test_per_slot_drain_schedule(self):
        result = simulate_fluid_queue([4.0, 4.0], [1.0, 7.0], buffer_bits=100.0)
        assert result.final_occupancy == pytest.approx(0.0)
        assert result.lost_bits == 0.0

    def test_initial_occupancy(self):
        result = simulate_fluid_queue([0.0], 1.0, 10.0, initial_occupancy=5.0)
        assert result.final_occupancy == pytest.approx(4.0)

    def test_infinite_buffer_never_loses(self):
        result = simulate_fluid_queue([1e9, 1e9], 0.0)
        assert result.lost_bits == 0.0
        assert result.final_occupancy == pytest.approx(2e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_fluid_queue([], 1.0)
        with pytest.raises(ValueError):
            simulate_fluid_queue([1.0], -1.0)
        with pytest.raises(ValueError):
            simulate_fluid_queue([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            simulate_fluid_queue([1.0], 1.0, buffer_bits=-1.0)
        with pytest.raises(ValueError):
            simulate_fluid_queue([1.0], 1.0, 5.0, initial_occupancy=6.0)


class TestRequiredBuffer:
    def test_matches_envelope_formula(self):
        arrivals = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
        drain = 2.5
        # Brute-force sigma = max over windows of (sum - drain * len).
        best = 0.0
        for start in range(len(arrivals)):
            for end in range(start + 1, len(arrivals) + 1):
                window = arrivals[start:end].sum() - drain * (end - start)
                best = max(best, window)
        assert required_buffer(arrivals, drain) == pytest.approx(best)

    def test_zero_for_fast_drain(self):
        # Drain exceeds per-slot arrivals: queue never builds up.
        assert required_buffer([1.0, 1.0], 10.0) == pytest.approx(0.0)

    def test_monotone_in_drain(self, short_workload):
        arrivals = short_workload.bits_per_slot
        slot = short_workload.slot_duration
        buffers = [
            required_buffer(arrivals, rate * slot)
            for rate in np.linspace(
                short_workload.mean_rate, short_workload.peak_rate, 5
            )
        ]
        assert all(a >= b - 1e-6 for a, b in zip(buffers, buffers[1:]))


class TestMinRateForLoss:
    def test_zero_loss_target_needs_envelope_rate(self):
        workload = SlottedWorkload(np.array([4.0, 0.0, 4.0, 0.0]), 1.0)
        rate = min_rate_for_loss(workload, buffer_bits=2.0, loss_target=0.0)
        # Need to drain 2 bits of each 4-bit burst within its slot.
        assert rate == pytest.approx(2.0, abs=0.01)

    def test_rate_bounded_by_mean_and_peak(self, short_workload):
        rate = min_rate_for_loss(short_workload, 300_000.0, 1e-6)
        assert short_workload.mean_rate <= rate <= short_workload.peak_rate

    def test_achieves_target(self, short_workload):
        rate = min_rate_for_loss(short_workload, 300_000.0, 1e-3)
        loss = loss_fraction_for_rate(short_workload, rate, 300_000.0)
        assert loss <= 1e-3

    def test_bigger_buffer_smaller_rate(self, short_workload):
        small = min_rate_for_loss(short_workload, 100_000.0, 1e-6)
        large = min_rate_for_loss(short_workload, 1_000_000.0, 1e-6)
        assert large <= small + 1.0

    def test_huge_buffer_approaches_mean(self, short_workload):
        rate = min_rate_for_loss(short_workload, 1e9, 1e-6)
        assert rate == pytest.approx(short_workload.mean_rate, rel=0.01)

    def test_validation(self, short_workload):
        with pytest.raises(ValueError):
            min_rate_for_loss(short_workload, 1.0, 1.5)
        with pytest.raises(ValueError):
            loss_fraction_for_rate(short_workload, -1.0, 1.0)


class TestSigmaRhoCurve:
    def test_shape_and_monotonicity(self, short_workload):
        rates = np.linspace(
            short_workload.mean_rate * 1.05, short_workload.peak_rate, 6
        )
        curve = sigma_rho_curve(short_workload, rates)
        assert curve.shape == (6, 2)
        sigmas = curve[:, 1]
        assert all(a >= b - 1e-6 for a, b in zip(sigmas, sigmas[1:]))

    def test_multiple_timescale_traffic_has_long_tail(self, medium_trace):
        """Section II: at drain near the mean, the buffer requirement is
        enormous relative to the 300 kb RCBR buffer."""
        workload = medium_trace.as_workload()
        rate = 1.05 * workload.mean_rate
        sigma = required_buffer(
            workload.bits_per_slot, rate * workload.slot_duration
        )
        assert sigma > 10 * 300_000.0


class TestDowngradeFluid:
    """The overload plane's fluid-ODE companion model."""

    def _run(self, **overrides):
        defaults = dict(
            arrival_rates=[0.5, 0.3, 0.2],
            mean_holding=30.0,
            call_bandwidth=1e6,
            capacity=30.0 * 1e6,  # exactly the offered bandwidth
            dwell=2.0,
            dt=0.05,
            duration=300.0,
        )
        defaults.update(overrides)
        return simulate_downgrade_fluid(**defaults)

    def test_underload_stays_at_full_resolution(self):
        # Offered bandwidth at half the capacity: never overloaded, and
        # occupancies converge to the M/G/infinity point lambda_c * h.
        result = self._run(capacity=60.0 * 1e6)
        assert result.steady_levels.tolist() == [0, 0, 0]
        lam_h = np.array([0.5, 0.3, 0.2]) * 30.0
        assert np.allclose(result.steady_occupancy, lam_h, rtol=0.02)
        assert result.admitted_fraction == pytest.approx(1.0)

    def test_overload_escalates_lowest_priority_first(self):
        result = self._run(capacity=20.0 * 1e6)  # offered = 1.5x
        levels = result.steady_levels
        # Premium class is never more degraded than lower priorities.
        assert levels[0] <= levels[1] <= levels[2]
        assert levels.max() > 0

    def test_gated_equilibrium_structure(self):
        """With the admission gate binding, all classes share one
        admitted fraction, so occupancy ratios equal arrival-rate
        ratios exactly; carried bandwidth parks between the exit
        threshold and the gate (the hysteresis dead band)."""
        lam = np.array([1.5, 0.9, 0.6])
        capacity = (lam.sum() * 30.0 * 1e6) / 1.5  # offered = 1.5x gate
        result = self._run(
            arrival_rates=lam, capacity=capacity,
            admit_threshold=1.0, duration=600.0,
        )
        # The gate actually bound: some arrivals were turned away.
        assert result.admitted_fraction < 1.0
        # Shared admitted fraction => exact per-class proportionality.
        occupancy = result.steady_occupancy
        assert np.allclose(
            occupancy / occupancy.sum(), lam / lam.sum(), atol=1e-6
        )
        # Carried bandwidth never exceeds the gate and settles no
        # further below it than one hysteresis dead band.
        ladder = np.array([1.0, 0.75, 0.5, 0.35])
        carried = float(
            (occupancy * ladder[result.steady_levels]).sum() * 1e6
        )
        assert carried <= capacity * (1.0 + 1e-9)
        assert carried >= 0.75 * capacity

    def test_demand_overshoot_pins_the_floor(self):
        gentle = self._run(capacity=25.0 * 1e6)
        pinned = self._run(capacity=25.0 * 1e6, demand_overshoot=3.0)
        assert pinned.steady_levels.sum() >= gentle.steady_levels.sum()
        assert pinned.steady_levels.tolist() == [3, 3, 3]

    def test_trajectory_shapes_align(self):
        result = self._run(duration=10.0)
        steps = result.times.size
        assert result.occupancy.shape == (steps, 3)
        assert result.levels.shape == (steps, 3)
        assert result.pressure.shape == (steps,)

    def test_validation(self):
        with pytest.raises(ValueError):
            self._run(arrival_rates=[])
        with pytest.raises(ValueError):
            self._run(arrival_rates=[1.0, -1.0])
        with pytest.raises(ValueError):
            self._run(mean_holding=0.0)
        with pytest.raises(ValueError):
            simulate_downgrade_fluid(
                [1.0], 10.0, 1e6, 1e7, ladder=(1.0,)
            )
        with pytest.raises(ValueError):
            simulate_downgrade_fluid(
                [1.0], 10.0, 1e6, 1e7, enter=0.8, exit_=0.9
            )
        with pytest.raises(ValueError):
            self._run(demand_overshoot=0.5)
        with pytest.raises(ValueError):
            self._run(tail_fraction=0.0)
