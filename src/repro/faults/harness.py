"""Chaos/soak harness: sweep fault intensity against recovery policies.

One trial wires the full renegotiation pipeline under faults: a seeded
Star-Wars-like workload streams through the AR(1) online scheduler with a
finite RCBR buffer; every renegotiation travels a multi-hop
:class:`~repro.signaling.network.SignalingPath` carrying a
:class:`~repro.faults.injectors.FaultPlan` (Markov-modulated denial
bursts, cell loss, hop outages), with per-request timeouts and bounded
absolute-cell retries; a :mod:`repro.faults.recovery` policy decides what
the source does about denials.  The trial reports bits lost, the
renegotiation failure fraction, and time-to-recover statistics, plus a
fingerprint hash so bit-identical replay from a seed is checkable in one
string comparison.

``sweep_fault_recovery`` crosses fault intensities with policies (the
chaos grid); ``soak`` repeats one configuration across seeds (the long
holds).  All randomness derives from ``ChaosConfig.seed`` through
``SeedSequence`` spawning: trace, fault plan, and policy jitter each get
an independent stream.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.online import OnlineParams, OnlineScheduler
from repro.faults.injectors import FaultPlan
from repro.faults.recovery import RECOVERY_REGISTRY, make_recovery_policy
from repro.signaling.messages import RenegotiationRequest
from repro.signaling.network import SignalingPath
from repro.signaling.switch import SwitchPort
from repro.traffic.starwars import generate_starwars_trace
from repro.util.rng import spawn_generators


@dataclass(frozen=True)
class ChaosConfig:
    """One point in the chaos grid: fault intensities x recovery policy."""

    policy: str = "naive"
    policy_kwargs: Tuple[Tuple[str, object], ...] = ()
    deny_rate: float = 0.2  # long-run injected denial probability
    mean_burst_slots: float = 5.0  # mean denial-burst length (queries)
    deny_burst_probability: float = 0.9  # denial prob while bursting
    cell_loss: float = 0.0
    outage_rate: float = 0.0  # outage starts per second per hop
    outage_duration: float = 0.0  # mean outage length, seconds
    corruption: float = 0.0  # per-slot trace corruption probability
    num_slots: int = 2000
    num_hops: int = 3
    port_capacity: float = 20e6
    granularity: float = 64_000.0
    buffer_bits: float = 300_000.0  # the paper's 300 kb end-system buffer
    max_retries: int = 2
    request_timeout: Optional[float] = None  # None: the path's RTT default
    retry_backoff: float = 1.0  # retry-interval growth factor
    retry_jitter: float = 0.0  # extra random stretch per retry, [0, 1)
    seed: int = 0

    def fault_spec(self) -> Dict[str, Dict[str, object]]:
        """The :meth:`FaultPlan.from_spec` spec this config describes."""
        spec: Dict[str, Dict[str, object]] = {}
        if self.deny_rate > 0.0:
            spec["denial"] = {
                "rate": self.deny_rate,
                "mean_burst": self.mean_burst_slots,
                "deny_burst": self.deny_burst_probability,
            }
        if self.cell_loss > 0.0:
            spec["cell_loss"] = {"probability": self.cell_loss}
        if self.outage_rate > 0.0:
            spec["outage"] = {
                "rate": self.outage_rate,
                "mean_duration": self.outage_duration,
            }
        if self.corruption > 0.0:
            spec["corruption"] = {"probability": self.corruption}
        return spec


@dataclass(frozen=True)
class ChaosResult:
    """Outcome of one chaos trial."""

    policy: str
    deny_rate: float
    cell_loss: float
    seed: int
    offered_bits: float
    bits_lost: float
    requests: int
    denied: int
    suppressed: int
    renegotiations: int
    drain_slots: int
    max_buffer: float
    recovery_episodes: int
    mean_time_to_recover: float
    max_time_to_recover: float
    cells_sent: int
    cells_lost: int
    retries: int
    timeouts: int
    in_flight_leaks: int
    fingerprint: str

    @property
    def loss_fraction(self) -> float:
        if self.offered_bits == 0.0:
            return 0.0
        return self.bits_lost / self.offered_bits

    @property
    def failure_fraction(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.denied / self.requests


def run_chaos_trial(config: ChaosConfig) -> ChaosResult:
    """Run one seeded trial of the faulted renegotiation pipeline.

    Determinism contract: the same ``config`` (seed included) produces a
    bit-identical schedule and loss accounting, attested by
    ``fingerprint``.
    """
    # Four streams from one seed; SeedSequence spawning is prefix-stable,
    # so adding the retry stream left the first three untouched.
    trace_rng, fault_rng, policy_rng, retry_rng = spawn_generators(
        config.seed, 4
    )
    trace = generate_starwars_trace(
        num_frames=config.num_slots, seed=trace_rng, name="chaos"
    )
    plan = FaultPlan.from_spec(config.fault_spec(), seed=fault_rng)
    workload = plan.corrupt(trace.as_workload())

    ports = [
        SwitchPort(config.port_capacity, name=f"hop{i}")
        for i in range(config.num_hops)
    ]
    path = SignalingPath(
        ports,
        faults=plan,
        max_retries=config.max_retries,
        request_timeout=config.request_timeout,
        retry_backoff=config.retry_backoff,
        retry_jitter=config.retry_jitter,
        retry_seed=retry_rng,
    )
    policy = make_recovery_policy(
        config.policy, seed=policy_rng, **dict(config.policy_kwargs)
    )
    scheduler = OnlineScheduler(OnlineParams(granularity=config.granularity))

    believed_rate = 0.0
    episode_start: Optional[float] = None
    episodes: List[float] = []

    initial = scheduler.quantize(
        workload.bits_per_slot[0] / workload.slot_duration
    )
    setup = RenegotiationRequest(
        vci=0, old_rate=0.0, new_rate=initial, time=0.0
    )
    if path.renegotiate(setup):
        believed_rate = initial

    def request_fn(time: float, rate: float) -> bool:
        nonlocal believed_rate, episode_start
        if plan.should_deny(time):
            granted = False
        else:
            request = RenegotiationRequest(
                vci=0, old_rate=believed_rate, new_rate=rate, time=time
            )
            granted = path.renegotiate(request)
            if granted:
                believed_rate = rate
        if granted:
            if episode_start is not None:
                episodes.append(time - episode_start)
                episode_start = None
        elif episode_start is None:
            episode_start = time
        return granted

    result = scheduler.schedule(
        workload,
        initial_rate=believed_rate if believed_rate > 0 else initial,
        request_fn=request_fn,
        buffer_size=config.buffer_bits,
        recovery=policy,
    )
    if episode_start is not None:  # never recovered before the horizon
        episodes.append(workload.duration - episode_start)
    path.release(0)

    digest = hashlib.sha256()
    digest.update(np.asarray(result.schedule.rates, dtype=float).tobytes())
    digest.update(np.float64(result.bits_lost).tobytes())
    digest.update(np.int64(result.requests_made).tobytes())

    return ChaosResult(
        policy=config.policy,
        deny_rate=config.deny_rate,
        cell_loss=config.cell_loss,
        seed=config.seed,
        offered_bits=workload.total_bits,
        bits_lost=result.bits_lost,
        requests=result.requests_made,
        denied=result.requests_denied,
        suppressed=result.requests_suppressed,
        renegotiations=result.num_renegotiations,
        drain_slots=result.drain_slots,
        max_buffer=result.max_buffer,
        recovery_episodes=len(episodes),
        mean_time_to_recover=float(np.mean(episodes)) if episodes else 0.0,
        max_time_to_recover=float(np.max(episodes)) if episodes else 0.0,
        cells_sent=path.stats.cells_sent,
        cells_lost=path.stats.cells_lost,
        retries=path.stats.retries,
        timeouts=path.stats.timeouts,
        in_flight_leaks=path.in_flight,
        fingerprint=digest.hexdigest()[:16],
    )


def sweep_fault_recovery(
    deny_rates: Sequence[float] = (0.0, 0.1, 0.2, 0.4),
    policies: Optional[Sequence[str]] = None,
    base: ChaosConfig = ChaosConfig(),
) -> List[ChaosResult]:
    """The chaos grid: every policy at every denial intensity.

    Every cell of the grid reuses ``base`` (so cell loss, outages, seeds
    are held fixed) and overrides only the swept axes.
    """
    if policies is None:
        policies = sorted(RECOVERY_REGISTRY)
    results = []
    for deny_rate in deny_rates:
        for policy in policies:
            results.append(
                run_chaos_trial(
                    replace(base, deny_rate=deny_rate, policy=policy)
                )
            )
    return results


def soak(
    base: ChaosConfig, repeats: int = 5, seed_stride: int = 1
) -> List[ChaosResult]:
    """Repeat one configuration across seeds (the long-hold chaos run)."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    return [
        run_chaos_trial(replace(base, seed=base.seed + i * seed_stride))
        for i in range(repeats)
    ]


# ----------------------------------------------------------------------
# Worker-level chaos for the supervised sweep runtime
# ----------------------------------------------------------------------
# The injectors above attack the *simulated* network; these attack the
# *experiment runtime* itself — the worker processes of a
# ``repro.perf`` sweep — so the supervisor's recovery paths (timeout,
# pool rebuild, quarantine, serial degrade) are exercised deliberately.
# Fault firing is tracked in one attempt-counter file per cell (retries
# of a cell are sequential, so no locking is needed), which works
# identically in-process and across pool workers.


class ChaosWorkerError(RuntimeError):
    """The deliberate exception a poisoned sweep cell raises."""


class UnpicklableChaosError(RuntimeError):
    """An exception the worker cannot send back over the result queue.

    ``ProcessPoolExecutor`` pickles exceptions to return them; this one
    refuses, modelling cells that die with exotic exception payloads.
    """

    def __reduce__(self):
        raise TypeError("UnpicklableChaosError deliberately will not pickle")


@dataclass(frozen=True)
class WorkerFault:
    """One cell's sabotage: what to do, and for how many attempts.

    ``times`` is how many attempts fault before the cell behaves
    (``-1`` = every attempt, i.e. a permanently poisoned cell).
    """

    kind: str  # "kill" | "hang" | "raise" | "raise-unpicklable"
    times: int = 1
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in ("kill", "hang", "raise", "raise-unpicklable"):
            raise ValueError(f"unknown worker fault kind {self.kind!r}")


def _bump_attempt_counter(marker_path: str) -> int:
    """Increment and return this cell's attempt number (1-based)."""
    import os

    try:
        with open(marker_path, "r", encoding="utf-8") as handle:
            attempt = int(handle.read().strip() or 0) + 1
    except (OSError, ValueError):
        attempt = 1
    tmp = f"{marker_path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(str(attempt))
    os.replace(tmp, marker_path)
    return attempt


def faulted_cell_fn(
    inner_fn,
    inner_kwargs: Dict[str, object],
    fault_kind: str,
    fault_times: int,
    hang_seconds: float,
    marker_path: str,
    **injected,
):
    """Module-level (picklable) wrapper that sabotages early attempts.

    ``injected`` carries anything the engine adds at submit time — in
    particular the cell's ``seed_arg`` SeedSequence — and is merged over
    ``inner_kwargs``, so the wrapped cell sees exactly the arguments the
    bare cell would.
    """
    import os
    import time as _time

    attempt = _bump_attempt_counter(marker_path)
    if fault_times < 0 or attempt <= fault_times:
        if fault_kind == "kill":
            os._exit(1)  # no cleanup: models OOM-killer / SIGKILL
        if fault_kind == "hang":
            _time.sleep(hang_seconds)
        if fault_kind == "raise":
            raise ChaosWorkerError(
                f"injected failure on attempt {attempt}"
            )
        if fault_kind == "raise-unpicklable":
            raise UnpicklableChaosError()
    kwargs = dict(inner_kwargs)
    kwargs.update(injected)
    return inner_fn(**kwargs)


def chaos_sweep_cells(cells, faults, marker_dir) -> list:
    """Wrap sweep cells so the ones named in ``faults`` misbehave.

    ``faults`` maps cell index -> :class:`WorkerFault`; every other cell
    passes through untouched.  Wrapped cells keep their name and
    ``seed_arg`` (so the engine's deterministic seeding is preserved)
    but drop their cache payload — a sabotaged attempt must never be
    memoized.
    """
    from pathlib import Path

    from repro.perf.engine import SweepCell

    marker_dir = Path(marker_dir)
    marker_dir.mkdir(parents=True, exist_ok=True)
    wrapped = []
    for index, cell in enumerate(cells):
        fault = faults.get(index)
        if fault is None:
            wrapped.append(cell)
            continue
        wrapped.append(
            SweepCell(
                name=cell.name,
                fn=faulted_cell_fn,
                kwargs={
                    "inner_fn": cell.fn,
                    "inner_kwargs": cell.kwargs,
                    "fault_kind": fault.kind,
                    "fault_times": fault.times,
                    "hang_seconds": fault.hang_seconds,
                    "marker_path": str(marker_dir / f"cell-{index}.attempts"),
                },
                cache_payload=None,
                seed_arg=cell.seed_arg,
                meta=cell.meta,
            )
        )
    return wrapped
