"""The causal AR(1) renegotiation heuristic (Section IV-B)."""

import numpy as np
import pytest

from repro.core.online import OnlineParams, OnlineScheduler
from repro.traffic.trace import SlottedWorkload


def constant_workload(rate, num_slots=100, slot=1.0):
    return SlottedWorkload(np.full(num_slots, rate * slot), slot)


class TestParams:
    def test_defaults_match_paper(self):
        params = OnlineParams(granularity=25_000.0)
        assert params.low_threshold == 10_000.0  # B_l = 10 kb
        assert params.high_threshold == 150_000.0  # B_h = 150 kb
        assert params.time_constant_slots == 5.0  # T = 5 frames

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineParams(granularity=0.0)
        with pytest.raises(ValueError):
            OnlineParams(granularity=1.0, low_threshold=-1.0)
        with pytest.raises(ValueError):
            OnlineParams(granularity=1.0, low_threshold=10, high_threshold=5)
        with pytest.raises(ValueError):
            OnlineParams(granularity=1.0, time_constant_slots=0.0)
        with pytest.raises(ValueError):
            OnlineParams(granularity=1.0, ar_coefficient=1.0)
        with pytest.raises(ValueError):
            OnlineParams(granularity=1.0, max_rate=0.0)


class TestQuantization:
    def test_rounds_up_to_grid(self):
        scheduler = OnlineScheduler(OnlineParams(granularity=100.0))
        assert scheduler.quantize(1.0) == 100.0
        assert scheduler.quantize(100.0) == 100.0
        assert scheduler.quantize(101.0) == 200.0

    def test_zero_maps_to_zero(self):
        scheduler = OnlineScheduler(OnlineParams(granularity=100.0))
        assert scheduler.quantize(0.0) == 0.0

    def test_max_rate_caps(self):
        scheduler = OnlineScheduler(
            OnlineParams(granularity=100.0, max_rate=250.0)
        )
        assert scheduler.quantize(1000.0) == 250.0


class TestSchedulingBehaviour:
    def test_constant_source_never_renegotiates(self):
        workload = constant_workload(1000.0)
        params = OnlineParams(granularity=100.0, low_threshold=1, high_threshold=50)
        result = OnlineScheduler(params).schedule(workload)
        assert result.num_renegotiations == 0
        assert result.schedule.average_rate() == pytest.approx(1000.0)

    def test_step_up_source_renegotiates_up(self):
        rates = np.concatenate([np.full(50, 100.0), np.full(50, 1000.0)])
        workload = SlottedWorkload(rates, slot_duration=1.0)
        params = OnlineParams(
            granularity=100.0, low_threshold=10, high_threshold=100
        )
        result = OnlineScheduler(params).schedule(workload)
        assert result.num_renegotiations >= 1
        # Final rate should have risen to cover the new level.
        assert result.schedule.rates[-1] >= 1000.0

    def test_step_down_source_renegotiates_down(self):
        rates = np.concatenate([np.full(50, 1000.0), np.full(100, 100.0)])
        workload = SlottedWorkload(rates, slot_duration=1.0)
        params = OnlineParams(
            granularity=100.0, low_threshold=10, high_threshold=100
        )
        result = OnlineScheduler(params).schedule(workload)
        assert result.schedule.rates[-1] < 1000.0

    def test_max_buffer_reported_matches_schedule_replay(self, short_workload):
        params = OnlineParams(granularity=64_000.0)
        result = OnlineScheduler(params).schedule(short_workload)
        replay = result.schedule.max_buffer(short_workload)
        assert result.max_buffer == pytest.approx(replay, rel=1e-9)

    def test_finer_granularity_more_renegotiations(self, short_workload):
        fine = OnlineScheduler(OnlineParams(granularity=25_000.0)).schedule(
            short_workload
        )
        coarse = OnlineScheduler(OnlineParams(granularity=400_000.0)).schedule(
            short_workload
        )
        assert fine.num_renegotiations >= coarse.num_renegotiations

    def test_finer_granularity_better_efficiency(self, short_workload):
        """The Fig. 2 heuristic tradeoff, swept by delta."""
        fine = OnlineScheduler(OnlineParams(granularity=25_000.0)).schedule(
            short_workload
        )
        coarse = OnlineScheduler(OnlineParams(granularity=400_000.0)).schedule(
            short_workload
        )
        mean = short_workload.mean_rate
        assert fine.schedule.bandwidth_efficiency(
            mean
        ) >= coarse.schedule.bandwidth_efficiency(mean)

    def test_buffer_stays_moderate_on_video(self, short_workload):
        """Fig. 2's caption: occupancy never exceeded B = 300 kb."""
        params = OnlineParams(granularity=100_000.0)
        result = OnlineScheduler(params).schedule(short_workload)
        assert result.max_buffer < 400_000.0

    def test_initial_rate_explicit(self):
        workload = constant_workload(500.0, num_slots=10)
        params = OnlineParams(granularity=100.0)
        result = OnlineScheduler(params).schedule(workload, initial_rate=700.0)
        assert result.schedule.rates[0] == 700.0

    def test_initial_rate_negative_rejected(self):
        workload = constant_workload(10.0, num_slots=5)
        scheduler = OnlineScheduler(OnlineParams(granularity=100.0))
        with pytest.raises(ValueError):
            scheduler.schedule(workload, initial_rate=-1.0)


class TestRequestDenial:
    def test_denied_requests_keep_old_rate(self):
        rates = np.concatenate([np.full(20, 100.0), np.full(80, 2000.0)])
        workload = SlottedWorkload(rates, slot_duration=1.0)
        params = OnlineParams(
            granularity=100.0, low_threshold=10, high_threshold=100
        )
        deny_all = OnlineScheduler(params).schedule(
            workload, request_fn=lambda time, rate: False
        )
        assert deny_all.requests_denied == deny_all.requests_made
        assert deny_all.num_renegotiations == 0

    def test_denied_then_granted_retries(self):
        rates = np.concatenate([np.full(20, 100.0), np.full(80, 2000.0)])
        workload = SlottedWorkload(rates, slot_duration=1.0)
        params = OnlineParams(
            granularity=100.0, low_threshold=10, high_threshold=100
        )
        calls = []

        def grant_after_three(time, rate):
            calls.append(time)
            return len(calls) > 3

        result = OnlineScheduler(params).schedule(
            workload, request_fn=grant_after_three
        )
        assert result.requests_denied == 3
        assert result.num_renegotiations >= 1


class TestFiniteBuffer:
    def step_up_workload(self):
        rates = np.concatenate([np.full(20, 100.0), np.full(80, 2000.0)])
        return SlottedWorkload(rates, slot_duration=1.0)

    def params(self):
        return OnlineParams(
            granularity=100.0, low_threshold=10, high_threshold=100
        )

    def test_overflow_counts_bits_lost(self):
        workload = self.step_up_workload()
        result = OnlineScheduler(self.params()).schedule(
            workload,
            request_fn=lambda time, rate: False,  # every increase denied
            buffer_size=500.0,
        )
        assert result.bits_lost > 0.0
        assert result.max_buffer <= 500.0
        # With every increase denied the rate stays at 100 and each
        # steady-state slot overflows by the full deficit.
        assert result.bits_lost == pytest.approx((2000.0 - 100.0) * 80, rel=0.05)

    def test_unbounded_buffer_loses_nothing(self):
        workload = self.step_up_workload()
        result = OnlineScheduler(self.params()).schedule(
            workload, request_fn=lambda time, rate: False
        )
        assert result.bits_lost == 0.0

    def test_buffer_size_must_be_positive(self):
        workload = self.step_up_workload()
        scheduler = OnlineScheduler(self.params())
        with pytest.raises(ValueError):
            scheduler.schedule(workload, buffer_size=0.0)

    def test_granted_requests_avoid_overflow(self):
        workload = self.step_up_workload()
        result = OnlineScheduler(self.params()).schedule(
            workload, buffer_size=500_000.0
        )
        assert result.bits_lost == 0.0

    def test_result_defaults_keep_legacy_constructors_working(self):
        # Callers constructing OnlineScheduleResult without the new
        # fields (e.g. the GoP-aware variant) still work.
        from repro.core.online import OnlineScheduleResult
        from repro.core.schedule import RateSchedule

        schedule = RateSchedule([0.0], [100.0], duration=1.0)
        result = OnlineScheduleResult(
            schedule=schedule, max_buffer=0.0, final_buffer=0.0,
            requests_made=0, requests_denied=0,
        )
        assert result.bits_lost == 0.0
        assert result.drain_slots == 0
        assert result.requests_suppressed == 0


class TestFastPathEquivalence:
    """The no-faults fast path must match the general loop bit for bit.

    ``schedule()`` dispatches to ``_schedule_fast`` when there is no
    recovery policy, no request_fn and no finite buffer; passing an
    always-granting ``request_fn`` forces the general loop with the same
    semantics, so every float of the two results must be *exactly*
    equal — the Fig. 2 curve and the MBAC per-source schedules depend
    on the paths being interchangeable.
    """

    def random_workload(self, seed, num_slots=400):
        rng = np.random.default_rng(seed)
        # Bursty, AR-correlated arrivals so both threshold branches and
        # the zero-clamp in the quantiser get exercised.
        base = rng.gamma(shape=2.0, scale=40_000.0, size=num_slots)
        burst = (rng.random(num_slots) < 0.05) * rng.uniform(
            5e5, 2e6, size=num_slots
        )
        return SlottedWorkload(base + burst, slot_duration=1.0 / 24.0)

    @staticmethod
    def assert_bit_identical(fast, general):
        assert fast.max_buffer == general.max_buffer
        assert fast.final_buffer == general.final_buffer
        assert fast.requests_made == general.requests_made
        assert fast.requests_denied == general.requests_denied == 0
        assert np.array_equal(
            fast.schedule.rates, general.schedule.rates
        )
        assert np.array_equal(
            fast.schedule.start_times, general.schedule.start_times
        )
        assert fast.schedule.duration == general.schedule.duration

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_general_loop(self, seed):
        scheduler = OnlineScheduler(OnlineParams(granularity=64_000.0))
        workload = self.random_workload(seed)
        fast = scheduler.schedule(workload)
        general = scheduler.schedule(workload, request_fn=lambda *_: True)
        self.assert_bit_identical(fast, general)

    def test_matches_with_max_rate_cap(self):
        params = OnlineParams(granularity=64_000.0, max_rate=600_000.0)
        scheduler = OnlineScheduler(params)
        workload = self.random_workload(3)
        fast = scheduler.schedule(workload)
        general = scheduler.schedule(workload, request_fn=lambda *_: True)
        self.assert_bit_identical(fast, general)
        assert fast.schedule.rates.max() <= 600_000.0

    def test_matches_with_explicit_initial_rate(self):
        scheduler = OnlineScheduler(OnlineParams(granularity=25_000.0))
        workload = self.random_workload(4)
        fast = scheduler.schedule(workload, initial_rate=100_000.0)
        general = scheduler.schedule(
            workload, initial_rate=100_000.0, request_fn=lambda *_: True
        )
        self.assert_bit_identical(fast, general)

    def test_fast_path_handles_idle_source(self):
        workload = SlottedWorkload(np.zeros(50), slot_duration=1.0)
        result = OnlineScheduler(
            OnlineParams(granularity=1000.0)
        ).schedule(workload)
        assert result.schedule.average_rate() == 0.0
        assert result.max_buffer == 0.0
