"""The sharded gateway: 1M concurrent calls at realtime on one box.

This module partitions the call fleet's :class:`~repro.core.kernel.KernelState`
structure-of-arrays across N worker processes.  The full-size state
columns live in process-shared memory (``multiprocessing.RawArray``
wrappers, fork-inherited); each worker owns an interleaved set of
contiguous ``chunk_size``-slot *chunks* and steps them through the one
renegotiation kernel via zero-copy
:class:`~repro.core.kernel.KernelStateView` windows.  The coordinator
(the gateway process) keeps everything that must stay global: the event
heap, every RNG stream, admission, the shared
:class:`~repro.queueing.link.DenseRcbrLink`, the signaling ports, and
the overload control plane.

Determinism contract (the whole point — see DESIGN.md §14):

* **Shard assignment is a pure function of the pool slot**:
  ``shard_of_slot(slot) = (slot // chunk_size) % num_shards``.  Pool
  slots never change over a call's lifetime, so a call never migrates
  shards, under fleet growth (which only appends chunks) or compaction.
* **Workers consume no randomness.**  All six seeded streams stay in
  the coordinator, drawn in exactly the unsharded order.  Each worker
  is still handed its ``SeedSequence(seed, spawn_key=(shard,))``-derived
  stream (the canonical derivation, reserved for worker-local needs);
  keeping it out of the hot path is what makes ``--shards 1`` byte-
  identical to the committed pre-shard ``BENCH_server.json``
  fingerprint.
* **Every float reduction happens in the coordinator over full-length
  columns.**  Workers run only elementwise kernel operations on
  disjoint slices — bit-identical to the same rows of a whole-array
  step — and defer the overflow/downgrade accounting into shared
  per-slot columns that :func:`~repro.core.kernel.merge_deferred_step`
  reduces exactly as the unsharded step would have.
* **Merging imposes canonical order**: the coordinator waits for every
  shard, then masks/reduces/issues in ascending slot order, so the
  inter-shard completion order (which is scheduling noise) never
  reaches any observable.

Together these give the locked invariant: same seed ⇒ byte-identical
snapshot fingerprint for any ``shards`` count, including the unsharded
gateway.

Supervision reuses :class:`~repro.perf.supervise.SupervisorPolicy`:
a worker that dies or exceeds the step timeout triggers a pool rebuild
and a lossless re-step — each worker snapshots a chunk's persistent
columns into shared shadow copies before mutating it and journals
per-chunk ``started``/``done`` ticks, so a replacement worker restores
any torn chunk and skips completed ones.  After ``max_pool_rebuilds``
the fleet degrades to stepping chunks inline in the coordinator
(service stays up, just slower), mirroring the sweep engine's
degrade-to-serial policy.
"""

from __future__ import annotations

import ctypes
import multiprocessing
import os
import time
from multiprocessing.connection import wait as _wait_connections
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.admission.controllers import AdmissionController
from repro.core.kernel import (
    KernelStateView,
    RenegotiationKernel,
    merge_deferred_step,
)
from repro.core.online import OnlineParams
from repro.faults.injectors import FaultPlan
from repro.perf.supervise import SupervisorPolicy
from repro.queueing.link import DenseRcbrLink, RcbrLink
from repro.server.config import ServerConfig
from repro.server.fleet import CallFleet, EpochStep
from repro.server.gateway import RcbrGateway
from repro.signaling.switch import DenseSwitchPort, SwitchPort
from repro.traffic.sources import TrafficSource
from repro.traffic.trace import SlottedWorkload


def shard_of_slot(slot: int, chunk_size: int, num_shards: int) -> int:
    """Which shard owns a pool slot.  Pure, stable, total.

    Contiguous ``chunk_size``-slot chunks are dealt to shards round-
    robin, so one shard's working set is a strided family of contiguous
    ranges (cache-friendly slices) while growth only ever *appends*
    chunks — existing slots keep their shard forever.
    """
    return (slot // chunk_size) % num_shards


def _num_chunks(capacity: int, chunk_size: int) -> int:
    return -(-capacity // chunk_size)


class WorkerPoolError(RuntimeError):
    """A shard worker died, hung, or answered out of protocol."""


class _SharedColumns:
    """Fork-shared numpy columns backing one sharded fleet.

    One flat float64/bool/int64 array per kernel column plus the
    deferred-accounting columns (``arrivals`` doubles as the raw
    pre-downgrade arrivals), the crash-recovery shadow copies of the
    persistent state, and the per-chunk ``started``/``done`` tick
    journal.  Everything is ``RawArray``-backed: no locks — the step
    protocol guarantees disjoint writers, and the coordinator only
    reads after every worker has answered.
    """

    _FLOAT_COLUMNS = (
        "rate",
        "estimate",
        "buffer",
        "candidate",
        "scratch",
        "arrivals",
        "scaled",
        "excess",
        "downgrade",
        "rate_shadow",
        "estimate_shadow",
        "buffer_shadow",
    )
    _BOOL_COLUMNS = ("wants", "wants_down", "cmp", "active", "pending")

    def __init__(self, capacity: int, chunk_size: int) -> None:
        self.capacity = int(capacity)
        self.chunk_size = int(chunk_size)
        self.num_chunks = _num_chunks(capacity, chunk_size)
        self._buffers = {}
        for name in self._FLOAT_COLUMNS:
            self._attach(name, ctypes.c_double, capacity, np.float64)
        for name in self._BOOL_COLUMNS:
            self._attach(name, ctypes.c_bool, capacity, np.bool_)
        self._attach("shift", ctypes.c_int64, capacity, np.int64)
        self._attach(
            "chunk_started", ctypes.c_int64, self.num_chunks, np.int64
        )
        self._attach("chunk_done", ctypes.c_int64, self.num_chunks, np.int64)
        self.chunk_started.fill(-1)
        self.chunk_done.fill(-1)

    def _attach(self, name, ctype, length, dtype) -> None:
        raw = multiprocessing.RawArray(ctype, int(length))
        self._buffers[name] = raw  # keep the buffer alive
        setattr(self, name, np.frombuffer(raw, dtype=dtype))

    def copy_persistent_from(self, old: "_SharedColumns") -> None:
        """Carry live state across a grow (columns are zero past it)."""
        span = old.capacity
        for name in ("rate", "estimate", "buffer", "shift", "active",
                     "pending"):
            getattr(self, name)[:span] = getattr(old, name)

    def chunk_bounds(self, chunk: int) -> "tuple[int, int]":
        low = chunk * self.chunk_size
        return low, min(low + self.chunk_size, self.capacity)


def _run_chunk(
    columns: _SharedColumns,
    kernel: RenegotiationKernel,
    base_bits: np.ndarray,
    num_base_slots: int,
    chunk: int,
    tick: int,
    use_downgrade: bool,
) -> None:
    """Step one chunk of the fleet through base slot ``tick``.

    Idempotent per (chunk, tick): a completed chunk is skipped, and a
    chunk that a dead worker left half-stepped is restored from its
    shadow copy first, so supervision can re-dispatch a step without
    corrupting state.  The arithmetic is the slice-for-slice image of
    :meth:`CallFleet.step`'s gather plus the kernel step in deferred
    accounting mode.
    """
    if columns.chunk_done[chunk] == tick:
        return
    low, high = columns.chunk_bounds(chunk)
    window = slice(low, high)
    if columns.chunk_started[chunk] == tick:
        # A previous worker died mid-chunk: roll back to the pre-step
        # snapshot before re-stepping.
        columns.rate[window] = columns.rate_shadow[window]
        columns.estimate[window] = columns.estimate_shadow[window]
        columns.buffer[window] = columns.buffer_shadow[window]
    else:
        columns.rate_shadow[window] = columns.rate[window]
        columns.estimate_shadow[window] = columns.estimate[window]
        columns.buffer_shadow[window] = columns.buffer[window]
        columns.chunk_started[chunk] = tick

    index = columns.shift[window] + (tick % num_base_slots)
    np.subtract(
        index, num_base_slots, out=index, where=index >= num_base_slots
    )
    amount = columns.arrivals[window]
    np.multiply(base_bits[index], columns.active[window], out=amount)

    view = KernelStateView(
        rate=columns.rate[window],
        estimate=columns.estimate[window],
        buffer=columns.buffer[window],
        candidate=columns.candidate[window],
        scratch=columns.scratch[window],
        wants=columns.wants[window],
        wants_down=columns.wants_down[window],
        cmp=columns.cmp[window],
    )
    kernel.step(
        view,
        amount,
        downgrade=columns.downgrade[window] if use_downgrade else None,
        excess_out=(
            columns.excess[window] if kernel.buffer_size is not None else None
        ),
        raw_arrivals_out=amount if use_downgrade else None,
        scaled_arrivals_out=(
            columns.scaled[window] if use_downgrade else None
        ),
    )
    columns.chunk_done[chunk] = tick


def _shard_worker_main(
    conn,
    columns: _SharedColumns,
    kernel: RenegotiationKernel,
    base_bits: np.ndarray,
    num_base_slots: int,
    chunks: Sequence[int],
    seed_sequence,
) -> None:
    """One shard worker: step my chunks when told, until told to stop.

    ``seed_sequence`` is this shard's canonical
    ``SeedSequence(base_seed, spawn_key=(shard,))`` stream.  The hot
    path is deliberately RNG-free (all randomness stays in the
    coordinator so fingerprints cannot depend on the shard count); the
    stream exists so any future worker-local need draws from the
    documented derivation instead of inventing one.
    """
    del seed_sequence  # reserved; see docstring
    parent_pid = os.getppid()
    try:
        while True:
            # Block in short slices: a SIGKILLed coordinator never
            # closes our pipe (sibling workers forked after us inherit
            # its parent end, so EOF cannot arrive), and reparenting is
            # then the only death signal we get.
            while not conn.poll(1.0):
                if os.getppid() != parent_pid:
                    return
            command = conn.recv()
            if command[0] == "stop":
                break
            if command[0] == "ping":
                conn.send(("pong",))
                continue
            _, tick, use_downgrade = command
            for chunk in chunks:
                _run_chunk(
                    columns, kernel, base_bits, num_base_slots,
                    chunk, tick, use_downgrade,
                )
            conn.send(("done", tick))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


class ShardWorkerPool:
    """N persistent fork workers stepping a shared column block.

    Commands and replies travel over one pipe per worker; the shared
    block itself never crosses the pipes.  ``step`` raises
    :class:`WorkerPoolError` on death, hang (``policy.timeout``), or a
    protocol violation; the owner rebuilds or degrades per
    :class:`~repro.perf.supervise.SupervisorPolicy` — this pool stays
    mechanism, not policy.
    """

    def __init__(
        self,
        columns: _SharedColumns,
        kernel: RenegotiationKernel,
        base_bits: np.ndarray,
        num_base_slots: int,
        num_shards: int,
        policy: SupervisorPolicy,
        base_seed: int,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self._columns = columns
        self._kernel = kernel
        self._base_bits = base_bits
        self._num_base_slots = int(num_base_slots)
        self.num_shards = int(num_shards)
        self._policy = policy
        self._base_seed = int(base_seed)
        self._context = multiprocessing.get_context("fork")
        self._workers: List = []
        self._conns: List = []
        self._spawn()

    def _chunks_of(self, shard: int) -> List[int]:
        return [
            chunk
            for chunk in range(self._columns.num_chunks)
            if chunk % self.num_shards == shard
        ]

    def _spawn(self) -> None:
        self._workers = []
        self._conns = []
        for shard in range(self.num_shards):
            parent_conn, child_conn = self._context.Pipe()
            seed_sequence = np.random.SeedSequence(
                self._base_seed, spawn_key=(shard,)
            )
            worker = self._context.Process(
                target=_shard_worker_main,
                args=(
                    child_conn,
                    self._columns,
                    self._kernel,
                    self._base_bits,
                    self._num_base_slots,
                    self._chunks_of(shard),
                    seed_sequence,
                ),
                daemon=True,
                name=f"rcbr-shard-{shard}",
            )
            worker.start()
            # Close the parent's copy of the child end right away so a
            # dead worker surfaces as EOF on its pipe.
            child_conn.close()
            self._workers.append(worker)
            self._conns.append(parent_conn)

    @property
    def alive(self) -> bool:
        return bool(self._workers) and all(
            worker.is_alive() for worker in self._workers
        )

    def heartbeat(self, timeout: Optional[float] = None) -> None:
        """Watchdog round-trip: every worker must be alive and answering.

        Run once per epoch before dispatching the step.  A worker that
        died *between* epochs would otherwise surface only as an EOF
        mid-step — or, with ``policy.timeout`` unset (the default), a
        worker wedged without dying (e.g. SIGSTOP) would hang the
        coordinator forever.  The liveness check catches silent deaths
        before any pipe I/O; the ping round-trip bounds wedge detection
        by ``timeout`` (default: ``policy.timeout`` or 5 s).  Failures
        raise :class:`WorkerPoolError`, folding into the owner's
        existing rebuild-or-degrade path.
        """
        if timeout is None:
            timeout = self._policy.timeout or 5.0
        dead = [
            shard
            for shard, worker in enumerate(self._workers)
            if not worker.is_alive()
        ]
        if dead:
            codes = [self._workers[shard].exitcode for shard in dead]
            raise WorkerPoolError(
                f"shards {dead} died silently between epochs "
                f"(exit codes {codes})"
            )
        try:
            for conn in self._conns:
                conn.send(("ping",))
        except (BrokenPipeError, OSError) as error:
            raise WorkerPoolError(f"shard worker pipe broke: {error}")
        deadline = time.monotonic() + timeout
        pending = dict(enumerate(self._conns))
        while pending:
            ready = _wait_connections(
                list(pending.values()), timeout=self._policy.poll_interval
            )
            for conn in ready:
                shard = next(
                    index for index, c in pending.items() if c is conn
                )
                try:
                    reply = conn.recv()
                except (EOFError, OSError) as error:
                    raise WorkerPoolError(
                        f"shard {shard} died during heartbeat: {error}"
                    )
                if reply != ("pong",):
                    raise WorkerPoolError(
                        f"shard {shard} answered {reply!r} to a ping"
                    )
                del pending[shard]
            if not pending:
                return
            for shard in pending:
                if not self._workers[shard].is_alive():
                    raise WorkerPoolError(
                        f"shard {shard} died during heartbeat (exit code "
                        f"{self._workers[shard].exitcode})"
                    )
            if time.monotonic() > deadline:
                raise WorkerPoolError(
                    f"shards {sorted(pending)} failed to answer the "
                    f"heartbeat within {timeout}s"
                )

    def step(self, tick: int, use_downgrade: bool) -> None:
        """Dispatch one epoch step and wait for every shard."""
        try:
            for conn in self._conns:
                conn.send(("step", int(tick), bool(use_downgrade)))
        except (BrokenPipeError, OSError) as error:
            raise WorkerPoolError(f"shard worker pipe broke: {error}")
        pending = dict(enumerate(self._conns))
        deadline = (
            None
            if self._policy.timeout is None
            else time.monotonic() + self._policy.timeout
        )
        while pending:
            ready = _wait_connections(
                list(pending.values()), timeout=self._policy.poll_interval
            )
            for conn in ready:
                shard = next(
                    index for index, c in pending.items() if c is conn
                )
                try:
                    reply = conn.recv()
                except (EOFError, OSError) as error:
                    raise WorkerPoolError(
                        f"shard {shard} died mid-step: {error}"
                    )
                if reply != ("done", int(tick)):
                    raise WorkerPoolError(
                        f"shard {shard} answered {reply!r} to tick {tick}"
                    )
                del pending[shard]
            if not pending:
                return
            for shard in pending:
                if not self._workers[shard].is_alive():
                    raise WorkerPoolError(
                        f"shard {shard} exited with code "
                        f"{self._workers[shard].exitcode}"
                    )
            if deadline is not None and time.monotonic() > deadline:
                raise WorkerPoolError(
                    f"shards {sorted(pending)} exceeded the "
                    f"{self._policy.timeout}s step timeout"
                )

    def rebuild(self) -> None:
        """Kill whatever is left and respawn a fresh pool (same block)."""
        self._terminate()
        self._spawn()

    def close(self) -> None:
        """Orderly shutdown; safe to call repeatedly."""
        for conn, worker in zip(self._conns, self._workers):
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.join(timeout=1.0)
        self._terminate()

    def _terminate(self) -> None:
        for worker in self._workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._workers = []
        self._conns = []


class ShardedFleet(CallFleet):
    """A :class:`CallFleet` whose kernel state lives in shared memory.

    Pool bookkeeping (admission, free list, per-slot metadata) is
    unchanged coordinator-side logic; only the per-epoch kernel step is
    farmed out.  The step protocol is: write the downgrade column if
    any, dispatch ``(tick, use_downgrade)`` to every worker, wait for
    all, then reduce the deferred accounting columns and apply the
    eligibility masks over the full-length shared arrays — every
    reduction bit-identical to :meth:`CallFleet.step` on one process.
    """

    def __init__(
        self,
        workload: SlottedWorkload,
        params: OnlineParams,
        buffer_size: Optional[float] = None,
        initial_capacity: int = 256,
        num_shards: int = 1,
        chunk_size: int = 4096,
        supervisor: Optional[SupervisorPolicy] = None,
        seed: int = 0,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        super().__init__(
            workload,
            params,
            buffer_size=buffer_size,
            initial_capacity=initial_capacity,
        )
        self.num_shards = int(num_shards)
        self.chunk_size = int(chunk_size)
        self.supervisor = (
            supervisor if supervisor is not None else SupervisorPolicy()
        )
        self.seed = int(seed)
        self.pool_rebuilds = 0
        self.degraded = False
        #: Called with the new capacity after the pool grows, so the
        #: gateway can widen its dense link/ports in lockstep.
        self.on_grow: Optional[Callable[[int], None]] = None
        self._pool: Optional[ShardWorkerPool] = None
        self._columns = _SharedColumns(self._capacity, self.chunk_size)
        self._adopt_columns()

    # ------------------------------------------------------------------
    def _adopt_columns(self) -> None:
        """Re-point fleet/kernel state at the shared column block."""
        columns = self._columns
        state = self._state
        for name in ("rate", "estimate", "buffer"):
            getattr(columns, name)[: getattr(state, name).size] = getattr(
                state, name
            )
            setattr(state, name, getattr(columns, name))
        state._candidate = columns.candidate
        state._scratch = columns.scratch
        state._wants = columns.wants
        state._wants_down = columns.wants_down
        state._cmp = columns.cmp
        for mine, shared in (
            ("active", columns.active),
            ("pending", columns.pending),
            ("shift", columns.shift),
        ):
            shared[: getattr(self, mine).size] = getattr(self, mine)
            setattr(self, mine, shared)

    def _grow(self) -> None:
        old_capacity = self._capacity
        new_capacity = old_capacity * 2
        new_columns = _SharedColumns(new_capacity, self.chunk_size)
        new_columns.copy_persistent_from(self._columns)
        self._columns = new_columns
        state = self._state
        for name in ("rate", "estimate", "buffer"):
            setattr(state, name, getattr(new_columns, name))
        state._candidate = new_columns.candidate
        state._scratch = new_columns.scratch
        state._wants = new_columns.wants
        state._wants_down = new_columns.wants_down
        state._cmp = new_columns.cmp
        self.active = new_columns.active
        self.pending = new_columns.pending
        self.shift = new_columns.shift
        for name in ("streak", "call_id", "call_class"):
            column = getattr(self, name)
            grown = np.zeros(new_capacity, dtype=column.dtype)
            grown[:old_capacity] = column
            setattr(self, name, grown)
        self.call_id[old_capacity:] = -1
        self._free.extend(range(new_capacity - 1, old_capacity - 1, -1))
        self._capacity = new_capacity
        if self._pool is not None:
            # Workers hold views of the old block; respawn lazily on the
            # next step with the new one.  Growth happens between epoch
            # steps, so nothing is lost.
            self._pool.close()
            self._pool = None
        if self.on_grow is not None:
            self.on_grow(new_capacity)

    # ------------------------------------------------------------------
    def _spawn_pool(self) -> None:
        self._pool = ShardWorkerPool(
            self._columns,
            self._kernel,
            self._bits,
            self._num_base_slots,
            self.num_shards,
            self.supervisor,
            self.seed,
        )

    def step(
        self, tick: int, downgrade: Optional[np.ndarray] = None
    ) -> EpochStep:
        columns = self._columns
        use_downgrade = downgrade is not None
        if use_downgrade:
            columns.downgrade[:] = downgrade

        if self._pool is None and not self.degraded:
            self._spawn_pool()
        while self._pool is not None:
            try:
                self._pool.heartbeat()
                self._pool.step(tick, use_downgrade)
                break
            except WorkerPoolError:
                self.pool_rebuilds += 1
                if self.pool_rebuilds > self.supervisor.max_pool_rebuilds:
                    self._pool.close()
                    self._pool = None
                    self.degraded = True
                    break
                self._pool.rebuild()
        if self._pool is None:
            # Degraded (or fork-less) mode: step inline.  The chunk
            # journal makes this exact even when a dead pool finished
            # part of the tick.
            for chunk in range(columns.num_chunks):
                _run_chunk(
                    columns, self._kernel, self._bits,
                    self._num_base_slots, chunk, tick, use_downgrade,
                )

        merge_deferred_step(
            self._state,
            excess=columns.excess if self.buffer_size is not None else None,
            raw_arrivals=columns.arrivals if use_downgrade else None,
            scaled_arrivals=columns.scaled if use_downgrade else None,
        )

        wants = self._state._wants
        wants &= self.active
        wants &= ~self.pending
        self.epochs_stepped += 1
        self.call_epochs_stepped += self.num_active
        slots = np.flatnonzero(wants)
        return EpochStep(
            tick=tick, slots=slots, candidates=self._state._candidate[slots]
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def load_state(self, state: dict) -> None:
        """Coordinator-owned restore: write the persistent columns of the
        shared block in place, reset the chunk journals, and drop any
        live pool so the next step respawns workers against the restored
        block — each re-deriving its canonical
        ``SeedSequence(base_seed, spawn_key=(shard,))`` stream."""
        super().load_state(state)
        self._columns.chunk_started.fill(-1)
        self._columns.chunk_done.fill(-1)
        if self._pool is not None:
            self._pool.close()
            self._pool = None


class ShardedGateway(RcbrGateway):
    """The multi-process RCBR gateway (DESIGN.md §14).

    Inherits the whole control plane — arrivals, admission, overload,
    snapshots, the event heap — and overrides four seams: the fleet
    (sharded, shared-memory), the link and ports (dense, slot-indexed),
    the per-epoch issue step (one batched path commit and one batched
    completion event instead of ~40k scalar round trips), and the
    source identity (pool slot instead of call id, so the link and
    ports can be flat arrays).  Port denials stay vectorized on a
    single-hop path (the fixpoint in
    :meth:`~repro.signaling.switch.SwitchPort.delta_batch_apply` — a
    hot link denies a few percent of increases every epoch, so this is
    the steady state, not an edge case); every batched path still
    falls back to the exact scalar code whenever anything genuinely
    non-vectorizable is in play (fault plans, cell loss, multi-hop
    rollback, imminent abandonment), so the snapshot stream is
    byte-identical to the plain gateway under every configuration, not
    just the happy path.
    """

    def __init__(
        self,
        workload: Optional[SlottedWorkload],
        config: ServerConfig,
        controller: Optional[AdmissionController] = None,
        faults: Optional[FaultPlan] = None,
        source: Optional[TrafficSource] = None,
    ) -> None:
        if config.shards < 1:
            raise ValueError("ShardedGateway needs config.shards >= 1")
        super().__init__(
            workload, config, controller=controller, faults=faults,
            source=source,
        )
        self.fleet.on_grow = self._on_fleet_grow

    # ------------------------------------------------------------------
    # Construction seams
    # ------------------------------------------------------------------
    def _build_fleet(
        self, workload: SlottedWorkload, config: ServerConfig
    ) -> ShardedFleet:
        return ShardedFleet(
            workload,
            self.params,
            buffer_size=config.buffer_bits,
            initial_capacity=max(256, config.initial_calls),
            num_shards=config.shards,
            chunk_size=config.shard_chunk,
            seed=config.seed,
        )

    def _build_link(self, config: ServerConfig) -> RcbrLink:
        return DenseRcbrLink(config.capacity, self.fleet.capacity)

    def _build_ports(self, config: ServerConfig) -> List[SwitchPort]:
        num_slots = self.fleet.capacity
        ports: List[SwitchPort] = [
            DenseSwitchPort(
                config.capacity * config.upstream_headroom,
                num_slots,
                name=f"hop{index}",
            )
            for index in range(config.num_hops - 1)
        ]
        ports.append(
            DenseSwitchPort(config.capacity, num_slots, name="bottleneck")
        )
        return ports

    def _source_key(self, slot: int, call_id: int) -> int:
        return slot

    def _on_fleet_grow(self, new_capacity: int) -> None:
        self.link.grow(new_capacity)
        for port in self.ports:
            port.grow(new_capacity)

    # ------------------------------------------------------------------
    # Batched renegotiation round trips
    # ------------------------------------------------------------------
    def _issue_epoch(self, step: EpochStep, end_of_slot: float) -> None:
        if self.faults is not None:
            # Injected denials draw from the fault plan per increase, in
            # per-call order; only the scalar path reproduces that.
            super()._issue_epoch(step, end_of_slot)
            return
        slots = step.slots
        new_rates = step.candidates
        old_rates = self.fleet.rate[slots]
        call_ids = self.fleet.call_id[slots]
        self.fleet.pending[slots] = True
        self.reneg_requests += int(slots.size)
        granted = self.path.renegotiate_batch(
            slots, old_rates, new_rates, end_of_slot
        )
        apply = granted | ~(new_rates > old_rates)
        self.engine.schedule_at(
            end_of_slot + self.path.round_trip_time,
            self._complete_batch,
            slots,
            call_ids,
            new_rates,
            granted,
            apply,
        )

    def _complete_batch(
        self,
        slots: np.ndarray,
        call_ids: np.ndarray,
        new_rates: np.ndarray,
        granted: np.ndarray,
        apply: np.ndarray,
    ) -> None:
        fleet = self.fleet
        all_applied = bool(np.all(apply))
        if not all_applied and self.config.abandon_after is not None:
            # An abandonment mid-batch mutates the free list (and can
            # release link and port state) between completions; only
            # the scalar replay, in ascending slot order — the order
            # the per-call events would fire in — is exact there.
            # Slots are unique, so each gets at most one streak bump
            # this batch and the pre-check sees the decisive value.
            denied_mask = ~apply
            denied_slots = slots[denied_mask]
            live = fleet.call_id[denied_slots] == call_ids[denied_mask]
            streaks = fleet.streak[denied_slots[live]]
            if bool(np.any(streaks + 1 >= self.config.abandon_after)):
                for index in range(slots.size):
                    self._complete(
                        int(slots[index]),
                        int(call_ids[index]),
                        float(new_rates[index]),
                        bool(granted[index]),
                        bool(apply[index]),
                    )
                return
        valid = fleet.call_id[slots] == call_ids
        if not bool(valid.all()):
            slots = slots[valid]
            call_ids = call_ids[valid]
            new_rates = new_rates[valid]
            apply = apply[valid]
            if slots.size == 0:
                return
        fleet.pending[slots] = False
        now = self.engine.now
        if not all_applied:
            # Denied completions never touch the link, so splitting
            # them out of the ascending-order commit is exact; the
            # streak bumps and grant resets land on disjoint slots.
            denied_slots = slots[~apply]
            if denied_slots.size:
                self.reneg_denied += int(denied_slots.size)
                fleet.streak[denied_slots] += 1
            slots = slots[apply]
            call_ids = call_ids[apply]
            new_rates = new_rates[apply]
            if slots.size == 0:
                return
        granted_rates, failures = self.link.request_batch(
            slots, new_rates, now
        )
        self.link_shortfalls += failures
        self.fleet.rate[slots] = granted_rates
        on_batch = getattr(self.controller, "on_reservation_batch", None)
        if on_batch is not None:
            on_batch(call_ids, granted_rates, now)
        else:
            on_reservation = self.controller.on_reservation
            for call_id, rate in zip(
                call_ids.tolist(), granted_rates.tolist()
            ):
                on_reservation(call_id, rate, now)
        self.fleet.streak[slots] = 0

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.fleet.close()


__all__ = [
    "ShardedFleet",
    "ShardedGateway",
    "ShardWorkerPool",
    "WorkerPoolError",
    "shard_of_slot",
]
