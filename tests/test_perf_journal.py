"""The crash-safe sweep journal (repro.perf.journal).

Load-bearing claims: appends are durable one-line records that survive a
torn tail (crash mid-append); a journal is only trusted when its header
fingerprint matches the sweep about to run; and values round-trip
byte-for-byte through the base64-pickle encoding.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.perf.engine import SweepCell
from repro.perf.journal import (
    JOURNAL_SCHEMA,
    JournalEntry,
    SweepJournal,
    decode_value,
    encode_value,
    sweep_fingerprint,
)


def _noop():
    return None


def _cells(count=3, payload=True):
    return [
        SweepCell(
            name=f"cell/{index}",
            fn=_noop,
            cache_payload={"index": index} if payload else None,
        )
        for index in range(count)
    ]


class TestValueEncoding:
    def test_roundtrip_arbitrary_values(self):
        for value in (
            {"a": 1, "b": [1.5, None]},
            np.arange(4.0),
            ("tuple", 2),
        ):
            decoded = decode_value(encode_value(value))
            if isinstance(value, np.ndarray):
                assert np.array_equal(decoded, value)
            else:
                assert decoded == value

    def test_encoding_is_json_safe(self):
        blob = encode_value({"x": np.float64(1.25)})
        assert json.dumps(blob)  # plain ASCII string


class TestSweepFingerprint:
    def test_deterministic(self):
        cells = _cells()
        assert sweep_fingerprint("ns", 7, cells) == sweep_fingerprint(
            "ns", 7, _cells()
        )

    def test_sensitive_to_namespace_seed_and_cells(self):
        cells = _cells()
        base = sweep_fingerprint("ns", 7, cells)
        assert sweep_fingerprint("other", 7, cells) != base
        assert sweep_fingerprint("ns", 8, cells) != base
        assert sweep_fingerprint("ns", 7, _cells(count=2)) != base
        renamed = [
            SweepCell(name="renamed", fn=_noop, cache_payload={"index": 0})
        ] + cells[1:]
        assert sweep_fingerprint("ns", 7, renamed) != base

    def test_payload_free_cells_fingerprint_by_name(self):
        assert sweep_fingerprint(
            "ns", 0, _cells(payload=False)
        ) == sweep_fingerprint("ns", 0, _cells(payload=False))


class TestSweepJournal:
    def _journal(self, tmp_path, fingerprint="fp"):
        return SweepJournal(tmp_path / "sweep.journal.jsonl", fingerprint)

    def test_reset_then_load_is_empty(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.reset()
        assert journal.load() == {}

    def test_append_and_load_roundtrip(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.reset()
        journal.append(
            JournalEntry(0, "cell/0", {"value": 1.5}, 0.25, 1, "ok")
        )
        journal.append(
            JournalEntry(2, "cell/2", [1, 2, 3], 0.5, 2, "retried")
        )
        entries = journal.load()
        assert sorted(entries) == [0, 2]
        assert entries[0].value == {"value": 1.5}
        assert entries[0].status == "ok"
        assert entries[2].attempts == 2
        assert entries[2].value == [1, 2, 3]

    def test_missing_journal_loads_none(self, tmp_path):
        assert self._journal(tmp_path).load() is None

    def test_mismatched_fingerprint_is_stale(self, tmp_path):
        journal = self._journal(tmp_path, "old-code")
        journal.reset()
        journal.append(JournalEntry(0, "cell/0", 1, 0.1, 1, "ok"))
        assert self._journal(tmp_path, "new-code").load() is None

    def test_wrong_schema_is_stale(self, tmp_path):
        path = tmp_path / "sweep.journal.jsonl"
        path.write_text(
            json.dumps(
                {
                    "kind": "header",
                    "schema": JOURNAL_SCHEMA + 1,
                    "fingerprint": "fp",
                }
            )
            + "\n"
        )
        assert SweepJournal(path, "fp").load() is None

    def test_torn_tail_line_is_skipped(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.reset()
        journal.append(JournalEntry(0, "cell/0", "good", 0.1, 1, "ok"))
        with journal.path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "cell", "index": 1, "nam')  # crash here
        entries = journal.load()
        assert sorted(entries) == [0]
        assert entries[0].value == "good"

    def test_reset_discards_previous_entries(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.reset()
        journal.append(JournalEntry(0, "cell/0", 1, 0.1, 1, "ok"))
        journal.reset()
        assert journal.load() == {}

    def test_later_entry_for_same_index_wins(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.reset()
        journal.append(JournalEntry(0, "cell/0", "first", 0.1, 1, "ok"))
        journal.append(JournalEntry(0, "cell/0", "second", 0.2, 2, "retried"))
        assert journal.load()[0].value == "second"

    def test_garbage_file_is_stale_not_fatal(self, tmp_path):
        path = tmp_path / "sweep.journal.jsonl"
        path.write_text("this is not json\n")
        assert SweepJournal(path, "fp").load() is None
