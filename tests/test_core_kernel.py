"""The batched kernel must be bit-identical to the pre-refactor goldens.

Two layers of evidence, per the refactor's acceptance criteria:

* **kernel batch-of-1 vs golden** — hypothesis-style randomized sweeps
  drive the kernel-backed :class:`~repro.core.online.OnlineScheduler`
  and the frozen pre-refactor scalar loop
  (:mod:`tests.golden_reference`) over the same workloads, including
  denial patterns, finite-buffer overflow accounting, and every
  registered recovery policy, and require ``np.array_equal`` rate
  streams plus exactly equal counters;
* **batch-of-N vs N x batch-of-1** — stepping many calls through one
  state block must produce, per call, the same float stream as stepping
  each alone (no cross-call perturbation), which is what lets the
  server fleet and the scalar scheduler share one implementation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.kernel import (
    QUANTIZE_EPSILON,
    KernelState,
    RenegotiationKernel,
    quantize,
)
from repro.core.online import OnlineParams, OnlineScheduler
from repro.core.schedule import RateSchedule
from repro.faults.recovery import RECOVERY_REGISTRY, make_recovery_policy
from repro.traffic.trace import SlottedWorkload
from tests.golden_reference import golden_schedule

SLOT = 1.0 / 24.0


def bursty_workload(seed: int, num_slots: int = 400) -> SlottedWorkload:
    """Bursty, AR-correlated arrivals exercising both threshold branches."""
    rng = np.random.default_rng(seed)
    base = rng.gamma(shape=2.0, scale=40_000.0, size=num_slots)
    burst = (rng.random(num_slots) < 0.05) * rng.uniform(
        5e5, 2e6, size=num_slots
    )
    return SlottedWorkload(base + burst, slot_duration=SLOT)


def deny_pattern(period: int):
    """A deterministic request_fn denying every ``period``-th request."""
    calls = [0]

    def request_fn(time: float, rate: float) -> bool:
        calls[0] += 1
        return calls[0] % period != 0

    return request_fn


def assert_matches_golden(result, golden, slot_duration=SLOT):
    # The schedule compresses runs of equal rate, so rebuild it from the
    # golden per-slot stream the same way the scheduler does.
    golden_schedule_obj = RateSchedule.from_slot_rates(
        golden.slot_rates, slot_duration
    )
    assert np.array_equal(
        result.schedule.rates, golden_schedule_obj.rates
    )
    assert np.array_equal(
        result.schedule.start_times, golden_schedule_obj.start_times
    )
    assert result.max_buffer == golden.max_buffer
    assert result.final_buffer == golden.final_buffer
    assert result.requests_made == golden.requests_made
    assert result.requests_denied == golden.requests_denied
    assert result.bits_lost == golden.bits_lost
    assert result.drain_slots == golden.drain_slots
    assert result.requests_suppressed == golden.requests_suppressed


params_strategy = st.builds(
    OnlineParams,
    granularity=st.sampled_from([25_000.0, 64_000.0, 137_000.5, 400_000.0]),
    low_threshold=st.sampled_from([5_000.0, 10_000.0, 40_000.0]),
    high_threshold=st.sampled_from([150_000.0, 300_000.0]),
    time_constant_slots=st.sampled_from([2.0, 5.0, 12.0]),
    ar_coefficient=st.sampled_from([0.0, 0.5, 0.9, 0.98]),
    max_rate=st.sampled_from([None, 600_000.0, 2_000_000.0]),
)


class TestSchedulerVsGolden:
    """The kernel-driven scheduler replays the pre-refactor floats."""

    @given(
        seed=st.integers(0, 2**32 - 1),
        params=params_strategy,
        buffer_size=st.sampled_from([None, 120_000.0, 300_000.0, 1e6]),
        deny_period=st.sampled_from([0, 2, 3, 7]),
    )
    @settings(max_examples=60, deadline=None)
    def test_randomized_schedules(
        self, seed, params, buffer_size, deny_period
    ):
        workload = bursty_workload(seed, num_slots=160)
        request_fn = deny_pattern(deny_period) if deny_period else None
        golden_fn = deny_pattern(deny_period) if deny_period else None
        result = OnlineScheduler(params).schedule(
            workload, request_fn=request_fn, buffer_size=buffer_size
        )
        golden = golden_schedule(
            params, workload, request_fn=golden_fn, buffer_size=buffer_size
        )
        assert_matches_golden(result, golden)

    @pytest.mark.parametrize("policy_name", sorted(RECOVERY_REGISTRY))
    @pytest.mark.parametrize("seed", [0, 7])
    def test_recovery_policies(self, policy_name, seed):
        params = OnlineParams(granularity=64_000.0)
        workload = bursty_workload(seed)
        buffer_size = 250_000.0
        result = OnlineScheduler(params).schedule(
            workload,
            request_fn=deny_pattern(2),
            buffer_size=buffer_size,
            recovery=make_recovery_policy(policy_name, seed=11),
        )
        golden = golden_schedule(
            params,
            workload,
            request_fn=deny_pattern(2),
            buffer_size=buffer_size,
            recovery=make_recovery_policy(policy_name, seed=11),
        )
        assert_matches_golden(result, golden)
        if policy_name == "drain":
            assert golden.drain_slots > 0  # the panic path was exercised

    def test_overflow_accounting_with_total_denial(self):
        # Sustained denials against a small buffer force bits_lost.
        params = OnlineParams(granularity=64_000.0)
        workload = bursty_workload(12)
        result = OnlineScheduler(params).schedule(
            workload, request_fn=lambda *_: False, buffer_size=50_000.0
        )
        golden = golden_schedule(
            params,
            workload,
            request_fn=lambda *_: False,
            buffer_size=50_000.0,
        )
        assert result.bits_lost > 0
        assert_matches_golden(result, golden)

    def test_explicit_initial_rate_and_idle_source(self):
        params = OnlineParams(granularity=1_000.0)
        idle = SlottedWorkload(np.zeros(50), slot_duration=1.0)
        result = OnlineScheduler(params).schedule(idle)
        golden = golden_schedule(params, idle)
        assert_matches_golden(result, golden, slot_duration=1.0)
        workload = bursty_workload(4)
        result = OnlineScheduler(params).schedule(
            workload, initial_rate=100_000.0
        )
        golden = golden_schedule(params, workload, initial_rate=100_000.0)
        assert_matches_golden(result, golden)


class TestBatchSemantics:
    """Batch-of-N must equal N independent batch-of-1 runs."""

    @given(
        seed=st.integers(0, 2**32 - 1),
        params=params_strategy,
        buffer_size=st.sampled_from([None, 200_000.0]),
    )
    @settings(max_examples=30, deadline=None)
    def test_batch_equals_fleet_of_ones(self, seed, params, buffer_size):
        num_calls, num_slots = 5, 80
        rng = np.random.default_rng(seed)
        arrivals = rng.gamma(2.0, 40_000.0, size=(num_slots, num_calls))

        kernel = RenegotiationKernel(params, SLOT, buffer_size=buffer_size)
        batch = kernel.new_state(num_calls)
        singles = [kernel.new_state(1) for _ in range(num_calls)]
        for state in (batch, *singles):
            state.estimate[:] = 0.0

        single_lost = 0.0
        for tick in range(num_slots):
            wants_b, cand_b = kernel.step(batch, arrivals[tick])
            wants_b = wants_b.copy()
            cand_b = cand_b.copy()
            for call, state in enumerate(singles):
                wants_s, cand_s = kernel.step(
                    state, arrivals[tick, call : call + 1]
                )
                assert wants_b[call] == wants_s[0]
                assert cand_b[call] == cand_s[0]
                # Grant every request, as the benchmark's gateway does.
                if wants_s[0]:
                    state.rate[0] = cand_s[0]
                if wants_b[call]:
                    batch.rate[call] = cand_b[call]
            assert np.array_equal(
                batch.buffer, np.concatenate([s.buffer for s in singles])
            )
            assert np.array_equal(
                batch.estimate,
                np.concatenate([s.estimate for s in singles]),
            )
        single_lost = sum(s.bits_lost for s in singles)
        if buffer_size is None:
            assert batch.bits_lost == 0.0 == single_lost

    def test_drain_mask_sheds_only_masked_calls(self):
        params = OnlineParams(granularity=64_000.0)
        kernel = RenegotiationKernel(params, SLOT, buffer_size=100_000.0)
        state = kernel.new_state(2)
        arrivals = np.array([50_000.0, 50_000.0])
        drain = np.array([True, False])
        kernel.step(state, arrivals, drain)
        # Call 0 shed its arrivals (counted lost), call 1 buffered them.
        assert state.buffer[0] == 0.0
        assert state.buffer[1] > 0.0
        assert state.bits_lost == 50_000.0
        # The AR(1) estimator saw the true incoming rate for both.
        assert state.estimate[0] == state.estimate[1]


class TestQuantizer:
    def test_scalar_matches_vector(self):
        params = OnlineParams(granularity=64_000.0, max_rate=3e6)
        kernel = RenegotiationKernel(params, SLOT)
        rng = np.random.default_rng(5)
        values = rng.uniform(-1e5, 8e6, size=500)
        # Vector path: replicate the in-step op order on a raw array.
        vector = np.maximum(values, 0.0)
        vector /= params.granularity
        vector -= QUANTIZE_EPSILON
        np.ceil(vector, out=vector)
        vector *= params.granularity
        np.minimum(vector, params.max_rate, out=vector)
        for value, expected in zip(values, vector):
            assert kernel.quantize(float(value)) == expected
        # The epsilon guard: exactly-on-grid values stay on their level.
        assert quantize(64_000.0 * 3, 64_000.0) == 64_000.0 * 3

    def test_max_rate_cap(self):
        assert quantize(1e9, 64_000.0, max_rate=500_000.0) == 500_000.0


class TestStateBlock:
    def test_grow_preserves_values(self):
        state = KernelState(2)
        state.rate[:] = [1.0, 2.0]
        state.estimate[:] = [3.0, 4.0]
        state.buffer[:] = [5.0, 6.0]
        state.bits_lost = 7.0
        state.grow(8)
        assert state.capacity == 8
        assert state.rate[:2].tolist() == [1.0, 2.0]
        assert state.estimate[:2].tolist() == [3.0, 4.0]
        assert state.buffer[:2].tolist() == [5.0, 6.0]
        assert not state.rate[2:].any()
        assert state.bits_lost == 7.0
        with pytest.raises(ValueError):
            state.grow(4)

    def test_clear_slot(self):
        state = KernelState(3)
        state.rate[1] = 9.0
        state.buffer[1] = 2.0
        state.estimate[1] = 3.0
        state.clear_slot(1)
        assert state.rate[1] == state.buffer[1] == state.estimate[1] == 0.0

    def test_validation(self):
        params = OnlineParams(granularity=64_000.0)
        with pytest.raises(ValueError):
            KernelState(0)
        with pytest.raises(ValueError):
            RenegotiationKernel(params, 0.0)
        with pytest.raises(ValueError):
            RenegotiationKernel(params, SLOT, buffer_size=0.0)

    def test_initial_rate_is_first_slot_quantized(self):
        params = OnlineParams(granularity=64_000.0)
        kernel = RenegotiationKernel(params, SLOT)
        assert kernel.initial_rate(0.0) == 0.0
        assert kernel.initial_rate(1_000.0) == kernel.quantize(1_000.0 / SLOT)
