"""The memory-based MBAC restores robustness (Section VI's remedy).

The paper's fix for the memoryless controller's fragility: "we propose a
scheme that relies on more memory about the system's past bandwidth
reservations to come up with a more accurate estimate of the marginal
distribution."  Expected shape, in the same small-capacity regime where
Figs. 7-8 show the memoryless scheme failing:

* the memory scheme's failure probability is much closer to the target
  (at or below the memoryless scheme's);
* its utilization is no longer inflated above the perfect-knowledge
  controller's.
"""

from __future__ import annotations

import pytest

from benchmarks._common import fmt, once, optimal_schedule, print_table, scale
from repro.admission.callsim import arrival_rate_for_load, simulate_admission
from repro.admission.controllers import (
    MemoryMBAC,
    MemorylessMBAC,
    PerfectKnowledgeCAC,
)
from repro.core.schedule import empirical_rate_distribution

FAILURE_TARGET = 1e-3


@pytest.fixture(scope="module")
def schedule():
    return optimal_schedule()


def test_memory_mbac_robustness(benchmark, schedule):
    capacity_multiple = min(scale().mbac_capacities)  # the fragile regime
    loads = scale().mbac_loads
    levels, fractions = empirical_rate_distribution(schedule)
    mean = schedule.average_rate()
    capacity = capacity_multiple * mean

    def run():
        rows = []
        for load in loads:
            arrival_rate = arrival_rate_for_load(
                load, capacity, mean, schedule.duration
            )
            seed = int(10_000 + 10 * load)
            results = {}
            for name, controller in (
                ("memoryless", MemorylessMBAC(FAILURE_TARGET)),
                ("memory", MemoryMBAC(FAILURE_TARGET)),
                (
                    "perfect",
                    PerfectKnowledgeCAC(levels, fractions, FAILURE_TARGET),
                ),
            ):
                results[name] = simulate_admission(
                    schedule,
                    capacity,
                    arrival_rate,
                    controller,
                    seed=seed,
                    warmup_intervals=1,
                    min_intervals=5,
                    max_intervals=scale().mbac_max_intervals,
                    failure_target=FAILURE_TARGET,
                )
            rows.append(
                {
                    "load": load,
                    "fail_memoryless": results["memoryless"].failure_probability,
                    "fail_memory": results["memory"].failure_probability,
                    "fail_perfect": results["perfect"].failure_probability,
                    "util_memoryless": results["memoryless"].utilization,
                    "util_memory": results["memory"].utilization,
                    "util_perfect": results["perfect"].utilization,
                }
            )
        return rows

    rows = once(benchmark, run)

    print_table(
        f"Memory vs memoryless MBAC at capacity {capacity_multiple:.0f}x mean "
        f"(failure target 1e-3)",
        ["load", "fail memless", "fail memory", "fail perfect",
         "util memless", "util memory", "util perfect"],
        [
            [fmt(r["load"], 2), fmt(r["fail_memoryless"]),
             fmt(r["fail_memory"]), fmt(r["fail_perfect"]),
             fmt(r["util_memoryless"], 3), fmt(r["util_memory"], 3),
             fmt(r["util_perfect"], 3)]
            for r in rows
        ],
    )

    # --- Shape assertions ------------------------------------------------
    for r in rows:
        # Memory never does worse than memoryless on failure probability.
        assert r["fail_memory"] <= r["fail_memoryless"] + 1e-3
        # The robustness claim: the memory scheme stays in the target's
        # neighbourhood even where the memoryless scheme is off by orders
        # of magnitude.  (Perfect knowledge at this tiny call count is
        # over-conservative — the Chernoff bound is loose for small N —
        # so the memory scheme legitimately runs *above* its utilization
        # while still meeting the QoS.)
        assert r["fail_memory"] <= 30 * FAILURE_TARGET
        # It buys that safety by admitting less than the over-admitting
        # memoryless controller, not by magic.
        assert r["util_memory"] <= r["util_memoryless"] + 0.05

    # At the heaviest load the improvement is material when the
    # memoryless scheme is actually failing.
    heavy = rows[-1]
    if heavy["fail_memoryless"] > 10 * FAILURE_TARGET:
        assert heavy["fail_memory"] < heavy["fail_memoryless"]
