"""Content-addressed on-disk result cache.

Parameter sweeps recompute the same expensive intermediates over and over
— the synthetic Star Wars trace, optimal DP schedules, MBAC interval
samples.  This module memoizes them on disk, keyed by a collision-
resistant *fingerprint* of everything that determines the value:

    key = sha256(code version || namespace || canonical(payload))

so a cached entry can never be served for different inputs, a different
scale, or a different code version.  Values are pickled into
``<root>/<key[:2]>/<key>.pkl`` with atomic replace, which makes the
cache safe to share between the worker processes of a sweep and across
independent runs.

Environment knobs:

* ``REPRO_CACHE_DIR`` — overrides the default root
  (``~/.cache/repro-rcbr``);
* ``REPRO_NO_CACHE=1`` — disables reads and writes entirely.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import shutil
import struct
from pathlib import Path
from typing import Any, Callable, Optional, Tuple, Union

import numpy as np

from repro.util.io import atomic_write

#: Bump when the canonical encoding or the on-disk layout changes.
CACHE_SCHEMA = 1

_DISABLE_VALUES = {"1", "true", "yes", "on"}


def _default_code_version() -> str:
    try:
        from repro import __version__
    except Exception:  # pragma: no cover - circular-import fallback
        __version__ = "unknown"
    return f"{__version__}+schema{CACHE_SCHEMA}"


# ----------------------------------------------------------------------
# Canonical fingerprinting
# ----------------------------------------------------------------------
def _update(digest, obj: Any) -> None:
    """Feed a canonical, type-tagged encoding of ``obj`` into ``digest``.

    Supported: ``None``, bools, ints, floats, strings, bytes, numpy
    scalars and arrays, tuples/lists, dicts (order-insensitive),
    dataclasses (public fields), and any object exposing either a
    ``cache_fingerprint()`` or a ``to_dict()`` method (which covers
    :class:`~repro.core.schedule.RateSchedule`).
    """
    if obj is None:
        digest.update(b"N")
    elif isinstance(obj, bool):  # before int: bool is an int subclass
        digest.update(b"B1" if obj else b"B0")
    elif isinstance(obj, (int, np.integer)):
        encoded = str(int(obj)).encode()
        digest.update(b"I" + str(len(encoded)).encode() + b":" + encoded)
    elif isinstance(obj, (float, np.floating)):
        digest.update(b"F" + struct.pack("<d", float(obj)))
    elif isinstance(obj, str):
        encoded = obj.encode("utf-8")
        digest.update(b"S" + str(len(encoded)).encode() + b":" + encoded)
    elif isinstance(obj, (bytes, bytearray)):
        digest.update(b"Y" + str(len(obj)).encode() + b":" + bytes(obj))
    elif isinstance(obj, np.ndarray):
        array = np.ascontiguousarray(obj)
        digest.update(
            b"A" + array.dtype.str.encode() + repr(array.shape).encode()
        )
        digest.update(array.tobytes())
    elif isinstance(obj, (tuple, list)):
        digest.update(b"L" + str(len(obj)).encode() + b":")
        for item in obj:
            _update(digest, item)
    elif isinstance(obj, dict):
        digest.update(b"D" + str(len(obj)).encode() + b":")
        for key in sorted(obj, key=repr):
            _update(digest, key)
            _update(digest, obj[key])
    elif hasattr(obj, "cache_fingerprint") and callable(obj.cache_fingerprint):
        digest.update(b"O" + type(obj).__qualname__.encode() + b":")
        _update(digest, obj.cache_fingerprint())
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        digest.update(b"C" + type(obj).__qualname__.encode() + b":")
        for field in dataclasses.fields(obj):
            if field.name.startswith("_"):
                continue
            _update(digest, field.name)
            _update(digest, getattr(obj, field.name))
    elif hasattr(obj, "to_dict") and callable(obj.to_dict):
        digest.update(b"T" + type(obj).__qualname__.encode() + b":")
        _update(digest, obj.to_dict())
    else:
        raise TypeError(
            f"cannot fingerprint object of type {type(obj).__qualname__}; "
            "pass primitives, arrays, dataclasses, or objects with "
            "cache_fingerprint()/to_dict()"
        )


def fingerprint(obj: Any) -> str:
    """Hex sha256 of the canonical encoding of ``obj``."""
    digest = hashlib.sha256()
    _update(digest, obj)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
class ResultCache:
    """A content-addressed pickle store with hit/miss accounting.

    Parameters
    ----------
    root:
        Cache directory (created lazily).  Defaults to
        ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-rcbr``.
    enabled:
        Explicit on/off switch; defaults to on unless ``REPRO_NO_CACHE``
        is set.  A disabled cache computes everything and writes nothing.
    code_version:
        Folded into every key so entries from older code never leak into
        newer runs.  Defaults to the package version plus the schema.
    """

    def __init__(
        self,
        root: Union[None, str, Path] = None,
        enabled: Optional[bool] = None,
        code_version: Optional[str] = None,
    ) -> None:
        if enabled is None:
            flag = os.environ.get("REPRO_NO_CACHE", "").strip().lower()
            enabled = flag not in _DISABLE_VALUES
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or (
                Path.home() / ".cache" / "repro-rcbr"
            )
        self.root = Path(root).expanduser()
        self.enabled = bool(enabled)
        self.code_version = code_version or _default_code_version()
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------------
    def key(self, namespace: str, payload: Any) -> str:
        """The content-addressed key for ``payload`` under ``namespace``."""
        return fingerprint((self.code_version, namespace, payload))

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)``; a corrupt or unreadable entry counts as a miss."""
        if not self.enabled:
            return False, None
        path = self.path_for(key)
        stat: Optional[os.stat_result] = None
        try:
            with path.open("rb") as handle:
                stat = os.fstat(handle.fileno())
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except Exception:
            # Truncated write from a crashed process, unpicklable blob, …
            self.misses += 1
            self._remove_corrupt(path, stat)
            return False, None
        self.hits += 1
        return True, value

    @staticmethod
    def _remove_corrupt(path: Path, stat: Optional[os.stat_result]) -> None:
        """Best-effort removal of the *exact* corrupt entry just read.

        Two processes can observe the same corrupt blob; the first to
        recompute replaces it atomically with a good value.  Unlinking
        blindly would let the second reader delete that fresh entry (or
        raise ``FileNotFoundError`` if the first already removed it), so
        the removal is guarded: only unlink while the path still refers
        to the inode the corrupt bytes came from, and treat every race
        outcome — already gone, already replaced — as a silent miss.
        """
        try:
            if stat is not None and path.stat().st_ino != stat.st_ino:
                return  # replaced by a fresh (presumably good) write
            path.unlink(missing_ok=True)
        except OSError:
            pass

    def put(self, key: str, value: Any) -> bool:
        """Atomically persist ``value``; returns False if it cannot be."""
        if not self.enabled:
            return False
        path = self.path_for(key)
        try:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        try:
            # A lost cache entry is just a future miss: skip the fsync
            # and keep only the torn-write protection.
            atomic_write(path, blob, fsync=False)
        except OSError:
            return False
        self.writes += 1
        return True

    def memoize(
        self, namespace: str, payload: Any, fn: Callable[[], Any]
    ) -> Any:
        """``fn()``, memoized under ``key(namespace, payload)``."""
        if not self.enabled:
            return fn()
        key = self.key(namespace, payload)
        hit, value = self.get(key)
        if hit:
            return value
        value = fn()
        self.put(key, value)
        return value

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Remove every cached entry (the directory itself survives)."""
        if self.root.exists():
            shutil.rmtree(self.root)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def stats(self) -> dict:
        return {
            "root": str(self.root),
            "enabled": self.enabled,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
        }

    def __repr__(self) -> str:
        return (
            f"ResultCache(root={str(self.root)!r}, enabled={self.enabled}, "
            f"hits={self.hits}, misses={self.misses})"
        )
