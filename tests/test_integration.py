"""Cross-module integration: the paper's pipelines end to end."""

import numpy as np
import pytest

from repro.admission.callsim import arrival_rate_for_load, simulate_admission
from repro.admission.controllers import (
    MemoryMBAC,
    MemorylessMBAC,
    PerfectKnowledgeCAC,
)
from repro.analysis.empirical import sigma_rho_for_loss
from repro.core import (
    OnlineParams,
    OnlineScheduler,
    OptimalScheduler,
    granular_rate_levels,
    simulate_rcbr_link,
)
from repro.core.schedule import empirical_rate_distribution
from repro.queueing.mux import (
    rcbr_overflow_bits,
    scenario_a_rate,
    scenario_b_loss,
    scenario_c_loss,
)
from repro.signaling import SignalingPath, SwitchPort, simulate_schedules_on_path
from repro.util.units import kbits, kbps


class TestOfflinePipeline:
    """Trace -> optimal schedule -> verified service."""

    def test_schedule_serves_trace_within_buffer(self, medium_trace):
        workload = medium_trace.as_workload()
        levels = granular_rate_levels(kbps(128), medium_trace.peak_rate)
        result = OptimalScheduler(levels, alpha=5e6).solve(
            workload, buffer_bits=kbits(300)
        )
        assert result.schedule.is_feasible(workload, kbits(300))
        assert result.schedule.duration == pytest.approx(workload.duration)

    def test_optimal_beats_online_at_same_renegotiation_budget(
        self, medium_trace
    ):
        """Fig. 2's headline: OPT dominates the heuristic."""
        workload = medium_trace.as_workload()
        online = OnlineScheduler(OnlineParams(granularity=kbps(100))).schedule(
            workload
        )
        levels = granular_rate_levels(kbps(100), medium_trace.peak_rate)
        # Pick alpha so OPT renegotiates no more often than the heuristic.
        optimal = None
        for alpha in (1e5, 1e6, 1e7, 1e8):
            candidate = OptimalScheduler(levels, alpha=alpha).solve(
                workload, buffer_bits=kbits(300)
            )
            if candidate.num_renegotiations <= online.num_renegotiations:
                optimal = candidate
                break
        assert optimal is not None
        mean = workload.mean_rate
        assert optimal.schedule.bandwidth_efficiency(
            mean
        ) >= online.schedule.bandwidth_efficiency(mean) - 0.02

    def test_online_schedule_verifies_against_trace(self, medium_trace):
        workload = medium_trace.as_workload()
        result = OnlineScheduler(OnlineParams(granularity=kbps(64))).schedule(
            workload
        )
        # The reported max buffer is what the schedule actually produces.
        assert result.schedule.max_buffer(workload) == pytest.approx(
            result.max_buffer, rel=1e-9
        )


class TestScenarioOrdering:
    """Fig. 6's qualitative ordering at a fixed per-source rate."""

    def test_rcbr_between_cbr_and_shared(self, medium_trace, optimal_schedule):
        # Build the medium trace's schedule (5-minute) for scenario (c).
        workload = medium_trace.as_workload()
        levels = granular_rate_levels(kbps(128), medium_trace.peak_rate)
        schedule = (
            OptimalScheduler(levels, alpha=5e6)
            .solve(workload, buffer_bits=kbits(300))
            .schedule
        )
        num_sources = 8
        cbr_rate = scenario_a_rate(workload, kbits(300), 1e-3)
        # At the static-CBR rate, both multiplexed scenarios lose ~nothing.
        rcbr_loss = scenario_c_loss(schedule, num_sources, cbr_rate, seed=1)
        assert rcbr_loss <= 1e-3
        # At a rate near the schedule average, RCBR loses a little, while
        # static CBR per-source would lose badly (it needed cbr_rate).
        tight = 1.05 * schedule.average_rate()
        assert tight < cbr_rate
        shared_loss = scenario_b_loss(
            medium_trace, num_sources, tight, kbits(300), seed=2
        )
        rcbr_tight = scenario_c_loss(schedule, num_sources, tight, seed=3)
        # Unrestricted sharing is at least as good as RCBR (extra gain
        # from the shared buffer absorbing fast-scale fluctuations).
        assert shared_loss <= rcbr_tight + 5e-3


class TestSigmaRhoConsistency:
    def test_scenario_a_matches_sigma_rho_point(self, short_workload):
        curve = sigma_rho_for_loss(short_workload, [kbits(300)], 1e-6)
        rate = scenario_a_rate(short_workload, kbits(300), 1e-6)
        assert curve[0, 1] == pytest.approx(rate, rel=1e-6)


class TestDetailedVsAggregateLink:
    def test_loss_agreement_across_capacities(self, optimal_schedule):
        schedules = [optimal_schedule.shifted(offset) for offset in
                     np.linspace(0, optimal_schedule.duration * 0.9, 7)]
        for factor in (0.7, 0.85, 1.0):
            capacity = 7 * optimal_schedule.average_rate() * factor
            detailed = simulate_rcbr_link(schedules, capacity)
            lost, _ = rcbr_overflow_bits(schedules, capacity)
            assert detailed.lost_bits == pytest.approx(
                lost, rel=1e-9, abs=1e-6
            )


class TestAdmissionPipeline:
    """Schedule -> descriptor -> controllers -> dynamics."""

    def test_memory_beats_memoryless_on_failure_probability(
        self, optimal_schedule
    ):
        """The Section VI conclusion, on a small link (the regime where
        the paper shows the memoryless scheme breaking down)."""
        schedule = optimal_schedule
        target = 1e-2
        mean_rate = schedule.average_rate()
        capacity = 6 * mean_rate
        lam = arrival_rate_for_load(1.2, capacity, mean_rate, schedule.duration)

        memoryless = simulate_admission(
            schedule, capacity, lam, MemorylessMBAC(target),
            seed=11, min_intervals=6, max_intervals=12,
        )
        memory = simulate_admission(
            schedule, capacity, lam, MemoryMBAC(target),
            seed=11, min_intervals=6, max_intervals=12,
        )
        assert memory.failure_probability <= memoryless.failure_probability

    def test_perfect_knowledge_meets_target(self, optimal_schedule):
        schedule = optimal_schedule
        target = 1e-2
        levels, fractions = empirical_rate_distribution(schedule)
        mean_rate = schedule.average_rate()
        capacity = 8 * mean_rate
        lam = arrival_rate_for_load(1.0, capacity, mean_rate, schedule.duration)
        result = simulate_admission(
            schedule, capacity, lam,
            PerfectKnowledgeCAC(levels, fractions, target),
            seed=13, min_intervals=6, max_intervals=12,
            failure_target=target,
        )
        # Allow statistical slack: an order of magnitude above target
        # would signal a broken controller.
        assert result.failure_probability <= 5 * target


class TestSignalingPipeline:
    """Schedules over a multi-hop path: Section III-C scaling."""

    def test_failure_probability_grows_with_hops(self, optimal_schedule):
        schedules = [
            optimal_schedule.shifted(offset)
            for offset in np.linspace(0, optimal_schedule.duration * 0.9, 6)
        ]
        capacity = 6 * optimal_schedule.average_rate() * 0.92

        def failure_fraction(num_hops):
            ports = [SwitchPort(capacity) for _ in range(num_hops)]
            path = SignalingPath(ports, seed=5)
            return simulate_schedules_on_path(schedules, path).stats.failure_fraction

        # Identical-capacity hops fail together, so the growth is only
        # visible with heterogeneous capacities; emulate by shrinking one.
        single = failure_fraction(1)
        ports = [SwitchPort(capacity), SwitchPort(capacity * 0.9)]
        path = SignalingPath(ports, seed=5)
        double = simulate_schedules_on_path(schedules, path).stats.failure_fraction
        assert double >= single

    def test_signaling_load_linear_in_sources(self, optimal_schedule):
        for count in (2, 4):
            schedules = [
                optimal_schedule.shifted(offset)
                for offset in np.linspace(0, 30, count)
            ]
            path = SignalingPath([SwitchPort(1e12)], seed=1)
            simulate_schedules_on_path(schedules, path)
            expected = sum(s.num_segments for s in schedules)
            assert path.stats.cells_sent == expected
