#!/usr/bin/env python
"""How much multiplexing gain does RCBR capture?  (Fig. 3 / Fig. 6 mini)

Compares the per-stream capacity needed to carry N copies of a video
trace at 1e-3 bit-loss under the paper's three scenarios:

  (a) static CBR    — per-source buffer, fixed rate, no sharing;
  (b) shared buffer — one big queue, the unrestricted-sharing bound;
  (c) RCBR          — per-source smoothing into stepwise CBR over a
                      bufferless link.

Also prints the theoretical decomposition for the paper's Fig. 4
multiple time-scale Markov source: CBR rate (eq. 9), ideal-RCBR rate, and
the shared-buffer floor.

Run:  python examples/multiplexing_gain.py
"""

from repro import (
    OptimalScheduler,
    fig4_example,
    generate_starwars_trace,
    granular_rate_levels,
)
from repro.analysis import gain_decomposition
from repro.queueing import scenario_a_rate, scenario_b_min_rate, scenario_c_min_rate
from repro.util.units import format_rate, kbits, kbps

LOSS = 1e-3  # modest target so the example runs in seconds


def main() -> None:
    trace = generate_starwars_trace(num_frames=14_400, seed=4)
    workload = trace.aggregate(2)
    levels = granular_rate_levels(kbps(64), 1.1 * trace.peak_rate)
    schedule = (
        OptimalScheduler(levels, alpha=4e6)
        .solve(workload, buffer_bits=kbits(300))
        .schedule
    )
    mean = trace.mean_rate
    print(f"trace mean {format_rate(mean)}; "
          f"schedule efficiency "
          f"{schedule.bandwidth_efficiency(mean):.1%}\n")

    cbr = scenario_a_rate(trace.as_workload(), kbits(300), LOSS)
    print("per-stream capacity (multiples of the mean rate):")
    print(f"{'N':>4} {'CBR (a)':>9} {'shared (b)':>11} {'RCBR (c)':>9}")
    for n in (2, 4, 8, 16):
        shared = scenario_b_min_rate(trace, n, kbits(300), LOSS, seed=n)
        rcbr = scenario_c_min_rate(schedule, n, LOSS, seed=n)
        print(f"{n:>4} {cbr / mean:>9.2f} {shared / mean:>11.2f} "
              f"{rcbr / mean:>9.2f}")

    print("\ntheory (Fig. 4 Markov source, Section V-A):")
    source = fig4_example(epsilon=1e-4)
    cbr_rate, rcbr_rate, shared_rate = gain_decomposition(
        source, kbits(300), 1e-6
    )
    print(f"  static CBR needs (eq. 9):   {format_rate(cbr_rate)}")
    print(f"  ideal RCBR converges to:    {format_rate(rcbr_rate)}")
    print(f"  shared-buffer floor:        {format_rate(shared_rate)}")
    recovered = (cbr_rate - rcbr_rate) / (cbr_rate - shared_rate)
    print(f"  -> RCBR recovers {recovered:.0%} of the achievable gain, "
          "giving up only the fast time-scale smoothing.")


if __name__ == "__main__":
    main()
