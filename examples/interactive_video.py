#!/usr/bin/env python
"""Interactive (online) video over RCBR: the causal AR(1) heuristic.

A live source cannot precompute its schedule, so it renegotiates
on-the-fly using the paper's Section IV-B heuristic: an AR(1) bandwidth
estimator plus dual buffer thresholds (B_l = 10 kb, B_h = 150 kb,
T = 5 frames).  We sweep the bandwidth granularity delta — the paper's
Fig. 2 knob — and then run the same source against a congested link to
show how denied renegotiations are absorbed.

Run:  python examples/interactive_video.py
"""

from repro import OnlineParams, OnlineScheduler, RcbrLink, generate_starwars_trace
from repro.core.service import OnlineRcbrSource
from repro.util.units import format_rate, kbps


def main() -> None:
    trace = generate_starwars_trace(num_frames=7_200, seed=2)
    workload = trace.as_workload()
    print(f"live source: {trace.duration:.0f} s at "
          f"{format_rate(trace.mean_rate)} average\n")

    print("granularity sweep (the Fig. 2 heuristic tradeoff):")
    print(f"{'delta':>10} {'renegs/s':>9} {'efficiency':>11} {'max buffer':>11}")
    for delta_kbps in (25, 50, 100, 200, 400):
        params = OnlineParams(granularity=kbps(delta_kbps))
        result = OnlineScheduler(params).schedule(workload)
        renegs_per_second = result.num_renegotiations / trace.duration
        efficiency = result.schedule.bandwidth_efficiency(trace.mean_rate)
        print(f"{delta_kbps:>7} kb/s {renegs_per_second:>9.2f} "
              f"{efficiency:>10.1%} {result.max_buffer / 1000:>8.0f} kb")

    # Now share a link with a static reservation that leaves headroom for
    # the source's average but not for its biggest peaks: increases are
    # denied during action scenes, and the source "settles for whatever
    # bandwidth it has" while retrying at the next threshold crossing.
    print("\nsame source on a congested link:")
    link = RcbrLink(capacity=2 * trace.mean_rate)
    link.request("static-background", 0.8 * trace.mean_rate, 0.0)
    source = OnlineRcbrSource("live", OnlineParams(granularity=kbps(100)), link)
    result = source.run(workload)
    print(f"  requests made:   {result.requests_made}")
    print(f"  requests denied: {result.requests_denied}")
    print(f"  max buffer:      {result.max_buffer / 1000:.0f} kb "
          "(absorbs the denials)")


if __name__ == "__main__":
    main()
