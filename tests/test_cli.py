"""The command-line interface."""

import json

import pytest

from repro.cli import main
from repro.core.schedule import RateSchedule
from repro.traffic import FrameTrace, generate_starwars_trace


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "trace.npz"
    generate_starwars_trace(num_frames=2400, seed=9).save(path)
    return str(path)


class TestGenerate:
    def test_writes_npz(self, tmp_path, capsys):
        out = tmp_path / "t.npz"
        code = main(["generate", str(out), "--frames", "480", "--seed", "1"])
        assert code == 0
        trace = FrameTrace.load(out)
        assert trace.num_frames == 480
        assert "480 frames" in capsys.readouterr().out

    def test_writes_text(self, tmp_path):
        out = tmp_path / "t.txt"
        main(["generate", str(out), "--frames", "100", "--seed", "1"])
        trace = FrameTrace.load_text(out)
        assert trace.num_frames == 100

    def test_custom_mean(self, tmp_path):
        out = tmp_path / "t.npz"
        main(["generate", str(out), "--frames", "480", "--mean-kbps", "1000"])
        assert FrameTrace.load(out).mean_rate == pytest.approx(1_000_000.0)


class TestAnalyze:
    def test_basic_stats(self, trace_file, capsys):
        assert main(["analyze", trace_file]) == 0
        out = capsys.readouterr().out
        assert "mean rate" in out
        assert "peak frame rate" in out

    def test_sigma_rho(self, trace_file, capsys):
        assert main(["analyze", trace_file, "--sigma-rho",
                     "--loss-target", "1e-3"]) == 0
        assert "(sigma, rho)" in capsys.readouterr().out

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            main(["analyze", "/nonexistent/file.npz"])


class TestSchedule:
    def test_optimal_writes_schedule(self, trace_file, tmp_path, capsys):
        out = tmp_path / "sched.json"
        code = main([
            "schedule", trace_file, "--method", "optimal",
            "--granularity-kbps", "128", "--alpha", "2e6",
            "--output", str(out),
        ])
        assert code == 0
        schedule = RateSchedule.load(out)
        assert schedule.num_segments >= 1
        assert "bandwidth efficiency" in capsys.readouterr().out

    def test_online_method(self, trace_file, capsys):
        assert main(["schedule", trace_file, "--method", "online"]) == 0
        assert "renegotiations" in capsys.readouterr().out

    def test_gop_method(self, trace_file, capsys):
        assert main(["schedule", trace_file, "--method", "gop"]) == 0
        assert "renegotiations" in capsys.readouterr().out


class TestAdmit:
    def test_calculator(self, trace_file, tmp_path, capsys):
        sched = tmp_path / "s.json"
        main(["schedule", trace_file, "--method", "online",
              "--output", str(sched)])
        capsys.readouterr()
        assert main(["admit", str(sched), "--capacity-kbps", "8000"]) == 0
        out = capsys.readouterr().out
        assert "max calls" in out

    def test_handwritten_schedule(self, tmp_path, capsys):
        sched = tmp_path / "s.json"
        sched.write_text(json.dumps({
            "name": "x", "duration": 100.0,
            "start_times": [0.0, 50.0], "rates": [100_000.0, 300_000.0],
        }))
        assert main(["admit", str(sched), "--capacity-kbps", "1000"]) == 0


class TestFit:
    def test_fit_prints_classes(self, trace_file, capsys):
        assert main(["fit", trace_file, "--classes", "3"]) == 0
        out = capsys.readouterr().out
        assert "scene classes" in out
        assert "GOP length" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestExperiment:
    def test_sigma_rho_experiment(self, capsys):
        assert main(["experiment", "sigma-rho", "--frames", "2400",
                     "--seed", "1", "--loss-target", "1e-3"]) == 0
        assert "x mean" in capsys.readouterr().out

    def test_experiment_with_trace_file(self, trace_file, capsys):
        assert main(["experiment", "sigma-rho", "--trace", trace_file]) == 0
        assert "x mean" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "frobnicate"])

    def test_tradeoff_experiment(self, capsys):
        assert main(["experiment", "tradeoff", "--frames", "2400",
                     "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "OPT (alpha sweep):" in out
        assert "AR(1) heuristic" in out

    def test_smg_experiment(self, capsys):
        assert main(["experiment", "smg", "--frames", "2400",
                     "--seed", "2", "--loss-target", "1e-2"]) == 0
        out = capsys.readouterr().out
        assert "CBR" in out and "RCBR" in out


class TestChaos:
    def test_chaos_trial_runs(self, capsys):
        assert main(["chaos", "--policy", "downgrade", "--deny-rate", "0.2",
                     "--cell-loss", "0.05", "--slots", "600",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "chaos trial (policy=downgrade, seed=3):" in out
        assert "fingerprint:" in out

    def test_chaos_retry_knobs(self, capsys):
        assert main(["chaos", "--policy", "backoff", "--deny-rate", "0.2",
                     "--cell-loss", "0.1", "--slots", "600",
                     "--timeout", "0.05", "--retries", "3",
                     "--retry-backoff", "2.0", "--retry-jitter", "0.3",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "retries" in out

    def test_chaos_is_reproducible(self, capsys):
        main(["chaos", "--slots", "600", "--seed", "9"])
        first = capsys.readouterr().out
        main(["chaos", "--slots", "600", "--seed", "9"])
        assert capsys.readouterr().out == first

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--policy", "frobnicate", "--slots", "600"])


class TestServe:
    def test_serve_prints_accounting(self, capsys):
        assert main(["serve", "--duration", "5", "--frames", "400",
                     "--load", "0.8", "--initial-calls", "6",
                     "--capacity-multiple", "30", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert ("RCBR gateway (controller=always, "
                "source=starwars-like, seed=3):") in out
        assert "renegotiations:" in out
        assert "fingerprint:" in out

    def test_serve_writes_report(self, tmp_path, capsys):
        report = tmp_path / "server.json"
        assert main(["serve", "--duration", "4", "--frames", "400",
                     "--initial-calls", "5", "--snapshot-every", "1",
                     "--controller", "memoryless",
                     "--report", str(report)]) == 0
        payload = json.loads(report.read_text())
        assert payload["config"]["controller"] == "memoryless"
        assert len(payload["snapshots"]) == 4
        assert payload["fingerprint"]

    def test_serve_inline_fault_plan(self, capsys):
        assert main(["serve", "--duration", "4", "--frames", "400",
                     "--initial-calls", "8", "--capacity-multiple", "20",
                     "--fault-plan", '{"denial": {"rate": 0.4}}',
                     "--fault-seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "injected" in out

    def test_serve_fault_plan_file(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text('{"cell_loss": {"probability": 0.1}}')
        assert main(["serve", "--duration", "4", "--frames", "400",
                     "--initial-calls", "8",
                     "--fault-plan", str(plan)]) == 0
        assert "signaling:" in capsys.readouterr().out

    def test_serve_is_reproducible(self, capsys):
        argv = ["serve", "--duration", "4", "--frames", "400",
                "--initial-calls", "6", "--seed", "5"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        assert capsys.readouterr().out == first

    def test_serve_bench_writes_records(self, tmp_path, capsys):
        out = tmp_path / "BENCH_server.json"
        assert main(["serve", "--bench", "--bench-calls", "100",
                     "--bench-epochs", "3", "--bench-warmup", "2",
                     "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "server benchmark (100 concurrent calls, plain):" in text
        assert "realtime factor:" in text
        payload = json.loads(out.read_text())
        assert payload["context"]["realtime_factor"] > 0
        assert any(r["name"] == "server/run" for r in payload["records"])

    def test_serve_rejects_unknown_controller(self):
        with pytest.raises(SystemExit):
            main(["serve", "--controller", "frobnicate"])


class TestServeCheckpoint:
    """`repro serve` checkpoint/resume: the CLI face of DESIGN.md §15."""

    BASE = ["serve", "--frames", "400", "--initial-calls", "6",
            "--seed", "5", "--snapshot-every", "1"]

    @staticmethod
    def fingerprint(out):
        for line in out.splitlines():
            if "fingerprint:" in line:
                return line.split()[-1]
        raise AssertionError(f"no fingerprint in output:\n{out}")

    def test_resume_reproduces_uninterrupted_fingerprint(
        self, tmp_path, capsys
    ):
        ckpt = tmp_path / "serve.ckpt"
        assert main(self.BASE + ["--duration", "8"]) == 0
        expected = self.fingerprint(capsys.readouterr().out)

        assert main(self.BASE + ["--duration", "4",
                                 "--checkpoint-every", "20",
                                 "--checkpoint-path", str(ckpt)]) == 0
        capsys.readouterr()
        assert ckpt.exists()

        assert main(self.BASE + ["--duration", "8",
                                 "--resume-from", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "resumed from" in out
        assert self.fingerprint(out) == expected

    def test_resume_past_duration_is_an_error(self, tmp_path, capsys):
        ckpt = tmp_path / "serve.ckpt"
        main(self.BASE + ["--duration", "4", "--checkpoint-every", "30",
                          "--checkpoint-path", str(ckpt)])
        capsys.readouterr()
        assert main(self.BASE + ["--duration", "1",
                                 "--resume-from", str(ckpt)]) == 1
        assert "nothing left" in capsys.readouterr().out

    def test_resume_refuses_different_config(self, tmp_path, capsys):
        from repro.server.checkpoint import StaleCheckpointError

        ckpt = tmp_path / "serve.ckpt"
        main(self.BASE + ["--duration", "4", "--checkpoint-every", "30",
                          "--checkpoint-path", str(ckpt)])
        capsys.readouterr()
        argv = [arg if arg != "5" else "6" for arg in self.BASE]
        with pytest.raises(StaleCheckpointError, match="config hash"):
            main(argv + ["--duration", "8", "--resume-from", str(ckpt)])


class TestServeSource:
    """`repro serve --source` runs the gateway off a sampled model."""

    @pytest.mark.parametrize(
        "source", ["starwars", "markov", "multiscale", "onoff"]
    )
    def test_synthetic_sources_smoke(self, source, capsys):
        assert main(["serve", "--source", source, "--source-slots", "300",
                     "--duration", "4", "--load", "0.6",
                     "--initial-calls", "4", "--capacity-multiple", "30",
                     "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "source=" in out
        assert "renegotiations:" in out
        assert "fingerprint:" in out

    def test_trace_source_replays_file(self, trace_file, capsys):
        assert main(["serve", "--source", "trace", "--trace", trace_file,
                     "--source-slots", "300", "--duration", "4",
                     "--initial-calls", "4"]) == 0
        assert "fingerprint:" in capsys.readouterr().out

    def test_source_runs_are_reproducible(self, capsys):
        argv = ["serve", "--source", "markov", "--source-slots", "240",
                "--duration", "4", "--initial-calls", "4", "--seed", "6"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        assert capsys.readouterr().out == first

    def test_rejects_unknown_source(self):
        with pytest.raises(SystemExit):
            main(["serve", "--source", "fractal"])


class TestServeOverload:
    """`repro serve --overload-policy` wires the control plane."""

    ARGS = ["serve", "--duration", "6", "--frames", "400",
            "--load", "1.5", "--controller", "always",
            "--initial-calls", "25", "--capacity-multiple", "20",
            "--seed", "13"]

    def test_downgrade_reports_plane_and_classes(self, capsys):
        assert main(self.ARGS + ["--overload-policy", "downgrade",
                                 "--downgrade-ladder", "1.0,0.6,0.3"]) == 0
        out = capsys.readouterr().out
        assert "overload plane:  policy=downgrade" in out
        assert "class treatment:" in out

    def test_sacrifice_accepts_queue_knobs(self, capsys):
        assert main(self.ARGS + ["--overload-policy", "sacrifice",
                                 "--sacrifice-queue", "8",
                                 "--sacrifice-max-per-epoch", "1"]) == 0
        assert "policy=sacrifice" in capsys.readouterr().out

    def test_block_prints_no_plane_section(self, capsys):
        assert main(self.ARGS) == 0
        assert "overload plane:" not in capsys.readouterr().out

    def test_rejects_bad_ladder(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--overload-policy", "downgrade",
                              "--downgrade-ladder", "1.0,oops"])

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["serve", "--overload-policy", "panic"])


class TestSupervisionFlags:
    """The sweep subcommands expose the supervision knobs."""

    def test_sweep_parsers_accept_supervision_flags(self, tmp_path):
        from repro.cli import build_parser

        parser = build_parser()
        for name in ("mbac", "smg", "tradeoff"):
            args = parser.parse_args([
                "sweep", name, "--timeout", "120", "--retries", "3",
                "--journal", str(tmp_path / "j.jsonl"), "--resume",
                "--report", str(tmp_path / "report.json"),
            ])
            assert args.timeout == 120.0
            assert args.retries == 3
            assert args.resume
            assert args.journal.endswith("j.jsonl")
            assert args.report.endswith("report.json")

    def test_bench_has_no_supervision_flags(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "bench", "--resume"])
