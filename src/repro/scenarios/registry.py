"""The built-in scenario roster.

Each entry is a zero-argument builder returning a fresh
:class:`~repro.scenarios.spec.ScenarioSpec`; :func:`get_scenario`
resolves a name (with a dynamic error listing, mirroring
``make_source``) and applies overrides.  Capacities are expressed as
multiples of the nominal per-call mean rate so the rosters stay
meaningful if the calibration constant moves.

The roster covers the stress axes of ISSUE/ROADMAP item 3:

* ``parking-lot`` — multi-hop failure growth: an end-to-end group must
  win simultaneous grants at every hop of a 3-link chain whose links
  are each ~90% offered, against groups crossing only one or two hops.
* ``hotspot-collision`` — Section III-C's conjecture: the shortest
  route to the hotspot is congested by three colliding cross groups;
  ``route_k > 1`` lets calls balance onto the quiet side of the ring.
* ``dumbbell-lrd`` / ``dumbbell-poisson`` — long-range-dependent
  background vs a memoryless control at the *same mean load*, so any
  difference in denial rate or bits lost is burst structure alone.
* ``mmpp-storm`` — two-state bursty storms against terrestrial
  signaling latency; ``satellite`` — the identical storm with ~270 ms
  renegotiation RTT, isolating feedback delay.
* ``mixed-classes`` — sustained overload with three service classes
  under the downgrade ladder on the classic single-link stack (the
  shard-parity scenario).
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.scenarios.spec import (
    BackgroundSpec,
    FlowGroupSpec,
    LinkSpec,
    ScenarioSpec,
)
from repro.traffic.starwars import STAR_WARS_MEAN_RATE

_MEAN = STAR_WARS_MEAN_RATE


def _parking_lot() -> ScenarioSpec:
    capacity = 10.0 * _MEAN
    chain = [("n0", "n1"), ("n1", "n2"), ("n2", "n3")]
    return ScenarioSpec(
        name="parking-lot",
        description=(
            "3-hop shared bottleneck chain: an end-to-end group competes "
            "with one- and two-hop groups on every link, measuring "
            "renegotiation-failure growth with hop count"
        ),
        links=tuple(LinkSpec(u, v, capacity) for u, v in chain),
        flows=(
            FlowGroupSpec("hop1", "n0", "n1", load=0.3, initial_calls=3),
            FlowGroupSpec("hop2", "n0", "n2", load=0.3, initial_calls=3),
            FlowGroupSpec("hop3", "n0", "n3", load=0.3, initial_calls=3),
            FlowGroupSpec("cross2", "n1", "n2", load=0.3, initial_calls=3),
            FlowGroupSpec("cross3", "n2", "n3", load=0.6, initial_calls=6),
        ),
        mean_holding=6.0,
    )


def _hotspot_collision() -> ScenarioSpec:
    capacity = 10.0 * _MEAN
    ring = [(f"n{i}", f"n{(i + 1) % 7}") for i in range(7)]
    return ScenarioSpec(
        name="hotspot-collision",
        description=(
            "7-node ring with a congested 3-hop east side: hotspot "
            "cross groups collide with the east-bound group at every "
            "hop; route_k=2 opens the quiet 4-hop west side "
            "(Section III-C's alternate-route conjecture)"
        ),
        links=tuple(LinkSpec(u, v, capacity) for u, v in ring),
        flows=(
            FlowGroupSpec("east", "n0", "n3", load=0.5, initial_calls=5),
            FlowGroupSpec("h01", "n0", "n1", load=0.5, initial_calls=4),
            FlowGroupSpec("h12", "n1", "n2", load=0.5, initial_calls=4),
            FlowGroupSpec("h23", "n2", "n3", load=0.5, initial_calls=4),
        ),
        route_k=1,
        mean_holding=6.0,
    )


def _dumbbell(traffic: str) -> ScenarioSpec:
    capacity = 12.0 * _MEAN
    return ScenarioSpec(
        name=f"dumbbell-{traffic}",
        description=(
            f"shared dumbbell bottleneck with {traffic} background at "
            "35% mean load: the renegotiation loop fights a "
            + (
                "long-range-dependent (Pareto on/off, H=0.75)"
                if traffic == "lrd"
                else "memoryless (equal-mean control)"
            )
            + " capacity thief"
        ),
        links=(LinkSpec("a", "b", capacity),),
        flows=(FlowGroupSpec("calls", "a", "b", load=0.7, initial_calls=8),),
        background=(
            BackgroundSpec("a", "b", traffic=traffic, mean_fraction=0.35),
        ),
        abandon_after=4,
        num_hops=3,
        mean_holding=6.0,
    )


def _dumbbell_lrd() -> ScenarioSpec:
    return _dumbbell("lrd")


def _dumbbell_poisson() -> ScenarioSpec:
    return _dumbbell("poisson")


def _storm(name: str, delay: float, description: str) -> ScenarioSpec:
    capacity = 12.0 * _MEAN
    return ScenarioSpec(
        name=name,
        description=description,
        links=(LinkSpec("a", "b", capacity, delay=delay),),
        flows=(FlowGroupSpec("calls", "a", "b", load=0.7, initial_calls=8),),
        background=(
            BackgroundSpec("a", "b", traffic="mmpp", mean_fraction=0.35),
        ),
        abandon_after=4,
        num_hops=1,
        mean_holding=6.0,
    )


def _mmpp_storm() -> ScenarioSpec:
    return _storm(
        "mmpp-storm",
        0.001,
        "two-state bursty (MMPP-2) background storms at 35% mean load "
        "over terrestrial signaling latency (2 ms renegotiation RTT)",
    )


def _satellite() -> ScenarioSpec:
    return _storm(
        "satellite",
        0.135,
        "the mmpp-storm scenario over a geostationary hop: ~270 ms "
        "renegotiation RTT makes the control loop six epochs slow to "
        "react to each burst",
    )


def _mixed_classes() -> ScenarioSpec:
    capacity = 16.0 * _MEAN
    return ScenarioSpec(
        name="mixed-classes",
        description=(
            "sustained 1.3x overload with three service classes under "
            "the downgrade ladder (class 0 most protected); runs on the "
            "classic single-link stack, so it is the shard-parity "
            "scenario"
        ),
        links=(LinkSpec("a", "b", capacity),),
        flows=(FlowGroupSpec("calls", "a", "b", load=1.3, initial_calls=10),),
        overload_policy="downgrade",
        overload_classes=3,
        class_weights=(1.0, 2.0, 3.0),
        mean_holding=6.0,
    )


_BUILDERS: Dict[str, Callable[[], ScenarioSpec]] = {
    "parking-lot": _parking_lot,
    "hotspot-collision": _hotspot_collision,
    "dumbbell-lrd": _dumbbell_lrd,
    "dumbbell-poisson": _dumbbell_poisson,
    "mmpp-storm": _mmpp_storm,
    "satellite": _satellite,
    "mixed-classes": _mixed_classes,
}

#: Names accepted by :func:`get_scenario` (and ``repro scenario``).
SCENARIO_NAMES = tuple(_BUILDERS)


def get_scenario(name: str, **overrides: Any) -> ScenarioSpec:
    """Build a registered scenario, optionally overriding spec fields."""
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ValueError(
            f"unknown scenario {name!r}; choose from "
            f"{', '.join(SCENARIO_NAMES)}"
        )
    spec = builder()
    if overrides:
        spec = spec.replace(**overrides)
    return spec
