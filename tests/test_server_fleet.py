"""The vectorized call fleet must be bit-identical to the scalar scheduler."""

import numpy as np
import pytest

from repro.core.online import OnlineParams, OnlineScheduler
from repro.core.schedule import RateSchedule
from repro.server.fleet import CallFleet
from repro.traffic.starwars import generate_starwars_trace
from repro.traffic.trace import SlottedWorkload


@pytest.fixture(scope="module")
def workload():
    return generate_starwars_trace(num_frames=600, seed=1995).as_workload()


@pytest.fixture(scope="module")
def params():
    return OnlineParams(granularity=64_000.0)


def shifted(workload: SlottedWorkload, shift: int) -> SlottedWorkload:
    """The scalar view of a fleet call admitted at ``shift``."""
    return SlottedWorkload(
        bits_per_slot=np.roll(workload.bits_per_slot, -shift),
        slot_duration=workload.slot_duration,
        name=f"{workload.name}<<{shift}",
    )


def drive(fleet: CallFleet, slot: int, epochs: int):
    """Run one call the way the gateway does with every request granted:
    the candidate applies before the next epoch's step."""
    rates = []
    requests = 0
    for tick in range(epochs):
        rates.append(float(fleet.rate[slot]))
        step = fleet.step(tick)
        for slot_index, candidate in zip(
            step.slots.tolist(), step.candidates.tolist()
        ):
            fleet.set_rate(slot_index, candidate)
            requests += 1
    return rates, requests


class TestBitIdentity:
    @pytest.mark.parametrize("shift", [0, 1, 137, 599])
    def test_matches_scalar_scheduler(self, workload, params, shift):
        scalar = OnlineScheduler(params).schedule(shifted(workload, shift))

        fleet = CallFleet(workload, params)
        slot, initial_rate = fleet.admit(0, shift)
        rates, requests = drive(fleet, slot, workload.num_slots)

        vector = RateSchedule.from_slot_rates(rates, workload.slot_duration)
        assert np.array_equal(vector.start_times, scalar.schedule.start_times)
        assert np.array_equal(vector.rates, scalar.schedule.rates)
        assert requests == scalar.requests_made
        assert float(fleet.buffer[slot]) == scalar.final_buffer

    def test_matches_scalar_with_finite_buffer(self, workload, params):
        buffer_bits = 300_000.0
        scalar = OnlineScheduler(params).schedule(
            shifted(workload, 41), buffer_size=buffer_bits
        )

        fleet = CallFleet(workload, params, buffer_size=buffer_bits)
        slot, _ = fleet.admit(0, 41)
        rates, _ = drive(fleet, slot, workload.num_slots)

        vector = RateSchedule.from_slot_rates(rates, workload.slot_duration)
        assert np.array_equal(vector.rates, scalar.schedule.rates)
        assert fleet.bits_lost == scalar.bits_lost
        assert float(fleet.buffer[slot]) == scalar.final_buffer

    def test_quantize_matches_scalar(self, workload, params):
        fleet = CallFleet(workload, params)
        scheduler = OnlineScheduler(params)
        rng = np.random.default_rng(7)
        for estimate in rng.uniform(0.0, 8e6, size=200):
            assert fleet.quantize(float(estimate)) == scheduler.quantize(
                float(estimate)
            )
        # The epsilon guard: exactly-on-grid values stay on their level.
        assert fleet.quantize(params.granularity * 3) == params.granularity * 3

    def test_many_calls_step_like_isolated_calls(self, workload, params):
        """Fleet-mates must not perturb each other's float streams."""
        shifts = [3, 250, 461]
        alone = {}
        for shift in shifts:
            fleet = CallFleet(workload, params)
            slot, _ = fleet.admit(0, shift)
            alone[shift] = drive(fleet, slot, 200)[0]

        together = CallFleet(workload, params)
        slots = {
            shift: together.admit(call_id, shift)[0]
            for call_id, shift in enumerate(shifts)
        }
        recorded = {shift: [] for shift in shifts}
        for tick in range(200):
            for shift in shifts:
                recorded[shift].append(float(together.rate[slots[shift]]))
            step = together.step(tick)
            for slot_index, candidate in zip(
                step.slots.tolist(), step.candidates.tolist()
            ):
                together.set_rate(slot_index, candidate)
        for shift in shifts:
            assert recorded[shift] == alone[shift]


class TestPoolManagement:
    def test_growth_preserves_state(self, workload, params):
        fleet = CallFleet(workload, params, initial_capacity=2)
        slots = [fleet.admit(call_id, call_id)[0] for call_id in range(5)]
        assert fleet.capacity >= 5
        assert fleet.num_active == 5
        assert [int(fleet.call_id[slot]) for slot in slots] == list(range(5))
        step = fleet.step(0)  # grown arrays must still step cleanly
        assert step.slots.size <= 5

    def test_remove_and_reuse(self, workload, params):
        fleet = CallFleet(workload, params, initial_capacity=4)
        slot_a = fleet.admit(10, 0)[0]
        slot_b = fleet.admit(11, 1)[0]
        fleet.remove(slot_a)
        assert fleet.num_active == 1
        assert int(fleet.call_id[slot_a]) == -1
        # LIFO free list: the freed slot is reused first.
        assert fleet.admit(12, 2)[0] == slot_a
        with pytest.raises(ValueError):
            fleet.remove(slot_a + slot_b + 2)  # never-admitted slot

    def test_inactive_slots_stay_exactly_zero(self, workload, params):
        fleet = CallFleet(workload, params, initial_capacity=8)
        slot, _ = fleet.admit(0, 5)
        for tick in range(50):
            fleet.step(tick)
        fleet.remove(slot)
        for tick in range(50, 120):
            step = fleet.step(tick)
            assert step.num_requests == 0
        assert fleet.total_buffered_bits() == 0.0
        assert fleet.total_reserved_rate() == 0.0
        assert not fleet.active.any()
        assert float(np.abs(fleet.estimate).sum()) == 0.0

    def test_validation(self, workload, params):
        with pytest.raises(ValueError):
            CallFleet(workload, params, buffer_size=0.0)
        with pytest.raises(ValueError):
            CallFleet(workload, params, initial_capacity=0)
        fleet = CallFleet(workload, params)
        with pytest.raises(ValueError):
            fleet.admit(0, workload.num_slots)

    def test_counters(self, workload, params):
        fleet = CallFleet(workload, params)
        fleet.admit(0, 0)
        fleet.admit(1, 9)
        fleet.step(0)
        fleet.remove(0)
        fleet.step(1)
        assert fleet.epochs_stepped == 2
        assert fleet.call_epochs_stepped == 3  # 2 active, then 1
        assert fleet.peak_active == 2
