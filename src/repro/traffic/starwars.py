"""Synthetic Star-Wars-like MPEG-1 trace generator.

The paper's experiments use the Garrett/Willinger MPEG-1 encoding of the
*Star Wars* movie: roughly two hours at 24 frames/s (~171 000 frames),
long-term average rate 374 kb/s, and — critically — *multiple time-scale*
burstiness: "episodes where a sustained peak of five times the long-term
average rate lasts over 10 s" (Section II).

That trace is not redistributable, so this module generates a synthetic
trace with the same structure:

* a **scene process**: a semi-Markov chain over scene classes (quiet,
  normal, busy, action, peak) with class-dependent mean-rate multipliers
  and lognormal scene durations of seconds to tens of seconds — the slow
  time scale;
* **within-scene drift**: a mean-one AR(1) modulation so rate wanders
  inside a scene — intermediate time scale;
* the **GOP sawtooth** (I/B/P multipliers from :mod:`repro.traffic.mpeg`)
  plus lognormal per-frame noise — the fast time scale.

The generated trace is rescaled so its empirical mean rate matches
``mean_rate`` exactly, mirroring how the paper quotes results relative to
the trace's 374 kb/s average.  ``EXPERIMENTS.md`` verifies that the
emergent statistics the paper relies on (sustained 5x peaks, the shape of
the (sigma, rho) curve, ~4x CBR equivalent bandwidth at a 300 kb buffer)
hold for this generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.traffic.mpeg import GopStructure
from repro.traffic.trace import FrameTrace, SlottedWorkload
from repro.util.rng import SeedLike, as_generator
from repro.util.units import kbps

#: Published statistics of the real trace, used as generator defaults.
STAR_WARS_MEAN_RATE = kbps(374.0)
STAR_WARS_FPS = 24.0
STAR_WARS_NUM_FRAMES = 171_000  # ~2 hours


@dataclass(frozen=True)
class SceneClass:
    """One scene class of the slow time-scale process."""

    name: str
    rate_multiplier: float  # scene mean rate relative to the trace mean
    mean_duration: float  # seconds
    duration_sigma: float = 0.5  # lognormal shape for the duration
    probability: float = 0.0  # stationary probability of *entering* the class

    def __post_init__(self) -> None:
        if self.rate_multiplier <= 0:
            raise ValueError("rate_multiplier must be positive")
        if self.mean_duration <= 0:
            raise ValueError("mean_duration must be positive")
        if self.probability < 0:
            raise ValueError("probability must be non-negative")


def default_scene_classes() -> Sequence[SceneClass]:
    """Scene mix calibrated to the paper's qualitative description.

    The *peak* class produces the paper's "sustained peak of five times
    the long-term average rate [lasting] over 10 s"; the entry
    probabilities make such episodes occasional (a handful per
    two-hour movie), as observed in the real trace.
    """
    return (
        SceneClass("quiet", 0.45, mean_duration=18.0, probability=0.30),
        SceneClass("normal", 0.85, mean_duration=20.0, probability=0.42),
        SceneClass("busy", 1.60, mean_duration=15.0, probability=0.19),
        SceneClass("action", 3.00, mean_duration=11.0, probability=0.065),
        SceneClass("peak", 4.30, mean_duration=14.0, probability=0.025),
    )


@dataclass(frozen=True)
class StarWarsModel:
    """Parameters of the synthetic generator."""

    mean_rate: float = STAR_WARS_MEAN_RATE
    frames_per_second: float = STAR_WARS_FPS
    scene_classes: Sequence[SceneClass] = field(
        default_factory=default_scene_classes
    )
    gop: GopStructure = field(default_factory=GopStructure)
    intra_scene_ar_coefficient: float = 0.98
    intra_scene_sigma: float = 0.06
    frame_noise_sigma: float = 0.10
    max_frame_multiplier: float = 12.0
    normalize_mean: bool = True

    def __post_init__(self) -> None:
        if self.mean_rate <= 0:
            raise ValueError("mean_rate must be positive")
        if not self.scene_classes:
            raise ValueError("need at least one scene class")
        total = sum(cls.probability for cls in self.scene_classes)
        if total <= 0:
            raise ValueError("scene-class probabilities must not all be zero")
        if not 0.0 <= self.intra_scene_ar_coefficient < 1.0:
            raise ValueError("AR coefficient must be in [0, 1)")
        if self.max_frame_multiplier is not None and self.max_frame_multiplier <= 1.0:
            raise ValueError("max_frame_multiplier must exceed 1")

    # ------------------------------------------------------------------
    # TrafficSource protocol (repro.traffic.sources)
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Label the sampled workloads carry (protocol member)."""
        return "starwars-like"

    @property
    def slot_duration(self) -> float:
        """Seconds per frame slot (protocol member)."""
        return 1.0 / self.frames_per_second

    def sample_workload(
        self, num_slots: int, seed: SeedLike = None
    ) -> "SlottedWorkload":
        """Draw ``num_slots`` frames of arrivals (one slot per frame)."""
        return self.generate(
            num_frames=num_slots, seed=seed, name=self.name
        ).as_workload()

    # ------------------------------------------------------------------
    def _scene_probabilities(self) -> np.ndarray:
        probs = np.array([cls.probability for cls in self.scene_classes])
        return probs / probs.sum()

    def sample_scene_sequence(self, num_frames: int, rng: np.random.Generator):
        """Per-frame scene-class index and scene boundary flags.

        Scene classes are drawn i.i.d. from the entry distribution (with
        no immediate self-repeat, so adjacent scenes differ); durations
        are lognormal with the class's mean.  Returns an integer array of
        length ``num_frames``.
        """
        probs = self._scene_probabilities()
        classes = self.scene_classes
        scene_of_frame = np.empty(num_frames, dtype=np.int64)
        position = 0
        previous = -1
        while position < num_frames:
            index = int(rng.choice(len(classes), p=probs))
            if index == previous and len(classes) > 1:
                # Re-draw once to discourage (not forbid) repeats; repeated
                # classes just merge into one longer scene, which is harmless.
                index = int(rng.choice(len(classes), p=probs))
            scene = classes[index]
            # Lognormal with the requested mean: mean = exp(mu + sigma^2/2).
            sigma = scene.duration_sigma
            mu = np.log(scene.mean_duration) - 0.5 * sigma * sigma
            duration_seconds = float(rng.lognormal(mu, sigma))
            duration_frames = max(1, int(round(duration_seconds * self.frames_per_second)))
            end = min(num_frames, position + duration_frames)
            scene_of_frame[position:end] = index
            position = end
            previous = index
        return scene_of_frame

    def generate(
        self,
        num_frames: int = STAR_WARS_NUM_FRAMES,
        seed: SeedLike = None,
        name: str = "starwars-like",
    ) -> FrameTrace:
        """Generate a synthetic trace of ``num_frames`` frames."""
        if num_frames < 1:
            raise ValueError("num_frames must be >= 1")
        rng = as_generator(seed)

        scene_of_frame = self.sample_scene_sequence(num_frames, rng)
        multipliers = np.array(
            [cls.rate_multiplier for cls in self.scene_classes]
        )
        scene_rate = multipliers[scene_of_frame]

        # Intermediate time scale: mean-one AR(1) drift inside scenes.
        drift = self._ar1_modulation(num_frames, rng)

        # Fast time scale: GOP sawtooth with a random phase plus frame noise.
        phase = int(rng.integers(self.gop.gop_length))
        gop_multiplier = self.gop.multiplier_sequence(num_frames, phase)
        noise_sigma = self.frame_noise_sigma
        noise = rng.lognormal(
            -0.5 * noise_sigma * noise_sigma, noise_sigma, size=num_frames
        )

        mean_frame_bits = self.mean_rate / self.frames_per_second
        frame_bits = mean_frame_bits * scene_rate * drift * gop_multiplier * noise
        if self.max_frame_multiplier is not None:
            # The real trace's largest frame is ~12x the mean frame (the
            # encoder's rate ceiling); without a cap the multiplicative
            # model's tail produces unrealistically huge single frames.
            frame_bits = np.minimum(
                frame_bits, self.max_frame_multiplier * mean_frame_bits
            )
        if self.normalize_mean:
            frame_bits *= mean_frame_bits / frame_bits.mean()
        return FrameTrace(frame_bits, self.frames_per_second, name=name)

    def _ar1_modulation(
        self, num_frames: int, rng: np.random.Generator
    ) -> np.ndarray:
        """A stationary mean-one lognormal AR(1) multiplier sequence."""
        coefficient = self.intra_scene_ar_coefficient
        sigma = self.intra_scene_sigma
        if sigma == 0.0:
            return np.ones(num_frames)
        innovations = rng.normal(0.0, sigma, size=num_frames)
        log_values = np.empty(num_frames)
        stationary_std = sigma / np.sqrt(1.0 - coefficient * coefficient)
        log_values[0] = rng.normal(0.0, stationary_std)
        for index in range(1, num_frames):
            log_values[index] = (
                coefficient * log_values[index - 1] + innovations[index]
            )
        # exp() of a zero-mean Gaussian has mean exp(var/2); divide it out.
        return np.exp(log_values - 0.5 * stationary_std * stationary_std)


def generate_starwars_trace(
    num_frames: int = STAR_WARS_NUM_FRAMES,
    seed: SeedLike = 1995,
    mean_rate: float = STAR_WARS_MEAN_RATE,
    name: str = "starwars-like",
) -> FrameTrace:
    """Convenience wrapper: a Star-Wars-like trace with default calibration.

    The default seed makes the library's experiments reproducible out of
    the box; pass ``seed=None`` for a fresh trace.
    """
    model = StarWarsModel(mean_rate=mean_rate)
    return model.generate(num_frames=num_frames, seed=seed, name=name)
