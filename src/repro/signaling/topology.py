"""Network-level signaling: alternate routes and call-level load balancing.

Section III-C conjectures: "if there is a simultaneous increase in the
number of alternate routes in the network, then load balancing at the
call level might reduce the load at each hop, thus compensating for
[multi-hop failure growth].  This is still an open area for research."

This module makes the conjecture testable: a :class:`SignalingNetwork`
wraps a (networkx) topology whose edges are switch ports; calls pick
among the ``k`` shortest routes the one with the most bottleneck
headroom at setup, then renegotiate along it for their lifetime.
``benchmarks/test_alternate_routing.py`` measures the failure-probability
reduction as ``k`` grows.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.core.schedule import RateSchedule
from repro.signaling.network import SignalingPath
from repro.signaling.switch import SwitchPort
from repro.util.rng import SeedLike, as_generator


def _edge_key(u, v) -> Tuple:
    """Canonical undirected edge key: ``_edge_key(u, v) == _edge_key(v, u)``.

    Ordering contract (stable across processes and documented so port
    names and dict iteration order are reproducible):

    1. Same-type endpoints order by their own ``<`` when they support it
       — ints numerically, strings lexicographically.
    2. Otherwise (mixed types, or types without a total order) endpoints
       order by ``(type module, qualified name, repr)``.

    The old implementation compared bare ``repr`` strings, which is
    wrong for ints (``repr(10) < repr(9)``) and unstable for objects
    whose default ``repr`` embeds the memory address.
    """
    if type(u) is type(v):
        try:
            return (u, v) if u <= v else (v, u)
        except TypeError:
            pass
    a = (type(u).__module__, type(u).__qualname__, repr(u))
    b = (type(v).__module__, type(v).__qualname__, repr(v))
    return (u, v) if a <= b else (v, u)


class SignalingNetwork:
    """A topology of switch ports supporting alternate-route selection."""

    def __init__(
        self,
        graph: nx.Graph,
        default_capacity: float = 100e6,
        hop_delay: float = 0.001,
        seed: SeedLike = None,
    ) -> None:
        if graph.number_of_edges() == 0:
            raise ValueError("the topology needs at least one link")
        self.graph = graph
        self.hop_delay = hop_delay
        self.rng = as_generator(seed)
        self._ports: Dict[Tuple, SwitchPort] = {}
        for u, v, data in graph.edges(data=True):
            capacity = float(data.get("capacity", default_capacity))
            key = _edge_key(u, v)
            self._ports[key] = SwitchPort(capacity, name=f"{u}<->{v}")

    # ------------------------------------------------------------------
    @property
    def ports(self) -> Dict[Tuple, SwitchPort]:
        return dict(self._ports)

    def port_between(self, u, v) -> SwitchPort:
        return self._ports[_edge_key(u, v)]

    def _path_ports(self, node_path: Sequence) -> List[SwitchPort]:
        return [
            self.port_between(u, v)
            for u, v in zip(node_path[:-1], node_path[1:])
        ]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def k_shortest_paths(self, source, target, k: int) -> List[List]:
        """Up to ``k`` loop-free paths in increasing hop count."""
        if k < 1:
            raise ValueError("k must be >= 1")
        generator = nx.shortest_simple_paths(self.graph, source, target)
        return list(itertools.islice(generator, k))

    def select_route(
        self, source, target, k: int = 1, rate_hint: float = 0.0
    ) -> List:
        """Pick the candidate route with the most bottleneck headroom.

        ``k = 1`` is plain shortest-path routing; larger ``k`` enables
        the call-level load balancing of Section III-C.  ``rate_hint``
        (the call's initial rate) breaks ties toward feasibility.
        """
        candidates = self.k_shortest_paths(source, target, k)

        def bottleneck(path) -> float:
            return min(port.headroom for port in self._path_ports(path))

        best = max(candidates, key=bottleneck)
        if rate_hint > 0.0 and bottleneck(best) < rate_hint:
            # No candidate fits outright; still return the best one — the
            # per-hop admission check will deny honestly.
            pass
        return best

    def attach(
        self,
        source,
        target,
        k: int = 1,
        rate_hint: float = 0.0,
        cell_loss_probability: float = 0.0,
        faults=None,
        request_timeout: Optional[float] = None,
        max_retries: int = 0,
    ) -> SignalingPath:
        """A :class:`SignalingPath` along the selected route.

        ``faults`` (a :class:`~repro.faults.injectors.FaultPlan`),
        ``request_timeout``, and ``max_retries`` configure the hardened
        signaling behaviour; the defaults reproduce the paper's fragile
        fire-and-forget cells.
        """
        route = self.select_route(source, target, k, rate_hint)
        return SignalingPath(
            self._path_ports(route),
            hop_delay=self.hop_delay,
            cell_loss_probability=cell_loss_probability,
            seed=self.rng,
            faults=faults,
            request_timeout=request_timeout,
            max_retries=max_retries,
        )

    # ------------------------------------------------------------------
    def total_cells_processed(self) -> int:
        return sum(port.cells_processed for port in self._ports.values())

    def max_port_utilization(self) -> float:
        return max(
            port.utilization / port.capacity for port in self._ports.values()
        )


@dataclass
class NetworkSimulationResult:
    """Aggregate outcome of routing many calls through the network."""

    increase_requests: int = 0
    failures: int = 0
    paths: List[SignalingPath] = field(default_factory=list)

    @property
    def failure_fraction(self) -> float:
        if self.increase_requests == 0:
            return 0.0
        return self.failures / self.increase_requests

    def failure_hop_histogram(self) -> Dict[int, int]:
        """Aggregate, across all calls, how often each hop index denied."""
        histogram: Dict[int, int] = {}
        for path in self.paths:
            for hop, count in path.stats.failure_hop_histogram().items():
                histogram[hop] = histogram.get(hop, 0) + count
        return histogram


def simulate_calls_on_network(
    network: SignalingNetwork,
    calls: Sequence[Tuple[object, object, RateSchedule]],
    k: int = 1,
    faults=None,
    max_retries: int = 0,
) -> NetworkSimulationResult:
    """Route and replay the calls concurrently on a shared clock.

    Setup happens in call order — each call's route selection and initial
    reservation see all earlier calls' reservations — then every call's
    renegotiations run interleaved in time on one event clock, so the
    calls genuinely contend for the links.  VCIs are unique per call.
    """
    from repro.queueing.events import EventScheduler
    from repro.signaling.messages import RenegotiationRequest

    if not calls:
        raise ValueError("need at least one call")
    result = NetworkSimulationResult()
    engine = EventScheduler()
    believed: List[float] = []
    paths: List[SignalingPath] = []

    # Setup in order: select route, reserve the initial rate.
    for vci, (source, target, schedule) in enumerate(calls):
        initial = float(schedule.rates[0])
        path = network.attach(
            source,
            target,
            k=k,
            rate_hint=initial,
            faults=faults,
            max_retries=max_retries,
        )
        request = RenegotiationRequest(
            vci=vci, old_rate=0.0, new_rate=initial, time=0.0
        )
        granted = path.renegotiate(request)
        believed.append(initial if granted else 0.0)
        paths.append(path)

    def issue(vci: int, new_rate: float) -> None:
        request = RenegotiationRequest(
            vci=vci,
            old_rate=believed[vci],
            new_rate=new_rate,
            time=engine.now,
        )
        if paths[vci].renegotiate(request):
            believed[vci] = new_rate

    horizon = 0.0
    for vci, (_, _, schedule) in enumerate(calls):
        for event in schedule.renegotiations():
            engine.schedule_at(event.time, issue, vci, event.new_rate)
        horizon = max(horizon, schedule.duration)
    engine.run(until=horizon)
    for vci, path in enumerate(paths):
        path.release(vci)

    for path in paths:
        result.increase_requests += path.stats.increase_requests
        result.failures += path.stats.failures
        result.paths.append(path)
    return result
