"""Per-link overload adaptation for multi-bottleneck gateways.

The overload control plane and its policies were written against the
classic single-link gateway: pressure comes from ``gateway.link``, the
victim pool is ``gateway.fleet``, and actions go through
``overload_shrink_class`` / ``overload_evict`` / ``overload_readmit``.
On a route graph there is no single link — each bottleneck edge needs
its own hysteresis state and its own victim pool (the calls whose
routes traverse that edge).

:class:`LinkScopedOverloadAgent` closes that gap without touching the
plane or the policies: it presents one edge of a multi-link host
gateway through the exact gateway protocol the plane drives.  The
host (see :class:`~repro.scenarios.runtime.ScenarioGateway`) supplies
the topology-aware pieces:

* ``link_members(key)`` — ``(group, slot)`` pairs of live calls whose
  bound route traverses the edge, ascending (the dense mirror of the
  classic gateway's ascending-slot shrink walk);
* ``link_member_mask(key)`` — the same membership as a boolean column
  over the concatenated group fleets;
* ``shrink_member_call`` / ``evict_member_call`` /
  ``readmit_member_call`` — the per-call actions, applied to *every*
  link on the call's route (shrinking a call on one congested edge
  frees its grant on all of them, exactly like a renegotiation).

Determinism: all per-link planes share one dedicated RNG stream drawn
in link-spec order each epoch, and every member walk is in ascending
``(group, slot)`` order, so same seed still means byte-identical
fingerprints.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["LinkScopedOverloadAgent"]


class _MemberFleetView:
    """The concatenated per-group fleets, masked to one link's calls.

    Quacks like the single ``gateway.fleet`` the overload policies
    read: ``active`` is True only for calls routed over the link (so a
    sacrifice victim search stays on-link), while ``call_class`` and
    ``rate`` are the plain concatenation in fixed group order.
    """

    def __init__(self, host, key: Tuple[str, str]) -> None:
        self._host = host
        self._key = key

    @property
    def active(self) -> np.ndarray:
        mask = self._host.link_member_mask(self._key)
        stacked = np.concatenate(
            [fleet.active for fleet in self._host._fleets]
        )
        return stacked & mask

    @property
    def call_class(self) -> np.ndarray:
        return np.concatenate(
            [fleet.call_class for fleet in self._host._fleets]
        )

    @property
    def rate(self) -> np.ndarray:
        return np.concatenate(
            [fleet.rate for fleet in self._host._fleets]
        )

    def locate(self, view_slot: int) -> Tuple[int, int]:
        """Map a concatenated-view index back to ``(group, slot)``."""
        offset = 0
        for group, fleet in enumerate(self._host._fleets):
            size = int(fleet.active.size)
            if view_slot < offset + size:
                return group, view_slot - offset
            offset += size
        raise IndexError(
            f"view slot {view_slot} beyond {offset} pooled slots"
        )


class LinkScopedOverloadAgent:
    """One bottleneck edge of a multi-link gateway, presented through
    the single-link gateway protocol the overload plane drives."""

    def __init__(self, host, key: Tuple[str, str], link) -> None:
        self.host = host
        self.key = key
        self.link = link
        self.fleet = _MemberFleetView(host, key)

    # -- the gateway protocol the policies call -----------------------
    def overload_pressure(self) -> float:
        capacity = self.link.capacity
        if capacity <= 0:
            return 0.0
        return max(self.link.allocated, self.link.total_demand) / capacity

    def overload_shrink_class(
        self, call_class: int, ratio: float, now: float
    ) -> int:
        shrunk = 0
        for group, slot in self.host.link_members(self.key):
            fleet = self.host._fleets[group]
            if int(fleet.call_class[slot]) != call_class:
                continue
            if self.host.shrink_member_call(group, slot, ratio, now):
                shrunk += 1
        return shrunk

    def overload_evict(self, view_slot: int, now: float):
        group, slot = self.fleet.locate(int(view_slot))
        return self.host.evict_member_call(group, slot, now)

    def overload_readmit(self, entry, now: float) -> int:
        return self.host.readmit_member_call(entry, now)
