"""Slotted fluid queues.

The paper models all services as "traffic from a source is queued at a
buffer at the end-system, and the network drains the buffer at a given
drain rate" (Section II).  This module simulates that queue exactly on the
slot grid: per slot, ``a_t`` bits arrive, ``c_t * slot`` bits drain, the
occupancy cannot go negative, and anything above the buffer bound is lost.

These loops are the innermost kernel of the Fig. 5 / Fig. 6 experiments,
so they are written with plain Python floats over pre-converted lists
(substantially faster than per-element numpy scalar arithmetic).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.traffic.trace import SlottedWorkload
from repro.util.search import binary_search_min_feasible


@dataclass(frozen=True)
class FluidQueueResult:
    """Outcome of a fluid-queue simulation."""

    arrived_bits: float
    lost_bits: float
    max_occupancy: float
    final_occupancy: float
    occupancy: Optional[np.ndarray] = None

    @property
    def loss_fraction(self) -> float:
        """Fraction of offered bits lost to buffer overflow."""
        if self.arrived_bits == 0.0:
            return 0.0
        return self.lost_bits / self.arrived_bits

    @property
    def carried_bits(self) -> float:
        return self.arrived_bits - self.lost_bits


def simulate_fluid_queue(
    arrivals_bits: Union[Sequence[float], np.ndarray],
    drain_bits_per_slot: Union[float, Sequence[float], np.ndarray],
    buffer_bits: float = math.inf,
    initial_occupancy: float = 0.0,
    record_occupancy: bool = False,
) -> FluidQueueResult:
    """Simulate a finite fluid queue over the slot grid.

    Per slot: ``q <- max(0, q + a - drain)``; anything then above
    ``buffer_bits`` overflows and is counted as lost.  This is exactly the
    paper's eqs. 2-3 convention (the occupancy bound applies to the
    post-service ``q_t``), shared with ``RateSchedule.buffer_trajectory``
    and the optimal DP so that rates, buffers, and schedules are directly
    comparable across the library.

    ``drain_bits_per_slot`` may be a scalar (CBR) or a per-slot sequence
    (an RCBR schedule sampled on the slot grid).
    """
    arrivals = np.asarray(arrivals_bits, dtype=float)
    if arrivals.ndim != 1 or arrivals.size == 0:
        raise ValueError("arrivals must be a non-empty 1-D sequence")
    if buffer_bits < 0:
        raise ValueError("buffer_bits must be non-negative")
    if initial_occupancy < 0 or initial_occupancy > buffer_bits:
        raise ValueError("initial_occupancy must lie within the buffer")

    num_slots = arrivals.size
    if np.isscalar(drain_bits_per_slot):
        drains = [float(drain_bits_per_slot)] * num_slots
        if drains[0] < 0:
            raise ValueError("drain must be non-negative")
    else:
        drain_array = np.asarray(drain_bits_per_slot, dtype=float)
        if drain_array.shape != arrivals.shape:
            raise ValueError(
                "per-slot drain must have the same length as arrivals "
                f"({drain_array.shape} vs {arrivals.shape})"
            )
        if np.any(drain_array < 0):
            raise ValueError("drains must be non-negative")
        drains = drain_array.tolist()

    arrival_list = arrivals.tolist()
    bound = float(buffer_bits)
    level = float(initial_occupancy)
    lost = 0.0
    peak = level
    trajectory = np.empty(num_slots) if record_occupancy else None

    for index in range(num_slots):
        level += arrival_list[index] - drains[index]
        if level < 0.0:
            level = 0.0
        elif level > bound:
            lost += level - bound
            level = bound
        if level > peak:
            peak = level
        if trajectory is not None:
            trajectory[index] = level

    return FluidQueueResult(
        arrived_bits=float(arrivals.sum()),
        lost_bits=lost,
        max_occupancy=peak,
        final_occupancy=level,
        occupancy=trajectory,
    )


def required_buffer(
    arrivals_bits: Union[Sequence[float], np.ndarray],
    drain_bits_per_slot: Union[float, Sequence[float], np.ndarray],
) -> float:
    """Smallest buffer for lossless service at the given drain.

    This is sigma(rho) of the (sigma, rho) curve: the peak occupancy of
    the infinite queue, ``max_t max_s [A(t) - A(s) - rho (t - s)]``.
    """
    result = simulate_fluid_queue(arrivals_bits, drain_bits_per_slot)
    return result.max_occupancy


def loss_fraction_for_rate(
    workload: SlottedWorkload, rate: float, buffer_bits: float
) -> float:
    """Loss fraction when ``workload`` is served at CBR ``rate`` (bits/s)."""
    if rate < 0:
        raise ValueError("rate must be non-negative")
    drain = rate * workload.slot_duration
    return simulate_fluid_queue(
        workload.bits_per_slot, drain, buffer_bits
    ).loss_fraction


def min_rate_for_loss(
    workload: SlottedWorkload,
    buffer_bits: float,
    loss_target: float,
    tolerance: Optional[float] = None,
) -> float:
    """Minimum CBR drain rate keeping the loss fraction at or below target.

    This computes one point of the trace's (sigma, rho) curve (Fig. 5):
    for buffer size sigma = ``buffer_bits``, the minimum service rate rho
    such that the fraction of bits lost is below ``loss_target``.
    """
    if not 0.0 <= loss_target < 1.0:
        raise ValueError("loss_target must be in [0, 1)")
    mean = workload.mean_rate
    peak = workload.peak_rate
    if tolerance is None:
        tolerance = max(1.0, 1e-4 * mean)

    def feasible(rate: float) -> bool:
        return loss_fraction_for_rate(workload, rate, buffer_bits) <= loss_target

    if feasible(mean):
        return mean
    return binary_search_min_feasible(feasible, mean, peak, tolerance)


def sigma_rho_curve(
    workload: SlottedWorkload,
    rates: Sequence[float],
) -> np.ndarray:
    """Lossless (sigma, rho) pairs: required buffer for each drain rate.

    Returns an array of shape ``(len(rates), 2)`` with columns
    ``(rate, required_buffer)``.  The empirical-envelope counterpart with a
    loss target is in :func:`repro.analysis.empirical.sigma_rho_for_loss`.
    """
    rows = []
    for rate in rates:
        drain = rate * workload.slot_duration
        rows.append((float(rate), required_buffer(workload.bits_per_slot, drain)))
    return np.asarray(rows)
