"""Deterministic random-number management.

Every stochastic component in the library accepts either a seed or a
:class:`numpy.random.Generator`, normalised through :func:`as_generator`.
Experiments that need many independent streams (e.g. one per multiplexed
video source) use :func:`spawn_generators`, which derives child generators
through numpy's ``SeedSequence`` spawning so the streams are statistically
independent *and* reproducible from a single seed.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh OS entropy), an integer seed, a
    ``SeedSequence``, or an existing ``Generator`` (returned unchanged so
    that callers can thread one generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    If ``seed`` is already a ``Generator`` its own ``spawn`` method is used
    (available from numpy 1.25); otherwise a ``SeedSequence`` is built and
    spawned.  Raises :class:`ValueError` for a negative count.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        return list(seed.spawn(count))
    if isinstance(seed, np.random.SeedSequence):
        sequence = seed
    else:
        sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


class RngMixin:
    """Mixin giving a class a lazily normalised ``rng`` attribute.

    Subclasses call ``RngMixin.__init__(self, seed)`` (or set ``self._rng``
    directly) and then use ``self.rng`` everywhere randomness is needed.
    """

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng: Optional[np.random.Generator] = (
            None if seed is None else as_generator(seed)
        )

    @property
    def rng(self) -> np.random.Generator:
        """The component's random generator, created on first use."""
        if self._rng is None:
            self._rng = np.random.default_rng()
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Replace the generator, e.g. to replay a scenario."""
        self._rng = as_generator(seed)
