"""Figs. 7-8: the memoryless certainty-equivalent MBAC is not robust.

Calls are randomly shifted copies of the trace's RCBR schedule arriving
as a Poisson process; target renegotiation-failure probability 1e-3.
Paper findings:

* Fig. 7 — for small link capacities the measured failure probability is
  orders of magnitude above the target, worsening with offered load;
* Fig. 8 — the scheme's utilization *exceeds* the perfect-knowledge
  controller's (normalized utilization > 1): it over-admits;
* both effects shrink as the link capacity grows.
"""

from __future__ import annotations

import os

import pytest

from benchmarks._common import (
    disk_cache,
    fmt,
    once,
    optimal_schedule,
    print_table,
    scale,
)
from repro.perf import SweepEngine
from repro.perf.sweeps import figs7_9_cells

FAILURE_TARGET = 1e-3


@pytest.fixture(scope="module")
def schedule():
    return optimal_schedule()


def test_fig7_fig8_memoryless(benchmark, schedule):
    capacities = scale().mbac_capacities
    loads = scale().mbac_loads

    def run():
        # The (capacity, load, controller) cells are independent, so the
        # grid goes through the sweep engine: REPRO_SWEEP_WORKERS fans it
        # out, the disk cache makes figure regeneration free, and the
        # per-cell seeds are the same historical values as the old serial
        # loop — results are bit-identical either way.
        cells = [
            cell
            for cell in figs7_9_cells(schedule, scale(), FAILURE_TARGET)
            if cell.name.startswith("fig7_8/")
        ]
        engine = SweepEngine(
            workers=int(os.environ.get("REPRO_SWEEP_WORKERS", "1")),
            cache=disk_cache,
            namespace="mbac",
        )
        values = [result.value for result in engine.run(cells)]
        rows = []
        for memoryless, perfect in zip(values[0::2], values[1::2]):
            rows.append(
                {
                    "capacity": memoryless["capacity_multiple"],
                    "load": memoryless["load"],
                    "fail_memoryless": memoryless["failure_probability"],
                    "fail_perfect": perfect["failure_probability"],
                    "util_memoryless": memoryless["utilization"],
                    "util_perfect": perfect["utilization"],
                }
            )
        return rows

    rows = once(benchmark, run)

    print_table(
        "Fig. 7: renegotiation failure probability (target 1e-3)",
        ["capacity/mean", "load", "memoryless", "perfect knowledge"],
        [
            [fmt(r["capacity"], 1), fmt(r["load"], 2),
             fmt(r["fail_memoryless"]), fmt(r["fail_perfect"])]
            for r in rows
        ],
    )
    print_table(
        "Fig. 8: utilization (normalized to perfect knowledge)",
        ["capacity/mean", "load", "memoryless util", "perfect util",
         "normalized"],
        [
            [fmt(r["capacity"], 1), fmt(r["load"], 2),
             fmt(r["util_memoryless"], 3), fmt(r["util_perfect"], 3),
             fmt(r["util_memoryless"] / max(r["util_perfect"], 1e-9), 3)]
            for r in rows
        ],
    )

    # --- Shape assertions ------------------------------------------------
    smallest = min(capacities)
    heavy = max(loads)
    worst = next(
        r for r in rows if r["capacity"] == smallest and r["load"] == heavy
    )
    # Fig. 7's conclusion: the memoryless scheme badly misses the target
    # at small capacity and high load (paper: 3-4 orders of magnitude).
    assert worst["fail_memoryless"] > 10 * FAILURE_TARGET

    # Fig. 8's conclusion: it over-admits relative to perfect knowledge.
    assert worst["util_memoryless"] >= worst["util_perfect"] - 0.02

    # Failure probability increases with offered load at fixed capacity.
    for capacity_multiple in capacities:
        at_cap = [r for r in rows if r["capacity"] == capacity_multiple]
        light, heavy_row = at_cap[0], at_cap[-1]
        assert heavy_row["fail_memoryless"] >= light["fail_memoryless"] - 1e-3

    # The perfect-knowledge controller honours the target within noise.
    for r in rows:
        assert r["fail_perfect"] <= 50 * FAILURE_TARGET
