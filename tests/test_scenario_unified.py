"""The unified serving core: every scenario shards, checkpoints, and
runs the full control plane.

These tests pin the tentpole guarantees of the topology-general
runtime: shards ∈ {0, 1, 4} produce byte-identical fingerprints on
every roster scenario, a kill-and-resume lands on the uninterrupted
fingerprint (including under faults, background, and active overload),
and the previously-illegal spec combinations — MBAC controllers and
non-block overload policies on multi-bottleneck topologies — are
first-class and deterministic.
"""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.cli import main
from repro.faults.injectors import FaultPlan
from repro.scenarios import (
    SCENARIO_NAMES,
    FlowGroupSpec,
    LinkSpec,
    ScenarioHarness,
    ScenarioSpec,
    get_scenario,
    run_scenario,
)
from repro.server.checkpoint import StaleCheckpointError
from repro.traffic.starwars import STAR_WARS_MEAN_RATE

SMOKE = dict(duration=2.0, snapshot_every=1.0)


def hot_spec(policy, controller="always"):
    """A two-bottleneck chain loaded past capacity so the per-link
    overload planes actually engage within a short run."""
    return ScenarioSpec(
        name=f"hot-{policy}",
        description="overload-engagement drill",
        links=(
            LinkSpec("a", "b", 6 * STAR_WARS_MEAN_RATE),
            LinkSpec("b", "c", 6 * STAR_WARS_MEAN_RATE),
        ),
        flows=(
            FlowGroupSpec("ab", "a", "b", load=1.4, initial_calls=4),
            FlowGroupSpec("ac", "a", "c", load=1.4, initial_calls=4),
        ),
        duration=10.0,
        snapshot_every=2.0,
        overload_policy=policy,
        controller=controller,
        overload_classes=3,
        class_weights=(1.0, 2.0, 3.0),
    )


def resume_drill(spec, shards=0, faults=None, stop_fraction=0.4):
    """run(T); save-at-boundary; fresh harness; restore; run the rest.

    Returns (uninterrupted, resumed) fingerprints; the caller asserts
    equality.  Fault plans are rebuilt per harness, mirroring how a
    restarted process would reconstruct them from the CLI spec.
    """
    import tempfile

    def fresh_faults():
        return None if faults is None else FaultPlan.from_json(
            faults[0], seed=faults[1]
        )

    reference = ScenarioHarness(spec, shards=shards, faults=fresh_faults())
    with reference:
        ref = reference.run()

    path = os.path.join(tempfile.mkdtemp(), "drill.ckpt")
    stop_at = spec.duration * stop_fraction

    def stop_hook(tick, gw):
        if gw.engine.now >= stop_at:
            gw.save(path)
            return True
        return None

    first = ScenarioHarness(spec, shards=shards, faults=fresh_faults())
    with first:
        first.run(epoch_hook=stop_hook)

    second = ScenarioHarness(spec, shards=shards, faults=fresh_faults())
    with second:
        second.restore(path)
        resumed_at = second.gateway.engine.now
        assert 0.0 < resumed_at < spec.duration
        report = second.run(duration=spec.duration - resumed_at)
    return ref.fingerprint, report.fingerprint


class TestShardParity:
    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_shards_0_1_4_byte_identical(self, name):
        plain = run_scenario(name, **SMOKE)
        one = run_scenario(name, shards=1, **SMOKE)
        four = run_scenario(name, shards=4, **SMOKE)
        assert plain.fingerprint == one.fingerprint
        assert plain.fingerprint == four.fingerprint
        assert plain.groups == four.groups
        assert plain.links == four.links


class TestCheckpointResume:
    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_kill_and_resume_lands_on_uninterrupted_fingerprint(
        self, name
    ):
        spec = get_scenario(name, **SMOKE)
        ref, resumed = resume_drill(spec)
        assert resumed == ref

    def test_sharded_multi_bottleneck_resume(self):
        spec = get_scenario("parking-lot", **SMOKE)
        ref, resumed = resume_drill(spec, shards=2)
        assert resumed == ref
        # And the sharded resume matches the unsharded run outright.
        assert ref == run_scenario(spec).fingerprint

    def test_faulted_multi_bottleneck_resume(self):
        spec = get_scenario("parking-lot", **SMOKE)
        faults = ('{"denial": {"rate": 0.3, "mean_burst": 4.0}}', 5)
        ref, resumed = resume_drill(spec, faults=faults)
        assert resumed == ref

    def test_background_sharded_resume(self):
        spec = get_scenario("dumbbell-lrd", duration=4.0,
                            snapshot_every=1.0)
        ref, resumed = resume_drill(spec, shards=1)
        assert resumed == ref

    def test_checkpoint_refuses_a_different_scenario(self, tmp_path):
        # The dumbbell twins derive identical configs and workloads
        # (only the background burst structure differs) — the scenario
        # stamp must keep their checkpoints apart.
        path = tmp_path / "lrd.ckpt"
        spec = get_scenario("dumbbell-lrd", **SMOKE)

        def stop_hook(tick, gw):
            if gw.engine.now >= 0.8:
                gw.save(path)
                return True
            return None

        with ScenarioHarness(spec) as h:
            h.run(epoch_hook=stop_hook)
        twin = ScenarioHarness(get_scenario("dumbbell-poisson", **SMOKE))
        with twin:
            with pytest.raises(StaleCheckpointError, match="scenario"):
                twin.restore(path)


class TestOverloadEverywhere:
    @pytest.mark.parametrize("policy", ["downgrade", "sacrifice"])
    def test_hot_chain_engages_per_link_planes(self, policy):
        result = run_scenario(hot_spec(policy))
        hot = result.links["a~b"]["overload"]
        assert hot["policy"] == policy
        assert hot["entries"] > 0
        if policy == "downgrade":
            assert hot["escalations"] > 0
        else:
            assert hot["sacrificed"] > 0

    @pytest.mark.parametrize("policy", ["downgrade", "sacrifice"])
    def test_hot_chain_deterministic_and_shard_parity(self, policy):
        spec = hot_spec(policy)
        first = run_scenario(spec)
        second = run_scenario(spec)
        sharded = run_scenario(spec, shards=2)
        assert first.fingerprint == second.fingerprint
        assert first.fingerprint == sharded.fingerprint

    @pytest.mark.parametrize("policy", ["downgrade", "sacrifice"])
    def test_hot_chain_resume_under_active_overload(self, policy):
        ref, resumed = resume_drill(hot_spec(policy), stop_fraction=0.5)
        assert resumed == ref

    def test_mbac_controller_on_multi_bottleneck(self):
        always = run_scenario(hot_spec("block"))
        mbac = run_scenario(hot_spec("block", controller="memory"))
        assert mbac.fingerprint != always.fingerprint
        # MBAC vets calls against the route bottleneck, so it blocks
        # where AlwaysAdmit relies purely on port back-pressure.
        total = sum(g["blocked"] for g in mbac.groups.values())
        assert total > 0

    def test_block_policy_has_no_overload_section(self):
        result = run_scenario("parking-lot", **SMOKE)
        assert all(
            "overload" not in link for link in result.links.values()
        )


class TestSpecCapabilities:
    def test_describe_prints_capability_row(self, capsys):
        assert main(["scenario", "describe", "parking-lot"]) == 0
        out = capsys.readouterr().out
        assert "capability" in out
        assert "shards=yes" in out
        assert "checkpoint=yes" in out
        assert "mbac=no" in out

    def test_describe_reflects_policy_upgrades(self):
        described = get_scenario("parking-lot").replace(
            overload_policy="sacrifice", controller="memory"
        ).describe()
        assert "sacrifice (per-link planes)" in described
        assert "mbac=yes" in described

    def test_replace_revalidates_newly_legal_combinations(self):
        spec = get_scenario("parking-lot")
        assert not spec.single_bottleneck
        upgraded = spec.replace(
            overload_policy="downgrade", controller="memory"
        )
        assert upgraded.overload_policy == "downgrade"
        assert upgraded.shard_compatible
        with pytest.raises(ValueError, match="duration"):
            # Bogus values still fail eagerly through replace().
            upgraded.replace(duration=-1.0)


class TestScenarioCheckpointCli:
    def test_checkpoint_flags_round_trip(self, tmp_path, capsys):
        ckpt = tmp_path / "pl.ckpt"
        full = [
            "scenario", "run", "parking-lot",
            "--duration", "2", "--snapshot-every", "1",
        ]
        assert main(full) == 0
        reference = capsys.readouterr().out

        assert (
            main(
                full
                + [
                    "--checkpoint-every", "24",
                    "--checkpoint-path", str(ckpt),
                ]
            )
            == 0
        )
        checkpointed = capsys.readouterr().out
        assert checkpointed == reference
        assert ckpt.exists()

        assert main(full + ["--resume-from", str(ckpt)]) == 0
        resumed = capsys.readouterr().out
        assert "resumed from" in resumed
        fingerprint = [
            line for line in reference.splitlines()
            if line.startswith("fingerprint")
        ]
        assert fingerprint and fingerprint[0] in resumed

    def test_resume_past_duration_exits_1(self, tmp_path, capsys):
        ckpt = tmp_path / "done.ckpt"
        argv = [
            "scenario", "run", "mixed-classes",
            "--duration", "2", "--snapshot-every", "1",
            "--checkpoint-every", "24", "--checkpoint-path", str(ckpt),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert (
            main(
                [
                    "scenario", "run", "mixed-classes",
                    "--duration", "1",
                    "--resume-from", str(ckpt),
                ]
            )
            == 1
        )
        assert "nothing left" in capsys.readouterr().out

    def test_sigkill_recovery_through_the_cli(self, tmp_path):
        """The crash story end to end: SIGKILL the serving process,
        resume from its last periodic checkpoint, land on the
        uninterrupted fingerprint."""
        ckpt = tmp_path / "storm.ckpt"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        base = [
            sys.executable, "-m", "repro.cli", "scenario", "run",
            "mmpp-storm", "--duration", "30",
        ]
        reference = subprocess.run(
            base, env=env, capture_output=True, text=True, timeout=300
        )
        assert reference.returncode == 0
        ref_line = [
            line for line in reference.stdout.splitlines()
            if line.startswith("fingerprint")
        ][0]

        victim = subprocess.Popen(
            base
            + [
                "--checkpoint-every", "48",
                "--checkpoint-path", str(ckpt),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        # Kill as soon as the first periodic checkpoint lands (or let
        # a fast run finish — both leave a usable checkpoint behind).
        import time

        for _ in range(600):
            if ckpt.exists() or victim.poll() is not None:
                break
            time.sleep(0.05)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)
        assert ckpt.exists()

        resumed = subprocess.run(
            base + ["--resume-from", str(ckpt)],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert ref_line in resumed.stdout
