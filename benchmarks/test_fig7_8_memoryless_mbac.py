"""Figs. 7-8: the memoryless certainty-equivalent MBAC is not robust.

Calls are randomly shifted copies of the trace's RCBR schedule arriving
as a Poisson process; target renegotiation-failure probability 1e-3.
Paper findings:

* Fig. 7 — for small link capacities the measured failure probability is
  orders of magnitude above the target, worsening with offered load;
* Fig. 8 — the scheme's utilization *exceeds* the perfect-knowledge
  controller's (normalized utilization > 1): it over-admits;
* both effects shrink as the link capacity grows.
"""

from __future__ import annotations

import pytest

from benchmarks._common import fmt, once, optimal_schedule, print_table, scale
from repro.admission.callsim import arrival_rate_for_load, simulate_admission
from repro.admission.controllers import MemorylessMBAC, PerfectKnowledgeCAC
from repro.core.schedule import empirical_rate_distribution

FAILURE_TARGET = 1e-3


@pytest.fixture(scope="module")
def schedule():
    return optimal_schedule()


def _run_point(schedule, capacity_multiple, load, controller, seed):
    mean = schedule.average_rate()
    capacity = capacity_multiple * mean
    arrival_rate = arrival_rate_for_load(
        load, capacity, mean, schedule.duration
    )
    return simulate_admission(
        schedule,
        capacity,
        arrival_rate,
        controller,
        seed=seed,
        warmup_intervals=1,
        min_intervals=5,
        max_intervals=scale().mbac_max_intervals,
        failure_target=FAILURE_TARGET,
    )


def test_fig7_fig8_memoryless(benchmark, schedule):
    capacities = scale().mbac_capacities
    loads = scale().mbac_loads
    levels, fractions = empirical_rate_distribution(schedule)

    def run():
        rows = []
        for capacity_multiple in capacities:
            for load in loads:
                seed = int(1000 * capacity_multiple + 10 * load)
                memoryless = _run_point(
                    schedule, capacity_multiple, load,
                    MemorylessMBAC(FAILURE_TARGET), seed,
                )
                perfect = _run_point(
                    schedule, capacity_multiple, load,
                    PerfectKnowledgeCAC(levels, fractions, FAILURE_TARGET),
                    seed,
                )
                rows.append(
                    {
                        "capacity": capacity_multiple,
                        "load": load,
                        "fail_memoryless": memoryless.failure_probability,
                        "fail_perfect": perfect.failure_probability,
                        "util_memoryless": memoryless.utilization,
                        "util_perfect": perfect.utilization,
                    }
                )
        return rows

    rows = once(benchmark, run)

    print_table(
        "Fig. 7: renegotiation failure probability (target 1e-3)",
        ["capacity/mean", "load", "memoryless", "perfect knowledge"],
        [
            [fmt(r["capacity"], 1), fmt(r["load"], 2),
             fmt(r["fail_memoryless"]), fmt(r["fail_perfect"])]
            for r in rows
        ],
    )
    print_table(
        "Fig. 8: utilization (normalized to perfect knowledge)",
        ["capacity/mean", "load", "memoryless util", "perfect util",
         "normalized"],
        [
            [fmt(r["capacity"], 1), fmt(r["load"], 2),
             fmt(r["util_memoryless"], 3), fmt(r["util_perfect"], 3),
             fmt(r["util_memoryless"] / max(r["util_perfect"], 1e-9), 3)]
            for r in rows
        ],
    )

    # --- Shape assertions ------------------------------------------------
    smallest = min(capacities)
    heavy = max(loads)
    worst = next(
        r for r in rows if r["capacity"] == smallest and r["load"] == heavy
    )
    # Fig. 7's conclusion: the memoryless scheme badly misses the target
    # at small capacity and high load (paper: 3-4 orders of magnitude).
    assert worst["fail_memoryless"] > 10 * FAILURE_TARGET

    # Fig. 8's conclusion: it over-admits relative to perfect knowledge.
    assert worst["util_memoryless"] >= worst["util_perfect"] - 0.02

    # Failure probability increases with offered load at fixed capacity.
    for capacity_multiple in capacities:
        at_cap = [r for r in rows if r["capacity"] == capacity_multiple]
        light, heavy_row = at_cap[0], at_cap[-1]
        assert heavy_row["fail_memoryless"] >= light["fail_memoryless"] - 1e-3

    # The perfect-knowledge controller honours the target within noise.
    for r in rows:
        assert r["fail_perfect"] <= 50 * FAILURE_TARGET
