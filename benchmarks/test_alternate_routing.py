"""Extension: call-level load balancing over alternate routes (III-C).

"If there is a simultaneous increase in the number of alternate routes
in the network, then load balancing at the call level might reduce the
load at each hop, thus compensating for [the multi-hop failure
increase].  This is still an open area for research."

We route many RCBR calls across a ring (every source-destination pair
has two disjoint routes) and sweep the routing choice set ``k``:
``k = 1`` is shortest-path only, ``k = 2`` adds the alternate route with
bottleneck-headroom selection.  Expected shape: load balancing spreads
reservations, reducing both the renegotiation-failure fraction and the
hottest port's utilization.
"""

from __future__ import annotations

import networkx as nx
import pytest

from benchmarks._common import fmt, once, optimal_schedule, print_table
from repro.signaling.topology import SignalingNetwork, simulate_calls_on_network
from repro.util.rng import as_generator

NUM_NODES = 8
NUM_CALLS = 12


@pytest.fixture(scope="module")
def schedule():
    return optimal_schedule()


def build_ring(per_link_capacity: float) -> SignalingNetwork:
    graph = nx.cycle_graph(NUM_NODES)
    nx.set_edge_attributes(graph, per_link_capacity, "capacity")
    return SignalingNetwork(graph)


def test_alternate_routing_reduces_failures(benchmark, schedule):
    mean = schedule.average_rate()
    # Each link fits ~6 average calls; 12 calls crossing the ring load
    # the shortest paths while leaving the alternates headroom.
    capacity = 6.0 * mean
    rng = as_generator(77)
    pairs = [
        tuple(sorted(rng.choice(NUM_NODES, size=2, replace=False)))
        for _ in range(NUM_CALLS)
    ]
    calls = [
        (int(a), int(b), schedule.random_shift(seed=500 + i))
        for i, (a, b) in enumerate(pairs)
    ]

    def run():
        rows = []
        for k in (1, 2, 3):
            network = build_ring(capacity)
            result = simulate_calls_on_network(network, calls, k=k)
            rows.append(
                {
                    "k": k,
                    "failure_fraction": result.failure_fraction,
                    "hottest_cells": max(
                        port.cells_processed for port in network.ports.values()
                    ),
                }
            )
        return rows

    rows = once(benchmark, run)
    print_table(
        "Section III-C: alternate-route load balancing on an 8-ring",
        ["routes considered k", "failure fraction", "hottest-port cells"],
        [
            [r["k"], fmt(r["failure_fraction"]), r["hottest_cells"]]
            for r in rows
        ],
    )

    failures = [r["failure_fraction"] for r in rows]
    # Load balancing must not hurt, and with this congestion level it
    # should measurably help.
    assert failures[1] <= failures[0] + 1e-9
    assert failures[2] <= failures[0] + 1e-9
    if failures[0] > 0.02:
        assert failures[1] < failures[0]
