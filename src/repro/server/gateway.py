"""The RCBR gateway: an event-driven service runtime over one link.

This ties the whole library together as a long-lived service loop.  An
open-loop Poisson load generator offers calls to an admission controller
(:mod:`repro.admission.controllers`); each admitted call joins the
vectorized :class:`~repro.server.fleet.CallFleet` and runs the causal
AR(1) heuristic against its own circularly-shifted copy of the base
workload; threshold crossings become RM cells on a
:class:`~repro.signaling.network.SignalingPath` (where a
:class:`~repro.faults.injectors.FaultPlan` can lose, delay, duplicate, or
outage them); granted rates are reserved on a shared
:class:`~repro.queueing.link.RcbrLink` whose integrals yield utilization
and bits lost.

The loop is a hybrid: per-epoch vector stepping for the data plane (one
numpy pass over all active calls per slot — the 50k-call hot path) and a
conventional event heap for the control plane (arrivals, departures,
abandonments, renegotiation round-trips).  Event ordering per epoch
``k``::

    1. drain the heap up to t = k * slot   (arrivals, departures, and
       renegotiation completions whose round trip ended by t)
    2. vector-step every active call through base slot k
    3. issue this epoch's renegotiations with request time (k+1) * slot;
       their outcomes apply at (k+1) * slot + path RTT via the heap

so with zero hop delay an answer lands before the next step and the
fleet reproduces the scalar :class:`~repro.core.online.OnlineScheduler`
exactly (rates take effect the following slot, as in the paper).

Dual bandwidth authority, by design: call setup/teardown provision the
switch ports directly (admission is the CAC's decision, not the ER fast
path's — and it mirrors :mod:`repro.admission.callsim`, which models no
setup signaling), while renegotiations travel the path under faults.
Lost decreases, duplicated increases, and partial outage commits
therefore leave the *ports* over-reserving relative to the *link* — the
paper's drift story — and the bottleneck port being conservative
guarantees any path-granted increase also fits on the link
(``link_shortfalls`` counts violations of that invariant, expected 0).

The base workload can be handed in directly or sampled from any
:class:`~repro.traffic.sources.TrafficSource` (``config.source`` names a
registry model; a ``source`` instance overrides it), so the runtime can
carry Star-Wars-like, Markov, multi-timescale, on/off, or trace-playback
fleets through one code path.

When offered load stays above capacity, an optional link-level overload
control plane (:mod:`repro.overload`) watches pressure on the link with
hysteresis and applies the configured policy — downgrade walks service
classes down a resolution ladder (granted rates shrink immediately,
future arrivals shrink through the kernel's downgrade mask), sacrifice
evicts the cheapest-to-displace calls into a bounded requeue.  The
block policy instantiates no plane at all, so baseline runs remain
byte-identical to pre-overload builds.

Determinism contract: a fixed config seed spawns the arrival-process,
call-property, cell-loss, retry-jitter, workload-sampling, and overload
streams (the fifth and sixth were appended in that order, so seeded
runs predating them are unchanged); the event heap is FIFO-stable;
renegotiation issue order is ascending pool-slot order, and every
overload action walks slots in ascending order too.  Same seed (and
same fault plan seed) ⇒ bit-identical snapshot stream, enforced via
:func:`~repro.server.stats.snapshot_fingerprint`.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.admission.callsim import arrival_rate_for_load
from repro.admission.controllers import AdmissionController
from repro.admission.offered import OfferedLoadAccountant
from repro.faults.injectors import FaultPlan
from repro.overload.plane import OverloadControlPlane
from repro.overload.policies import make_overload_policy
from repro.queueing.events import Event, EventScheduler
from repro.queueing.link import RcbrLink
from repro.server.config import ServerConfig, build_controller
from repro.server.fleet import CallFleet
from repro.server.stats import (
    ServerReport,
    ServerSnapshot,
    snapshot_fingerprint,
)
from repro.signaling.messages import RenegotiationRequest
from repro.signaling.network import SignalingPath
from repro.signaling.switch import SwitchPort
from repro.traffic.sources import TrafficSource, make_source
from repro.traffic.trace import SlottedWorkload
from repro.util.rng import spawn_generators
from repro.util.stats import jain_fairness

#: Tolerance when comparing epoch boundaries against snapshot deadlines.
_TIME_EPSILON = 1e-9

EpochHook = Callable[[int, "RcbrGateway"], Optional[bool]]

class RcbrGateway:
    """A long-lived RCBR service instance over one bottleneck link."""

    #: Event-heap callbacks a checkpoint may carry (encoded by method
    #: name, decoded by ``getattr`` on the restoring gateway).  Anything
    #: else in the heap at save time is a bug — refuse rather than
    #: guess.  Subclasses with extra callbacks extend this.
    EVENT_CALLBACK_ALLOWLIST = frozenset(
        {"_handle_arrival", "_handle_departure", "_complete",
         "_complete_batch"}
    )

    #: Scalar argument signatures for checkpoint arg packing: these
    #: events' args round-trip through one float64 matrix per callback
    #: (every value is exactly representable), restored with the
    #: original types below.
    EVENT_ARG_CODECS: Dict[str, tuple] = {
        "_handle_departure": (int, int),
        "_complete": (int, int, float, bool, bool),
    }

    def __init__(
        self,
        workload: Optional[SlottedWorkload],
        config: ServerConfig,
        controller: Optional[AdmissionController] = None,
        faults: Optional[FaultPlan] = None,
        source: Optional[TrafficSource] = None,
    ) -> None:
        (
            self._arrival_rng,
            self._call_rng,
            path_rng,
            retry_rng,
            source_rng,
            self._overload_rng,
        ) = spawn_generators(config.seed, 6)

        # Resolve the base workload: an explicit TrafficSource instance
        # wins, then a registry name in config.source (sampled on the
        # dedicated stream so runs stay seed-deterministic), then the
        # workload handed in directly.
        if source is None and config.source is not None:
            source = make_source(config.source, workload=workload)
        self.source = source
        if source is not None:
            workload = source.sample_workload(
                config.source_slots, seed=source_rng
            )
        if workload is None:
            raise ValueError(
                "RcbrGateway needs a workload or a traffic source"
            )
        self.workload = workload
        self.config = config
        self.faults = faults
        self.params = config.resolve_online_params()
        self.controller = (
            controller
            if controller is not None
            else build_controller(config, workload, self.params)
        )

        self.engine = EventScheduler()
        self.fleet = self._build_fleet(workload, config)
        self.link = self._build_link(config)
        self.ports = self._build_ports(config)

        self.path = SignalingPath(
            self.ports,
            hop_delay=config.hop_delay,
            seed=path_rng,
            faults=faults,
            request_timeout=config.request_timeout,
            max_retries=config.max_retries,
            retry_backoff=config.retry_backoff,
            retry_jitter=config.retry_jitter,
            retry_seed=retry_rng,
        )

        self.mean_holding = (
            config.mean_holding
            if config.mean_holding is not None
            else workload.duration
        )
        self.arrival_rate = (
            0.0
            if config.load <= 0
            else arrival_rate_for_load(
                config.load,
                config.capacity,
                workload.mean_rate,
                self.mean_holding,
            )
        )

        self._call_ids = itertools.count()
        self._departure_events: Dict[int, Event] = {}

        # Service classes + class-aware offered-load accounting: classes
        # are drawn from the dedicated overload stream, so the legacy
        # streams (and hence block-only fingerprints) are untouched.
        self.num_classes = config.overload_classes
        weights = (
            np.asarray(config.class_weights, dtype=float)
            if config.class_weights is not None
            else np.ones(self.num_classes)
        )
        self._class_probs = weights / weights.sum()
        self.offered = OfferedLoadAccountant(self.num_classes)

        # The overload control plane — block means "no plane": the
        # baseline takes the exact pre-overload code path.
        if config.overload_policy == "downgrade":
            policy = make_overload_policy(
                "downgrade",
                ladder=config.downgrade_ladder,
                dwell=config.overload_dwell,
            )
        elif config.overload_policy == "sacrifice":
            policy = make_overload_policy(
                "sacrifice",
                queue_size=config.sacrifice_queue,
                max_per_epoch=config.sacrifice_max_per_epoch,
            )
        else:
            policy = None
        self.overload_plane = (
            OverloadControlPlane(
                self,
                policy,
                enter=config.overload_enter,
                exit_=config.overload_exit,
                dwell=config.overload_dwell,
                num_classes=self.num_classes,
                rng=self._overload_rng,
            )
            if policy is not None
            else None
        )

        # Cumulative counters (snapshot definitions match
        # repro.admission.callsim.CallCounters).
        self.arrivals = 0
        self.blocked = 0
        self.admitted = 0
        self.departed = 0
        self.abandoned = 0
        self.setup_shortfalls = 0
        self.reneg_requests = 0
        self.reneg_denied = 0
        self.injected_denials = 0
        self.link_shortfalls = 0

        self.snapshots: List[ServerSnapshot] = []
        self._last_snapshot_time = 0.0
        self._last_allocated_bit_seconds = 0.0
        self._last_reneg_requests = 0

        self._next_tick = 0
        self._preloaded = False
        self._encode_callback_cache: Dict[object, str] = {}

    # ------------------------------------------------------------------
    # Construction hooks (overridden by the sharded runtime)
    # ------------------------------------------------------------------
    def _build_fleet(
        self, workload: SlottedWorkload, config: ServerConfig
    ) -> CallFleet:
        return CallFleet(
            workload,
            self.params,
            buffer_size=config.buffer_bits,
            initial_capacity=max(256, config.initial_calls),
        )

    def _build_link(self, config: ServerConfig) -> RcbrLink:
        return RcbrLink(config.capacity)

    def _build_ports(self, config: ServerConfig) -> List[SwitchPort]:
        # The last port is the bottleneck (capacity == link capacity);
        # upstream hops get headroom so the bottleneck stays binding.
        ports: List[SwitchPort] = [
            SwitchPort(
                config.capacity * config.upstream_headroom,
                name=f"hop{index}",
            )
            for index in range(config.num_hops - 1)
        ]
        ports.append(SwitchPort(config.capacity, name="bottleneck"))
        return ports

    def _source_key(self, slot: int, call_id: int) -> int:
        """The identity a call reserves under at the link/ports/path.

        The plain gateway keys by call id; the sharded gateway keys by
        pool slot so the link and ports can be dense arrays.  Admission
        controllers always see the call id regardless.
        """
        return call_id

    # ------------------------------------------------------------------
    # Call lifecycle
    # ------------------------------------------------------------------
    def _admit_call(self, now: float) -> Optional[int]:
        """Offer one call; returns its id if admitted, None if blocked."""
        self.arrivals += 1
        call_class = int(
            self._overload_rng.choice(self.num_classes, p=self._class_probs)
        )
        self.offered.on_arrival(call_class)
        if not self.controller.admit(
            self.config.capacity, now, call_class=call_class
        ):
            self.blocked += 1
            self.offered.on_blocked(call_class)
            return None
        shift = int(self._call_rng.integers(self.workload.num_slots))
        holding = float(self._call_rng.exponential(self.mean_holding))
        return self._install_call(shift, holding, call_class, now)

    def _install_call(
        self, shift: int, holding: float, call_class: int, now: float
    ) -> int:
        """Put an accepted call in service (fresh admission or overload
        readmission — the post-decision, post-draw part of admission)."""
        call_id = next(self._call_ids)
        slot, initial_rate = self.fleet.admit(call_id, shift, call_class)
        key = self._source_key(slot, call_id)
        outcome = self.link.request(key, initial_rate, now)
        if outcome.failed:
            self.setup_shortfalls += 1
        granted = outcome.granted_rate
        self.fleet.set_rate(slot, granted)
        for port in self.ports:
            port.provision(key, granted)
        self.controller.on_admit(call_id, granted, now, call_class=call_class)
        self.admitted += 1
        self.offered.on_admitted(call_class)
        self._departure_events[call_id] = self.engine.schedule_at(
            now + holding, self._handle_departure, slot, call_id
        )
        return call_id

    def _handle_arrival(self) -> None:
        self._admit_call(self.engine.now)
        self._schedule_next_arrival()

    def _schedule_next_arrival(self) -> None:
        if self.arrival_rate <= 0:
            return
        gap = float(self._arrival_rng.exponential(1.0 / self.arrival_rate))
        self.engine.schedule_in(gap, self._handle_arrival)

    def _handle_departure(self, slot: int, call_id: int) -> None:
        if self.fleet.call_id[slot] != call_id:
            return  # stale event: the call already left this pool slot
        now = self.engine.now
        self.offered.on_departure(int(self.fleet.call_class[slot]))
        key = self._source_key(slot, call_id)
        self.link.release(key, now)
        self.path.release(key)
        self.controller.on_departure(call_id, now)
        self.fleet.remove(slot)
        self._departure_events.pop(call_id, None)
        self.departed += 1

    def _abandon(self, slot: int, call_id: int) -> None:
        """The user gives up after too many consecutive denials."""
        event = self._departure_events.get(call_id)
        if event is not None:
            event.cancel()
        self.abandoned += 1
        self._handle_departure(slot, call_id)

    # ------------------------------------------------------------------
    # Renegotiation round trips
    # ------------------------------------------------------------------
    def _issue(
        self, slot: int, call_id: int, new_rate: float, time: float
    ) -> None:
        old_rate = float(self.fleet.rate[slot])
        increase = new_rate > old_rate
        self.fleet.pending[slot] = True
        self.reneg_requests += 1
        if (
            increase
            and self.faults is not None
            and self.faults.should_deny(time)
        ):
            self.injected_denials += 1
            granted = False
        else:
            granted = self.path.renegotiate(
                RenegotiationRequest(
                    vci=self._source_key(slot, call_id),
                    old_rate=old_rate,
                    new_rate=new_rate,
                    time=time,
                )
            )
        # A lost decrease still applies at the source (it believes the new
        # rate), leaving the network over-reserving until resync — drift.
        apply = granted or not increase
        self.engine.schedule_at(
            time + self.path.round_trip_time,
            self._complete,
            slot,
            call_id,
            new_rate,
            granted,
            apply,
        )

    def _issue_epoch(self, step, end_of_slot: float) -> None:
        """Issue every renegotiation one epoch step produced.

        ``step.slots`` is in ascending pool-slot order — the documented
        issue order of the determinism contract.  The sharded gateway
        overrides this with a batched path commit.
        """
        call_ids = self.fleet.call_id[step.slots]
        for slot_index, call_id, candidate in zip(
            step.slots.tolist(),
            call_ids.tolist(),
            step.candidates.tolist(),
        ):
            self._issue(slot_index, call_id, candidate, end_of_slot)

    def _complete(
        self,
        slot: int,
        call_id: int,
        new_rate: float,
        granted: bool,
        apply: bool,
    ) -> None:
        if self.fleet.call_id[slot] != call_id:
            return  # the call departed while its cell was in flight
        self.fleet.pending[slot] = False
        now = self.engine.now
        if apply:
            outcome = self.link.request(
                self._source_key(slot, call_id), new_rate, now
            )
            if outcome.failed:
                self.link_shortfalls += 1
            self.fleet.set_rate(slot, outcome.granted_rate)
            self.controller.on_reservation(call_id, outcome.granted_rate, now)
            self.fleet.streak[slot] = 0
            return
        self.reneg_denied += 1
        streak = int(self.fleet.streak[slot]) + 1
        self.fleet.streak[slot] = streak
        if (
            self.config.abandon_after is not None
            and streak >= self.config.abandon_after
        ):
            self._abandon(slot, call_id)

    # ------------------------------------------------------------------
    # Overload-plane actions (called by repro.overload policies)
    # ------------------------------------------------------------------
    def overload_pressure(self) -> float:
        """Current link pressure: max(allocated, demand) / capacity."""
        return (
            max(self.link.allocated, self.link.total_demand)
            / self.link.capacity
        )

    def overload_shrink_class(
        self, call_class: int, ratio: float, now: float
    ) -> int:
        """Shrink every active call of ``call_class``'s granted rate by
        ``ratio`` (re-quantised to the grid), freeing link bandwidth
        immediately.  Decreases always succeed at the link; the ports
        and the admission controller move with it.  Walks pool slots in
        ascending order (determinism).  Returns calls actually shrunk.
        """
        fleet = self.fleet
        slots = np.flatnonzero(fleet.active & (fleet.call_class == call_class))
        shrunk = 0
        for slot in slots.tolist():
            old_rate = float(fleet.rate[slot])
            new_rate = fleet.quantize(old_rate * ratio)
            if new_rate >= old_rate:
                continue
            call_id = int(fleet.call_id[slot])
            key = self._source_key(slot, call_id)
            outcome = self.link.request(key, new_rate, now)
            granted = outcome.granted_rate
            for port in self.ports:
                port.reprovision(key, granted - old_rate)
            self.controller.on_reservation(call_id, granted, now)
            fleet.set_rate(slot, granted)
            shrunk += 1
        return shrunk

    def overload_evict(self, slot: int, now: float) -> "tuple[int, int, float]":
        """Tear one call out of service on the plane's orders.

        Returns ``(call_class, shift, remaining_holding)`` so the
        sacrifice policy can requeue it.  Accounted as a departure plus
        an abandonment — the service forcibly ended the call — with the
        sacrifice-specific truth kept in the snapshot's overload
        section.  A renegotiation in flight for the evicted call is
        neutralised by the stale-completion guard (the slot's call id
        changes).
        """
        fleet = self.fleet
        call_id = int(fleet.call_id[slot])
        call_class = int(fleet.call_class[slot])
        shift = int(fleet.shift[slot])
        event = self._departure_events.pop(call_id, None)
        remaining = self.mean_holding
        if event is not None:
            event.cancel()
            remaining = max(0.0, event.time - now)
        self.offered.on_departure(call_class)
        key = self._source_key(slot, call_id)
        self.link.release(key, now)
        self.path.release(key)
        self.controller.on_departure(call_id, now)
        fleet.remove(slot)
        self.departed += 1
        self.abandoned += 1
        return call_class, shift, remaining

    def overload_readmit(
        self, entry: "tuple[int, int, float]", now: float
    ) -> int:
        """Put a sacrificed call back in service for its remaining
        holding time, under a fresh call id.  Counted as a new arrival
        plus admission so the lifecycle identities keep balancing; the
        admission controller is *not* consulted — readmission is the
        plane's decision, made only when pressure is back below the
        exit threshold."""
        call_class, shift, remaining = entry
        self.arrivals += 1
        self.offered.on_arrival(call_class)
        return self._install_call(shift, remaining, call_class, now)

    def _step_epoch(self, tick: int, now: float, end_of_slot: float) -> None:
        """One data-plane epoch: overload poll, vector step, issue.

        A construction seam like :meth:`_build_fleet`: the scenario
        runtime (``repro.scenarios``) overrides it to apply background
        cross-traffic and step one fleet per flow group.  The base body
        is exactly the classic single-fleet epoch, so refactoring it out
        of :meth:`run` changes no fingerprint.
        """
        downgrade = (
            self.overload_plane.on_epoch(tick, now)
            if self.overload_plane is not None
            else None
        )
        step = self.fleet.step(tick, downgrade=downgrade)
        if step.num_requests:
            self._issue_epoch(step, end_of_slot)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _take_snapshot(self, time: float) -> ServerSnapshot:
        self.link.finish(time)
        window = time - self._last_snapshot_time
        allocated_delta = (
            self.link.allocated_bit_seconds - self._last_allocated_bit_seconds
        )
        requests_delta = self.reneg_requests - self._last_reneg_requests
        if window > 0:
            utilization = allocated_delta / (self.config.capacity * window)
            renegotiation_rate = requests_delta / window
        else:
            utilization = 0.0
            renegotiation_rate = 0.0
        stats = self.path.stats
        overload = (
            self._overload_section()
            if self.overload_plane is not None
            else None
        )
        snapshot = ServerSnapshot(
            time=time,
            active_calls=self.fleet.num_active,
            arrivals=self.arrivals,
            blocked=self.blocked,
            admitted=self.admitted,
            departed=self.departed,
            completed=self.departed - self.abandoned,
            abandoned=self.abandoned,
            reneg_requests=self.reneg_requests,
            reneg_denied=self.reneg_denied,
            injected_denials=self.injected_denials,
            link_shortfalls=self.link_shortfalls,
            cells_sent=stats.cells_sent,
            cells_lost=stats.cells_lost,
            retries=stats.retries,
            timeouts=stats.timeouts,
            signaling_failure_fraction=stats.failure_fraction,
            bits_lost_overflow=self.fleet.bits_lost,
            bits_lost_link=self.link.lost_bits,
            utilization=utilization,
            renegotiation_rate=renegotiation_rate,
            buffer_bits=self.fleet.total_buffered_bits(),
            reserved_rate=self.fleet.total_reserved_rate(),
            overload=overload,
            network=self._network_section(),
        )
        self.snapshots.append(snapshot)
        self._last_snapshot_time = time
        self._last_allocated_bit_seconds = self.link.allocated_bit_seconds
        self._last_reneg_requests = self.reneg_requests
        return snapshot

    def _network_section(self) -> Optional[Dict[str, object]]:
        """The fingerprinted multi-bottleneck payload (per-link and
        per-flow-group state).  None on the single-link runtime, which
        keeps classic snapshot streams byte-identical — the same
        omission rule as the ``overload`` section.  The scenario
        runtime overrides this."""
        return None

    def _overload_section(self) -> Dict[str, object]:
        """The fingerprinted per-snapshot overload payload: plane state,
        policy counters, and per-class treatment (occupancy, reserved
        rate, fairness, offered-load tallies)."""
        section = self.overload_plane.section()
        counts = self.fleet.class_counts(self.num_classes)
        rates = self.fleet.class_reserved_rates(self.num_classes)
        occupied = counts > 0
        fairness = (
            jain_fairness(rates[occupied] / counts[occupied])
            if bool(occupied.any())
            else 1.0
        )
        section.update(
            {
                "class_active": counts.tolist(),
                "class_reserved_rate": rates.tolist(),
                "class_fairness": fairness,
                "bits_downgraded": self.fleet.bits_downgraded,
                "class_arrivals": list(self.offered.arrivals),
                "class_blocked": list(self.offered.blocked),
                "class_admitted": list(self.offered.admitted),
            }
        )
        return section

    # ------------------------------------------------------------------
    # The service loop
    # ------------------------------------------------------------------
    def preload(self) -> None:
        """Admit the configured initial fleet and arm the arrival process.

        Idempotent; :meth:`run` calls it automatically on first use.  The
        throughput benchmark calls it explicitly so fleet construction is
        not charged against the timed steady-state serving loop.
        """
        if self._preloaded:
            return
        self._preloaded = True
        for _ in range(self.config.initial_calls):
            self._admit_call(0.0)
        self._schedule_next_arrival()

    def run(
        self,
        duration: float,
        snapshot_every: Optional[float] = None,
        epoch_hook: Optional[EpochHook] = None,
    ) -> ServerReport:
        """Serve for ``duration`` more simulated seconds and report.

        ``duration`` is rounded up to whole epochs (slot durations).
        ``run`` is resumable: calling it again continues the same service
        from where the previous call stopped, with counters, snapshots,
        and the fingerprint accumulating — which is how a warm-up period
        is excluded from benchmark timing.

        ``snapshot_every`` emits a :class:`ServerSnapshot` at that period
        (rounded to epoch boundaries); the final snapshot at the end of
        the run is always taken.  ``epoch_hook(tick, gateway)`` runs after
        the heap drain and before the vector step of each epoch; a hook
        returning a truthy value stops the run *at that epoch boundary*
        (the tick it saw is not stepped) — the graceful-shutdown path of
        ``repro serve``, where the hook writes a final checkpoint before
        the boundary snapshot so a resumed run stays bit-identical to an
        uninterrupted one.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if snapshot_every is not None and snapshot_every <= 0:
            raise ValueError("snapshot_every must be positive")
        slot = self.workload.slot_duration
        epochs = int(math.ceil(duration / slot - _TIME_EPSILON))
        start_tick = self._next_tick

        self.preload()

        next_snapshot = (
            self._last_snapshot_time + snapshot_every
            if snapshot_every is not None
            else math.inf
        )
        completed = 0
        for tick in range(start_tick, start_tick + epochs):
            now = tick * slot
            # Keep "the gateway is at boundary _next_tick" true *inside*
            # the loop, not just between runs: the epoch hook below may
            # checkpoint, and a checkpoint stamped with a stale start
            # tick would resume by replaying epochs already served.
            self._next_tick = tick
            self.engine.run(until=now)
            while now >= next_snapshot - _TIME_EPSILON:
                self._take_snapshot(now)
                next_snapshot += snapshot_every  # type: ignore[operator]
            if epoch_hook is not None and epoch_hook(tick, self):
                break
            self._step_epoch(tick, now, (tick + 1) * slot)
            completed += 1
        self._next_tick = start_tick + completed
        end_time = self._next_tick * slot

        self.engine.run(until=end_time)
        final = self._take_snapshot(end_time)
        return ServerReport(
            config=self.config.to_dict(),
            duration=completed * slot,
            epochs=completed,
            final=final,
            snapshots=list(self.snapshots),
            fingerprint=snapshot_fingerprint(self.snapshots),
            peak_active=self.fleet.peak_active,
            call_epochs_stepped=self.fleet.call_epochs_stepped,
            mean_utilization=self.link.mean_utilization(end_time),
            overload=(
                dict(
                    self._overload_section(),
                    class_blocking=self.offered.blocking_fractions(),
                )
                if self.overload_plane is not None
                else None
            ),
        )


    # ------------------------------------------------------------------
    # Checkpointing (see repro.server.checkpoint and DESIGN.md §15)
    # ------------------------------------------------------------------
    def _encode_callback(self, callback: Callable) -> str:
        # Called once per pending event (one departure per live call),
        # so the name/allowlist validation is memoized by the underlying
        # function object; the binding check stays per-call because each
        # schedule_at creates a fresh bound method.
        func = getattr(callback, "__func__", None)
        name = self._encode_callback_cache.get(func)
        if name is None:
            name = getattr(callback, "__name__", None)
            if name not in type(self).EVENT_CALLBACK_ALLOWLIST:
                raise ValueError(
                    f"cannot checkpoint event callback {callback!r}; "
                    f"allowed: {sorted(type(self).EVENT_CALLBACK_ALLOWLIST)}"
                )
            if func is not None:
                self._encode_callback_cache[func] = name
        if getattr(callback, "__self__", None) is not self:
            raise ValueError(
                f"event callback {callback!r} is not bound to this gateway"
            )
        return name

    def _decode_callback(self, token: str) -> Callable:
        if token not in type(self).EVENT_CALLBACK_ALLOWLIST:
            raise ValueError(f"unknown checkpointed event callback {token!r}")
        return getattr(self, token)

    def _encode_event_args(self, token_table, token_codes, args_list):
        # The hot callbacks carry only scalars, one event per live call
        # — flatten the whole heap's args into one float64 array (each
        # event's width fixed by its codec spec; arrivals contribute
        # zero) so a 1M-call heap pickles as one array, not a million
        # tuples.  The single C-driven ``fromiter`` over a chain is the
        # fastest packing measured (≈2× over per-row ``asarray``).
        # Events without a scalar spec (the rare in-flight batch commit
        # with its ndarray args) ride in a side dict keyed by position.
        widths = []
        generic_codes = []
        for code, token in enumerate(token_table):
            spec = type(self).EVENT_ARG_CODECS.get(token)
            if spec is not None:
                widths.append(len(spec))
            else:
                widths.append(0)
                if token != "_handle_arrival":
                    generic_codes.append(code)
        count = len(args_list)
        per_event = np.asarray(widths, dtype=np.int64)[token_codes]
        generic: Dict[int, tuple] = {}
        if generic_codes:
            mask = np.isin(token_codes, generic_codes)
            for index in np.nonzero(mask)[0].tolist():
                generic[index] = args_list[index]
        # Misaligned args would corrupt the flat layout silently; a
        # vectorized length audit is ~2ms per 50k events — cheap
        # insurance against a codec spec drifting from a call site.
        lengths = np.fromiter(map(len, args_list), dtype=np.int64, count=count)
        if generic:
            lengths[mask] = per_event[mask]
        if not np.array_equal(lengths, per_event):
            raise ValueError(
                "event args disagree with EVENT_ARG_CODECS widths; "
                "refusing to write a misaligned checkpoint"
            )
        if generic:
            flat_iter = itertools.chain.from_iterable(
                args
                for index, args in enumerate(args_list)
                if index not in generic
            )
        else:
            flat_iter = itertools.chain.from_iterable(args_list)
        flat = np.fromiter(
            flat_iter, dtype=np.float64, count=int(per_event.sum())
        )
        return {"flat": flat, "generic": generic}

    def _decode_event_args(self, token_table, token_codes, packed):
        if isinstance(packed, list):  # written without a packer
            return [tuple(args) for args in packed]
        flat = packed["flat"].tolist()
        generic = packed["generic"]
        specs = [
            type(self).EVENT_ARG_CODECS.get(token, ())
            for token in token_table
        ]
        args_list: List[tuple] = []
        offset = 0
        for index, code in enumerate(token_codes.tolist()):
            if index in generic:
                args_list.append(tuple(generic[index]))
                continue
            spec = specs[code]
            if not spec:
                args_list.append(())
                continue
            end = offset + len(spec)
            args_list.append(
                tuple(
                    conv(value)
                    for conv, value in zip(spec, flat[offset:end])
                )
            )
            offset = end
        return args_list

    def state_dict(self) -> Dict[str, object]:
        """Export the complete mutable runtime state of this gateway.

        Everything a resumed run's fingerprint can depend on is here:
        kernel/fleet columns, link allocations and compensated sums,
        per-hop port state, the event heap (callbacks encoded by method
        name), all live RNG streams, overload-plane hysteresis, fault
        injectors, counters, and the accumulated snapshot stream.  The
        workload-sampling stream is *not* captured: it is consumed only
        during ``__init__``, and a restoring gateway reconstructs from
        the identical config, re-drawing it identically.

        The returned structure shares arrays and objects with the live
        gateway; :func:`repro.server.checkpoint.write_checkpoint`
        pickles it immediately.  Call this only at an epoch boundary
        (after the heap drain, before the vector step) — the documented
        quiescent point where ``path.in_flight`` is empty and no
        renegotiation is torn.
        """
        return {
            "engine": self.engine.state_dict(
                self._encode_callback, self._encode_event_args
            ),
            "fleet": self.fleet.state_dict(),
            "link": self.link.state_dict(),
            "ports": [port.state_dict() for port in self.ports],
            "path": self.path.state_dict(),
            "faults": (
                self.faults.state_dict() if self.faults is not None else None
            ),
            "controller": self.controller,
            "offered": self.offered,
            "overload_plane": (
                self.overload_plane.state_dict()
                if self.overload_plane is not None
                else None
            ),
            "rng": {
                "arrival": self._arrival_rng.bit_generator.state,
                "call": self._call_rng.bit_generator.state,
                "overload": self._overload_rng.bit_generator.state,
            },
            "next_call_id": self._peek_call_ids(),
            "counters": {
                "arrivals": self.arrivals,
                "blocked": self.blocked,
                "admitted": self.admitted,
                "departed": self.departed,
                "abandoned": self.abandoned,
                "setup_shortfalls": self.setup_shortfalls,
                "reneg_requests": self.reneg_requests,
                "reneg_denied": self.reneg_denied,
                "injected_denials": self.injected_denials,
                "link_shortfalls": self.link_shortfalls,
            },
            "snapshots": list(self.snapshots),
            "last_snapshot_time": self._last_snapshot_time,
            "last_allocated_bit_seconds": self._last_allocated_bit_seconds,
            "last_reneg_requests": self._last_reneg_requests,
            "next_tick": self._next_tick,
            "preloaded": self._preloaded,
        }

    def _peek_call_ids(self) -> int:
        """Read the next call id without net side effects (consume one,
        recreate the counter at the observed value)."""
        next_id = next(self._call_ids)
        self._call_ids = itertools.count(next_id)
        return next_id

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` export into this (fresh) gateway.

        The caller (:meth:`restore` via ``repro.server.checkpoint``) has
        already verified the checkpoint was taken under this exact
        config, so every structural attribute — workload, params, plane
        presence, hop count, shard layout — is already right; this
        method only replays the mutable state.  Restoring into a
        gateway that has already served traffic is unsupported.
        """
        self.fleet.load_state(state["fleet"])  # grows link/ports via hooks
        self.link.load_state(state["link"])
        port_states = state["ports"]
        if len(port_states) != len(self.ports):  # type: ignore[arg-type]
            raise ValueError(
                f"checkpoint has {len(port_states)} ports, "  # type: ignore[arg-type]
                f"gateway has {len(self.ports)}"
            )
        for port, port_state in zip(self.ports, port_states):  # type: ignore[arg-type]
            port.load_state(port_state)
        self.path.load_state(state["path"])
        faults_state = state["faults"]
        if (faults_state is None) != (self.faults is None):
            raise ValueError(
                "checkpoint and gateway disagree about fault injection"
            )
        if self.faults is not None:
            self.faults.load_state(faults_state)  # type: ignore[arg-type]
        self.controller = state["controller"]  # type: ignore[assignment]
        self.offered = state["offered"]  # type: ignore[assignment]
        plane_state = state["overload_plane"]
        if (plane_state is None) != (self.overload_plane is None):
            raise ValueError(
                "checkpoint and gateway disagree about the overload plane"
            )
        if self.overload_plane is not None:
            self.overload_plane.load_state(plane_state)  # type: ignore[arg-type]
        rng_states = state["rng"]
        self._arrival_rng.bit_generator.state = rng_states["arrival"]  # type: ignore[index]
        self._call_rng.bit_generator.state = rng_states["call"]  # type: ignore[index]
        self._overload_rng.bit_generator.state = rng_states["overload"]  # type: ignore[index]
        self._call_ids = itertools.count(int(state["next_call_id"]))  # type: ignore[arg-type]
        events = self.engine.load_state(
            state["engine"],
            self._decode_callback,  # type: ignore[arg-type]
            self._decode_event_args,
        )
        self._departure_events = {
            int(event.args[1]): event
            for event in events
            if not event.cancelled
            and event.callback.__name__ == "_handle_departure"
        }
        counters = state["counters"]
        self.arrivals = int(counters["arrivals"])  # type: ignore[index]
        self.blocked = int(counters["blocked"])  # type: ignore[index]
        self.admitted = int(counters["admitted"])  # type: ignore[index]
        self.departed = int(counters["departed"])  # type: ignore[index]
        self.abandoned = int(counters["abandoned"])  # type: ignore[index]
        self.setup_shortfalls = int(counters["setup_shortfalls"])  # type: ignore[index]
        self.reneg_requests = int(counters["reneg_requests"])  # type: ignore[index]
        self.reneg_denied = int(counters["reneg_denied"])  # type: ignore[index]
        self.injected_denials = int(counters["injected_denials"])  # type: ignore[index]
        self.link_shortfalls = int(counters["link_shortfalls"])  # type: ignore[index]
        self.snapshots = list(state["snapshots"])  # type: ignore[arg-type]
        self._last_snapshot_time = float(state["last_snapshot_time"])  # type: ignore[arg-type]
        self._last_allocated_bit_seconds = float(
            state["last_allocated_bit_seconds"]  # type: ignore[arg-type]
        )
        self._last_reneg_requests = int(state["last_reneg_requests"])  # type: ignore[arg-type]
        self._next_tick = int(state["next_tick"])  # type: ignore[arg-type]
        self._preloaded = bool(state["preloaded"])

    def save(self, path, defer: bool = False) -> Dict[str, object]:
        """Write an atomic, stamped checkpoint of this gateway to ``path``.

        Returns the checkpoint metadata (code version, config hash,
        simulated time, byte size).  ``defer=True`` moves the file write
        to a background thread (serialization stays inline) — the mode
        for periodic checkpoints on a hot serve loop; the final save of
        a run should stay synchronous.  See
        :mod:`repro.server.checkpoint` for the format, the staleness
        rules, and the deferred-write ordering guarantee.
        """
        from repro.server.checkpoint import write_checkpoint

        return write_checkpoint(path, self, defer=defer)

    def checkpoint_sync(self) -> None:
        """Block until any deferred checkpoint write has landed on disk.

        Raises :class:`repro.server.checkpoint.CheckpointError` if a
        background write failed; a no-op when nothing is pending.
        """
        writer = getattr(self, "_checkpoint_writer", None)
        if writer is not None:
            writer.flush()

    def restore(self, path) -> None:
        """Load a checkpoint written by :meth:`save` into this gateway.

        The gateway must have been freshly built from the *same config*
        the checkpoint was taken under (enforced by canonical config
        hash), stepping the *same workload* (enforced by workload hash —
        the trace is built outside the config), by the *same code
        version* (enforced by version stamp); mismatches raise
        :class:`repro.server.checkpoint.StaleCheckpointError` rather
        than resuming a run that could not be bit-exact.
        """
        from repro.server.checkpoint import read_checkpoint, workload_fingerprint

        # A deferred write to this very path may still be in flight.
        self.checkpoint_sync()
        state = read_checkpoint(
            path, self.config, workload_hash=workload_fingerprint(self.workload)
        )
        self.load_state(state)

    def close(self) -> None:
        """Release external resources (worker processes, shared memory).

        A no-op for the single-process gateway; the sharded runtime
        overrides it to shut its worker pool down.  Idempotent.
        """

    def __enter__(self) -> "RcbrGateway":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            # Don't let a pending background checkpoint be abandoned by
            # process exit; but never mask an in-flight exception with a
            # flush failure.
            self.checkpoint_sync()
        except Exception:
            if exc_type is None:
                raise
        finally:
            self.close()


def serve(
    workload: Optional[SlottedWorkload],
    config: ServerConfig,
    duration: float,
    snapshot_every: Optional[float] = None,
    faults: Optional[FaultPlan] = None,
    source: Optional[TrafficSource] = None,
) -> ServerReport:
    """One-shot convenience wrapper: build a gateway and run it."""
    gateway = build_gateway(workload, config, faults=faults, source=source)
    with gateway:
        return gateway.run(duration, snapshot_every=snapshot_every)


def build_gateway(
    workload: Optional[SlottedWorkload],
    config: ServerConfig,
    controller: Optional[AdmissionController] = None,
    faults: Optional[FaultPlan] = None,
    source: Optional[TrafficSource] = None,
) -> RcbrGateway:
    """Build the gateway class ``config`` calls for.

    ``config.shards >= 1`` selects the sharded multi-process runtime
    (``repro.server.sharded``); the default plain gateway is returned
    when ``shards`` is 0/unset.  Kept here so ``serve`` and the CLI
    share one dispatch point.
    """
    if getattr(config, "shards", 0):
        from repro.server.sharded import ShardedGateway

        return ShardedGateway(
            workload, config, controller=controller, faults=faults,
            source=source,
        )
    return RcbrGateway(
        workload, config, controller=controller, faults=faults, source=source
    )
