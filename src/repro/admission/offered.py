"""Class-aware offered-load accounting.

The overload control plane (:mod:`repro.overload`) differentiates calls
by service class, so "how much load did each class offer and how was it
treated" becomes a first-class observable: per-class arrival, blocking,
admission, and departure tallies with the same counting identities the
aggregate gateway counters keep (``arrivals == blocked + admitted``
per class).  The accountant is pure bookkeeping — no RNG, no clocks —
so wiring it into a seeded run cannot perturb determinism.
"""

from __future__ import annotations

from typing import Dict, List


class OfferedLoadAccountant:
    """Per-class call-lifecycle tallies for one gateway run."""

    def __init__(self, num_classes: int) -> None:
        if num_classes < 1:
            raise ValueError("num_classes must be >= 1")
        self.num_classes = int(num_classes)
        self.arrivals = [0] * self.num_classes
        self.blocked = [0] * self.num_classes
        self.admitted = [0] * self.num_classes
        self.departed = [0] * self.num_classes

    def _check(self, call_class: int) -> int:
        if not 0 <= call_class < self.num_classes:
            raise ValueError(
                f"call_class must be in [0, {self.num_classes}), "
                f"got {call_class}"
            )
        return int(call_class)

    def on_arrival(self, call_class: int) -> None:
        self.arrivals[self._check(call_class)] += 1

    def on_blocked(self, call_class: int) -> None:
        self.blocked[self._check(call_class)] += 1

    def on_admitted(self, call_class: int) -> None:
        self.admitted[self._check(call_class)] += 1

    def on_departure(self, call_class: int) -> None:
        self.departed[self._check(call_class)] += 1

    def active(self) -> List[int]:
        """Calls in service per class (admitted minus departed)."""
        return [
            admitted - departed
            for admitted, departed in zip(self.admitted, self.departed)
        ]

    def blocking_fractions(self) -> List[float]:
        """Per-class P(block); classes with no arrivals report 0.0."""
        return [
            blocked / arrivals if arrivals else 0.0
            for blocked, arrivals in zip(self.blocked, self.arrivals)
        ]

    def consistent(self) -> bool:
        """The per-class counting identities all balance."""
        return all(
            arrivals == blocked + admitted and admitted >= departed
            for arrivals, blocked, admitted, departed in zip(
                self.arrivals, self.blocked, self.admitted, self.departed
            )
        )

    def to_dict(self) -> Dict[str, List[int]]:
        return {
            "arrivals": list(self.arrivals),
            "blocked": list(self.blocked),
            "admitted": list(self.admitted),
            "departed": list(self.departed),
        }

    def __repr__(self) -> str:
        return (
            f"OfferedLoadAccountant(classes={self.num_classes}, "
            f"arrivals={sum(self.arrivals)}, blocked={sum(self.blocked)})"
        )
