"""Empirical trace characterisation.

The measurement side of the reproduction: the (sigma, rho) curve of
Fig. 5, sustained-peak diagnostics behind the Section II narrative, and
the empirical bandwidth histograms that act as RCBR traffic descriptors
(Section VI).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.schedule import RateSchedule, empirical_rate_distribution
from repro.queueing.fluid import min_rate_for_loss
from repro.traffic.trace import FrameTrace, SlottedWorkload


def sigma_rho_for_loss(
    workload: SlottedWorkload,
    buffer_sizes: Sequence[float],
    loss_target: float,
    tolerance: Optional[float] = None,
) -> np.ndarray:
    """The (sigma, rho) curve of the trace for a loss target (Fig. 5).

    For each buffer size sigma, the minimum CBR drain rate rho such that
    the fraction of bits lost stays at or below ``loss_target``.  Returns
    shape ``(len(buffer_sizes), 2)`` with columns ``(sigma, rho)``.
    """
    rows = []
    for sigma in buffer_sizes:
        if sigma < 0:
            raise ValueError("buffer sizes must be non-negative")
        rho = min_rate_for_loss(workload, float(sigma), loss_target, tolerance)
        rows.append((float(sigma), rho))
    return np.asarray(rows)


def windowed_peak_rate(trace: FrameTrace, window_seconds: float) -> float:
    """Largest average rate over any window of the given length.

    ``windowed_peak_rate(trace, 10) / trace.mean_rate`` quantifies the
    paper's "sustained peak of five times the long-term average rate
    lasts over 10 s".
    """
    if window_seconds <= 0:
        raise ValueError("window must be positive")
    frames = max(1, int(round(window_seconds * trace.frames_per_second)))
    frames = min(frames, trace.num_frames)
    cumulative = np.concatenate([[0.0], np.cumsum(trace.frame_bits)])
    sums = cumulative[frames:] - cumulative[:-frames]
    return float(sums.max()) / (frames * trace.frame_duration)


def sustained_peak_episodes(
    trace: FrameTrace, rate_threshold: float, min_duration_seconds: float
) -> int:
    """Count maximal episodes where the smoothed rate stays above threshold.

    The rate is smoothed over one GOP-scale second before thresholding so
    the fast I/B/P sawtooth does not fragment episodes.
    """
    if rate_threshold <= 0 or min_duration_seconds <= 0:
        raise ValueError("threshold and duration must be positive")
    fps = trace.frames_per_second
    window = max(1, int(round(fps)))  # 1-second smoothing
    kernel = np.ones(window) / window
    smooth_bits = np.convolve(trace.frame_bits, kernel, mode="same")
    above = smooth_bits * fps > rate_threshold
    min_frames = int(round(min_duration_seconds * fps))
    episodes = 0
    run = 0
    for flag in above:
        if flag:
            run += 1
        else:
            if run >= min_frames:
                episodes += 1
            run = 0
    if run >= min_frames:
        episodes += 1
    return episodes


def merge_rate_distributions(
    distributions: Sequence[Tuple[np.ndarray, np.ndarray]],
    weights: Optional[Sequence[float]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Combine several (levels, fractions) histograms into one.

    Used to pool the descriptors of many calls — e.g. the memory-based
    MBAC's accumulated history — into a single typical-call marginal.
    """
    if not distributions:
        raise ValueError("need at least one distribution")
    if weights is None:
        weights = [1.0] * len(distributions)
    if len(weights) != len(distributions):
        raise ValueError("weights must match distributions")
    if any(weight < 0 for weight in weights):
        raise ValueError("weights must be non-negative")
    all_levels = np.concatenate([levels for levels, _ in distributions])
    all_mass = np.concatenate(
        [
            weight * np.asarray(fractions, dtype=float)
            for weight, (_, fractions) in zip(weights, distributions)
        ]
    )
    levels, inverse = np.unique(all_levels, return_inverse=True)
    mass = np.zeros(levels.size)
    np.add.at(mass, inverse, all_mass)
    total = mass.sum()
    if total <= 0:
        raise ValueError("total weight must be positive")
    return levels, mass / total


def schedules_marginal(
    schedules: Sequence[RateSchedule],
) -> Tuple[np.ndarray, np.ndarray]:
    """The pooled empirical bandwidth marginal of several schedules."""
    return merge_rate_distributions(
        [empirical_rate_distribution(schedule) for schedule in schedules],
        weights=[schedule.duration for schedule in schedules],
    )


def autocorrelation(values: np.ndarray, max_lag: int) -> np.ndarray:
    """Sample autocorrelation at lags ``0..max_lag``.

    Handy to visualise the multiple time-scale structure: video frame
    sizes stay correlated over thousands of frames, unlike single
    time-scale models.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size < 2:
        raise ValueError("values must be a 1-D array with >= 2 entries")
    if not 0 <= max_lag < values.size:
        raise ValueError("max_lag must be in [0, len(values))")
    centered = values - values.mean()
    variance = float(centered @ centered)
    if variance == 0.0:
        return np.ones(max_lag + 1)
    result = np.empty(max_lag + 1)
    result[0] = 1.0
    for lag in range(1, max_lag + 1):
        result[lag] = float(centered[:-lag] @ centered[lag:]) / variance
    return result
