"""Slotted fluid queues.

The paper models all services as "traffic from a source is queued at a
buffer at the end-system, and the network drains the buffer at a given
drain rate" (Section II).  This module simulates that queue exactly on the
slot grid: per slot, ``a_t`` bits arrive, ``c_t * slot`` bits drain, the
occupancy cannot go negative, and anything above the buffer bound is lost.

These loops are the innermost kernel of the Fig. 5 / Fig. 6 experiments,
so they are written with plain Python floats over pre-converted lists
(substantially faster than per-element numpy scalar arithmetic).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.traffic.trace import SlottedWorkload
from repro.util.search import binary_search_min_feasible


@dataclass(frozen=True)
class FluidQueueResult:
    """Outcome of a fluid-queue simulation."""

    arrived_bits: float
    lost_bits: float
    max_occupancy: float
    final_occupancy: float
    occupancy: Optional[np.ndarray] = None

    @property
    def loss_fraction(self) -> float:
        """Fraction of offered bits lost to buffer overflow."""
        if self.arrived_bits == 0.0:
            return 0.0
        return self.lost_bits / self.arrived_bits

    @property
    def carried_bits(self) -> float:
        return self.arrived_bits - self.lost_bits


def simulate_fluid_queue(
    arrivals_bits: Union[Sequence[float], np.ndarray],
    drain_bits_per_slot: Union[float, Sequence[float], np.ndarray],
    buffer_bits: float = math.inf,
    initial_occupancy: float = 0.0,
    record_occupancy: bool = False,
) -> FluidQueueResult:
    """Simulate a finite fluid queue over the slot grid.

    Per slot: ``q <- max(0, q + a - drain)``; anything then above
    ``buffer_bits`` overflows and is counted as lost.  This is exactly the
    paper's eqs. 2-3 convention (the occupancy bound applies to the
    post-service ``q_t``), shared with ``RateSchedule.buffer_trajectory``
    and the optimal DP so that rates, buffers, and schedules are directly
    comparable across the library.

    ``drain_bits_per_slot`` may be a scalar (CBR) or a per-slot sequence
    (an RCBR schedule sampled on the slot grid).
    """
    arrivals = np.asarray(arrivals_bits, dtype=float)
    if arrivals.ndim != 1 or arrivals.size == 0:
        raise ValueError("arrivals must be a non-empty 1-D sequence")
    if buffer_bits < 0:
        raise ValueError("buffer_bits must be non-negative")
    if initial_occupancy < 0 or initial_occupancy > buffer_bits:
        raise ValueError("initial_occupancy must lie within the buffer")

    num_slots = arrivals.size
    if np.isscalar(drain_bits_per_slot):
        drains = [float(drain_bits_per_slot)] * num_slots
        if drains[0] < 0:
            raise ValueError("drain must be non-negative")
    else:
        drain_array = np.asarray(drain_bits_per_slot, dtype=float)
        if drain_array.shape != arrivals.shape:
            raise ValueError(
                "per-slot drain must have the same length as arrivals "
                f"({drain_array.shape} vs {arrivals.shape})"
            )
        if np.any(drain_array < 0):
            raise ValueError("drains must be non-negative")
        drains = drain_array.tolist()

    arrival_list = arrivals.tolist()
    bound = float(buffer_bits)
    level = float(initial_occupancy)
    lost = 0.0
    peak = level
    trajectory = np.empty(num_slots) if record_occupancy else None

    for index in range(num_slots):
        level += arrival_list[index] - drains[index]
        if level < 0.0:
            level = 0.0
        elif level > bound:
            lost += level - bound
            level = bound
        if level > peak:
            peak = level
        if trajectory is not None:
            trajectory[index] = level

    return FluidQueueResult(
        arrived_bits=float(arrivals.sum()),
        lost_bits=lost,
        max_occupancy=peak,
        final_occupancy=level,
        occupancy=trajectory,
    )


def required_buffer(
    arrivals_bits: Union[Sequence[float], np.ndarray],
    drain_bits_per_slot: Union[float, Sequence[float], np.ndarray],
) -> float:
    """Smallest buffer for lossless service at the given drain.

    This is sigma(rho) of the (sigma, rho) curve: the peak occupancy of
    the infinite queue, ``max_t max_s [A(t) - A(s) - rho (t - s)]``.
    """
    result = simulate_fluid_queue(arrivals_bits, drain_bits_per_slot)
    return result.max_occupancy


def loss_fraction_for_rate(
    workload: SlottedWorkload, rate: float, buffer_bits: float
) -> float:
    """Loss fraction when ``workload`` is served at CBR ``rate`` (bits/s)."""
    if rate < 0:
        raise ValueError("rate must be non-negative")
    drain = rate * workload.slot_duration
    return simulate_fluid_queue(
        workload.bits_per_slot, drain, buffer_bits
    ).loss_fraction


def min_rate_for_loss(
    workload: SlottedWorkload,
    buffer_bits: float,
    loss_target: float,
    tolerance: Optional[float] = None,
) -> float:
    """Minimum CBR drain rate keeping the loss fraction at or below target.

    This computes one point of the trace's (sigma, rho) curve (Fig. 5):
    for buffer size sigma = ``buffer_bits``, the minimum service rate rho
    such that the fraction of bits lost is below ``loss_target``.
    """
    if not 0.0 <= loss_target < 1.0:
        raise ValueError("loss_target must be in [0, 1)")
    mean = workload.mean_rate
    peak = workload.peak_rate
    if tolerance is None:
        tolerance = max(1.0, 1e-4 * mean)

    def feasible(rate: float) -> bool:
        return loss_fraction_for_rate(workload, rate, buffer_bits) <= loss_target

    if feasible(mean):
        return mean
    return binary_search_min_feasible(feasible, mean, peak, tolerance)


@dataclass(frozen=True)
class DowngradeFluidResult:
    """Trajectory and steady state of the downgrade-ladder fluid model."""

    times: np.ndarray           # (T,) seconds
    occupancy: np.ndarray       # (T, C) calls in service per class
    pressure: np.ndarray        # (T,) demand / capacity
    levels: np.ndarray          # (T, C) ladder level per class
    steady_occupancy: np.ndarray  # (C,) tail-averaged occupancies
    steady_levels: np.ndarray     # (C,) final ladder levels
    admitted_fraction: float      # tail-averaged admission duty cycle

    @property
    def steady_pressure(self) -> float:
        tail = self.pressure[int(0.75 * self.pressure.size):]
        return float(tail.mean()) if tail.size else 0.0


def simulate_downgrade_fluid(
    arrival_rates: Sequence[float],
    mean_holding: float,
    call_bandwidth: float,
    capacity: float,
    ladder: Sequence[float] = (1.0, 0.75, 0.5, 0.35),
    enter: float = 0.95,
    exit_: float = 0.85,
    dwell: float = 8.0,
    admit_threshold: float = 1.0,
    demand_overshoot: float = 1.0,
    dt: float = 0.05,
    duration: float = 200.0,
    tail_fraction: float = 0.25,
) -> DowngradeFluidResult:
    """Fluid-ODE approximation of the overload plane's downgrade ladder.

    The independent check the simulator is validated against (the
    fluid/ODE congestion-model line of PAPERS.md): each service class
    ``c`` is a fluid of calls with Poisson arrival rate ``lambda_c``
    (calls/s), exponential holding ``mean_holding``, and per-call
    bandwidth ``call_bandwidth * ladder[level_c]``::

        dn_c/dt = lambda_c * a(t) - n_c / mean_holding

    where ``a(t)`` is the admission duty cycle of a utilization-gated
    controller: admissions flow freely while bandwidth demand
    ``sum_c n_c b f_c`` sits below ``admit_threshold * capacity`` and
    are throttled to hold the demand at the gate once it binds (the
    fluid limit of admit-if-it-fits).  Ladder levels follow the *same*
    hysteresis semantics as :class:`repro.overload.plane
    .OverloadControlPlane` with :class:`~repro.overload.policies
    .DowngradePolicy`, with ``dwell`` in seconds: pressure at or above
    ``enter`` for ``dwell`` continuous seconds enters overload and
    escalates the lowest-priority class one rung per dwell; pressure at
    or below ``exit_`` for ``dwell`` seconds leaves it, restoring
    premium classes first.  Forward-Euler integration on ``dt``;
    steady state is the mean over the last ``tail_fraction`` of the
    horizon.

    ``demand_overshoot`` scales the *pressure* signal (not the carried
    bits) above the carried rate, modelling the gateway's renegotiation
    demand under sustained denial: the kernel's eq.-6 estimate carries a
    buffer-flush catch-up term and the dual-threshold scheme re-requests
    with quantization headroom, so the demand the link records sits well
    above ``n * b * f`` while a deficit persists (empirically ~3x in the
    saturated always-admit regime; see EXPERIMENTS.md).  The admission
    gate still acts on carried bandwidth, mirroring reservation-based
    admission control.
    """
    rates = np.asarray(arrival_rates, dtype=float)
    if rates.ndim != 1 or rates.size == 0 or np.any(rates < 0):
        raise ValueError("arrival_rates must be non-negative and 1-D")
    if mean_holding <= 0 or call_bandwidth <= 0 or capacity <= 0:
        raise ValueError("holding, bandwidth, and capacity must be positive")
    factors = np.asarray(ladder, dtype=float)
    if factors.size < 2 or factors[0] != 1.0 or np.any(np.diff(factors) >= 0):
        raise ValueError("ladder must start at 1.0 and strictly decrease")
    if not 0.0 < exit_ < enter:
        raise ValueError("need 0 < exit_ < enter")
    if dwell <= 0 or dt <= 0 or duration <= dt:
        raise ValueError("dwell, dt, and duration must be positive")
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError("tail_fraction must be in (0, 1]")
    if demand_overshoot < 1.0:
        raise ValueError("demand_overshoot must be >= 1")

    num_classes = rates.size
    floor = factors.size - 1
    steps = int(math.ceil(duration / dt))
    times = np.arange(steps) * dt
    occupancy = np.zeros((steps, num_classes))
    pressure_trace = np.zeros(steps)
    level_trace = np.zeros((steps, num_classes), dtype=np.int64)

    n = np.zeros(num_classes)
    levels = np.zeros(num_classes, dtype=np.int64)
    overloaded = False
    above = below = 0.0
    since_action = math.inf
    admitted_time = 0.0

    for index in range(steps):
        f = factors[levels]
        demand = float((n * f).sum()) * call_bandwidth
        pressure = demand_overshoot * demand / capacity

        # The plane's two-threshold + dwell hysteresis, in continuous time.
        if not overloaded:
            above = above + dt if pressure >= enter else 0.0
            if above >= dwell:
                overloaded = True
                above = 0.0
                since_action = math.inf  # escalate immediately on entry
        else:
            below = below + dt if pressure <= exit_ else 0.0
            if below >= dwell:
                overloaded = False
                below = 0.0
                since_action = 0.0
        since_action += dt
        if overloaded and since_action >= dwell:
            for call_class in range(num_classes - 1, -1, -1):
                if levels[call_class] < floor:
                    levels[call_class] += 1
                    since_action = 0.0
                    break
        elif not overloaded and levels.any() and since_action >= dwell:
            for call_class in range(num_classes):
                if levels[call_class] > 0:
                    levels[call_class] -= 1
                    since_action = 0.0
                    break

        # Euler step with the admission gate: scale the inflow back so
        # post-step demand cannot exceed the gate (fluid limit of
        # admit-if-it-fits; alpha is the instantaneous duty cycle).
        f = factors[levels]
        inflow = rates * dt
        outflow = n * (dt / mean_holding)
        trial = n + inflow - outflow
        trial_demand = float((trial * f).sum()) * call_bandwidth
        alpha = 1.0
        gate = admit_threshold * capacity
        if trial_demand > gate:
            inflow_demand = float((inflow * f).sum()) * call_bandwidth
            if inflow_demand > 0.0:
                alpha = max(
                    0.0, 1.0 - (trial_demand - gate) / inflow_demand
                )
            else:
                alpha = 0.0
        n = np.maximum(0.0, n + alpha * inflow - outflow)
        admitted_time += alpha * dt

        occupancy[index] = n
        pressure_trace[index] = pressure
        level_trace[index] = levels

    tail_start = int((1.0 - tail_fraction) * steps)
    return DowngradeFluidResult(
        times=times,
        occupancy=occupancy,
        pressure=pressure_trace,
        levels=level_trace,
        steady_occupancy=occupancy[tail_start:].mean(axis=0),
        steady_levels=level_trace[-1].copy(),
        admitted_fraction=admitted_time / (steps * dt),
    )


def sigma_rho_curve(
    workload: SlottedWorkload,
    rates: Sequence[float],
) -> np.ndarray:
    """Lossless (sigma, rho) pairs: required buffer for each drain rate.

    Returns an array of shape ``(len(rates), 2)`` with columns
    ``(rate, required_buffer)``.  The empirical-envelope counterpart with a
    loss target is in :func:`repro.analysis.empirical.sigma_rho_for_loss`.
    """
    rows = []
    for rate in rates:
        drain = rate * workload.slot_duration
        rows.append((float(rate), required_buffer(workload.bits_per_slot, drain)))
    return np.asarray(rows)
