#!/usr/bin/env python
"""Run the paper's full evaluation programmatically (long-running).

This script drives the :mod:`repro.experiments` runners end to end at a
chosen scale and prints every table: the Fig. 2 tradeoff, the Fig. 5
(sigma, rho) curve, the Fig. 6 multiplexing-gain comparison, and the
Section VI admission-control study.  It is the scripted equivalent of

    REPRO_SCALE=paper pytest benchmarks/ --benchmark-only -s

without pytest in the loop, for users who want the results as Python
objects.

Run:  python examples/full_reproduction.py [--frames N]
      (defaults to a 17-minute trace; use --frames 171000 for the
      paper's full two-hour scale — expect hours of runtime)
"""

import argparse

from repro.experiments import (
    run_mbac_comparison,
    run_sigma_rho,
    run_smg,
    run_tradeoff,
)
from repro.experiments.runners import compute_optimal_schedule
from repro.traffic import generate_starwars_trace
from repro.util.units import format_bits, format_rate


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=24_000)
    parser.add_argument("--seed", type=int, default=1995)
    parser.add_argument("--loss-target", type=float, default=1e-6)
    args = parser.parse_args()

    print(f"generating trace ({args.frames} frames, seed {args.seed})...")
    trace = generate_starwars_trace(num_frames=args.frames, seed=args.seed)
    mean = trace.mean_rate
    print(f"  mean {format_rate(mean)}, duration {trace.duration / 60:.1f} min")

    print("\n[1/4] Fig. 2 — efficiency vs renegotiation interval")
    tradeoff = run_tradeoff(trace)
    for point in tradeoff.optimal:
        print(f"  OPT  alpha={point.parameter:>9.3g}  "
              f"interval={point.mean_interval:6.1f}s  "
              f"efficiency={point.efficiency:.4f}")
    for point in tradeoff.heuristic:
        print(f"  AR1  delta={format_rate(point.parameter):>11}  "
              f"interval={point.mean_interval:6.2f}s  "
              f"efficiency={point.efficiency:.4f}")

    print("\n[2/4] Fig. 5 — (sigma, rho) curve")
    sigma_rho = run_sigma_rho(trace, loss_target=args.loss_target)
    for sigma, rho in zip(sigma_rho.buffers, sigma_rho.rates):
        print(f"  {format_bits(sigma):>10} -> {format_rate(rho)} "
              f"({rho / mean:.2f}x mean)")

    print("\n[3/4] Fig. 6 — statistical multiplexing gain")
    schedule = compute_optimal_schedule(trace, alpha=6e6)
    smg = run_smg(trace, schedule, loss_target=args.loss_target)
    print(f"  {'N':>4} {'CBR':>7} {'shared':>7} {'RCBR':>7}   (x mean)")
    for point in smg.points:
        print(f"  {point.num_sources:>4} {point.cbr_rate / mean:>7.2f} "
              f"{point.shared_rate / mean:>7.2f} "
              f"{point.rcbr_rate / mean:>7.2f}")
    print(f"  schedule efficiency {smg.schedule_efficiency:.4f} -> "
          f"asymptote {1 / smg.schedule_efficiency:.4f}x mean")

    print("\n[4/4] Section VI — admission control")
    mbac = run_mbac_comparison(schedule)
    print(f"  {'controller':>12} {'cap/mean':>9} {'load':>5} "
          f"{'failure':>9} {'util':>6}")
    for point in mbac.points:
        print(f"  {point.controller:>12} {point.capacity_multiple:>9.1f} "
              f"{point.load:>5.2f} {point.failure_probability:>9.2e} "
              f"{point.utilization:>6.1%}")

    print("\ndone — see EXPERIMENTS.md for the paper-vs-measured record.")


if __name__ == "__main__":
    main()
