"""Statistics helpers used by the simulation experiments.

The paper repeats each simulation "until the sample standard deviation of
the estimate is less than 20% of the estimate" (Section V-B) and, for the
admission-control study, "until the 95% confidence interval for both
probabilities is sufficiently small with respect to the estimated value
(within 20%)" (Section VI).  :class:`RelativePrecisionStopper` implements
exactly those stopping rules, including the paper's early-exit when the
target failure probability provably lies above the confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import stats as _scipy_stats


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 means every share is equal; ``1/n`` means one party holds
    everything.  An empty or all-zero allocation is vacuously fair
    (returns 1.0) so sweep cells can report the index before any calls
    are admitted.  Negative shares are rejected — the index is only
    meaningful over non-negative allocations.
    """
    x = np.asarray(values, dtype=float)
    if x.ndim != 1:
        raise ValueError(f"values must be one-dimensional, got shape {x.shape}")
    if x.size == 0:
        return 1.0
    if np.any(x < 0.0):
        raise ValueError("jain_fairness requires non-negative values")
    total = float(x.sum())
    if total <= 0.0:
        return 1.0
    return float(total * total / (x.size * float(np.square(x).sum())))


def per_class_totals(
    classes: Sequence[int],
    values: Sequence[float],
    num_classes: int,
) -> np.ndarray:
    """Sum ``values`` grouped by class index into a dense length-
    ``num_classes`` array (empty classes contribute 0.0)."""
    if num_classes < 1:
        raise ValueError("num_classes must be >= 1")
    idx = np.asarray(classes, dtype=np.int64)
    vals = np.asarray(values, dtype=float)
    if idx.shape != vals.shape:
        raise ValueError(
            f"classes and values must align, got {idx.shape} vs {vals.shape}"
        )
    if idx.size and (idx.min() < 0 or idx.max() >= num_classes):
        raise ValueError(f"class indices must be in [0, {num_classes})")
    return np.bincount(idx, weights=vals, minlength=num_classes)


def per_class_counts(classes: Sequence[int], num_classes: int) -> np.ndarray:
    """Occupancy per class index as a dense length-``num_classes`` array."""
    if num_classes < 1:
        raise ValueError("num_classes must be >= 1")
    idx = np.asarray(classes, dtype=np.int64)
    if idx.size and (idx.min() < 0 or idx.max() >= num_classes):
        raise ValueError(f"class indices must be in [0, {num_classes})")
    return np.bincount(idx, minlength=num_classes)


def per_class_means(
    classes: Sequence[int],
    values: Sequence[float],
    num_classes: int,
) -> np.ndarray:
    """Mean of ``values`` per class; empty classes report 0.0."""
    totals = per_class_totals(classes, values, num_classes)
    counts = per_class_counts(classes, num_classes)
    means = np.zeros(num_classes)
    occupied = counts > 0
    means[occupied] = totals[occupied] / counts[occupied]
    return means


class RunningStats:
    """Numerically stable running mean/variance (Welford's algorithm)."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Fold one observation into the running statistics."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def extend(self, values) -> None:
        """Fold an iterable of observations."""
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("no observations recorded")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample (n-1) variance."""
        if self._count < 2:
            raise ValueError("variance requires at least two observations")
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def std_error(self) -> float:
        """Standard error of the mean."""
        return self.std / math.sqrt(self._count)

    def __repr__(self) -> str:
        if self._count == 0:
            return "RunningStats(empty)"
        return f"RunningStats(n={self._count}, mean={self._mean:.6g})"


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval around a sample mean."""

    mean: float
    lower: float
    upper: float
    level: float
    count: int

    @property
    def half_width(self) -> float:
        return (self.upper - self.lower) / 2.0

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def mean_confidence_interval(
    stats: RunningStats, level: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of the recorded samples."""
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level}")
    if stats.count < 2:
        raise ValueError("confidence interval requires at least two samples")
    critical = _scipy_stats.t.ppf(0.5 + level / 2.0, df=stats.count - 1)
    half = critical * stats.std_error
    return ConfidenceInterval(
        mean=stats.mean,
        lower=stats.mean - half,
        upper=stats.mean + half,
        level=level,
        count=stats.count,
    )


class RelativePrecisionStopper:
    """The paper's simulation stopping rule.

    Stop when the 95% (configurable) confidence half-width is within
    ``relative_precision`` of the estimated mean.  Optionally also stop as
    soon as the whole confidence interval lies *below* ``target_below``:
    the paper uses this to terminate quickly when the measured
    renegotiation-failure probability is clearly under the QoS target
    ("we also stop if the target failure probability lies to the right of
    the confidence interval").
    """

    def __init__(
        self,
        relative_precision: float = 0.2,
        level: float = 0.95,
        min_samples: int = 5,
        max_samples: int = 10_000,
        target_below: Optional[float] = None,
    ) -> None:
        if relative_precision <= 0.0:
            raise ValueError("relative_precision must be positive")
        if min_samples < 2:
            raise ValueError("min_samples must be at least 2")
        if max_samples < min_samples:
            raise ValueError("max_samples must be >= min_samples")
        self.relative_precision = relative_precision
        self.level = level
        self.min_samples = min_samples
        self.max_samples = max_samples
        self.target_below = target_below
        self.stats = RunningStats()

    def add(self, value: float) -> None:
        self.stats.add(value)

    @property
    def count(self) -> int:
        return self.stats.count

    def interval(self) -> ConfidenceInterval:
        return mean_confidence_interval(self.stats, self.level)

    def should_stop(self) -> bool:
        """True once enough samples have been collected."""
        if self.stats.count >= self.max_samples:
            return True
        if self.stats.count < self.min_samples:
            return False
        interval = self.interval()
        if self.target_below is not None and interval.upper < self.target_below:
            return True
        if interval.mean == 0.0:
            # All-zero samples: precision relative to zero is undefined;
            # rely on target_below/max_samples to terminate.
            return self.target_below is not None and 0.0 < self.target_below
        return interval.half_width <= self.relative_precision * abs(interval.mean)

    def run(self, sample_fn) -> ConfidenceInterval:
        """Draw samples from ``sample_fn()`` until the rule says stop."""
        while not self.should_stop():
            self.add(float(sample_fn()))
        return self.interval()
