"""The supervised sweep runtime (repro.perf.supervise).

The acceptance chaos test lives here: with injected worker kills,
hangs, and poison exceptions, a supervised parallel sweep completes,
quarantines only the intentionally-poisoned cells, and every surviving
cell's result is bit-identical to the unfaulted serial reference;
killing a sweep midway and rerunning with resume recomputes zero
completed cells and yields identical final output.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.faults.harness import WorkerFault, chaos_sweep_cells
from repro.perf.engine import SweepCell, SweepEngine
from repro.perf.recorder import BenchRecorder
from repro.perf.supervise import (
    STATUS_OK,
    STATUS_QUARANTINED,
    STATUS_RESUMED,
    STATUS_RETRIED,
    STATUS_TIMEOUT,
    SupervisedSweepEngine,
    SupervisorPolicy,
)


# ----------------------------------------------------------------------
# Cell functions must live at module level so they pickle for the pool.
# ----------------------------------------------------------------------
def draw_cell(seed, count):
    rng = np.random.default_rng(seed)
    return rng.normal(size=count).tolist()


def logging_draw_cell(seed, count, log_path, label):
    """Like ``draw_cell`` but records every actual computation."""
    with open(log_path, "a", encoding="utf-8") as handle:
        handle.write(f"{label}\n")
    rng = np.random.default_rng(seed)
    return rng.normal(size=count).tolist()


def _draw_cells(count):
    return [
        SweepCell(
            name=f"draw/{index}",
            fn=draw_cell,
            kwargs={"count": 5},
            seed_arg="seed",
        )
        for index in range(count)
    ]


def _logging_cells(count, log_path):
    return [
        SweepCell(
            name=f"draw/{index}",
            fn=logging_draw_cell,
            kwargs={
                "count": 5,
                "log_path": str(log_path),
                "label": f"draw/{index}",
            },
            seed_arg="seed",
        )
        for index in range(count)
    ]


def _fast_policy(**overrides):
    defaults = dict(
        max_attempts=3,
        backoff_base=0.01,
        backoff_jitter=0.0,
        poll_interval=0.02,
    )
    defaults.update(overrides)
    return SupervisorPolicy(**defaults)


class TestSupervisorPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            SupervisorPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            SupervisorPolicy(max_pool_rebuilds=-1)

    def test_backoff_is_exponential_and_capped(self):
        policy = SupervisorPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3,
            backoff_jitter=0.0,
        )
        rng = np.random.default_rng(0)
        delays = [policy.backoff_delay(k, rng) for k in (2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = SupervisorPolicy(
            backoff_base=1.0, backoff_factor=1.0, backoff_jitter=0.5
        )
        first = [
            policy.backoff_delay(2, np.random.default_rng(42))
            for _ in range(3)
        ]
        assert first[0] == first[1] == first[2]
        assert 1.0 <= first[0] <= 1.5


class TestHappyPath:
    def test_matches_plain_engine_bit_for_bit(self):
        plain = [
            r.value for r in SweepEngine(base_seed=3).run(_draw_cells(4))
        ]
        run = SupervisedSweepEngine(base_seed=3).run_supervised(
            _draw_cells(4)
        )
        assert [r.value for r in run.results] == plain
        assert run.report.counts() == {STATUS_OK: 4}
        assert run.report.pool_rebuilds == 0
        assert not run.report.degraded_to_serial

    def test_empty_sweep(self, tmp_path):
        run = SupervisedSweepEngine(
            workers=2, journal_path=tmp_path / "empty.jsonl"
        ).run_supervised([])
        assert run.results == []
        assert run.report.counts() == {}

    def test_serial_retry_then_success(self, tmp_path):
        cells = chaos_sweep_cells(
            _draw_cells(3),
            {1: WorkerFault("raise", times=1)},
            tmp_path / "markers",
        )
        run = SupervisedSweepEngine(
            base_seed=3, policy=_fast_policy()
        ).run_supervised(cells)
        reference = [
            r.value for r in SweepEngine(base_seed=3).run(_draw_cells(3))
        ]
        assert [r.value for r in run.results] == reference
        statuses = [c.status for c in run.report.cells]
        assert statuses == [STATUS_OK, STATUS_RETRIED, STATUS_OK]
        assert run.report.cells[1].attempts == 2

    def test_serial_quarantine_after_max_attempts(self, tmp_path):
        cells = chaos_sweep_cells(
            _draw_cells(3),
            {1: WorkerFault("raise", times=-1)},
            tmp_path / "markers",
        )
        run = SupervisedSweepEngine(
            base_seed=3, policy=_fast_policy(max_attempts=2)
        ).run_supervised(cells)
        assert [c.name for c in run.results] == ["draw/0", "draw/2"]
        bad = run.report.cells[1]
        assert bad.status == STATUS_QUARANTINED
        assert bad.attempts == 2
        assert "ChaosWorkerError" in bad.error

    def test_recorder_receives_report_and_statuses(self, tmp_path):
        recorder = BenchRecorder()
        cells = chaos_sweep_cells(
            _draw_cells(2),
            {0: WorkerFault("raise", times=1)},
            tmp_path / "markers",
        )
        SupervisedSweepEngine(
            base_seed=3, recorder=recorder, policy=_fast_policy()
        ).run_supervised(cells)
        payload = recorder.as_dict()
        assert payload["sweep_report"]["counts"] == {
            STATUS_RETRIED: 1, STATUS_OK: 1,
        }
        statuses = {
            record["name"]: record["status"]
            for record in payload["records"]
        }
        assert statuses == {
            "draw/0": STATUS_RETRIED, "draw/1": STATUS_OK,
        }


class TestChaosAcceptance:
    """The ISSUE acceptance scenario: kills, hangs, and poison at once."""

    def _chaos_run(self, tmp_path, resume=False, wrapped=True):
        cells = _draw_cells(8)
        if wrapped:
            cells = chaos_sweep_cells(
                cells,
                {
                    1: WorkerFault("kill", times=1),
                    3: WorkerFault("hang", times=1, hang_seconds=30.0),
                    5: WorkerFault("raise", times=-1),
                },
                tmp_path / "markers",
            )
        engine = SupervisedSweepEngine(
            workers=2,
            base_seed=3,
            policy=_fast_policy(timeout=3.0),
            journal_path=tmp_path / "chaos.journal.jsonl",
            resume=resume,
        )
        return engine.run_supervised(cells)

    def test_survivors_bit_identical_quarantine_only_poisoned(
        self, tmp_path
    ):
        run = self._chaos_run(tmp_path)
        reference = {
            r.name: r.value
            for r in SweepEngine(base_seed=3).run(_draw_cells(8))
        }

        # Only the permanently-poisoned cell is quarantined.
        assert [c.name for c in run.report.quarantined] == ["draw/5"]
        assert "ChaosWorkerError" in run.report.quarantined[0].error

        # Every survivor is present and bit-identical to the unfaulted
        # serial reference, in input order.
        names = [r.name for r in run.results]
        assert names == [f"draw/{i}" for i in range(8) if i != 5]
        for result in run.results:
            assert result.value == reference[result.name]

        # The kill and the hang were survived, visibly.  The hang ends
        # as a timeout when its deadline expires first, or as a plain
        # retry when the kill's pool rebuild reclaims it earlier — both
        # are correct supervision; the deterministic timeout path is
        # pinned down separately in TestTimeouts.
        assert run.report.cells[1].status == STATUS_RETRIED
        assert run.report.cells[1].pool_failures >= 1
        assert run.report.cells[3].status in (STATUS_TIMEOUT, STATUS_RETRIED)
        assert run.report.cells[3].attempts >= 2
        assert run.report.pool_rebuilds >= 1
        assert not run.report.degraded_to_serial

    def test_resume_after_fix_recomputes_only_quarantined(self, tmp_path):
        first = self._chaos_run(tmp_path)
        reference = {
            r.name: r.value
            for r in SweepEngine(base_seed=3).run(_draw_cells(8))
        }
        # The "fix": rerun the same sweep without the faults, resuming.
        second = self._chaos_run(tmp_path, resume=True, wrapped=False)
        assert len(second.report.resumed) == 7
        assert second.report.cells[5].status == STATUS_OK
        assert not second.report.stale_journal
        assert [r.name for r in second.results] == [
            f"draw/{i}" for i in range(8)
        ]
        for result in second.results:
            assert result.value == reference[result.name]
        del first


class TestTimeouts:
    def test_timeout_on_final_cell(self, tmp_path):
        # The hang lands on the last cell, when the queue is empty and
        # the supervisor is only waiting on deadlines.
        cells = chaos_sweep_cells(
            _draw_cells(3),
            {2: WorkerFault("hang", times=1, hang_seconds=30.0)},
            tmp_path / "markers",
        )
        run = SupervisedSweepEngine(
            workers=2, base_seed=3, policy=_fast_policy(timeout=1.0)
        ).run_supervised(cells)
        reference = [
            r.value for r in SweepEngine(base_seed=3).run(_draw_cells(3))
        ]
        assert [r.value for r in run.results] == reference
        assert run.report.cells[2].status == STATUS_TIMEOUT
        assert run.report.cells[2].timeouts == 1


class TestUnpicklableExceptions:
    def test_poison_pickle_is_quarantined_not_fatal(self, tmp_path):
        cells = chaos_sweep_cells(
            _draw_cells(3),
            {1: WorkerFault("raise-unpicklable", times=-1)},
            tmp_path / "markers",
        )
        run = SupervisedSweepEngine(
            workers=2, base_seed=3, policy=_fast_policy(max_attempts=2)
        ).run_supervised(cells)
        assert [c.name for c in run.results] == ["draw/0", "draw/2"]
        bad = run.report.cells[1]
        assert bad.status == STATUS_QUARANTINED
        assert bad.error  # the pool's pickling error, whatever its type


class TestJournalResume:
    def test_crash_midway_resume_recomputes_zero_completed(self, tmp_path):
        log_path = tmp_path / "compute.log"
        journal_path = tmp_path / "sweep.journal.jsonl"
        cells = _logging_cells(6, log_path)

        full = SupervisedSweepEngine(
            workers=1, base_seed=3, journal_path=journal_path
        ).run_supervised(cells)
        reference = [r.value for r in full.results]

        # Simulate a crash after 4 completed cells: keep the header and
        # the first four entries, drop the rest.
        lines = journal_path.read_text(encoding="utf-8").splitlines(True)
        journal_path.write_text("".join(lines[:5]), encoding="utf-8")
        log_path.write_text("", encoding="utf-8")

        resumed = SupervisedSweepEngine(
            workers=1,
            base_seed=3,
            journal_path=journal_path,
            resume=True,
        ).run_supervised(_logging_cells(6, log_path))

        # Zero completed cells recomputed; only the lost tail ran.
        computed = log_path.read_text(encoding="utf-8").split()
        assert computed == ["draw/4", "draw/5"]
        statuses = [c.status for c in resumed.report.cells]
        assert statuses == [STATUS_RESUMED] * 4 + [STATUS_OK] * 2
        assert [r.value for r in resumed.results] == reference

    def test_stale_fingerprint_recomputes_everything(self, tmp_path):
        log_path = tmp_path / "compute.log"
        journal_path = tmp_path / "sweep.journal.jsonl"

        SupervisedSweepEngine(
            workers=1, base_seed=3, journal_path=journal_path
        ).run_supervised(_logging_cells(3, log_path))
        log_path.write_text("", encoding="utf-8")

        # Same journal, different base seed: the fingerprint no longer
        # matches, so trusting the old values would be wrong.
        resumed = SupervisedSweepEngine(
            workers=1,
            base_seed=4,
            journal_path=journal_path,
            resume=True,
        ).run_supervised(_logging_cells(3, log_path))

        assert resumed.report.stale_journal
        computed = log_path.read_text(encoding="utf-8").split()
        assert computed == ["draw/0", "draw/1", "draw/2"]
        assert [c.status for c in resumed.report.cells] == [STATUS_OK] * 3

    def test_report_to_dict_shape(self, tmp_path):
        run = SupervisedSweepEngine(
            base_seed=3, journal_path=tmp_path / "j.jsonl"
        ).run_supervised(_draw_cells(2))
        payload = run.report.to_dict()
        assert json.dumps(payload)  # JSON-serializable end to end
        assert payload["counts"] == {STATUS_OK: 2}
        assert payload["journal"].endswith("j.jsonl")
        assert [cell["name"] for cell in payload["cells"]] == [
            "draw/0", "draw/1",
        ]
