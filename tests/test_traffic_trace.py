"""FrameTrace and SlottedWorkload behaviour."""

import numpy as np
import pytest

from repro.traffic.trace import FrameTrace, SlottedWorkload


@pytest.fixture
def tiny_trace():
    return FrameTrace(np.array([10.0, 20.0, 30.0, 40.0]), frames_per_second=2.0)


class TestFrameTraceBasics:
    def test_mean_rate(self, tiny_trace):
        # 100 bits over 2 seconds.
        assert tiny_trace.mean_rate == pytest.approx(50.0)

    def test_peak_rate(self, tiny_trace):
        assert tiny_trace.peak_rate == pytest.approx(40.0 * 2.0)

    def test_duration_and_frame_duration(self, tiny_trace):
        assert tiny_trace.duration == pytest.approx(2.0)
        assert tiny_trace.frame_duration == pytest.approx(0.5)

    def test_rates_per_frame(self, tiny_trace):
        assert np.allclose(tiny_trace.rates, [20.0, 40.0, 60.0, 80.0])

    def test_cumulative_bits(self, tiny_trace):
        assert np.allclose(tiny_trace.cumulative_bits(), [10, 30, 60, 100])

    def test_len_and_iter(self, tiny_trace):
        assert len(tiny_trace) == 4
        assert list(tiny_trace) == [10.0, 20.0, 30.0, 40.0]

    def test_frame_bits_are_readonly(self, tiny_trace):
        with pytest.raises(ValueError):
            tiny_trace.frame_bits[0] = 5.0


class TestFrameTraceValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FrameTrace(np.array([]))

    def test_rejects_negative_sizes(self):
        with pytest.raises(ValueError):
            FrameTrace(np.array([1.0, -2.0]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            FrameTrace(np.ones((2, 2)))

    def test_rejects_bad_fps(self):
        with pytest.raises(ValueError):
            FrameTrace(np.array([1.0]), frames_per_second=0.0)


class TestShifting:
    def test_shift_preserves_marginal(self, tiny_trace):
        shifted = tiny_trace.shifted(2)
        assert sorted(shifted.frame_bits) == sorted(tiny_trace.frame_bits)
        assert shifted.mean_rate == pytest.approx(tiny_trace.mean_rate)

    def test_shift_rolls_left(self, tiny_trace):
        shifted = tiny_trace.shifted(1)
        assert np.allclose(shifted.frame_bits, [20, 30, 40, 10])

    def test_shift_wraps(self, tiny_trace):
        assert np.allclose(
            tiny_trace.shifted(5).frame_bits, tiny_trace.shifted(1).frame_bits
        )

    def test_random_shift_reproducible(self, tiny_trace):
        a = tiny_trace.random_shift(seed=3)
        b = tiny_trace.random_shift(seed=3)
        assert np.allclose(a.frame_bits, b.frame_bits)


class TestPrefixAndAggregate:
    def test_prefix(self, tiny_trace):
        prefix = tiny_trace.prefix(2)
        assert np.allclose(prefix.frame_bits, [10, 20])

    def test_prefix_bounds(self, tiny_trace):
        with pytest.raises(ValueError):
            tiny_trace.prefix(0)
        with pytest.raises(ValueError):
            tiny_trace.prefix(5)

    def test_aggregate_sums_frames(self, tiny_trace):
        workload = tiny_trace.aggregate(2)
        assert np.allclose(workload.bits_per_slot, [30, 70])
        assert workload.slot_duration == pytest.approx(1.0)

    def test_aggregate_preserves_mean_rate(self, tiny_trace):
        workload = tiny_trace.aggregate(2)
        assert workload.mean_rate == pytest.approx(tiny_trace.mean_rate)

    def test_aggregate_trims_remainder(self):
        trace = FrameTrace(np.array([1.0, 2.0, 3.0]), frames_per_second=1.0)
        workload = trace.aggregate(2)
        assert workload.num_slots == 1
        assert workload.bits_per_slot[0] == pytest.approx(3.0)

    def test_aggregate_rejects_too_coarse(self, tiny_trace):
        with pytest.raises(ValueError):
            tiny_trace.aggregate(10)

    def test_as_workload_roundtrip(self, tiny_trace):
        workload = tiny_trace.as_workload()
        assert np.allclose(workload.bits_per_slot, tiny_trace.frame_bits)
        assert workload.slot_duration == tiny_trace.frame_duration


class TestSerialisation:
    def test_npz_roundtrip(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.npz"
        tiny_trace.save(path)
        loaded = FrameTrace.load(path)
        assert np.allclose(loaded.frame_bits, tiny_trace.frame_bits)
        assert loaded.frames_per_second == tiny_trace.frames_per_second

    def test_text_roundtrip(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.txt"
        tiny_trace.save_text(path)
        loaded = FrameTrace.load_text(path)
        assert np.allclose(loaded.frame_bits, tiny_trace.frame_bits)
        assert loaded.frames_per_second == tiny_trace.frames_per_second

    def test_text_without_header_uses_default_fps(self, tmp_path):
        path = tmp_path / "bare.txt"
        path.write_text("100\n200\n")
        loaded = FrameTrace.load_text(path, frames_per_second=30.0)
        assert loaded.frames_per_second == 30.0
        assert np.allclose(loaded.frame_bits, [100, 200])


class TestSlottedWorkload:
    def test_validation(self):
        with pytest.raises(ValueError):
            SlottedWorkload(np.array([]), 1.0)
        with pytest.raises(ValueError):
            SlottedWorkload(np.array([-1.0]), 1.0)
        with pytest.raises(ValueError):
            SlottedWorkload(np.array([1.0]), 0.0)

    def test_rates_and_peak(self):
        workload = SlottedWorkload(np.array([10.0, 30.0]), slot_duration=0.5)
        assert np.allclose(workload.rates, [20.0, 60.0])
        assert workload.peak_rate == pytest.approx(60.0)
        assert workload.mean_rate == pytest.approx(40.0)
        assert len(workload) == 2
