"""Unit helpers.

Internally the whole library uses **bits** for data volumes and **bits per
second** for rates, matching the units the paper reports (kb, kb/s, Mb).
Time is in **seconds** unless a function explicitly works in slots.

The helpers below exist so that calling code reads like the paper::

    buffer = kbits(300)          # the paper's 300 kb end-system buffer
    mean_rate = kbps(374)        # the Star Wars trace's average rate
"""

from __future__ import annotations

KILO = 1_000.0
MEGA = 1_000_000.0
GIGA = 1_000_000_000.0


def kbps(value: float) -> float:
    """Convert kilobits per second to bits per second."""
    return value * KILO


def mbps(value: float) -> float:
    """Convert megabits per second to bits per second."""
    return value * MEGA


def gbps(value: float) -> float:
    """Convert gigabits per second to bits per second."""
    return value * GIGA


def kbits(value: float) -> float:
    """Convert kilobits to bits."""
    return value * KILO


def mbits(value: float) -> float:
    """Convert megabits to bits."""
    return value * MEGA


def bits_to_kbits(value: float) -> float:
    """Convert bits to kilobits."""
    return value / KILO


def bits_to_mbits(value: float) -> float:
    """Convert bits to megabits."""
    return value / MEGA


def rate_to_kbps(value: float) -> float:
    """Convert a rate in bits per second to kilobits per second."""
    return value / KILO


def rate_to_mbps(value: float) -> float:
    """Convert a rate in bits per second to megabits per second."""
    return value / MEGA


def format_rate(bits_per_second: float) -> str:
    """Render a rate with the most readable SI prefix, e.g. ``'374.0 kb/s'``."""
    magnitude = abs(bits_per_second)
    if magnitude >= GIGA:
        return f"{bits_per_second / GIGA:.2f} Gb/s"
    if magnitude >= MEGA:
        return f"{bits_per_second / MEGA:.2f} Mb/s"
    if magnitude >= KILO:
        return f"{bits_per_second / KILO:.1f} kb/s"
    return f"{bits_per_second:.0f} b/s"


def format_bits(bits: float) -> str:
    """Render a data volume with the most readable SI prefix, e.g. ``'300 kb'``."""
    magnitude = abs(bits)
    if magnitude >= GIGA:
        return f"{bits / GIGA:.2f} Gb"
    if magnitude >= MEGA:
        return f"{bits / MEGA:.2f} Mb"
    if magnitude >= KILO:
        return f"{bits / KILO:.1f} kb"
    return f"{bits:.0f} b"
