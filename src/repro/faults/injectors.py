"""Composable, seeded fault injectors for the renegotiation pipeline.

The paper treats a denied renegotiation with a single line — "the trivial
solution is to try again" — and leaves multi-hop failure growth as "an
open area for research" (Section III-C).  Growing the reproduction toward
a production-scale service requires a first-class fault model: faults must
be *injectable* (so recovery code paths are exercised deliberately, not
by luck), *composable* (real incidents combine denial bursts with cell
loss and switch outages), and *deterministic* (a chaos run must replay
bit-identically from its seed, or failures cannot be debugged).

Every injector draws from its own :mod:`repro.util.rng` stream, derived
from one master seed through ``SeedSequence`` spawning, so adding or
removing one injector never perturbs the others' sample paths.  The
:class:`FaultPlan` registry builds a full fault scenario from a plain
``{name: kwargs}`` spec, which is how the chaos harness and the CLI-level
sweeps describe scenarios.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Type

import numpy as np

from repro.traffic.trace import SlottedWorkload
from repro.util.rng import SeedLike, as_generator, spawn_generators


class CellFate(enum.Enum):
    """What the network does to one signaling cell in transit."""

    DELIVER = "deliver"
    LOSE = "lose"
    DELAY = "delay"
    DUPLICATE = "duplicate"


@dataclass(frozen=True)
class CellOutcome:
    """A sampled fate for one cell; ``delay`` is extra seconds in transit."""

    fate: CellFate
    delay: float = 0.0


DELIVERED = CellOutcome(CellFate.DELIVER)


INJECTOR_REGISTRY: Dict[str, Type["FaultInjector"]] = {}


def register_injector(name: str):
    """Class decorator adding an injector to the :class:`FaultPlan` registry."""

    def decorate(cls: Type["FaultInjector"]) -> Type["FaultInjector"]:
        cls.injector_name = name
        INJECTOR_REGISTRY[name] = cls
        return cls

    return decorate


class FaultInjector:
    """Base class: one kind of fault, driven by one private RNG stream."""

    injector_name = "base"

    def __init__(self, seed: SeedLike = None) -> None:
        self.rng = as_generator(seed)

    def reseed(self, seed: SeedLike) -> None:
        self.rng = as_generator(seed)


@register_injector("denial")
class DenialBurstInjector(FaultInjector):
    """Markov-modulated renegotiation denials (a Gilbert two-state model).

    Denials in a loaded network are bursty: a congested downstream hop
    denies every increase for a stretch, then relents.  The injector is a
    two-state chain stepped once per query — CALM denies with probability
    ``deny_calm``, BURST with ``deny_burst`` — so the long-run denial rate
    is ``pi_burst * deny_burst + (1 - pi_burst) * deny_calm`` with
    ``pi_burst = enter / (enter + exit)``.

    Passing ``rate`` (with ``mean_burst``) solves for the transition
    probabilities hitting that long-run denial rate, which is how the
    chaos harness dials "a 20% injected denial rate".
    """

    def __init__(
        self,
        rate: Optional[float] = None,
        mean_burst: float = 5.0,
        enter_probability: Optional[float] = None,
        exit_probability: Optional[float] = None,
        deny_burst: float = 1.0,
        deny_calm: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        if not 0.0 <= deny_calm <= deny_burst <= 1.0:
            raise ValueError("need 0 <= deny_calm <= deny_burst <= 1")
        if rate is not None:
            if enter_probability is not None or exit_probability is not None:
                raise ValueError("give either rate or explicit probabilities")
            if mean_burst < 1.0:
                raise ValueError("mean_burst must be >= 1 query")
            if not deny_calm <= rate < deny_burst:
                raise ValueError(
                    f"rate must lie in [deny_calm, deny_burst) = "
                    f"[{deny_calm}, {deny_burst}), got {rate}"
                )
            pi_burst = (rate - deny_calm) / (deny_burst - deny_calm)
            exit_probability = 1.0 / mean_burst
            if pi_burst >= 1.0 - 1e-12:
                enter_probability = 1.0
            else:
                enter_probability = pi_burst * exit_probability / (1.0 - pi_burst)
        if enter_probability is None or exit_probability is None:
            raise ValueError("give rate or both transition probabilities")
        if not 0.0 <= enter_probability <= 1.0:
            raise ValueError("enter_probability must be in [0, 1]")
        if not 0.0 < exit_probability <= 1.0:
            raise ValueError("exit_probability must be in (0, 1]")
        self.enter_probability = float(enter_probability)
        self.exit_probability = float(exit_probability)
        self.deny_burst = float(deny_burst)
        self.deny_calm = float(deny_calm)
        self._bursting = False
        self.queries = 0
        self.denials = 0

    @property
    def stationary_burst_fraction(self) -> float:
        total = self.enter_probability + self.exit_probability
        return self.enter_probability / total if total > 0 else 0.0

    @property
    def target_rate(self) -> float:
        pi = self.stationary_burst_fraction
        return pi * self.deny_burst + (1.0 - pi) * self.deny_calm

    @property
    def observed_rate(self) -> float:
        return self.denials / self.queries if self.queries else 0.0

    def should_deny(self, time: float) -> bool:
        """Step the modulating chain once and sample a denial."""
        if self._bursting:
            if self.rng.random() < self.exit_probability:
                self._bursting = False
        else:
            if self.rng.random() < self.enter_probability:
                self._bursting = True
        probability = self.deny_burst if self._bursting else self.deny_calm
        denied = self.rng.random() < probability
        self.queries += 1
        if denied:
            self.denials += 1
        return denied


@register_injector("cell_loss")
class CellLossInjector(FaultInjector):
    """Independent per-cell loss (the paper's delta-drift trigger)."""

    def __init__(self, probability: float, seed: SeedLike = None) -> None:
        super().__init__(seed)
        if not 0.0 <= probability < 1.0:
            raise ValueError("probability must be in [0, 1)")
        self.probability = float(probability)
        self.losses = 0

    def lose(self, time: float) -> bool:
        lost = self.probability > 0.0 and self.rng.random() < self.probability
        if lost:
            self.losses += 1
        return lost


@register_injector("cell_delay")
class CellDelayInjector(FaultInjector):
    """Occasional exponential extra transit delay for a signaling cell.

    A delay beyond the source's request timeout is indistinguishable from
    loss at the source but the cell still lands in the network — the
    nastiest drift case, because a retry can double-apply a delta.
    """

    def __init__(
        self, probability: float, mean_delay: float, seed: SeedLike = None
    ) -> None:
        super().__init__(seed)
        if not 0.0 <= probability < 1.0:
            raise ValueError("probability must be in [0, 1)")
        if mean_delay <= 0:
            raise ValueError("mean_delay must be positive")
        self.probability = float(probability)
        self.mean_delay = float(mean_delay)

    def sample_delay(self, time: float) -> float:
        if self.probability > 0.0 and self.rng.random() < self.probability:
            return float(self.rng.exponential(self.mean_delay))
        return 0.0


@register_injector("duplication")
class CellDuplicationInjector(FaultInjector):
    """Per-cell duplication (e.g. a retransmitting link layer)."""

    def __init__(self, probability: float, seed: SeedLike = None) -> None:
        super().__init__(seed)
        if not 0.0 <= probability < 1.0:
            raise ValueError("probability must be in [0, 1)")
        self.probability = float(probability)

    def duplicate(self, time: float) -> bool:
        return self.probability > 0.0 and self.rng.random() < self.probability


class _OutageProcess:
    """One hop's renewal process of outage windows (Poisson starts)."""

    def __init__(self, rate: float, mean_duration: float, rng) -> None:
        self.rate = rate
        self.mean_duration = mean_duration
        self.rng = rng
        self._start = float(rng.exponential(1.0 / rate))
        self._end = self._start + float(rng.exponential(mean_duration))

    def is_down(self, time: float) -> bool:
        # Queries arrive in non-decreasing time order per hop (cells are
        # injected chronologically); roll the window forward past `time`.
        while self._end <= time:
            self._start = self._end + float(self.rng.exponential(1.0 / self.rate))
            self._end = self._start + float(self.rng.exponential(self.mean_duration))
        return self._start <= time < self._end


@register_injector("outage")
class SwitchOutageInjector(FaultInjector):
    """Transient switch outages: hops silently eat cells while down.

    Each hop gets its own spawned stream so its outage windows are
    independent of the other hops' and of how often they are queried.
    """

    def __init__(
        self, rate: float, mean_duration: float, seed: SeedLike = None
    ) -> None:
        super().__init__(seed)
        if rate <= 0:
            raise ValueError("rate must be positive (outage starts per second)")
        if mean_duration <= 0:
            raise ValueError("mean_duration must be positive")
        self.rate = float(rate)
        self.mean_duration = float(mean_duration)
        self._hops: Dict[int, _OutageProcess] = {}

    def hop_down(self, time: float, hop_index: int) -> bool:
        process = self._hops.get(hop_index)
        if process is None:
            process = _OutageProcess(
                self.rate, self.mean_duration, self.rng.spawn(1)[0]
            )
            self._hops[hop_index] = process
        return process.is_down(time)


@register_injector("corruption")
class TraceCorruptionInjector(FaultInjector):
    """Corrupt a slotted workload: dropouts and spikes in the arrivals.

    Models damaged input (a glitching encoder, a corrupted trace file):
    each slot independently, with probability ``probability``, is either
    zeroed (a dropout) or multiplied by ``spike_factor`` (a burst),
    chosen with equal odds.
    """

    def __init__(
        self,
        probability: float,
        spike_factor: float = 3.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        if not 0.0 <= probability < 1.0:
            raise ValueError("probability must be in [0, 1)")
        if spike_factor <= 1.0:
            raise ValueError("spike_factor must exceed 1")
        self.probability = float(probability)
        self.spike_factor = float(spike_factor)
        self.corrupted_slots = 0

    def corrupt(self, workload: SlottedWorkload) -> SlottedWorkload:
        bits = workload.bits_per_slot.copy()
        hit = self.rng.random(bits.size) < self.probability
        spikes = self.rng.random(bits.size) < 0.5
        bits[hit & spikes] *= self.spike_factor
        bits[hit & ~spikes] = 0.0
        self.corrupted_slots += int(hit.sum())
        return SlottedWorkload(
            bits_per_slot=bits,
            slot_duration=workload.slot_duration,
            name=f"{workload.name}!chaos",
        )


class FaultPlan:
    """A named composition of injectors built from one master seed.

    A plan is the unit the harness, the signaling path, and the call-level
    simulator consume: they query the plan, not individual injectors, so a
    scenario can enable any subset of faults without the consumers
    changing.  Queries against absent injectors return the benign default
    (no denial, clean delivery, all hops up, identity corruption).
    """

    def __init__(self, injectors: Mapping[str, FaultInjector]) -> None:
        unknown = set(injectors) - set(INJECTOR_REGISTRY)
        if unknown:
            raise ValueError(
                f"unknown injector(s) {sorted(unknown)}; "
                f"registered: {sorted(INJECTOR_REGISTRY)}"
            )
        self._injectors: Dict[str, FaultInjector] = dict(injectors)

    @classmethod
    def from_spec(
        cls,
        spec: Mapping[str, Optional[Mapping[str, object]]],
        seed: SeedLike = None,
    ) -> "FaultPlan":
        """Build a plan from ``{injector_name: kwargs}``.

        One child stream is spawned from ``seed`` per *registered*
        injector name (in sorted order) and each constructed injector
        takes the stream matching its name, so the same seed always
        produces the same fault sample paths regardless of how the spec
        dict was assembled — and enabling one more injector never
        perturbs the others' streams.
        """
        unknown = set(spec) - set(INJECTOR_REGISTRY)
        if unknown:
            raise ValueError(
                f"unknown injector(s) {sorted(unknown)}; "
                f"registered: {sorted(INJECTOR_REGISTRY)}"
            )
        registered = sorted(INJECTOR_REGISTRY)
        children = dict(zip(registered, spawn_generators(seed, len(registered))))
        injectors = {}
        for name in sorted(spec):
            kwargs = dict(spec[name] or {})
            injectors[name] = INJECTOR_REGISTRY[name](
                seed=children[name], **kwargs
            )
        return cls(injectors)

    @classmethod
    def from_json(cls, text: str, seed: SeedLike = None) -> "FaultPlan":
        """Build a plan from a JSON ``{injector_name: kwargs}`` document.

        This is the on-disk form consumed by ``repro serve --fault-plan``:
        the same spec dict :meth:`from_spec` takes, serialized, e.g. ::

            {"denial": {"rate": 0.2}, "outage": {"rate": 0.02,
                                                 "mean_duration": 5.0}}
        """
        import json

        spec = json.loads(text)
        if not isinstance(spec, dict):
            raise ValueError(
                "a fault plan must be a JSON object of "
                "{injector_name: kwargs}"
            )
        return cls.from_spec(spec, seed=seed)

    @classmethod
    def from_file(cls, path, seed: SeedLike = None) -> "FaultPlan":
        """Load a JSON fault-plan spec from ``path`` (see :meth:`from_json`)."""
        from pathlib import Path

        return cls.from_json(Path(path).read_text(encoding="utf-8"), seed=seed)

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[FaultInjector]:
        return self._injectors.get(name)

    @property
    def active(self) -> Tuple[str, ...]:
        return tuple(sorted(self._injectors))

    def __contains__(self, name: str) -> bool:
        return name in self._injectors

    # ------------------------------------------------------------------
    # Query API (benign defaults when an injector is absent)
    # ------------------------------------------------------------------
    def should_deny(self, time: float) -> bool:
        injector = self._injectors.get("denial")
        return injector.should_deny(time) if injector is not None else False

    def cell_outcome(self, time: float) -> CellOutcome:
        """Sample what happens to one cell: first loss, then delay, then
        duplication (a lost cell cannot also be delayed or duplicated)."""
        loss = self._injectors.get("cell_loss")
        if loss is not None and loss.lose(time):
            return CellOutcome(CellFate.LOSE)
        delay = self._injectors.get("cell_delay")
        if delay is not None:
            extra = delay.sample_delay(time)
            if extra > 0.0:
                return CellOutcome(CellFate.DELAY, delay=extra)
        duplication = self._injectors.get("duplication")
        if duplication is not None and duplication.duplicate(time):
            return CellOutcome(CellFate.DUPLICATE)
        return DELIVERED

    def hop_down(self, time: float, hop_index: int) -> bool:
        injector = self._injectors.get("outage")
        return (
            injector.hop_down(time, hop_index) if injector is not None else False
        )

    def corrupt(self, workload: SlottedWorkload) -> SlottedWorkload:
        injector = self._injectors.get("corruption")
        return injector.corrupt(workload) if injector is not None else workload

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, FaultInjector]:
        """Export the injector objects themselves for a checkpoint.

        Injectors are self-contained (own RNG streams, plain counters,
        no back-references), so the checkpoint pickles them wholesale.
        Crucially, pickling a numpy ``Generator`` preserves its
        ``SeedSequence`` *spawn counter* — which restoring only
        ``bit_generator.state`` would not — so injectors that lazily
        spawn child streams (the outage injector's per-hop processes)
        keep producing the same children after a restore.
        """
        return {"injectors": dict(self._injectors)}

    def load_state(self, state: Dict[str, FaultInjector]) -> None:
        """Adopt checkpointed injectors in place.

        In place matters: the signaling path holds a reference to this
        same plan object, so swapping the dict contents updates both
        consumers at once.  The injector *names* must match the live
        plan's — a different set means the checkpoint was taken under a
        different fault spec, which the caller should have refused by
        config hash already.
        """
        saved = dict(state["injectors"])
        if set(saved) != set(self._injectors):
            raise ValueError(
                f"checkpointed fault plan has injectors {sorted(saved)} "
                f"but this plan has {sorted(self._injectors)}"
            )
        self._injectors = saved

    def __repr__(self) -> str:
        return f"FaultPlan(active={list(self.active)})"
