"""The declarative scenario schema: topology + flows + hostile background.

A :class:`ScenarioSpec` composes everything a named stress scenario
needs — a topology graph with per-link capacity and one-way propagation
delay (:class:`LinkSpec`), RCBR flow groups binding a calibrated
:mod:`repro.traffic.sources` model to a route through that topology
(:class:`FlowGroupSpec`), and non-RCBR background cross-traffic that
consumes link capacity as a time-varying process
(:class:`BackgroundSpec`) — plus the service-policy knobs the classic
:class:`~repro.server.config.ServerConfig` exposes (controller,
overload policy, abandonment).

Validation is eager, like ``ServerConfig``: a registry typo or an
impossible topology fails at spec construction, not mid-run.

Every spec runs on the unified serving core (see
:mod:`repro.scenarios.runtime`): a **single-bottleneck** spec (one
link, one flow group) builds the classic gateway — the degenerate
one-edge topology — while anything else builds the multi-bottleneck
:class:`~repro.scenarios.runtime.ScenarioGateway`.  Shards,
checkpoint/resume, MBAC controllers, and overload policies beyond
blocking apply to both shapes; on a multi-bottleneck topology an MBAC
controller vets each call against its route's bottleneck capacity, and
a non-``block`` overload policy runs one control plane per bottleneck
link.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.server.config import CONTROLLER_NAMES
from repro.traffic.sources import SOURCE_NAMES
from repro.traffic.starwars import STAR_WARS_MEAN_RATE

#: Source models a scenario may name: anything in the registry except
#: trace playback (scenarios are synthetic and self-contained).
SCENARIO_SOURCE_NAMES = tuple(
    name for name in SOURCE_NAMES if name != "trace"
)


@dataclass(frozen=True)
class LinkSpec:
    """One undirected link: endpoints, capacity (bits/s), one-way delay."""

    u: str
    v: str
    capacity: float
    delay: float = 0.001

    def __post_init__(self) -> None:
        for node in (self.u, self.v):
            if not node or not node.isascii():
                raise ValueError("node names must be non-empty ASCII")
        if self.u == self.v:
            raise ValueError("links must join two distinct nodes")
        if self.capacity <= 0:
            raise ValueError("link capacity must be positive")
        if self.delay < 0:
            raise ValueError("link delay must be non-negative")


@dataclass(frozen=True)
class FlowGroupSpec:
    """A group of RCBR calls between two nodes.

    ``load`` is the group's normalized offered load relative to the
    bottleneck capacity of its (k=1) shortest route — the same Erlang
    identity ``ServerConfig.load`` uses, so per-link totals are additive
    across the groups sharing a link.  ``route_k`` overrides the
    spec-wide alternate-route count for this group (``None`` inherits).
    """

    name: str
    source: str
    target: str
    load: float = 0.0
    initial_calls: int = 0
    route_k: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.isascii():
            raise ValueError("flow-group names must be non-empty ASCII")
        if self.source == self.target:
            raise ValueError("flow groups need distinct endpoints")
        if self.load < 0:
            raise ValueError("load must be non-negative")
        if self.initial_calls < 0:
            raise ValueError("initial_calls must be non-negative")
        if self.route_k is not None and self.route_k < 1:
            raise ValueError("route_k must be >= 1")


@dataclass(frozen=True)
class BackgroundSpec:
    """Non-RCBR cross-traffic riding one link.

    The named source model is calibrated to a stationary mean of
    ``mean_fraction`` of the link capacity and clamped at
    ``peak_fraction`` (so the RCBR side always keeps at least
    ``1 - peak_fraction`` of the link).  Background outranks RCBR: each
    epoch the link's RCBR-usable capacity becomes ``capacity -
    background(t)`` (grants are downgraded proportionally when squeezed,
    the deficit accruing to ``lost_bits``) and the matching switch port
    carries the background as a reserved non-RCBR VCI, so the ER fast
    path denies increases that no longer fit.
    """

    u: str
    v: str
    traffic: str = "poisson"
    mean_fraction: float = 0.3
    peak_fraction: float = 0.85

    def __post_init__(self) -> None:
        if self.traffic not in SCENARIO_SOURCE_NAMES:
            raise ValueError(
                f"unknown background source {self.traffic!r}; choose "
                f"from {', '.join(SCENARIO_SOURCE_NAMES)}"
            )
        if not 0.0 < self.mean_fraction < 1.0:
            raise ValueError("mean_fraction must be in (0, 1)")
        if not self.mean_fraction <= self.peak_fraction < 1.0:
            raise ValueError(
                "peak_fraction must be in [mean_fraction, 1)"
            )


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete named scenario (see the module docstring)."""

    name: str
    description: str
    links: Tuple[LinkSpec, ...]
    flows: Tuple[FlowGroupSpec, ...]
    background: Tuple[BackgroundSpec, ...] = ()
    #: RCBR call traffic model (registry name) and its calibration.
    traffic: str = "markov"
    mean_rate: float = STAR_WARS_MEAN_RATE
    slot_duration: float = 1.0 / 24.0
    source_slots: int = 480
    #: Run shape.
    duration: float = 20.0
    snapshot_every: float = 5.0
    seed: int = 0
    #: Routing and service policy.
    route_k: int = 1
    mean_holding: float = 6.0
    abandon_after: Optional[int] = None
    controller: str = "always"
    overload_policy: str = "block"
    overload_classes: int = 3
    class_weights: Optional[Tuple[float, ...]] = None
    #: Single-bottleneck only: modelled signaling hops along the path.
    num_hops: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "links", tuple(self.links))
        object.__setattr__(self, "flows", tuple(self.flows))
        object.__setattr__(self, "background", tuple(self.background))
        if not self.name or not self.name.isascii():
            raise ValueError("scenario names must be non-empty ASCII")
        if not self.links:
            raise ValueError("a scenario needs at least one link")
        if not self.flows:
            raise ValueError("a scenario needs at least one flow group")
        edges = {frozenset((link.u, link.v)) for link in self.links}
        if len(edges) != len(self.links):
            raise ValueError("duplicate links in topology")
        if len({flow.name for flow in self.flows}) != len(self.flows):
            raise ValueError("duplicate flow-group names")
        nodes = self.nodes
        for flow in self.flows:
            for node in (flow.source, flow.target):
                if node not in nodes:
                    raise ValueError(
                        f"flow {flow.name!r} references unknown node "
                        f"{node!r}"
                    )
        for bg in self.background:
            if frozenset((bg.u, bg.v)) not in edges:
                raise ValueError(
                    f"background on unknown link {bg.u!r}~{bg.v!r}"
                )
        bg_edges = [frozenset((bg.u, bg.v)) for bg in self.background]
        if len(set(bg_edges)) != len(bg_edges):
            raise ValueError("at most one background process per link")
        if self.traffic not in SCENARIO_SOURCE_NAMES:
            raise ValueError(
                f"unknown traffic source {self.traffic!r}; choose from "
                f"{', '.join(SCENARIO_SOURCE_NAMES)}"
            )
        if self.mean_rate <= 0:
            raise ValueError("mean_rate must be positive")
        if self.slot_duration <= 0:
            raise ValueError("slot_duration must be positive")
        if self.source_slots < 1:
            raise ValueError("source_slots must be >= 1")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.snapshot_every <= 0:
            raise ValueError("snapshot_every must be positive")
        if self.route_k < 1:
            raise ValueError("route_k must be >= 1")
        if self.mean_holding <= 0:
            raise ValueError("mean_holding must be positive")
        if self.abandon_after is not None and self.abandon_after < 1:
            raise ValueError("abandon_after must be >= 1")
        if self.controller not in CONTROLLER_NAMES:
            raise ValueError(
                f"unknown controller {self.controller!r}; expected one "
                f"of {CONTROLLER_NAMES}"
            )
        if self.num_hops < 1:
            raise ValueError("num_hops must be >= 1")

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[str, ...]:
        """All nodes, in first-appearance order over the link list."""
        seen: Dict[str, None] = {}
        for link in self.links:
            seen.setdefault(link.u)
            seen.setdefault(link.v)
        return tuple(seen)

    @property
    def single_bottleneck(self) -> bool:
        """One link, one flow group: runs on the classic gateway stack."""
        return len(self.links) == 1 and len(self.flows) == 1

    @property
    def shard_compatible(self) -> bool:
        """Whether ``shards >= 1`` reproduces the ``shards = 0``
        fingerprint.  Always true on the unified serving core: the
        dense sharded link carries time-varying background capacity,
        and multi-bottleneck gateways shard each flow group's fleet.
        Kept as a property so capability displays and older callers
        keep working."""
        return True

    @property
    def total_capacity(self) -> float:
        return sum(link.capacity for link in self.links)

    def replace(self, **overrides: Any) -> "ScenarioSpec":
        """A copy with fields replaced (re-validated)."""
        return dataclasses.replace(self, **overrides)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-representable echo (reports, sweep cache payloads)."""
        return {
            "name": self.name,
            "description": self.description,
            "links": [dataclasses.asdict(link) for link in self.links],
            "flows": [dataclasses.asdict(flow) for flow in self.flows],
            "background": [
                dataclasses.asdict(bg) for bg in self.background
            ],
            "traffic": self.traffic,
            "mean_rate": self.mean_rate,
            "slot_duration": self.slot_duration,
            "source_slots": self.source_slots,
            "duration": self.duration,
            "snapshot_every": self.snapshot_every,
            "seed": self.seed,
            "route_k": self.route_k,
            "mean_holding": self.mean_holding,
            "abandon_after": self.abandon_after,
            "controller": self.controller,
            "overload_policy": self.overload_policy,
            "overload_classes": self.overload_classes,
            "class_weights": (
                list(self.class_weights)
                if self.class_weights is not None
                else None
            ),
            "num_hops": self.num_hops,
        }

    def describe(self) -> str:
        """Human-readable multi-line summary for ``repro scenario
        describe``."""
        lines = [
            f"{self.name}: {self.description}",
            "",
            f"  topology      {len(self.nodes)} nodes, "
            f"{len(self.links)} links "
            f"({'single' if self.single_bottleneck else 'multi'}-"
            "bottleneck)",
        ]
        for link in self.links:
            lines.append(
                f"    {link.u} ~ {link.v}  "
                f"{link.capacity / 1e6:.2f} Mb/s, "
                f"{link.delay * 1e3:g} ms"
            )
        lines.append(
            f"  calls         {self.traffic} source, mean "
            f"{self.mean_rate / 1e3:.0f} kb/s, holding "
            f"{self.mean_holding:g} s"
            + (
                f", abandon after {self.abandon_after} denials"
                if self.abandon_after is not None
                else ""
            )
        )
        for flow in self.flows:
            k = flow.route_k if flow.route_k is not None else self.route_k
            lines.append(
                f"    {flow.name}: {flow.source} -> {flow.target}, "
                f"load {flow.load:g}, {flow.initial_calls} initial, "
                f"k={k}"
            )
        if self.background:
            lines.append("  background")
            for bg in self.background:
                lines.append(
                    f"    {bg.u} ~ {bg.v}: {bg.traffic}, mean "
                    f"{bg.mean_fraction:.0%} of capacity (peak "
                    f"{bg.peak_fraction:.0%})"
                )
        lines.append(
            f"  policy        controller={self.controller}, "
            f"overload={self.overload_policy}, route_k={self.route_k}"
        )
        overload = (
            self.overload_policy
            if self.overload_policy != "block"
            else "block-only"
        )
        if not self.single_bottleneck and self.overload_policy != "block":
            overload += " (per-link planes)"
        lines.append(
            "  capability    "
            f"shards={'yes' if self.shard_compatible else 'no'}, "
            "checkpoint=yes, "
            f"overload={overload}, "
            f"mbac={'yes' if self.controller != 'always' else 'no'}"
        )
        lines.append(
            f"  run           {self.duration:g} s, snapshot every "
            f"{self.snapshot_every:g} s, seed {self.seed}"
        )
        return "\n".join(lines)
