"""Ablation: GOP-aware prediction for the online heuristic (IV-B outlook).

The paper: "this gap [heuristic vs OPT] suggests a potential for better
heuristics ... the prediction quality could be improved by taking into
account the inherent frame structure of MPEG encoded video."

We sweep the bandwidth granularity delta for the plain AR(1) heuristic
and the GOP-aware variant on the same trace and compare the efficiency /
renegotiation-rate tradeoff.  Expected shape: for matching delta, the
GOP-aware estimator achieves at least comparable bandwidth efficiency
with no more renegotiations (the sawtooth no longer pollutes the
prediction).
"""

from __future__ import annotations

import pytest

from benchmarks._common import fmt, once, print_table, starwars_trace
from repro.core import (
    GopAwareOnlineScheduler,
    GopAwareParams,
    OnlineParams,
    OnlineScheduler,
)
from repro.util.units import kbps

DELTAS_KBPS = (25, 50, 100, 200)


@pytest.fixture(scope="module")
def workload():
    return starwars_trace().as_workload()


def test_gop_aware_prediction(benchmark, workload):
    mean = workload.mean_rate

    def run():
        rows = []
        for delta in DELTAS_KBPS:
            base = OnlineParams(granularity=kbps(delta))
            plain = OnlineScheduler(base).schedule(workload)
            aware = GopAwareOnlineScheduler(
                GopAwareParams(base, gop_length=12)
            ).schedule(workload)
            rows.append(
                {
                    "delta": delta,
                    "plain_renegs": plain.num_renegotiations,
                    "plain_eff": plain.schedule.bandwidth_efficiency(mean),
                    "plain_buf": plain.max_buffer,
                    "aware_renegs": aware.num_renegotiations,
                    "aware_eff": aware.schedule.bandwidth_efficiency(mean),
                    "aware_buf": aware.max_buffer,
                }
            )
        return rows

    rows = once(benchmark, run)
    duration = workload.duration
    print_table(
        "Online heuristic: plain AR(1) vs GOP-aware prediction",
        ["delta (kb/s)", "AR(1) renegs/s", "AR(1) eff",
         "GOP renegs/s", "GOP eff"],
        [
            [r["delta"],
             fmt(r["plain_renegs"] / duration, 2), fmt(r["plain_eff"], 4),
             fmt(r["aware_renegs"] / duration, 2), fmt(r["aware_eff"], 4)]
            for r in rows
        ],
    )

    for r in rows:
        # The GOP-aware estimator buys real bandwidth efficiency (the
        # sawtooth no longer pollutes the level estimate) without moving
        # to a different renegotiation-rate class.
        assert r["aware_eff"] >= r["plain_eff"] + 0.005 or r["plain_eff"] > 0.97
        assert r["aware_renegs"] <= r["plain_renegs"] * 1.45 + 2
        # Buffering stays in the same class (no blow-up).
        assert r["aware_buf"] <= 3 * max(r["plain_buf"], 150_000.0)
