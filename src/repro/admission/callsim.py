"""Call-level dynamics: Poisson arrivals of RCBR calls (Section VI).

"The simulation set-up is as follows.  Each call is a randomly shifted
version of a Star Wars RCBR schedule.  Calls arrive according to a
Poisson process of rate lambda.  We measure both the average utilization
and the renegotiation failure probability.  Each interval of the length
of the trace provides us with one sample for these probabilities.  We
collect samples until the 95% confidence interval for both probabilities
is sufficiently small with respect to the estimated value (within 20%)."

This module is that simulator, with the admission controller pluggable
(:mod:`repro.admission.controllers`).  As the paper notes in footnote 4,
using RCBR schedules instead of per-frame traces means only renegotiation
events are simulated, which is what makes these long runs tractable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.admission.controllers import AdmissionController
from repro.core.schedule import RateSchedule
from repro.queueing.events import EventScheduler
from repro.queueing.link import RcbrLink
from repro.util.rng import SeedLike, as_generator
from repro.util.stats import (
    ConfidenceInterval,
    RelativePrecisionStopper,
    mean_confidence_interval,
)


@dataclass(frozen=True)
class IntervalSample:
    """One trace-length measurement interval."""

    failure_fraction: float
    utilization: float
    blocking_fraction: float
    arrivals: int
    increase_attempts: int


@dataclass
class CallSimResult:
    """Aggregated call-level simulation output."""

    samples: List[IntervalSample] = field(default_factory=list)
    failure_interval: Optional[ConfidenceInterval] = None
    utilization_interval: Optional[ConfidenceInterval] = None

    @property
    def failure_probability(self) -> float:
        return float(np.mean([s.failure_fraction for s in self.samples]))

    @property
    def utilization(self) -> float:
        return float(np.mean([s.utilization for s in self.samples]))

    @property
    def blocking_probability(self) -> float:
        return float(np.mean([s.blocking_fraction for s in self.samples]))

    @property
    def num_intervals(self) -> int:
        return len(self.samples)


class CallLevelSimulator:
    """Poisson arrivals of randomly shifted schedules through a controller."""

    def __init__(
        self,
        base_schedule,
        capacity: float,
        arrival_rate: float,
        controller: AdmissionController,
        seed: SeedLike = None,
        class_weights: Optional[List[float]] = None,
    ) -> None:
        """``base_schedule`` may be one :class:`RateSchedule` or a list of
        them (one per traffic class); arriving calls draw their class
        from ``class_weights`` (uniform by default)."""
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if isinstance(base_schedule, RateSchedule):
            self.class_schedules = [base_schedule]
        else:
            self.class_schedules = list(base_schedule)
            if not self.class_schedules:
                raise ValueError("need at least one schedule class")
        if class_weights is None:
            weights = np.ones(len(self.class_schedules))
        else:
            weights = np.asarray(class_weights, dtype=float)
            if weights.size != len(self.class_schedules):
                raise ValueError("class_weights must match schedule classes")
            if np.any(weights < 0) or weights.sum() <= 0:
                raise ValueError("class_weights must be non-negative, not all 0")
        self.class_probabilities = weights / weights.sum()
        self.base_schedule = self.class_schedules[0]
        self.capacity = capacity
        self.arrival_rate = arrival_rate
        self.controller = controller
        self.rng = as_generator(seed)

        self.engine = EventScheduler()
        self.link = RcbrLink(capacity)
        self._ids = itertools.count()

        # Interval-local counters.
        self._arrivals = 0
        self._blocked = 0
        self._increase_attempts = 0
        self._increase_failures = 0
        self._allocated_mark = 0.0

        self._schedule_next_arrival()

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _schedule_next_arrival(self) -> None:
        gap = float(self.rng.exponential(1.0 / self.arrival_rate))
        self.engine.schedule_in(gap, self._handle_arrival)

    def _handle_arrival(self) -> None:
        self._schedule_next_arrival()
        now = self.engine.now
        self._arrivals += 1
        call_class = int(
            self.rng.choice(len(self.class_schedules), p=self.class_probabilities)
        )
        if not self.controller.admit(self.capacity, now, call_class=call_class):
            self._blocked += 1
            return
        call_id = next(self._ids)
        base = self.class_schedules[call_class]
        schedule = base.shifted(float(self.rng.uniform(0.0, base.duration)))
        rates = schedule.rates
        times = schedule.start_times
        self._request(call_id, float(rates[0]), setup=True)
        self.controller.on_admit(
            call_id, float(rates[0]), now, call_class=call_class
        )
        for index in range(1, rates.size):
            self.engine.schedule_at(
                now + float(times[index]),
                self._handle_renegotiation,
                call_id,
                float(rates[index]),
            )
        self.engine.schedule_at(
            now + schedule.duration, self._handle_departure, call_id
        )

    def _handle_renegotiation(self, call_id, new_rate: float) -> None:
        self._request(call_id, new_rate, setup=False)
        self.controller.on_reservation(call_id, new_rate, self.engine.now)

    def _handle_departure(self, call_id) -> None:
        self.link.release(call_id, self.engine.now)
        self.controller.on_departure(call_id, self.engine.now)

    def _request(self, call_id, new_rate: float, setup: bool) -> None:
        old = self.link.grant_of(call_id)
        outcome = self.link.request(call_id, new_rate, self.engine.now)
        if new_rate > old:
            self._increase_attempts += 1
            if outcome.failed:
                self._increase_failures += 1

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def run_interval(self, interval_seconds: Optional[float] = None) -> IntervalSample:
        """Advance one measurement interval and return its sample."""
        if interval_seconds is None:
            interval_seconds = self.base_schedule.duration
        if interval_seconds <= 0:
            raise ValueError("interval must be positive")
        arrivals0 = self._arrivals
        blocked0 = self._blocked
        attempts0 = self._increase_attempts
        failures0 = self._increase_failures

        end = self.engine.now + interval_seconds
        self.engine.run(until=end)
        self.link.finish(end)

        arrivals = self._arrivals - arrivals0
        blocked = self._blocked - blocked0
        attempts = self._increase_attempts - attempts0
        failures = self._increase_failures - failures0
        allocated = self.link.allocated_bit_seconds - self._allocated_mark
        self._allocated_mark = self.link.allocated_bit_seconds

        return IntervalSample(
            failure_fraction=failures / attempts if attempts else 0.0,
            utilization=allocated / (self.capacity * interval_seconds),
            blocking_fraction=blocked / arrivals if arrivals else 0.0,
            arrivals=arrivals,
            increase_attempts=attempts,
        )


def simulate_admission(
    base_schedule: RateSchedule,
    capacity: float,
    arrival_rate: float,
    controller: AdmissionController,
    seed: SeedLike = None,
    warmup_intervals: int = 1,
    min_intervals: int = 5,
    max_intervals: int = 60,
    relative_precision: float = 0.2,
    failure_target: Optional[float] = None,
) -> CallSimResult:
    """Run the Section VI experiment to the paper's stopping rule.

    Collects trace-length interval samples of the renegotiation failure
    fraction and utilization until both 95% confidence intervals are
    within ``relative_precision`` of their estimates — stopping early on
    the failure probability "if the target failure probability lies to
    the right of the confidence interval".
    """
    simulator = CallLevelSimulator(
        base_schedule, capacity, arrival_rate, controller, seed
    )
    for _ in range(warmup_intervals):
        simulator.run_interval()

    failure_stopper = RelativePrecisionStopper(
        relative_precision=relative_precision,
        min_samples=min_intervals,
        max_samples=max_intervals,
        target_below=failure_target,
    )
    utilization_stopper = RelativePrecisionStopper(
        relative_precision=relative_precision,
        min_samples=min_intervals,
        max_samples=max_intervals,
    )
    result = CallSimResult()
    while True:
        sample = simulator.run_interval()
        result.samples.append(sample)
        failure_stopper.add(sample.failure_fraction)
        utilization_stopper.add(sample.utilization)
        if failure_stopper.should_stop() and utilization_stopper.should_stop():
            break
    result.failure_interval = mean_confidence_interval(failure_stopper.stats)
    result.utilization_interval = mean_confidence_interval(
        utilization_stopper.stats
    )
    return result


def arrival_rate_for_load(
    normalized_load: float,
    capacity: float,
    mean_call_rate: float,
    holding_time: float,
) -> float:
    """lambda for a target normalized offered load.

    normalized load = lambda * holding * mean_rate / capacity, so
    lambda = load * capacity / (mean_rate * holding).
    """
    if normalized_load <= 0:
        raise ValueError("normalized_load must be positive")
    if capacity <= 0 or mean_call_rate <= 0 or holding_time <= 0:
        raise ValueError("capacity, mean rate, and holding time must be positive")
    return normalized_load * capacity / (mean_call_rate * holding_time)
