"""A minimal discrete-event simulation engine.

The call-level admission-control simulator (:mod:`repro.admission.callsim`)
and the signaling network (:mod:`repro.signaling`) are event-driven: call
arrivals, departures, and renegotiation instants are events on a shared
clock.  This engine is a conventional heap-based scheduler with stable
FIFO ordering for simultaneous events and cancellable handles.
"""

from __future__ import annotations

import heapq
import itertools
import math
from operator import attrgetter
from typing import Any, Callable, Dict, List, Optional

import numpy as np


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "sequence", "callback", "args", "cancelled")

    def __init__(
        self, time: float, sequence: int, callback: Callable[..., Any], args: tuple
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (safe to call repeatedly)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        # Hot path of every heap op; avoid building comparison tuples.
        if self.time != other.time:
            return self.time < other.time
        return self.sequence < other.sequence

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6g}, {state}, {self.callback.__name__})"


class EventScheduler:
    """A discrete-event clock with a priority queue of callbacks."""

    def __init__(self) -> None:
        self._queue: list = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        return self._processed

    @property
    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past (now={self._now}, requested={time})"
            )
        event = Event(time, next(self._counter), callback, args)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def run(
        self, until: float = math.inf, max_events: Optional[int] = None
    ) -> None:
        """Process events in time order until the queue empties.

        Stops (without processing) at the first event strictly after
        ``until``; the clock is then advanced to ``until``.  ``max_events``
        bounds runaway simulations.

        Simultaneous events are popped as one batch: the gateway's epoch
        loop lands every renegotiation round trip of an epoch on the
        same timestamp, so re-checking the head against ``until`` for
        each of them is pure overhead (~4% of drain time at 2k
        same-time events on a 50k-event heap — the heap pops themselves
        dominate; see DESIGN.md §14).
        Ordering is unchanged — a batch is popped in heap order, which
        is exactly the (time, sequence) FIFO order of the per-event
        loop, and a callback that schedules a *new* event at the batch
        timestamp sees it processed after the batch in both versions
        (its sequence is larger than every popped event's).  Cancelling
        a later batch member from an earlier callback still works: the
        flag is checked at execution, not at pop.
        """
        queue = self._queue
        heappop = heapq.heappop
        processed = 0
        while queue:
            head = queue[0]
            if head.time > until:
                break
            event = heappop(queue)
            if not (queue and queue[0].time == event.time):
                # Singleton timestamp (departures land on distinct
                # exponential instants): skip the batch list churn.
                if not event.cancelled:
                    self._now = event.time
                    event.callback(*event.args)
                    self._processed += 1
                    processed += 1
                    if max_events is not None and processed >= max_events:
                        return
                continue
            batch_time = event.time
            batch = [event]
            while queue and queue[0].time == batch_time:
                batch.append(heappop(queue))
            for index, event in enumerate(batch):
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback(*event.args)
                self._processed += 1
                processed += 1
                if max_events is not None and processed >= max_events:
                    # Undo the pop-ahead so unprocessed batch members
                    # (cancelled ones included — harmless, they are
                    # discarded unprocessed either way) stay queued.
                    for leftover in batch[index + 1 :]:
                        heapq.heappush(queue, leftover)
                    return
        if until != math.inf and until > self._now:
            self._now = until

    # -- checkpointing --------------------------------------------------
    def state_dict(
        self,
        encode_callback: Callable[[Callable[..., Any]], Any],
        encode_args: Optional[Callable[..., Any]] = None,
    ) -> Dict[str, Any]:
        """Export the full scheduler state for a checkpoint.

        Callbacks are typically bound methods of the owning gateway and
        cannot be serialized directly; ``encode_callback`` maps each one
        to a picklable token (the gateway uses the method name, checked
        against an allowlist).  Event args must already be plain data.

        The export is columnar — times/sequences/cancelled as arrays,
        one small token code per event — because a large service has one
        pending departure per call and a Python tuple per event would
        dominate checkpoint latency.  Every per-event pass is C-driven
        (``map`` + ``attrgetter``); ``encode_callback`` runs once per
        distinct underlying function, not once per event.
        ``encode_args(token_table, token_codes, args_list)`` may pack
        the whole heap's argument tuples into arrays; the symmetric
        ``decode_args`` unpacks.

        Reading the sequence counter consumes one value, so it is
        recreated from the observed value — a net no-op: the next
        ``schedule_at`` sees exactly the sequence it would have.
        """
        next_sequence = next(self._counter)
        self._counter = itertools.count(next_sequence)
        events = self._queue
        count = len(events)
        times = np.fromiter(
            map(attrgetter("time"), events), dtype=np.float64, count=count
        )
        sequences = np.fromiter(
            map(attrgetter("sequence"), events), dtype=np.int64, count=count
        )
        cancelled = np.fromiter(
            map(attrgetter("cancelled"), events), dtype=np.bool_, count=count
        )
        callbacks = list(map(attrgetter("callback"), events))
        try:
            # Bound methods are created fresh at each schedule_at; the
            # underlying function object is the stable identity.
            keys = list(map(attrgetter("__func__"), callbacks))
        except AttributeError:
            keys = callbacks
        representative = dict(zip(keys, callbacks))
        code_of: Dict[Any, int] = {}
        token_table: List[Any] = []
        for key, callback in representative.items():
            code_of[key] = len(token_table)
            token_table.append(encode_callback(callback))
        token_codes = np.fromiter(
            map(code_of.__getitem__, keys), dtype=np.uint16, count=count
        )
        args_list = list(map(attrgetter("args"), events))
        return {
            "now": self._now,
            "processed": self._processed,
            "next_sequence": next_sequence,
            "times": times,
            "sequences": sequences,
            "cancelled": cancelled,
            "token_table": token_table,
            "token_codes": token_codes,
            "args": (
                encode_args(token_table, token_codes, args_list)
                if encode_args is not None
                else args_list
            ),
        }

    def load_state(
        self,
        state: Dict[str, Any],
        decode_callback: Callable[[Any], Callable[..., Any]],
        decode_args: Optional[Callable[..., List[tuple]]] = None,
    ) -> List[Event]:
        """Restore a :meth:`state_dict` export; returns the live events.

        The returned list lets the caller rebuild side indexes into the
        heap (the gateway's pending-departure map keys call ids to the
        very :class:`Event` objects it may later cancel).
        """
        self._now = float(state["now"])
        self._processed = int(state["processed"])
        self._counter = itertools.count(int(state["next_sequence"]))
        token_table = list(state["token_table"])
        callbacks = [decode_callback(token) for token in token_table]
        codes = state["token_codes"]
        if decode_args is not None:
            args_list = decode_args(token_table, codes, state["args"])
        else:
            args_list = state["args"]
        times = state["times"]
        sequences = state["sequences"]
        cancelled = state["cancelled"]
        self._queue = []
        for index in range(len(times)):
            event = Event(
                float(times[index]),
                int(sequences[index]),
                callbacks[int(codes[index])],
                tuple(args_list[index]),
            )
            event.cancelled = bool(cancelled[index])
            self._queue.append(event)
        # The export preserved heap order, but heapify anyway: the
        # invariant is cheap to re-establish and load-bearing.
        heapq.heapify(self._queue)
        return list(self._queue)

    def step(self) -> bool:
        """Process exactly one event; returns False if none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            return True
        return False
