"""Renegotiation-latency machinery."""

import numpy as np
import pytest

from repro.core.latency import delayed_schedule, latency_impact, latency_sweep
from repro.core.schedule import RateSchedule
from repro.traffic.trace import SlottedWorkload


@pytest.fixture
def step_schedule():
    return RateSchedule([0.0, 10.0, 20.0], [100.0, 400.0, 200.0], 30.0)


class TestDelayedSchedule:
    def test_zero_delay_is_identity(self, step_schedule):
        delayed = delayed_schedule(step_schedule, 0.0)
        assert np.allclose(delayed.start_times, step_schedule.start_times)
        assert np.allclose(delayed.rates, step_schedule.rates)

    def test_delay_pushes_changes_later(self, step_schedule):
        delayed = delayed_schedule(step_schedule, 2.0)
        assert np.allclose(delayed.start_times, [0.0, 12.0, 22.0])

    def test_lead_cancels_delay(self, step_schedule):
        compensated = delayed_schedule(step_schedule, 2.0, lead=2.0)
        assert np.allclose(compensated.start_times, step_schedule.start_times)

    def test_lead_beyond_delay_pulls_earlier(self, step_schedule):
        early = delayed_schedule(step_schedule, 1.0, lead=3.0)
        assert np.allclose(early.start_times, [0.0, 8.0, 18.0])

    def test_change_effective_after_end_dropped(self):
        schedule = RateSchedule([0.0, 9.0], [100.0, 900.0], 10.0)
        delayed = delayed_schedule(schedule, 5.0)
        assert delayed.num_segments == 1
        assert delayed.rates[0] == 100.0

    def test_initial_rate_always_at_zero(self, step_schedule):
        delayed = delayed_schedule(step_schedule, 7.0)
        assert delayed.start_times[0] == 0.0
        assert delayed.rates[0] == 100.0

    def test_overtaken_changes_collapse(self):
        # Two changes 1 s apart with 10 s of lead collapse at t=0.
        schedule = RateSchedule([0.0, 5.0, 6.0], [100.0, 300.0, 200.0], 30.0)
        early = delayed_schedule(schedule, 0.0, lead=10.0)
        assert early.start_times[0] == 0.0
        # The surviving head rate is the last overtaking change.
        assert early.rates[0] == 200.0

    def test_validation(self, step_schedule):
        with pytest.raises(ValueError):
            delayed_schedule(step_schedule, -1.0)
        with pytest.raises(ValueError):
            delayed_schedule(step_schedule, 1.0, lead=-1.0)


class TestLatencyImpact:
    @pytest.fixture
    def workload_and_schedule(self):
        # Rate steps up exactly when the arrivals step up.
        arrivals = np.concatenate([np.full(10, 10.0), np.full(10, 50.0)])
        workload = SlottedWorkload(arrivals, slot_duration=1.0)
        schedule = RateSchedule([0.0, 10.0], [10.0, 50.0], 20.0)
        return workload, schedule

    def test_no_delay_no_extra_buffer(self, workload_and_schedule):
        workload, schedule = workload_and_schedule
        impact = latency_impact(workload, schedule, delay=0.0)
        assert impact.max_buffer == pytest.approx(0.0)

    def test_delay_costs_transition_backlog(self, workload_and_schedule):
        workload, schedule = workload_and_schedule
        impact = latency_impact(workload, schedule, delay=3.0)
        # Three slots at 50 arrivals vs 10 drain: 120 bits of backlog.
        assert impact.max_buffer == pytest.approx(120.0)

    def test_lead_compensation_removes_cost(self, workload_and_schedule):
        workload, schedule = workload_and_schedule
        impact = latency_impact(workload, schedule, delay=3.0, lead=3.0)
        assert impact.max_buffer == pytest.approx(0.0)

    def test_loss_at_bound(self, workload_and_schedule):
        workload, schedule = workload_and_schedule
        impact = latency_impact(
            workload, schedule, delay=3.0, buffer_bits=50.0
        )
        assert impact.loss_fraction_at_bound > 0.0

    def test_lead_inflates_average_rate(self, workload_and_schedule):
        workload, schedule = workload_and_schedule
        plain = latency_impact(workload, schedule, delay=0.0)
        led = latency_impact(workload, schedule, delay=0.0, lead=3.0)
        assert led.average_rate >= plain.average_rate


class TestLatencySweep:
    def test_monotone_buffer_growth(self, short_workload, optimal_schedule):
        delays = [0.0, 0.05, 0.2, 0.5]
        impacts = latency_sweep(short_workload, optimal_schedule, delays)
        buffers = [impact.max_buffer for impact in impacts]
        assert all(a <= b + 1e-6 for a, b in zip(buffers, buffers[1:]))

    def test_offline_compensation_flat(self, short_workload, optimal_schedule):
        delays = [0.0, 0.05, 0.2, 0.5]
        impacts = latency_sweep(
            short_workload, optimal_schedule, delays, lead_equals_delay=True
        )
        buffers = [impact.max_buffer for impact in impacts]
        # Leading by the RTT keeps the buffer need at the no-latency value.
        assert max(buffers) <= buffers[0] + 1e-6
