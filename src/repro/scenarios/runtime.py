"""Scenario execution: the topology-general gateway and its harness.

Every scenario runs on one serving core.  A **single-bottleneck** spec
(one link, one flow group) builds the classic gateway via
:func:`~repro.server.gateway.build_gateway` — the degenerate one-edge
topology — while a **multi-bottleneck** spec builds
:class:`ScenarioGateway`, a subclass serving one
:class:`~repro.server.fleet.CallFleet` per flow group over per-edge
:class:`~repro.queueing.link.RcbrLink`s and per-route
:class:`~repro.signaling.network.SignalingPath`s through a shared
:class:`~repro.signaling.topology.SignalingNetwork`, aggregated through
the :mod:`repro.server.topology` stacks.  Both shapes are driven
through :class:`ScenarioHarness`, so shards, checkpoint/resume,
overload planes, and MBAC admission work identically on every spec.

Determinism contract.  Four scenario streams are appended to the
classic six via the SeedSequence spawn-prefix property
(``spawn_generators(seed, 10)[6:]`` leaves streams 0-5 identical):
stream 6 samples the per-group workloads in flow order, stream 7 the
background series in background order, stream 8 seeds route signaling
paths (one shared generator threaded through every route path), and
stream 9 drives the per-link overload planes, polled in link-spec
order each epoch.  Per offered call the draw order is fixed: service
class (overload stream), then workload shift (call stream), then —
only if admitted — holding time (call stream).  Per epoch the merge
order is: background capacity updates in background order, then the
per-link overload planes in link-spec order, then one fleet step per
flow group in flow order, renegotiations issuing in ascending
pool-slot order within each group.  Event-heap callbacks address calls
by ``group * GROUP_STRIDE + slot``.  Same seed (and fault seed) =>
bit-identical snapshot stream for shards ∈ {0, 1, N}, and
``run(T1); save; restore; run(T2)`` equals ``run(T1 + T2)``.

Setup admission differs from the classic runtime by design: a call's
initial rate travels its route as a real reservation
(``path.renegotiate`` from rate 0), so a hop without headroom *blocks*
the call — on a network, admission is the ports' decision, which is
exactly the back-pressure the multi-hop experiments measure.  An MBAC
controller composes with that: it vets the call against its route's
bottleneck capacity *before* the setup reservation travels.
Renegotiations then travel the same path under faults, and granted
rates are mirrored onto every traversed link (taking the minimum
grant, equalizing over-grants down), so per-link utilization and loss
integrals stay honest.

Overload beyond blocking: with ``overload_policy`` ≠ ``block`` the
gateway runs one :class:`~repro.overload.plane.OverloadControlPlane`
per bottleneck link, each driving the existing downgrade/sacrifice
policy through a :class:`~repro.overload.linkagent.LinkScopedOverloadAgent`
whose victim pool is the calls routed over that link.  Downgrade
factors from multiple congested links combine per call by minimum.
With the default ``block`` policy no plane exists and the epoch
sequence is byte-identical to the pre-overload runtime.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

import networkx as nx
import numpy as np

from repro.admission.callsim import arrival_rate_for_load
from repro.faults.injectors import FaultPlan
from repro.overload.linkagent import LinkScopedOverloadAgent
from repro.overload.plane import OverloadControlPlane
from repro.overload.policies import make_overload_policy
from repro.queueing.link import RcbrLink
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.server.config import ServerConfig
from repro.server.fleet import CallFleet
from repro.server.gateway import RcbrGateway, build_gateway
from repro.server.sharded import ShardedFleet
from repro.server.stats import ServerReport
from repro.server.topology import (
    CallBinding,
    FleetStack,
    GroupStats,
    LinkStack,
    PathStack,
)
from repro.signaling.messages import RenegotiationRequest
from repro.signaling.network import SignalingPath
from repro.signaling.topology import SignalingNetwork, _edge_key
from repro.traffic.sources import make_source
from repro.traffic.trace import SlottedWorkload
from repro.util.rng import spawn_generators

#: Pool-slot encoding for event callbacks: ``group * STRIDE + slot``.
GROUP_STRIDE = 1 << 20

#: The reserved port VCI background cross-traffic occupies.
BACKGROUND_VCI = -1

#: The classic gateway's stream count; scenario streams append after it.
_BASE_STREAMS = 6

#: Scenario streams appended after the classic six (see module docstring).
_SCENARIO_STREAMS = 4


def _route_edges(route: Tuple[str, ...]) -> List[Tuple[str, str]]:
    return list(zip(route[:-1], route[1:]))


def scenario_fingerprint(spec: ScenarioSpec) -> str:
    """A stable hash of the spec's *simulation identity*, stamped into
    checkpoints so a resume cannot cross scenarios whose derived
    configs collide (e.g. dumbbell-lrd vs dumbbell-poisson, which
    differ only in background burst structure).  ``duration`` and
    ``snapshot_every`` are run-time arguments — like ``repro serve``'s
    ``--duration``, a resume may extend the end time — so they are
    excluded."""
    identity = spec.to_dict()
    identity.pop("duration", None)
    identity.pop("snapshot_every", None)
    payload = json.dumps(identity, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ScenarioGateway(RcbrGateway):
    """The multi-bottleneck RCBR gateway (see the module docstring)."""

    EVENT_CALLBACK_ALLOWLIST = RcbrGateway.EVENT_CALLBACK_ALLOWLIST | {
        "_handle_group_arrival"
    }

    EVENT_ARG_CODECS = {
        **RcbrGateway.EVENT_ARG_CODECS,
        "_handle_group_arrival": (int,),
    }

    def __init__(
        self,
        spec: ScenarioSpec,
        faults: Optional[FaultPlan] = None,
        shards: int = 0,
        shard_chunk: int = 4096,
    ) -> None:
        if spec.single_bottleneck:
            raise ValueError(
                "single-bottleneck scenarios run on the classic gateway"
                " (use run_scenario)"
            )
        self.spec = spec
        config = ServerConfig(
            capacity=spec.total_capacity,
            load=0.0,  # arrivals are scheduled per flow group below
            controller=spec.controller,
            mean_holding=spec.mean_holding,
            abandon_after=spec.abandon_after,
            hop_delay=spec.links[0].delay,
            initial_calls=0,
            seed=spec.seed,
            source_slots=spec.source_slots,
            shards=shards,
            shard_chunk=shard_chunk,
            overload_policy=spec.overload_policy,
            overload_classes=spec.overload_classes,
            class_weights=spec.class_weights,
        )
        # Scenario streams 6..9; the spawn-prefix property keeps the
        # classic streams 0..5 identical to a same-seed classic run
        # (and streams 6..8 identical to pre-overload scenario runs).
        (
            self._workload_rng,
            self._bg_rng,
            self._path_rng,
            self._link_overload_rng,
        ) = spawn_generators(
            config.seed, _BASE_STREAMS + _SCENARIO_STREAMS
        )[_BASE_STREAMS:]

        source = make_source(
            spec.traffic,
            mean_rate=spec.mean_rate,
            slot_duration=spec.slot_duration,
        )
        self._group_workloads = [
            source.sample_workload(spec.source_slots, seed=self._workload_rng)
            for _ in spec.flows
        ]

        graph = nx.Graph()
        for link in spec.links:
            graph.add_edge(link.u, link.v, capacity=link.capacity)
        self.network = SignalingNetwork(graph, seed=0)
        self._edge_keys = [
            _edge_key(link.u, link.v) for link in spec.links
        ]
        self._edge_capacity = {
            key: link.capacity
            for key, link in zip(self._edge_keys, spec.links)
        }
        self._edge_delay = {
            key: link.delay for key, link in zip(self._edge_keys, spec.links)
        }
        self._edge_ports = {
            key: self.network.port_between(link.u, link.v)
            for key, link in zip(self._edge_keys, spec.links)
        }

        # Background rate series (bits/s per epoch), sampled up front in
        # background order and clamped at the peak fraction so the RCBR
        # side always keeps some capacity.
        self._bg_keys = []
        self._bg_series: Dict[Tuple, np.ndarray] = {}
        self._bg_current: Dict[Tuple, float] = {}
        for bg in spec.background:
            key = _edge_key(bg.u, bg.v)
            capacity = self._edge_capacity[key]
            bg_source = make_source(
                bg.traffic,
                mean_rate=bg.mean_fraction * capacity,
                slot_duration=spec.slot_duration,
            )
            sample = bg_source.sample_workload(
                spec.source_slots, seed=self._bg_rng
            )
            rates = np.minimum(
                sample.bits_per_slot / spec.slot_duration,
                bg.peak_fraction * capacity,
            )
            self._bg_keys.append(key)
            self._bg_series[key] = rates
            self._bg_current[key] = 0.0

        self.group_stats = [GroupStats() for _ in spec.flows]

        super().__init__(self._group_workloads[0], config, faults=faults)

        # The base class built a single plane over the whole-topology
        # LinkStack — meaningless pressure.  Replace it with one plane
        # per bottleneck link, each driving the configured policy over
        # the calls routed across that link; all planes share the
        # dedicated link-overload stream, polled in link-spec order.
        # With the default "block" policy there are no planes and the
        # epoch sequence (and fingerprint) is unchanged.
        self.overload_plane = None
        self._link_planes: List[Tuple[Tuple[str, str], Any]] = []
        if config.overload_policy not in (None, "block"):
            for key in self._edge_keys:
                if config.overload_policy == "downgrade":
                    policy = make_overload_policy(
                        "downgrade",
                        ladder=config.downgrade_ladder,
                        dwell=config.overload_dwell,
                    )
                else:
                    policy = make_overload_policy(
                        "sacrifice",
                        queue_size=config.sacrifice_queue,
                        max_per_epoch=config.sacrifice_max_per_epoch,
                    )
                agent = LinkScopedOverloadAgent(
                    self, key, self._edge_links[key]
                )
                plane = OverloadControlPlane(
                    agent,
                    policy,
                    enter=config.overload_enter,
                    exit_=config.overload_exit,
                    dwell=config.overload_dwell,
                    num_classes=self.num_classes,
                    rng=self._link_overload_rng,
                )
                self._link_planes.append((key, plane))

        # Per-route shared signaling paths, created lazily in call
        # order; the stack view feeds the base snapshot fields and
        # recreates the routes on restore via the factory.
        self._route_paths: Dict[Tuple[str, ...], SignalingPath] = {}
        self.path = PathStack(  # type: ignore[assignment]
            self._route_paths, factory=self._path_for_route
        )
        self._bindings: Dict[int, CallBinding] = {}

        # Per-group Poisson arrival rates against the (k=1) shortest
        # route's bottleneck capacity — the same Erlang identity the
        # classic config uses, so per-link offered loads are additive.
        self._group_rates: List[float] = []
        for flow, workload in zip(spec.flows, self._group_workloads):
            if flow.load <= 0:
                self._group_rates.append(0.0)
                continue
            route = self.network.k_shortest_paths(
                flow.source, flow.target, 1
            )[0]
            bottleneck = min(
                self._edge_capacity[_edge_key(u, v)]
                for u, v in _route_edges(tuple(route))
            )
            self._group_rates.append(
                arrival_rate_for_load(
                    flow.load,
                    bottleneck,
                    workload.mean_rate,
                    self.mean_holding,
                )
            )

    # ------------------------------------------------------------------
    # Construction seams
    # ------------------------------------------------------------------
    def _build_fleet(
        self, workload: SlottedWorkload, config: ServerConfig
    ) -> FleetStack:
        if config.shards:
            self._fleets = [
                ShardedFleet(
                    group_workload,
                    self.params,
                    buffer_size=config.buffer_bits,
                    initial_capacity=256,
                    num_shards=config.shards,
                    chunk_size=config.shard_chunk,
                    seed=config.seed,
                )
                for group_workload in self._group_workloads
            ]
        else:
            self._fleets = [
                CallFleet(
                    group_workload,
                    self.params,
                    buffer_size=config.buffer_bits,
                    initial_capacity=256,
                )
                for group_workload in self._group_workloads
            ]
        return FleetStack(self._fleets)  # type: ignore[return-value]

    def _build_link(self, config: ServerConfig) -> LinkStack:
        self._edge_links = {
            key: RcbrLink(self._edge_capacity[key])
            for key in self._edge_keys
        }
        return LinkStack(  # type: ignore[return-value]
            [self._edge_links[key] for key in self._edge_keys],
            config.capacity,
        )

    def _build_ports(self, config: ServerConfig):
        return [self._edge_ports[key] for key in self._edge_keys]

    def _path_for_route(self, route: Tuple[str, ...]) -> SignalingPath:
        path = self._route_paths.get(route)
        if path is None:
            edges = _route_edges(route)
            delays = [self._edge_delay[_edge_key(u, v)] for u, v in edges]
            path = SignalingPath(
                [self._edge_ports[_edge_key(u, v)] for u, v in edges],
                # SignalingPath models one scalar per-hop delay; the
                # mean preserves the route's total round-trip time
                # (2 * sum of link delays).
                hop_delay=sum(delays) / len(delays),
                seed=self._path_rng,
                faults=self.faults,
                request_timeout=self.config.request_timeout,
                max_retries=self.config.max_retries,
                retry_backoff=self.config.retry_backoff,
                retry_jitter=self.config.retry_jitter,
                retry_seed=self._path_rng,
            )
            self._route_paths[route] = path
        return path

    def close(self) -> None:
        self.fleet.close()

    # ------------------------------------------------------------------
    # Call lifecycle
    # ------------------------------------------------------------------
    def preload(self) -> None:
        if self._preloaded:
            return
        self._preloaded = True
        for group, flow in enumerate(self.spec.flows):
            for _ in range(flow.initial_calls):
                self._admit_group_call(group, 0.0)
        for group in range(len(self.spec.flows)):
            self._schedule_group_arrival(group)

    def _schedule_group_arrival(self, group: int) -> None:
        rate = self._group_rates[group]
        if rate <= 0:
            return
        gap = float(self._arrival_rng.exponential(1.0 / rate))
        self.engine.schedule_in(gap, self._handle_group_arrival, group)

    def _handle_group_arrival(self, group: int) -> None:
        self._admit_group_call(group, self.engine.now)
        self._schedule_group_arrival(group)

    def _admit_group_call(self, group: int, now: float) -> Optional[int]:
        """Offer one call to ``group``; admission is route setup."""
        flow = self.spec.flows[group]
        stats = self.group_stats[group]
        fleet = self._fleets[group]
        self.arrivals += 1
        stats.arrivals += 1
        call_class = int(
            self._overload_rng.choice(self.num_classes, p=self._class_probs)
        )
        self.offered.on_arrival(call_class)
        shift = int(
            self._call_rng.integers(self._group_workloads[group].num_slots)
        )
        call_id = next(self._call_ids)
        slot, initial_rate = fleet.admit(call_id, shift, call_class)
        k = flow.route_k if flow.route_k is not None else self.spec.route_k
        route = tuple(
            self.network.select_route(
                flow.source, flow.target, k=k, rate_hint=initial_rate
            )
        )
        bottleneck = min(
            self._edge_capacity[_edge_key(u, v)]
            for u, v in _route_edges(route)
        )
        path = self._path_for_route(route)
        admitted = self.controller.admit(
            bottleneck, now, call_class=call_class
        )
        if admitted:
            # The initial reservation travels the route for real: any
            # hop without headroom denies (and rolls back upstream
            # commits), blocking the call.
            admitted = path.renegotiate(
                RenegotiationRequest(
                    vci=call_id,
                    old_rate=0.0,
                    new_rate=initial_rate,
                    time=now,
                )
            )
        if not admitted:
            fleet.remove(slot)
            self.blocked += 1
            stats.blocked += 1
            self.offered.on_blocked(call_class)
            return None
        holding = float(self._call_rng.exponential(self.mean_holding))
        return self._install_group_call(
            group, slot, call_id, initial_rate, holding, call_class, now,
            route, path,
        )

    def _install_group_call(
        self,
        group: int,
        slot: int,
        call_id: int,
        initial_rate: float,
        holding: float,
        call_class: int,
        now: float,
        route: Tuple[str, ...],
        path: SignalingPath,
    ) -> int:
        fleet = self._fleets[group]
        stats = self.group_stats[group]
        edge_keys = tuple(
            _edge_key(u, v) for u, v in _route_edges(route)
        )
        links = tuple(self._edge_links[key] for key in edge_keys)
        granted = initial_rate
        failed = False
        for link in links:
            outcome = link.request(call_id, initial_rate, now)
            granted = min(granted, outcome.granted_rate)
            failed = failed or outcome.failed
        if failed:
            self.setup_shortfalls += 1
            for link in links:
                if link.grant_of(call_id) > granted + 1e-12:
                    link.request(call_id, granted, now)
        fleet.set_rate(slot, granted)
        self.controller.on_admit(call_id, granted, now, call_class=call_class)
        self.admitted += 1
        stats.admitted += 1
        self.offered.on_admitted(call_class)
        gslot = group * GROUP_STRIDE + slot
        self._bindings[gslot] = CallBinding(
            group=group, route=route, path=path, links=links,
            edge_keys=edge_keys,
        )
        self._departure_events[call_id] = self.engine.schedule_at(
            now + holding, self._handle_departure, gslot, call_id
        )
        return call_id

    def _handle_departure(self, gslot: int, call_id: int) -> None:
        group, slot = divmod(gslot, GROUP_STRIDE)
        fleet = self._fleets[group]
        if fleet.call_id[slot] != call_id:
            return  # stale event: the call already left this pool slot
        now = self.engine.now
        binding = self._bindings.pop(gslot)
        self.offered.on_departure(int(fleet.call_class[slot]))
        for link in binding.links:
            link.release(call_id, now)
        binding.path.release(call_id)
        self.controller.on_departure(call_id, now)
        fleet.remove(slot)
        self._departure_events.pop(call_id, None)
        self.departed += 1
        self.group_stats[group].departed += 1

    def _abandon(self, gslot: int, call_id: int) -> None:
        self.group_stats[gslot // GROUP_STRIDE].abandoned += 1
        super()._abandon(gslot, call_id)

    # ------------------------------------------------------------------
    # Per-link overload protocol (driven by LinkScopedOverloadAgent)
    # ------------------------------------------------------------------
    def link_members(self, key: Tuple[str, str]) -> List[Tuple[int, int]]:
        """Live calls routed over ``key``, ascending ``(group, slot)``
        — the multi-link mirror of the classic ascending-slot walk."""
        return [
            divmod(gslot, GROUP_STRIDE)
            for gslot in sorted(
                gslot
                for gslot, binding in self._bindings.items()
                if key in binding.edge_keys
            )
        ]

    def link_member_mask(self, key: Tuple[str, str]) -> np.ndarray:
        """The same membership as a boolean column over the
        concatenated group fleets (fixed group order)."""
        sizes = [int(fleet.active.size) for fleet in self._fleets]
        offsets = np.concatenate(([0], np.cumsum(sizes)))
        mask = np.zeros(int(offsets[-1]), dtype=bool)
        for gslot, binding in self._bindings.items():
            if key in binding.edge_keys:
                group, slot = divmod(gslot, GROUP_STRIDE)
                mask[int(offsets[group]) + slot] = True
        return mask

    def shrink_member_call(
        self, group: int, slot: int, ratio: float, now: float
    ) -> bool:
        """Shrink one call's granted rate by ``ratio`` on *every* link
        of its route (a decrease always succeeds), moving the ports and
        the admission controller with it."""
        fleet = self._fleets[group]
        old_rate = float(fleet.rate[slot])
        new_rate = fleet.quantize(old_rate * ratio)
        if new_rate >= old_rate:
            return False
        gslot = group * GROUP_STRIDE + slot
        binding = self._bindings[gslot]
        call_id = int(fleet.call_id[slot])
        granted = new_rate
        for link in binding.links:
            outcome = link.request(call_id, new_rate, now)
            granted = min(granted, outcome.granted_rate)
        for key in binding.edge_keys:
            self._edge_ports[key].reprovision(call_id, granted - old_rate)
        self.controller.on_reservation(call_id, granted, now)
        fleet.set_rate(slot, granted)
        return True

    def evict_member_call(
        self, group: int, slot: int, now: float
    ) -> Tuple[int, int, float, int]:
        """Tear one call out of service on a link plane's orders.

        The classic ``overload_evict`` plus the flow group appended to
        the queue entry, so readmission re-routes within the right
        group.  Accounted as a departure plus an abandonment, same as
        the classic gateway."""
        fleet = self._fleets[group]
        gslot = group * GROUP_STRIDE + slot
        call_id = int(fleet.call_id[slot])
        call_class = int(fleet.call_class[slot])
        shift = int(fleet.shift[slot])
        event = self._departure_events.pop(call_id, None)
        remaining = self.mean_holding
        if event is not None:
            event.cancel()
            remaining = max(0.0, event.time - now)
        binding = self._bindings.pop(gslot)
        self.offered.on_departure(call_class)
        for link in binding.links:
            link.release(call_id, now)
        binding.path.release(call_id)
        self.controller.on_departure(call_id, now)
        fleet.remove(slot)
        self.departed += 1
        self.abandoned += 1
        stats = self.group_stats[group]
        stats.departed += 1
        stats.abandoned += 1
        return call_class, shift, remaining, group

    def readmit_member_call(
        self, entry: Tuple[int, int, float, int], now: float
    ) -> int:
        """Put a sacrificed call back in service for its remaining
        holding time under a fresh call id and a freshly selected route.
        Like the classic readmission, the admission controller is not
        consulted and the route reservation is installed directly — the
        plane only readmits once pressure is below the exit threshold."""
        call_class, shift, remaining, group = (
            int(entry[0]), int(entry[1]), float(entry[2]), int(entry[3]),
        )
        flow = self.spec.flows[group]
        fleet = self._fleets[group]
        stats = self.group_stats[group]
        self.arrivals += 1
        stats.arrivals += 1
        self.offered.on_arrival(call_class)
        call_id = next(self._call_ids)
        slot, initial_rate = fleet.admit(call_id, shift, call_class)
        k = flow.route_k if flow.route_k is not None else self.spec.route_k
        route = tuple(
            self.network.select_route(
                flow.source, flow.target, k=k, rate_hint=initial_rate
            )
        )
        path = self._path_for_route(route)
        call_id_installed = self._install_group_call(
            group, slot, call_id, initial_rate, remaining, call_class,
            now, route, path,
        )
        # Mirror the link grants onto the route ports directly (no
        # signaling round trip): readmission is the plane's decision.
        granted = float(fleet.rate[slot])
        for key in self._bindings[group * GROUP_STRIDE + slot].edge_keys:
            self._edge_ports[key].provision(call_id, granted)
        return call_id_installed

    # ------------------------------------------------------------------
    # Renegotiation round trips
    # ------------------------------------------------------------------
    def _issue(
        self, gslot: int, call_id: int, new_rate: float, time: float
    ) -> None:
        group, slot = divmod(gslot, GROUP_STRIDE)
        fleet = self._fleets[group]
        binding = self._bindings[gslot]
        old_rate = float(fleet.rate[slot])
        increase = new_rate > old_rate
        fleet.pending[slot] = True
        self.reneg_requests += 1
        self.group_stats[group].reneg_requests += 1
        if (
            increase
            and self.faults is not None
            and self.faults.should_deny(time)
        ):
            self.injected_denials += 1
            granted = False
        else:
            granted = binding.path.renegotiate(
                RenegotiationRequest(
                    vci=call_id,
                    old_rate=old_rate,
                    new_rate=new_rate,
                    time=time,
                )
            )
        apply = granted or not increase
        self.engine.schedule_at(
            time + binding.path.round_trip_time,
            self._complete,
            gslot,
            call_id,
            new_rate,
            granted,
            apply,
        )

    def _complete(
        self,
        gslot: int,
        call_id: int,
        new_rate: float,
        granted: bool,
        apply: bool,
    ) -> None:
        group, slot = divmod(gslot, GROUP_STRIDE)
        fleet = self._fleets[group]
        if fleet.call_id[slot] != call_id:
            return  # the call departed while its cell was in flight
        fleet.pending[slot] = False
        now = self.engine.now
        stats = self.group_stats[group]
        if apply:
            binding = self._bindings[gslot]
            granted_rate = new_rate
            failed = False
            for link in binding.links:
                outcome = link.request(call_id, new_rate, now)
                granted_rate = min(granted_rate, outcome.granted_rate)
                failed = failed or outcome.failed
            if failed:
                self.link_shortfalls += 1
                # Equalize over-granting links down to the route
                # bottleneck so per-link utilization stays honest; the
                # binding link keeps the unmet demand (-> lost_bits).
                for link in binding.links:
                    if link.grant_of(call_id) > granted_rate + 1e-12:
                        link.request(call_id, granted_rate, now)
            fleet.set_rate(slot, granted_rate)
            self.controller.on_reservation(call_id, granted_rate, now)
            fleet.streak[slot] = 0
            return
        self.reneg_denied += 1
        stats.reneg_denied += 1
        streak = int(fleet.streak[slot]) + 1
        fleet.streak[slot] = streak
        if (
            self.config.abandon_after is not None
            and streak >= self.config.abandon_after
        ):
            self._abandon(gslot, call_id)

    # ------------------------------------------------------------------
    # The epoch step
    # ------------------------------------------------------------------
    def _step_epoch(self, tick: int, now: float, end_of_slot: float) -> None:
        self._apply_background(tick, now)
        downgrade = self._poll_link_planes(tick, now)
        for group, fleet in enumerate(self._fleets):
            step = fleet.step(
                tick,
                downgrade=None if downgrade is None else downgrade[group],
            )
            if step.num_requests:
                self._issue_group_epoch(group, step, end_of_slot)

    def _poll_link_planes(
        self, tick: int, now: float
    ) -> Optional[List[Optional[np.ndarray]]]:
        """Drive each per-link plane once; fold their downgrade factors
        (masked to each link's member calls) into per-group columns by
        minimum.  Returns None when no plane asked for a downgrade —
        including always, when the policy is ``block`` (no planes)."""
        if not self._link_planes:
            return None
        combined: Optional[List[np.ndarray]] = None
        sizes = [int(fleet.active.size) for fleet in self._fleets]
        for key, plane in self._link_planes:
            factors = plane.on_epoch(tick, now)
            if factors is None:
                continue
            mask = self.link_member_mask(key)
            if combined is None:
                combined = [np.ones(size) for size in sizes]
            offset = 0
            for group, size in enumerate(sizes):
                member = mask[offset:offset + size]
                np.minimum(
                    combined[group],
                    np.where(member, factors[offset:offset + size], 1.0),
                    out=combined[group],
                )
                offset += size
        if combined is None:
            return None
        return combined  # type: ignore[return-value]

    def _issue_group_epoch(self, group: int, step, end_of_slot: float) -> None:
        fleet = self._fleets[group]
        call_ids = fleet.call_id[step.slots]
        base = group * GROUP_STRIDE
        for slot, call_id, candidate in zip(
            step.slots.tolist(),
            call_ids.tolist(),
            step.candidates.tolist(),
        ):
            self._issue(base + slot, call_id, candidate, end_of_slot)

    def _apply_background(self, tick: int, now: float) -> None:
        for key in self._bg_keys:
            series = self._bg_series[key]
            rate = float(series[tick % series.size])
            previous = self._bg_current[key]
            if rate == previous:
                continue
            self._bg_current[key] = rate
            self._edge_ports[key].reprovision(BACKGROUND_VCI, rate - previous)
            self._edge_links[key].set_capacity(
                self._edge_capacity[key] - rate, now
            )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _network_section(self) -> Dict[str, object]:
        planes = dict(self._link_planes)
        links: Dict[str, Dict[str, object]] = {}
        for link_spec, key in zip(self.spec.links, self._edge_keys):
            link = self._edge_links[key]
            port = self._edge_ports[key]
            entry: Dict[str, object] = {
                "capacity": float(link.capacity),
                "allocated": float(link.allocated),
                "lost_bits": float(link.lost_bits),
                "failures": int(link.failure_count),
                "port_denied": int(port.requests_denied),
                "background": float(self._bg_current.get(key, 0.0)),
            }
            # Only present when per-link planes exist, so block-policy
            # snapshot streams keep their pre-overload shape (and
            # fingerprints).
            plane = planes.get(key)
            if plane is not None:
                entry["overload"] = plane.section()
            links[f"{link_spec.u}~{link_spec.v}"] = entry
        groups: Dict[str, Dict[str, object]] = {}
        for flow, fleet, stats in zip(
            self.spec.flows, self._fleets, self.group_stats
        ):
            groups[flow.name] = {
                "active": int(fleet.num_active),
                "arrivals": stats.arrivals,
                "blocked": stats.blocked,
                "admitted": stats.admitted,
                "departed": stats.departed,
                "abandoned": stats.abandoned,
                "reneg_requests": stats.reneg_requests,
                "reneg_denied": stats.reneg_denied,
            }
        return {"links": links, "groups": groups}

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """The base export (the stacks serialize per group/edge/route)
        plus the scenario-only state: call-route bindings, group
        counters, applied background rates, the two live scenario
        streams, and the per-link overload planes.

        The workload stream (6) and background stream (7) are consumed
        only during ``__init__`` — a restoring gateway re-draws them
        identically from the spec — so like the classic workload
        stream, they are not captured.
        """
        state = super().state_dict()
        state["scenario"] = {
            "bindings": [
                [gslot, list(binding.route)]
                for gslot, binding in self._bindings.items()
            ],
            "group_stats": [
                dataclasses.asdict(stats) for stats in self.group_stats
            ],
            "bg_current": [
                self._bg_current[key] for key in self._bg_keys
            ],
            "rng": {
                "path": self._path_rng.bit_generator.state,
                "link_overload": (
                    self._link_overload_rng.bit_generator.state
                ),
            },
            "link_planes": [
                plane.state_dict() for _, plane in self._link_planes
            ],
        }
        return state

    def load_state(self, state: Dict[str, object]) -> None:
        scenario = state["scenario"]  # type: ignore[index]
        super().load_state(state)
        # The PathStack restore above recreated every route's path (in
        # creation order) through the factory; bindings can now resolve
        # routes back to live paths and links.
        self._bindings = {}
        for gslot, route in scenario["bindings"]:  # type: ignore[index]
            gslot = int(gslot)
            route = tuple(route)
            edge_keys = tuple(
                _edge_key(u, v) for u, v in _route_edges(route)
            )
            self._bindings[gslot] = CallBinding(
                group=gslot // GROUP_STRIDE,
                route=route,
                path=self._route_paths[route],
                links=tuple(self._edge_links[key] for key in edge_keys),
                edge_keys=edge_keys,
            )
        self.group_stats = [
            GroupStats(**stats)
            for stats in scenario["group_stats"]  # type: ignore[index]
        ]
        for key, value in zip(
            self._bg_keys, scenario["bg_current"]  # type: ignore[index]
        ):
            self._bg_current[key] = float(value)
        rng_states = scenario["rng"]  # type: ignore[index]
        self._path_rng.bit_generator.state = rng_states["path"]
        self._link_overload_rng.bit_generator.state = (
            rng_states["link_overload"]
        )
        plane_states = scenario["link_planes"]  # type: ignore[index]
        if len(plane_states) != len(self._link_planes):
            raise ValueError(
                f"checkpoint carries {len(plane_states)} link planes, "
                f"this gateway runs {len(self._link_planes)}"
            )
        for (_, plane), plane_state in zip(
            self._link_planes, plane_states
        ):
            plane.load_state(plane_state)


# ----------------------------------------------------------------------
# The harness and dispatcher
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioResult:
    """A scenario run: the classic report plus scenario-shaped views."""

    spec: ScenarioSpec
    report: ServerReport
    #: Per-flow-group and per-link final state (uniform across both
    #: runtime shapes; derived from the classic counters when the
    #: scenario ran single-bottleneck).
    groups: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    links: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def fingerprint(self) -> str:
        return self.report.fingerprint

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.spec.to_dict(),
            "groups": self.groups,
            "links": self.links,
            **self.report.to_dict(),
        }

    def summary_lines(self) -> List[str]:
        final = self.report.final
        denial = (
            final.reneg_denied / final.reneg_requests
            if final.reneg_requests
            else 0.0
        )
        blocking = final.blocked / final.arrivals if final.arrivals else 0.0
        lines = [
            f"scenario:        {self.spec.name}",
            f"duration:        {self.report.duration:g} s "
            f"({self.report.epochs} epochs)",
            f"calls:           {final.arrivals} offered, "
            f"{final.admitted} admitted, {final.blocked} blocked "
            f"({blocking:.1%}), {final.abandoned} abandoned",
            f"renegotiations:  {final.reneg_requests} requests, "
            f"{final.reneg_denied} denied ({denial:.1%})",
            f"bits lost:       {final.bits_lost_overflow:.0f} overflow, "
            f"{final.bits_lost_link:.0f} link",
            f"mean utilization: {self.report.mean_utilization:.3f}",
        ]
        for name, group in self.groups.items():
            requests = group.get("reneg_requests", 0)
            denied = group.get("reneg_denied", 0)
            fraction = denied / requests if requests else 0.0
            lines.append(
                f"  group {name}: active={group.get('active', 0)} "
                f"blocked={group.get('blocked', 0)} "
                f"denied={denied}/{requests} ({fraction:.1%}) "
                f"abandoned={group.get('abandoned', 0)}"
            )
        for name, link in self.links.items():
            lines.append(
                f"  link {name}: lost_bits={link.get('lost_bits', 0.0):.0f} "
                f"failures={link.get('failures', 0)} "
                f"port_denied={link.get('port_denied', 0)}"
            )
        lines.append(f"fingerprint:     {self.fingerprint}")
        return lines


class BackgroundDriver:
    """The single-bottleneck background epoch hook as an object.

    Same arithmetic as always (stream 7 series, last port, set_capacity
    on change) but with its applied rate held where a resume can reach
    it: the hook runs *before* the tick it gates, so a checkpoint
    stamped ``next_tick=T`` saw the background rate of tick ``T - 1``
    applied — :meth:`sync_to` re-derives that from the series, making
    kill-and-resume bit-exact with no extra checkpoint state.
    """

    def __init__(self, spec: ScenarioSpec, gateway: RcbrGateway) -> None:
        link = spec.links[0]
        bg = spec.background[0]
        # Stream 7 is the scenario background stream in both runtime
        # shapes (see the module docstring).
        bg_rng = spawn_generators(spec.seed, _BASE_STREAMS + 2)[
            _BASE_STREAMS + 1
        ]
        bg_source = make_source(
            bg.traffic,
            mean_rate=bg.mean_fraction * link.capacity,
            slot_duration=spec.slot_duration,
        )
        self._series = np.minimum(
            bg_source.sample_workload(
                spec.source_slots, seed=bg_rng
            ).bits_per_slot
            / spec.slot_duration,
            bg.peak_fraction * link.capacity,
        )
        self._capacity = link.capacity
        self._port = gateway.ports[-1]
        self._rate = 0.0

    def __call__(self, tick: int, gw: RcbrGateway) -> None:
        rate = float(self._series[tick % self._series.size])
        previous = self._rate
        if rate != previous:
            self._rate = rate
            self._port.reprovision(BACKGROUND_VCI, rate - previous)
            gw.link.set_capacity(self._capacity - rate, gw.engine.now)

    def sync_to(self, next_tick: int) -> None:
        """Align the applied-rate latch with a restored gateway."""
        if next_tick > 0:
            self._rate = float(
                self._series[(next_tick - 1) % self._series.size]
            )
        else:
            self._rate = 0.0


class ScenarioHarness:
    """One scenario, fully armed: run, checkpoint, restore, report.

    Builds the right gateway for the spec's shape — the classic
    (optionally sharded) gateway for a single-bottleneck spec, the
    :class:`ScenarioGateway` otherwise — and exposes the uniform
    lifecycle ``repro serve`` drives: :meth:`run` with an epoch hook,
    :meth:`save`/:meth:`restore` with scenario-stamped checkpoints, and
    :meth:`result` to shape the final report.  Construction and draw
    order are byte-identical to the pre-harness dispatcher.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        *,
        shards: int = 0,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        from repro.server.checkpoint import (
            checkpoint_code_version,
            config_fingerprint,
            workload_fingerprint,
        )

        self.spec = spec
        self.shards = int(shards)
        self._background: Optional[BackgroundDriver] = None
        self._section: Optional[Dict[str, object]] = None
        if spec.single_bottleneck:
            link = spec.links[0]
            flow = spec.flows[0]
            config = ServerConfig(
                capacity=link.capacity,
                load=flow.load,
                controller=spec.controller,
                mean_holding=spec.mean_holding,
                abandon_after=spec.abandon_after,
                num_hops=spec.num_hops,
                hop_delay=link.delay,
                initial_calls=flow.initial_calls,
                seed=spec.seed,
                source_slots=spec.source_slots,
                shards=shards,
                overload_policy=spec.overload_policy,
                overload_classes=spec.overload_classes,
                class_weights=spec.class_weights,
            )
            source = make_source(
                spec.traffic,
                mean_rate=spec.mean_rate,
                slot_duration=spec.slot_duration,
            )
            self.gateway = build_gateway(
                None, config, faults=faults, source=source
            )
            if spec.background:
                self._background = BackgroundDriver(spec, self.gateway)
        else:
            self.gateway = ScenarioGateway(
                spec, faults=faults, shards=shards
            )
        # Stamp checkpoints with the scenario identity up front: two
        # specs can derive identical configs and workloads (the
        # dumbbell twins differ only in background structure), and a
        # resume across them must refuse, not drift.
        config = self.gateway.config
        self.gateway._checkpoint_stamps = {
            "code_version": checkpoint_code_version(),
            "config_hash": config_fingerprint(config),
            "workload_hash": workload_fingerprint(self.gateway.workload),
            "config": config.to_dict(),
            "scenario_hash": scenario_fingerprint(spec),
            "scenario": spec.to_dict(),
        }

    def run(
        self,
        duration: Optional[float] = None,
        snapshot_every: Optional[float] = None,
        epoch_hook=None,
    ) -> ServerReport:
        spec = self.spec
        background = self._background
        if epoch_hook is None:
            hook = background
        elif background is None:
            hook = epoch_hook
        else:
            def hook(tick: int, gw: RcbrGateway):
                # The serve hook first: a stop/save request breaks the
                # loop *before* the tick is stepped, so background for
                # this tick must not apply either (it applies on the
                # resumed run's first tick instead).
                stop = epoch_hook(tick, gw)
                if stop:
                    return stop
                background(tick, gw)
                return None
        report = self.gateway.run(
            spec.duration if duration is None else duration,
            snapshot_every=(
                spec.snapshot_every
                if snapshot_every is None
                else snapshot_every
            ),
            epoch_hook=hook,
        )
        if isinstance(self.gateway, ScenarioGateway):
            # Captured while the gateway is open: sharded fleet columns
            # live in shared memory that close() unlinks.
            self._section = self.gateway._network_section()
        return report

    def save(self, path, defer: bool = False) -> Dict[str, Any]:
        return self.gateway.save(path, defer=defer)

    def checkpoint_sync(self) -> None:
        self.gateway.checkpoint_sync()

    def restore(self, path) -> None:
        """Resume from a checkpoint of the *same scenario* (spec hash
        enforced on top of the config/workload/code stamps)."""
        from repro.server.checkpoint import (
            read_checkpoint,
            workload_fingerprint,
        )

        self.gateway.checkpoint_sync()
        state = read_checkpoint(
            path,
            self.gateway.config,
            workload_hash=workload_fingerprint(self.gateway.workload),
            expected_stamps={
                "scenario_hash": scenario_fingerprint(self.spec)
            },
        )
        self.gateway.load_state(state)
        if self._background is not None:
            self._background.sync_to(self.gateway._next_tick)

    def result(self, report: ServerReport) -> ScenarioResult:
        spec = self.spec
        if isinstance(self.gateway, ScenarioGateway):
            section = self._section
            if section is None:
                section = self.gateway._network_section()
            return ScenarioResult(
                spec=spec,
                report=report,
                groups=section["groups"],  # type: ignore[arg-type]
                links=section["links"],  # type: ignore[arg-type]
            )
        link = spec.links[0]
        flow = spec.flows[0]
        final = report.final
        groups = {
            flow.name: {
                "active": final.active_calls,
                "arrivals": final.arrivals,
                "blocked": final.blocked,
                "admitted": final.admitted,
                "departed": final.departed,
                "abandoned": final.abandoned,
                "reneg_requests": final.reneg_requests,
                "reneg_denied": final.reneg_denied,
            }
        }
        links = {
            f"{link.u}~{link.v}": {
                "capacity": link.capacity,
                "lost_bits": final.bits_lost_link,
                "failures": final.reneg_denied,
                "port_denied": final.reneg_denied,
                "background": (
                    spec.background[0].mean_fraction * link.capacity
                    if spec.background
                    else 0.0
                ),
            }
        }
        return ScenarioResult(
            spec=spec, report=report, groups=groups, links=links
        )

    def __enter__(self) -> "ScenarioHarness":
        self.gateway.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.gateway.__exit__(exc_type, exc, tb)


def run_scenario(
    scenario: Union[str, ScenarioSpec],
    *,
    seed: Optional[int] = None,
    duration: Optional[float] = None,
    snapshot_every: Optional[float] = None,
    route_k: Optional[int] = None,
    shards: int = 0,
    faults: Optional[FaultPlan] = None,
) -> ScenarioResult:
    """Run a scenario (by name or spec) and return its result.

    Keyword overrides replace the spec's defaults.  ``shards`` applies
    to every scenario shape — the single-bottleneck specs run the
    classic sharded gateway, the multi-bottleneck specs shard each flow
    group's fleet.  Same spec and seed => byte-identical fingerprint
    for shards ∈ {0, 1, N}.
    """
    spec = (
        get_scenario(scenario) if isinstance(scenario, str) else scenario
    )
    overrides: Dict[str, Any] = {}
    if seed is not None:
        overrides["seed"] = seed
    if duration is not None:
        overrides["duration"] = duration
    if snapshot_every is not None:
        overrides["snapshot_every"] = snapshot_every
    if route_k is not None:
        overrides["route_k"] = route_k
    if overrides:
        spec = spec.replace(**overrides)
    harness = ScenarioHarness(spec, shards=shards, faults=faults)
    with harness:
        report = harness.run()
    return harness.result(report)
