"""Durable filesystem primitives shared across the package.

One idiom — write to a temp file in the destination directory, flush,
``fsync``, then ``os.replace`` over the target — had grown three
hand-rolled copies (result cache, sweep journal, bench recorder) before
it was extracted here.  The gateway checkpoints (:mod:`repro.server.
checkpoint`) use the same helper: a crash mid-write must leave either
the old file or the new file, never a torn one.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

__all__ = ["atomic_write"]


def atomic_write(
    path: Union[str, Path],
    data: Union[bytes, str],
    *,
    encoding: str = "utf-8",
    fsync: bool = True,
) -> None:
    """Atomically replace ``path`` with ``data`` (bytes or text).

    The temp file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem rename (the only rename POSIX
    makes atomic).  ``fsync=True`` (the default) makes the contents
    durable before the rename; callers for whom a lost-but-consistent
    file is acceptable (e.g. a warm cache) may pass ``fsync=False`` to
    skip the sync and keep only the torn-write protection.

    On any failure the temp file is removed and the original ``path``
    is left untouched.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    if isinstance(data, str):
        data = data.encode(encoding)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
