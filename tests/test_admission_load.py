"""Sustained-load admission behaviour: offered-load plumbing, blocking
monotonicity, heterogeneous mixes, and the memory-vs-memoryless
robustness ordering (Fig. 9 at smoke scale)."""

import numpy as np
import pytest

from repro.admission.callsim import (
    CallLevelSimulator,
    arrival_rate_for_load,
    simulate_admission,
)
from repro.admission.controllers import (
    HeterogeneousKnowledgeCAC,
    MemoryMBAC,
    MemorylessMBAC,
    PerfectKnowledgeCAC,
)
from repro.core.schedule import RateSchedule, empirical_rate_distribution


def two_level_schedule(low, high, period=10.0, cycles=10):
    times = np.arange(2 * cycles) * period
    rates = np.where(np.arange(2 * cycles) % 2 == 0, low, high)
    return RateSchedule(times, rates, duration=2 * cycles * period)


@pytest.fixture(scope="module")
def schedule():
    """Starts low: arrivals during the low phase look cheap to a
    memoryless snapshot, the paper's fragility trigger."""
    return two_level_schedule(100.0, 300.0)


class TestArrivalRateForLoad:
    def test_round_trips_the_offered_load_identity(self):
        capacity, mean_rate, holding = 10_000.0, 200.0, 120.0
        for load in (0.25, 1.0, 2.5):
            lam = arrival_rate_for_load(load, capacity, mean_rate, holding)
            assert lam * holding * mean_rate / capacity == pytest.approx(load)

    def test_monotone_in_load_and_inverse_in_holding(self):
        lams = [
            arrival_rate_for_load(load, 1e6, 500.0, 60.0)
            for load in (0.2, 0.8, 1.6)
        ]
        assert lams == sorted(lams)
        assert lams[0] < lams[1] < lams[2]
        slow = arrival_rate_for_load(0.8, 1e6, 500.0, 600.0)
        assert slow == pytest.approx(lams[1] / 10.0)

    @pytest.mark.parametrize(
        "load,capacity,rate,holding",
        [(0.0, 1.0, 1.0, 1.0), (-1.0, 1.0, 1.0, 1.0), (1.0, 0.0, 1.0, 1.0),
         (1.0, 1.0, 0.0, 1.0), (1.0, 1.0, 1.0, 0.0)],
    )
    def test_validation(self, load, capacity, rate, holding):
        with pytest.raises(ValueError):
            arrival_rate_for_load(load, capacity, rate, holding)


class TestBlockingMonotoneInLoad:
    def test_well_separated_loads_order_blocking(self, schedule):
        """More offered load to the same CAC cap => more blocking."""
        capacity = 1_000.0
        levels, fractions = empirical_rate_distribution(schedule)
        holding = schedule.duration

        def blocking(load):
            controller = PerfectKnowledgeCAC(levels, fractions, 1e-2)
            lam = arrival_rate_for_load(
                load, capacity, schedule.average_rate(), holding
            )
            simulator = CallLevelSimulator(
                schedule, capacity, lam, controller, seed=1995
            )
            for _ in range(6):
                simulator.run_interval()
            return simulator.counters()

        light, medium, heavy = (
            blocking(load) for load in (0.3, 0.9, 1.8)
        )
        assert light.arrivals < medium.arrivals < heavy.arrivals
        assert (
            light.blocking_fraction
            <= medium.blocking_fraction
            <= heavy.blocking_fraction
        )
        assert heavy.blocking_fraction > light.blocking_fraction


class TestHeterogeneousMixUnderLoad:
    def test_mixture_counters_stay_consistent(self, schedule):
        heavy = two_level_schedule(300.0, 900.0)
        marginals = [
            empirical_rate_distribution(schedule),
            empirical_rate_distribution(heavy),
        ]
        controller = HeterogeneousKnowledgeCAC(marginals, failure_target=1e-2)
        simulator = CallLevelSimulator(
            [schedule, heavy],
            capacity=3_000.0,
            arrival_rate=0.15,
            controller=controller,
            seed=7,
            class_weights=[3.0, 1.0],
        )
        for _ in range(8):
            sample = simulator.run_interval()
            assert 0.0 <= sample.utilization <= 1.0 + 1e-9
        counters = simulator.counters()
        assert counters.arrivals == counters.blocked + counters.admitted
        assert counters.departed == counters.completed + counters.abandoned
        assert counters.active == sum(controller.class_counts())
        assert counters.arrivals > 0
        assert counters.admitted > 0
        # The mixture CAC must actually constrain the heavy class.
        assert counters.blocked > 0

    def test_class_weights_skew_the_mix(self, schedule):
        heavy = two_level_schedule(300.0, 900.0)
        marginals = [
            empirical_rate_distribution(schedule),
            empirical_rate_distribution(heavy),
        ]

        def final_counts(weights):
            controller = HeterogeneousKnowledgeCAC(
                marginals, failure_target=0.5
            )
            simulator = CallLevelSimulator(
                [schedule, heavy],
                capacity=50_000.0,
                arrival_rate=0.3,
                controller=controller,
                seed=21,
                class_weights=weights,
            )
            for _ in range(4):
                simulator.run_interval()
            return controller.class_counts()

        light_heavy = final_counts([9.0, 1.0])
        assert light_heavy[0] > light_heavy[1]


class TestMemoryBeatsMemoryless:
    def test_memory_is_no_less_robust_at_smoke_scale(self, schedule):
        """Fig. 9's ordering: with history the MBAC respects the failure
        target where the snapshot scheme over-admits."""
        capacity = 1_200.0
        target = 1e-2
        lam = arrival_rate_for_load(
            1.2, capacity, schedule.average_rate(), schedule.duration
        )

        def failure(controller):
            result = simulate_admission(
                schedule,
                capacity,
                lam,
                controller,
                seed=1995,
                warmup_intervals=1,
                min_intervals=6,
                max_intervals=10,
            )
            return result

        memoryless = failure(MemorylessMBAC(failure_target=target))
        memory = failure(MemoryMBAC(failure_target=target))
        assert (
            memory.failure_probability <= memoryless.failure_probability
        )
        # Both keep their books straight while doing it.
        for result in (memory, memoryless):
            counters = result.counters
            assert counters.arrivals == counters.blocked + counters.admitted
            assert counters.departed == counters.completed + counters.abandoned


class TestSaturationSoak:
    """ISSUE 6 satellite: a sustained-saturation soak of the gateway
    under each overload policy.  Offered load is 1.5x a 20-mean-rate
    link for a long horizon; the run must stay live (no deadlock), keep
    its snapshot cadence, and keep every chaos-test counting identity
    balanced throughout."""

    @pytest.fixture(scope="class")
    def workload(self):
        from repro.traffic.starwars import generate_starwars_trace

        return generate_starwars_trace(
            num_frames=400, seed=1995
        ).as_workload()

    @pytest.mark.parametrize("policy", ("block", "downgrade", "sacrifice"))
    def test_soak_stays_live_and_balanced(self, workload, policy):
        from repro.server import ServerConfig, serve

        config = ServerConfig(
            capacity=20 * workload.mean_rate,
            load=1.5,
            controller="always",
            overload_policy=policy,
            seed=17,
            initial_calls=25,
        )
        duration, cadence = 45.0, 3.0
        report = serve(
            workload, config, duration=duration, snapshot_every=cadence
        )
        # Liveness: the full horizon was served on schedule.
        assert report.duration == pytest.approx(duration)
        assert len(report.snapshots) == int(duration / cadence)
        times = [snapshot.time for snapshot in report.snapshots]
        assert times == pytest.approx(
            [cadence * (index + 1) for index in range(len(times))]
        )
        # The chaos-test identities hold in every snapshot.
        for snapshot in report.snapshots:
            assert snapshot.arrivals == snapshot.blocked + snapshot.admitted
            assert (
                snapshot.departed
                == snapshot.completed + snapshot.abandoned
            )
            assert (
                snapshot.active_calls
                == snapshot.admitted - snapshot.departed
            )
            assert (
                snapshot.injected_denials
                <= snapshot.reneg_denied
                <= snapshot.reneg_requests
            )
        # The link genuinely saturated (the soak exercised overload);
        # downgrade deliberately frees bandwidth, hence the loose bound.
        assert report.mean_utilization > 0.8
        if policy != "block":
            assert report.overload["epochs_overloaded"] > 0
