"""Binary search on a monotone feasibility predicate."""

import pytest

from repro.util.search import binary_search_min_feasible


def test_finds_threshold_of_step_function():
    result = binary_search_min_feasible(
        lambda x: x >= 3.7, low=0.0, high=10.0, tolerance=1e-6
    )
    assert result == pytest.approx(3.7, abs=1e-5)


def test_result_is_always_feasible():
    threshold = 2.5

    def predicate(x):
        return x >= threshold

    result = binary_search_min_feasible(predicate, 0.0, 10.0, tolerance=1e-3)
    assert predicate(result)


def test_feasible_low_returns_low():
    assert binary_search_min_feasible(lambda x: True, 1.0, 2.0, 0.1) == 1.0


def test_infeasible_high_raises():
    with pytest.raises(ValueError):
        binary_search_min_feasible(lambda x: False, 0.0, 1.0, 0.1)


def test_inverted_bounds_raise():
    with pytest.raises(ValueError):
        binary_search_min_feasible(lambda x: True, 2.0, 1.0, 0.1)


def test_nonpositive_tolerance_raises():
    with pytest.raises(ValueError):
        binary_search_min_feasible(lambda x: True, 0.0, 1.0, 0.0)


def test_max_iterations_bounds_work():
    calls = []

    def predicate(x):
        calls.append(x)
        return x >= 0.5

    binary_search_min_feasible(predicate, 0.0, 1.0, 1e-12, max_iterations=10)
    # 2 bracket checks + at most 10 bisections
    assert len(calls) <= 12
