#!/usr/bin/env python
"""Quickstart: compute an optimal RCBR schedule for a video trace.

Generates a short Star-Wars-like VBR video trace, computes the paper's
optimal renegotiation schedule (Viterbi-like DP, Section IV-A) for a
300 kb end-system buffer, and reports the headline metrics: bandwidth
efficiency, renegotiation interval, and the buffer a *nonrenegotiated*
service would have needed at the same average rate.

Run:  python examples/quickstart.py
"""

from repro import OptimalScheduler, generate_starwars_trace, granular_rate_levels
from repro.queueing import required_buffer
from repro.util.units import format_bits, format_rate, kbits, kbps


def main() -> None:
    # A 5-minute VBR video source (use num_frames=171_000 for the full
    # two-hour movie of the paper's experiments).
    trace = generate_starwars_trace(num_frames=7_200, seed=1)
    workload = trace.as_workload()
    print(f"trace: {trace.num_frames} frames, {trace.duration:.0f} s")
    print(f"  mean rate: {format_rate(trace.mean_rate)}")
    print(f"  peak frame rate: {format_rate(trace.peak_rate)}")

    # The paper's setup: 300 kb buffer, 64 kb/s bandwidth granularity.
    buffer_bits = kbits(300)
    levels = granular_rate_levels(kbps(64), 1.1 * trace.peak_rate)

    # alpha/beta is the network's price ratio: renegotiation cost vs
    # bandwidth cost.  Larger alpha -> fewer renegotiations.
    result = OptimalScheduler(levels, alpha=2e6, beta=1.0).solve(
        workload, buffer_bits=buffer_bits
    )
    schedule = result.schedule

    print("\noptimal RCBR schedule:")
    print(f"  segments: {schedule.num_segments}")
    print(f"  renegotiations: {schedule.num_renegotiations} "
          f"(one every {schedule.mean_renegotiation_interval():.1f} s)")
    print(f"  average reserved rate: {format_rate(schedule.average_rate())}")
    print(f"  bandwidth efficiency: "
          f"{schedule.bandwidth_efficiency(trace.mean_rate):.1%}")
    print(f"  peak buffer use: {format_bits(schedule.max_buffer(workload))} "
          f"(bound {format_bits(buffer_bits)})")

    # What a one-shot (nonrenegotiated) CBR service would need instead.
    static_buffer = required_buffer(
        workload.bits_per_slot,
        schedule.average_rate() * workload.slot_duration,
    )
    print("\nnonrenegotiated CBR at the same average rate would need "
          f"{format_bits(static_buffer)} of buffering "
          f"({static_buffer / buffer_bits:.0f}x more).")

    # The first few renegotiation events, as a switch would see them.
    print("\nfirst renegotiations (time, old -> new rate):")
    for event in list(schedule.renegotiations())[:5]:
        print(f"  t={event.time:7.2f}s  {format_rate(event.old_rate)} -> "
              f"{format_rate(event.new_rate)}  (delta {event.delta:+.0f} b/s)")


if __name__ == "__main__":
    main()
