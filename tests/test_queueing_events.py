"""The discrete-event engine."""

import pytest

from repro.queueing.events import EventScheduler


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = EventScheduler()
        fired = []
        engine.schedule_at(2.0, fired.append, "b")
        engine.schedule_at(1.0, fired.append, "a")
        engine.schedule_at(3.0, fired.append, "c")
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        engine = EventScheduler()
        fired = []
        for tag in ("first", "second", "third"):
            engine.schedule_at(1.0, fired.append, tag)
        engine.run()
        assert fired == ["first", "second", "third"]

    def test_schedule_in_is_relative(self):
        engine = EventScheduler()
        times = []
        engine.schedule_in(1.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [1.0]

    def test_nested_scheduling(self):
        engine = EventScheduler()
        fired = []

        def outer():
            fired.append(("outer", engine.now))
            engine.schedule_in(0.5, inner)

        def inner():
            fired.append(("inner", engine.now))

        engine.schedule_at(1.0, outer)
        engine.run()
        assert fired == [("outer", 1.0), ("inner", 1.5)]

    def test_cannot_schedule_in_past(self):
        engine = EventScheduler()
        engine.schedule_at(5.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule_in(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = EventScheduler()
        fired = []
        handle = engine.schedule_at(1.0, fired.append, "x")
        handle.cancel()
        engine.run()
        assert fired == []

    def test_cancel_twice_is_safe(self):
        handle = EventScheduler().schedule_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        engine = EventScheduler()
        fired = []
        engine.schedule_at(1.0, fired.append, "early")
        engine.schedule_at(10.0, fired.append, "late")
        engine.run(until=5.0)
        assert fired == ["early"]
        assert engine.now == 5.0
        engine.run()
        assert fired == ["early", "late"]

    def test_run_until_includes_boundary(self):
        engine = EventScheduler()
        fired = []
        engine.schedule_at(5.0, fired.append, "edge")
        engine.run(until=5.0)
        assert fired == ["edge"]

    def test_max_events(self):
        engine = EventScheduler()
        fired = []
        for index in range(5):
            engine.schedule_at(float(index), fired.append, index)
        engine.run(max_events=2)
        assert fired == [0, 1]

    def test_step(self):
        engine = EventScheduler()
        fired = []
        engine.schedule_at(1.0, fired.append, "a")
        assert engine.step()
        assert fired == ["a"]
        assert not engine.step()

    def test_counters(self):
        engine = EventScheduler()
        engine.schedule_at(1.0, lambda: None)
        cancelled = engine.schedule_at(2.0, lambda: None)
        cancelled.cancel()
        assert engine.pending_events == 1
        engine.run()
        assert engine.processed_events == 1
