"""One renegotiation arithmetic, one home: ``repro.core.kernel``.

The refactor's whole point is that the AR(1) update, the eq.-7
quantiser (and its epsilon guard), and the eq.-8 threshold test exist
exactly once.  These greps over ``src/`` fail the build if a copy
creeps back into a consumer.  ``tests/`` is deliberately out of scope:
``tests/golden_reference.py`` *must* duplicate the arithmetic — it is
the frozen oracle the kernel is compared against.

CI runs the same patterns as a shell step so the guard holds even for
changes that skip the test suite.
"""

import re
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src"
KERNEL = Path("repro") / "core" / "kernel.py"

#: (description, regex) pairs that may match only in kernel.py.
GUARDED_PATTERNS = [
    (
        "QUANTIZE_EPSILON binding (re-exports must use __getattr__)",
        re.compile(r"^QUANTIZE_EPSILON\s*=", re.MULTILINE),
    ),
    (
        "epsilon-guarded ceil quantiser",
        re.compile(r"-\s*QUANTIZE_EPSILON"),
    ),
    (
        "AR(1) one-minus-coefficient update",
        re.compile(r"1\.0\s*-\s*(?:self\.)?(?:_?params|base)\.ar_coefficient"),
    ),
    (
        "eq.-8 dual-threshold trigger (scalar or vectorized form)",
        re.compile(
            r"buffer\w*\s*>\s*high\b.*\bcandidate\s*>"  # scalar copy
            r"|np\.greater\([^)]*high_threshold",  # vectorized copy
            re.DOTALL,
        ),
    ),
    (
        "downgrade-mask shed accounting (bits_downgraded accrual)",
        re.compile(r"bits_downgraded\s*\+="),
    ),
]


def python_sources():
    return sorted(SRC.rglob("*.py"))


def test_src_tree_is_nonempty():
    files = python_sources()
    assert (SRC / KERNEL) in files
    assert len(files) > 20


@pytest.mark.parametrize(
    "description,pattern",
    GUARDED_PATTERNS,
    ids=[d for d, _ in GUARDED_PATTERNS],
)
def test_arithmetic_lives_only_in_kernel(description, pattern):
    offenders = [
        path.relative_to(SRC)
        for path in python_sources()
        if path.relative_to(SRC) != KERNEL
        and pattern.search(path.read_text())
    ]
    assert not offenders, (
        f"{description} reimplemented outside repro/core/kernel.py: "
        f"{[str(p) for p in offenders]}"
    )


def test_kernel_contains_the_arithmetic():
    text = (SRC / KERNEL).read_text()
    for description, pattern in GUARDED_PATTERNS:
        assert pattern.search(text), f"kernel.py lost: {description}"
