"""Crash-safe sweep journal: append-only JSONL of completed cells.

A multi-hour sweep that dies at cell 180 of 200 should not restart from
zero.  The journal records every completed cell as one JSON line — value
pickled and base64-wrapped so arbitrary cell results survive the round
trip — appended atomically (one ``write`` of a full line, flushed and
fsync'd) so a crash can at worst truncate the final line, never corrupt
an earlier one.  The header line carries a *sweep fingerprint* (hash of
code version, namespace, base seed, and every cell's name + cache
payload); a ``--resume`` run only trusts a journal whose fingerprint
matches the sweep it is about to run, so edited parameters or new code
force a recompute instead of silently reusing stale results.

Determinism: resuming never changes values.  A resumed cell's recorded
value is byte-for-byte what the original run computed, and cells that do
re-run reuse their exact ``SeedSequence(base_seed, spawn_key=(index,))``
derivation, so a kill-and-resume sweep is bit-identical to an
uninterrupted one.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

from repro.util.io import atomic_write

#: Bump when the line format changes; mismatched journals are stale.
JOURNAL_SCHEMA = 1


def sweep_fingerprint(
    namespace: str,
    base_seed: int,
    cells: Sequence[Any],
    code_version: Optional[str] = None,
) -> str:
    """Fingerprint of everything that determines a sweep's results.

    Built from the cache's canonical encoding over the code version, the
    engine namespace and base seed, and each cell's ``(name, payload
    fingerprint)``.  A cell whose payload cannot be fingerprinted (or is
    ``None``) contributes its name alone — resume then relies on the
    name and index staying stable, the same contract the result cache
    already imposes.
    """
    from repro.perf.cache import _default_code_version, fingerprint

    items = []
    for cell in cells:
        payload = getattr(cell, "cache_payload", None)
        if payload is None:
            payload_fp = None
        else:
            try:
                payload_fp = fingerprint(payload)
            except TypeError:
                payload_fp = None
        items.append((cell.name, payload_fp))
    return fingerprint(
        (code_version or _default_code_version(), namespace,
         int(base_seed), items)
    )


def encode_value(value: Any) -> str:
    """Pickle ``value`` into a JSON-safe base64 string."""
    return base64.b64encode(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_value(blob: str) -> Any:
    return pickle.loads(base64.b64decode(blob.encode("ascii")))


@dataclass(frozen=True)
class JournalEntry:
    """One completed cell as recorded on disk."""

    index: int
    name: str
    value: Any
    seconds: float
    attempts: int
    status: str


class SweepJournal:
    """Append-only record of a sweep's completed cells.

    Single-writer: only the supervising process appends (workers return
    results to it), so appends need no locking — just atomicity against
    crashes, which one flushed-and-fsync'd ``write`` per line provides.
    """

    def __init__(self, path: Union[str, Path], fingerprint: str) -> None:
        self.path = Path(path)
        self.fingerprint = str(fingerprint)

    # ------------------------------------------------------------------
    def exists(self) -> bool:
        return self.path.exists()

    def reset(self) -> None:
        """Start a fresh journal: atomically write just the header."""
        header = json.dumps(
            {
                "kind": "header",
                "schema": JOURNAL_SCHEMA,
                "fingerprint": self.fingerprint,
            },
            sort_keys=True,
        )
        atomic_write(self.path, header + "\n")

    def append(self, entry: JournalEntry) -> None:
        """Durably append one completed cell."""
        line = json.dumps(
            {
                "kind": "cell",
                "index": int(entry.index),
                "name": entry.name,
                "value": encode_value(entry.value),
                "seconds": round(float(entry.seconds), 6),
                "attempts": int(entry.attempts),
                "status": entry.status,
            },
            sort_keys=True,
        )
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    def load(self) -> Optional[Dict[int, JournalEntry]]:
        """Completed entries by index, or ``None`` if the journal cannot
        be trusted (missing, unreadable, wrong schema, or a fingerprint
        that no longer matches this sweep).

        A truncated or garbled trailing line — the signature of a crash
        mid-append — is skipped silently; every line before it is intact
        by construction.
        """
        try:
            with self.path.open("r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError:
            return None
        if not lines:
            return None
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return None
        if (
            header.get("kind") != "header"
            or header.get("schema") != JOURNAL_SCHEMA
            or header.get("fingerprint") != self.fingerprint
        ):
            return None
        entries: Dict[int, JournalEntry] = {}
        for line in lines[1:]:
            try:
                record = json.loads(line)
                if record.get("kind") != "cell":
                    continue
                entry = JournalEntry(
                    index=int(record["index"]),
                    name=str(record["name"]),
                    value=decode_value(record["value"]),
                    seconds=float(record["seconds"]),
                    attempts=int(record["attempts"]),
                    status=str(record["status"]),
                )
            except (KeyError, ValueError, TypeError, json.JSONDecodeError,
                    pickle.UnpicklingError, EOFError):
                continue  # torn tail line from a crash mid-append
            entries[entry.index] = entry
        return entries
