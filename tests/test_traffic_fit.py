"""Fitting the multiple time-scale model to observed traces."""

import numpy as np
import pytest

from repro.traffic.fit import (
    SceneSegmentation,
    _kmeans_1d,
    detect_gop_length,
    estimate_gop_multipliers,
    fit_starwars_model,
    segment_scenes,
)
from repro.traffic.mpeg import GopStructure
from repro.traffic.starwars import StarWarsModel, generate_starwars_trace
from repro.traffic.trace import FrameTrace


@pytest.fixture(scope="module")
def synthetic_trace():
    return generate_starwars_trace(num_frames=14_400, seed=77)


class TestKmeans1d:
    def test_separated_clusters_recovered(self):
        rng = np.random.default_rng(0)
        values = np.concatenate(
            [rng.normal(0, 0.1, 200), rng.normal(5, 0.1, 200),
             rng.normal(10, 0.1, 200)]
        )
        centers, labels = _kmeans_1d(values, 3)
        assert np.allclose(np.sort(centers), [0, 5, 10], atol=0.2)
        assert np.unique(labels).size == 3

    def test_labels_sorted_by_center(self):
        values = np.array([0.0, 0.1, 10.0, 10.1, 5.0, 5.1])
        centers, labels = _kmeans_1d(values, 3)
        assert centers[0] < centers[1] < centers[2]
        assert labels[0] == 0 and labels[2] == 2 and labels[4] == 1

    def test_single_class(self):
        centers, labels = _kmeans_1d(np.array([1.0, 2.0, 3.0]), 1)
        assert centers[0] == pytest.approx(2.0)
        assert np.all(labels == 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            _kmeans_1d(np.array([1.0]), 0)


class TestGopDetection:
    def test_detects_planted_period(self):
        gop = GopStructure()  # 12-frame pattern
        sizes = 1000.0 * gop.multiplier_sequence(2400)
        trace = FrameTrace(sizes, frames_per_second=24.0)
        assert detect_gop_length(trace) == 12

    def test_detects_on_synthetic_trace(self, synthetic_trace):
        assert detect_gop_length(synthetic_trace) == 12

    def test_validation(self):
        trace = FrameTrace(np.ones(10), 24.0)
        with pytest.raises(ValueError):
            detect_gop_length(trace, min_length=1)


class TestGopMultipliers:
    def test_recovers_planted_shape(self):
        gop = GopStructure()
        sizes = 1000.0 * gop.multiplier_sequence(2400)
        trace = FrameTrace(sizes, frames_per_second=24.0)
        offset, multipliers = estimate_gop_multipliers(trace, gop_length=12)
        expected = gop.multipliers()
        # The returned profile is rotated so the I frame leads.
        assert multipliers[0] == max(multipliers)
        assert np.allclose(np.sort(multipliers), np.sort(expected), rtol=0.05)

    def test_mean_is_one(self, synthetic_trace):
        _, multipliers = estimate_gop_multipliers(synthetic_trace, 12)
        assert multipliers.mean() == pytest.approx(1.0)

    def test_i_frame_dominates_on_synthetic(self, synthetic_trace):
        _, multipliers = estimate_gop_multipliers(synthetic_trace, 12)
        assert multipliers[0] > 1.5

    def test_validation(self, synthetic_trace):
        with pytest.raises(ValueError):
            estimate_gop_multipliers(synthetic_trace, gop_length=0)


class TestSceneSegmentation:
    def test_two_level_trace(self):
        low = np.full(1200, 1000.0)
        high = np.full(1200, 5000.0)
        sizes = np.concatenate([low, high, low, high])
        trace = FrameTrace(sizes, frames_per_second=24.0)
        segmentation = segment_scenes(trace, num_classes=2)
        assert segmentation.num_classes == 2
        # Multipliers straddle 1 (mean is 3000).
        assert segmentation.multipliers[0] == pytest.approx(1 / 3, rel=0.1)
        assert segmentation.multipliers[1] == pytest.approx(5 / 3, rel=0.1)
        # Dwell ~50 s per scene.
        assert segmentation.mean_durations[0] == pytest.approx(50.0, rel=0.2)

    def test_entry_probabilities_sum_to_one(self, synthetic_trace):
        segmentation = segment_scenes(synthetic_trace, num_classes=4)
        assert segmentation.entry_probabilities.sum() == pytest.approx(1.0)

    def test_labels_cover_trace(self, synthetic_trace):
        segmentation = segment_scenes(synthetic_trace, num_classes=4)
        assert segmentation.labels.size == synthetic_trace.num_frames

    def test_micro_scenes_merged(self, synthetic_trace):
        segmentation = segment_scenes(
            synthetic_trace, num_classes=4, min_scene_seconds=2.0
        )
        change = np.flatnonzero(np.diff(segmentation.labels)) + 1
        starts = np.concatenate([[0], change])
        ends = np.concatenate([change, [segmentation.labels.size]])
        durations = (ends - starts) / synthetic_trace.frames_per_second
        # Interior scenes respect the minimum (the first may be short).
        assert np.all(durations[1:] >= 2.0 - 1e-9)

    def test_validation(self, synthetic_trace):
        with pytest.raises(ValueError):
            segment_scenes(synthetic_trace, smoothing_seconds=0.0)


class TestFitStarwarsModel:
    def test_roundtrip_preserves_headline_statistics(self, synthetic_trace):
        model = fit_starwars_model(synthetic_trace, num_classes=5)
        assert isinstance(model, StarWarsModel)
        regenerated = model.generate(num_frames=14_400, seed=5)
        # Mean rate matches by construction.
        assert regenerated.mean_rate == pytest.approx(
            synthetic_trace.mean_rate, rel=1e-6
        )
        # Slow time scale: the 10-second peak ratio is in the same class.
        from repro.analysis.empirical import windowed_peak_rate

        original = windowed_peak_rate(synthetic_trace, 10.0) / synthetic_trace.mean_rate
        refit = windowed_peak_rate(regenerated, 10.0) / regenerated.mean_rate
        assert refit == pytest.approx(original, rel=0.5)

    def test_fitted_gop_shape_has_twelve_phases(self, synthetic_trace):
        model = fit_starwars_model(synthetic_trace, gop_length=12)
        assert model.gop.gop_length == 12

    def test_fitted_classes_have_probabilities(self, synthetic_trace):
        model = fit_starwars_model(synthetic_trace)
        total = sum(c.probability for c in model.scene_classes)
        assert total == pytest.approx(1.0)

    def test_noise_sigma_bounded(self, synthetic_trace):
        model = fit_starwars_model(synthetic_trace)
        assert 0.01 <= model.frame_noise_sigma <= 0.5
