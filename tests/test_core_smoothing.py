"""Optimal work-ahead smoothing (the Section VIII related-work baseline)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.smoothing import optimal_smoothing
from repro.traffic.trace import SlottedWorkload


def corridor_peak_lower_bound(arrivals, buffer_bits):
    """Minimal achievable peak rate: the tightest corridor chord slope."""
    cumulative = np.concatenate([[0.0], np.cumsum(arrivals)])
    floor = np.maximum(0.0, cumulative - buffer_bits)
    floor[-1] = cumulative[-1]
    bound = 0.0
    n = cumulative.size
    for i in range(n):
        for j in range(i + 1, n):
            bound = max(bound, (floor[j] - cumulative[i]) / (j - i))
    return bound


class TestOptimalSmoothing:
    def test_constant_arrivals_single_segment(self):
        workload = SlottedWorkload(np.full(20, 3.0), 1.0)
        result = optimal_smoothing(workload, buffer_bits=50.0)
        assert result.schedule.num_segments == 1
        assert result.peak_rate == pytest.approx(3.0)

    def test_burst_spread_by_buffer(self):
        workload = SlottedWorkload(np.array([10.0, 0.0, 0.0, 0.0]), 1.0)
        result = optimal_smoothing(workload, buffer_bits=5.0)
        rates = result.schedule.slot_rates(1.0, 4)
        # Must push 5 bits out in slot 1 (buffer bound), then coast.
        assert rates[0] == pytest.approx(5.0)
        assert np.allclose(rates[1:], 5.0 / 3.0)

    def test_everything_delivered(self):
        rng = np.random.default_rng(3)
        arrivals = rng.uniform(0, 10, 50)
        workload = SlottedWorkload(arrivals, 1.0)
        result = optimal_smoothing(workload, buffer_bits=12.0)
        assert result.cumulative_sent[-1] == pytest.approx(arrivals.sum())

    def test_feasibility_corridor(self):
        rng = np.random.default_rng(4)
        arrivals = rng.uniform(0, 10, 80)
        workload = SlottedWorkload(arrivals, 1.0)
        buffer_bits = 9.0
        result = optimal_smoothing(workload, buffer_bits)
        cumulative = np.cumsum(arrivals)
        assert np.all(result.cumulative_sent <= cumulative + 1e-9)
        assert np.all(result.cumulative_sent >= cumulative - buffer_bits - 1e-9)

    def test_peak_is_minimal(self):
        rng = np.random.default_rng(5)
        for _ in range(5):
            arrivals = rng.uniform(0, 10, 25)
            buffer_bits = float(rng.uniform(3, 15))
            workload = SlottedWorkload(arrivals, 1.0)
            result = optimal_smoothing(workload, buffer_bits)
            bound = corridor_peak_lower_bound(arrivals, buffer_bits)
            assert result.peak_rate == pytest.approx(bound, rel=1e-9, abs=1e-9)

    def test_bigger_buffer_smaller_peak(self):
        rng = np.random.default_rng(6)
        arrivals = rng.uniform(0, 10, 40)
        workload = SlottedWorkload(arrivals, 1.0)
        small = optimal_smoothing(workload, 5.0)
        large = optimal_smoothing(workload, 50.0)
        assert large.peak_rate <= small.peak_rate + 1e-9

    def test_schedule_serves_workload_within_buffer(self):
        rng = np.random.default_rng(7)
        arrivals = rng.uniform(0, 10, 60)
        workload = SlottedWorkload(arrivals, 1.0)
        result = optimal_smoothing(workload, buffer_bits=10.0)
        # Replaying the smoothed schedule against the workload respects
        # the same buffer bound (consistency with RateSchedule).
        assert result.schedule.max_buffer(workload) <= 10.0 + 1e-6

    def test_validation(self):
        workload = SlottedWorkload(np.array([1.0]), 1.0)
        with pytest.raises(ValueError):
            optimal_smoothing(workload, 0.0)

    @given(
        arrivals=hnp.arrays(
            dtype=np.float64, shape=st.integers(1, 30),
            elements=st.floats(0.0, 20.0),
        ),
        buffer_bits=st.floats(1.0, 50.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_feasible_and_minimal_peak(self, arrivals, buffer_bits):
        workload = SlottedWorkload(arrivals, 1.0)
        result = optimal_smoothing(workload, buffer_bits)
        cumulative = np.cumsum(arrivals)
        assert np.all(result.cumulative_sent <= cumulative + 1e-6)
        assert np.all(
            result.cumulative_sent >= cumulative - buffer_bits - 1e-6
        )
        assert result.cumulative_sent[-1] == pytest.approx(
            arrivals.sum(), abs=1e-6
        )
        bound = corridor_peak_lower_bound(arrivals, buffer_bits)
        assert result.peak_rate <= bound + 1e-6
