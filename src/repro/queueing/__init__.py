"""Queueing substrates: fluid queues, token buckets, links, multiplexers.

Everything the paper's Section II/V simulations need: the end-system fluid
buffer, leaky-bucket descriptors, a discrete-event engine, the RCBR link
with grant/deny renegotiation semantics, and the three Fig. 3 scenarios.
"""

from repro.queueing.fluid import (
    DowngradeFluidResult,
    FluidQueueResult,
    simulate_downgrade_fluid,
    simulate_fluid_queue,
    required_buffer,
    loss_fraction_for_rate,
    min_rate_for_loss,
    sigma_rho_curve,
)
from repro.queueing.leaky_bucket import (
    TokenBucket,
    ShapingResult,
    minimal_bucket_depth,
)
from repro.queueing.events import Event, EventScheduler
from repro.queueing.link import RcbrLink, RequestOutcome
from repro.queueing.mux import (
    aggregate_shifted_arrivals,
    scenario_a_rate,
    scenario_b_loss,
    scenario_b_min_rate,
    scenario_c_loss,
    scenario_c_min_rate,
    aggregate_demand,
    rcbr_overflow_bits,
    estimate_mean_loss,
    schedule_step_events,
)

__all__ = [
    "DowngradeFluidResult",
    "FluidQueueResult",
    "simulate_downgrade_fluid",
    "simulate_fluid_queue",
    "required_buffer",
    "loss_fraction_for_rate",
    "min_rate_for_loss",
    "sigma_rho_curve",
    "TokenBucket",
    "ShapingResult",
    "minimal_bucket_depth",
    "Event",
    "EventScheduler",
    "RcbrLink",
    "RequestOutcome",
    "aggregate_shifted_arrivals",
    "scenario_a_rate",
    "scenario_b_loss",
    "scenario_b_min_rate",
    "scenario_c_loss",
    "scenario_c_min_rate",
    "aggregate_demand",
    "rcbr_overflow_bits",
    "estimate_mean_loss",
    "schedule_step_events",
]
