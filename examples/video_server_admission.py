#!/usr/bin/env python
"""A video server's link under measurement-based admission control.

The Section VI scenario: viewers start randomly shifted playbacks of the
same movie (Poisson arrivals), each carried as an RCBR call following the
movie's optimal renegotiation schedule.  The link runs one of three
admission controllers:

* perfect knowledge — the Chernoff test with the movie's true bandwidth
  histogram (the unattainable ideal);
* memoryless MBAC — estimates the histogram from a snapshot of current
  reservations (the paper shows this over-admits);
* memory MBAC — accumulates each call's reservation history (the fix).

Run:  python examples/video_server_admission.py
"""

from repro import (
    MemoryMBAC,
    MemorylessMBAC,
    OptimalScheduler,
    PerfectKnowledgeCAC,
    generate_starwars_trace,
    granular_rate_levels,
    simulate_admission,
)
from repro.admission import arrival_rate_for_load
from repro.core.schedule import empirical_rate_distribution
from repro.util.units import format_rate, kbits, kbps

FAILURE_TARGET = 1e-3


def main() -> None:
    # The movie and its RCBR schedule (Section IV-A).
    trace = generate_starwars_trace(num_frames=14_400, seed=3)
    workload = trace.aggregate(2)
    levels = granular_rate_levels(kbps(64), 1.1 * trace.peak_rate)
    schedule = (
        OptimalScheduler(levels, alpha=4e6)
        .solve(workload, buffer_bits=kbits(300))
        .schedule
    )
    print(f"movie: {trace.duration / 60:.0f} min, schedule renegotiates "
          f"every {schedule.mean_renegotiation_interval():.1f} s")

    # A smallish link: the regime where estimation errors matter.  (The
    # Chernoff test is deliberately conservative at this scale — the
    # paper: "the system will deny new calls even when there is
    # available capacity".)
    mean = schedule.average_rate()
    capacity = 16 * mean
    load = 0.9
    arrival_rate = arrival_rate_for_load(load, capacity, mean, schedule.duration)
    print(f"link: {format_rate(capacity)} (~16 concurrent viewers), "
          f"offered load {load:.0%}, failure target {FAILURE_TARGET:g}\n")

    levels_hist, fractions = empirical_rate_distribution(schedule)
    controllers = {
        "perfect knowledge": PerfectKnowledgeCAC(
            levels_hist, fractions, FAILURE_TARGET
        ),
        "memoryless MBAC": MemorylessMBAC(FAILURE_TARGET),
        "memory MBAC": MemoryMBAC(FAILURE_TARGET),
    }

    print(f"{'controller':>20} {'reneg failure':>14} {'utilization':>12} "
          f"{'blocking':>9}")
    for name, controller in controllers.items():
        result = simulate_admission(
            schedule,
            capacity,
            arrival_rate,
            controller,
            seed=17,
            min_intervals=5,
            max_intervals=10,
            failure_target=FAILURE_TARGET,
        )
        print(f"{name:>20} {result.failure_probability:>14.2e} "
              f"{result.utilization:>11.1%} "
              f"{result.blocking_probability:>8.1%}")

    print("\nReading the table: the memoryless controller reports higher "
          "utilization\nbut blows through the failure target; memory "
          "restores the target at a\nsmall utilization cost — the "
          "Section VI conclusion.")


if __name__ == "__main__":
    main()
