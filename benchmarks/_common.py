"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper and prints
the same rows/series the paper reports.  Experiments run at one of two
scales, controlled by the ``REPRO_SCALE`` environment variable:

* ``small`` (default): a ~17-minute synthetic trace and reduced sweeps —
  minutes of wall-clock, preserving every qualitative shape;
* ``paper``: the full ~2-hour, 171 000-frame trace and the paper's sweep
  ranges (hours of wall-clock, like the original study).

Heavy intermediates (the trace, the optimal schedules) come from
:mod:`repro.perf`: they are memoized per process *keyed by the active
scale* — so flipping ``REPRO_SCALE`` mid-process can never serve a stale
trace — and persisted in the content-addressed on-disk
:class:`~repro.perf.cache.ResultCache`, so a rerun (or a sibling worker
process) reloads them in milliseconds.  ``REPRO_NO_CACHE=1`` disables
the disk layer; ``REPRO_CACHE_DIR`` moves it.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.perf.cache import ResultCache
from repro.perf.sweeps import (
    BUFFER_BITS,
    GRANULARITY,
    LOSS_TARGET,
    MAX_RATE_LEVEL,
    SWEEP_SCALES,
    TRACE_SEED,
    SweepScale,
    current_scale,
    dp_rate_levels,
    optimal_schedule_for,
    starwars_trace_for,
)

# Backwards-compatible aliases: the benchmarks grew up on these names.
Scale = SweepScale
SCALES = SWEEP_SCALES
scale = current_scale

__all__ = [
    "BUFFER_BITS",
    "GRANULARITY",
    "LOSS_TARGET",
    "MAX_RATE_LEVEL",
    "SCALES",
    "TRACE_SEED",
    "Scale",
    "disk_cache",
    "dp_rate_levels",
    "fmt",
    "once",
    "optimal_schedule",
    "print_table",
    "scale",
    "starwars_trace",
]

#: One shared disk cache for the whole benchmark session (env-configured).
disk_cache = ResultCache()

# Process-local memos, keyed by everything the value depends on — unlike
# the old module-level ``lru_cache``s, which ignored ``REPRO_SCALE`` and
# went stale when it changed between calls.
_trace_memo: Dict[str, object] = {}
_schedule_memo: Dict[Tuple[str, float], object] = {}


def starwars_trace():
    """The benchmark trace at the current scale (memoized + disk-cached)."""
    active = scale()
    trace = _trace_memo.get(active.name)
    if trace is None:
        trace = starwars_trace_for(active, cache=disk_cache)
        _trace_memo[active.name] = trace
    return trace


def optimal_schedule(alpha: float = 6e6):
    """The trace's optimal RCBR schedule at the paper's parameters.

    delta = 64 kb/s granularity, B = 300 kb; ``alpha`` tunes the
    renegotiation interval (the default lands near the paper's ~12 s on
    the synthetic trace).
    """
    active = scale()
    memo_key = (active.name, float(alpha))
    schedule = _schedule_memo.get(memo_key)
    if schedule is None:
        schedule = optimal_schedule_for(active, alpha=alpha, cache=disk_cache)
        _schedule_memo[memo_key] = schedule
    return schedule


def print_table(title: str, headers: Sequence[str], rows) -> None:
    """Uniform plain-text table output for every benchmark."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header)), max((len(str(row[i])) for row in rows), default=0))
        for i, header in enumerate(headers)
    ]
    line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).rjust(w) for cell, w in zip(row, widths)))


def fmt(value: float, digits: int = 3) -> str:
    if value is None:
        return "-"
    if value == 0:
        return "0"
    if abs(value) >= 1e5 or abs(value) < 1e-3:
        return f"{value:.{digits}g}"
    return f"{value:.{digits}f}"


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    These are simulation studies, not microbenchmarks: one round gives
    the wall-clock cost of regenerating the figure without re-running a
    multi-minute experiment five times.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
