"""Programmatic experiment runners (small-scale smoke of each study)."""

import numpy as np
import pytest

from repro.experiments import (
    run_mbac_comparison,
    run_sigma_rho,
    run_smg,
    run_tradeoff,
)
from repro.experiments.runners import compute_optimal_schedule
from repro.traffic import generate_starwars_trace
from repro.util.units import kbits, kbps


@pytest.fixture(scope="module")
def trace():
    return generate_starwars_trace(num_frames=4800, seed=21)


@pytest.fixture(scope="module")
def schedule(trace):
    return compute_optimal_schedule(trace, alpha=4e6)


class TestComputeOptimalSchedule:
    def test_respects_buffer(self, trace, schedule):
        assert schedule.is_feasible(trace.aggregate(2), kbits(300))

    def test_no_aggregation_path(self, trace):
        schedule = compute_optimal_schedule(
            trace, alpha=4e6, frames_per_slot=1, granularity=kbps(256)
        )
        assert schedule.duration == pytest.approx(trace.duration)


class TestTradeoff:
    def test_shapes(self, trace):
        result = run_tradeoff(
            trace, alphas=(1e6, 3e7), deltas=(kbps(50), kbps(400))
        )
        assert len(result.optimal) == 2
        assert len(result.heuristic) == 2
        # The classic ordering along each curve.
        assert result.optimal[0].efficiency >= result.optimal[1].efficiency
        assert (
            result.optimal[0].mean_interval <= result.optimal[1].mean_interval
        )
        assert (
            result.heuristic[0].efficiency >= result.heuristic[1].efficiency
        )

    def test_buffer_bound_respected(self, trace):
        result = run_tradeoff(trace, alphas=(1e6,), deltas=(kbps(100),))
        assert result.optimal[0].max_buffer <= kbits(300) + 1e-6


class TestSigmaRho:
    def test_monotone_and_normalized(self, trace):
        result = run_sigma_rho(
            trace, buffers=(kbits(100), kbits(300), kbits(3000)),
            loss_target=1e-3,
        )
        rates = result.rates
        assert all(a >= b - 1e-6 for a, b in zip(rates, rates[1:]))
        assert np.all(result.normalized() >= 1.0 - 1e-9)


class TestSmg:
    def test_ordering(self, trace, schedule):
        result = run_smg(
            trace, schedule, source_counts=(2, 8), loss_target=1e-3, seed=5
        )
        assert len(result.points) == 2
        for point in result.points:
            assert point.cbr_rate >= point.shared_rate - 0.1 * result.mean_rate
        # Gain grows with N.
        assert result.points[1].rcbr_rate <= result.points[0].rcbr_rate + 0.06 * result.mean_rate
        assert 0.5 < result.schedule_efficiency <= 1.05


class TestMbac:
    def test_controllers_compared(self, schedule):
        result = run_mbac_comparison(
            schedule,
            capacity_multiples=(6.0,),
            loads=(1.0,),
            min_intervals=3,
            max_intervals=4,
        )
        names = {point.controller for point in result.points}
        assert names == {"memoryless", "memory", "perfect"}
        memoryless = result.by_controller("memoryless")[0]
        memory = result.by_controller("memory")[0]
        assert memory.failure_probability <= memoryless.failure_probability + 1e-3

    def test_unknown_controller_rejected(self, schedule):
        with pytest.raises(ValueError):
            run_mbac_comparison(schedule, controllers=("bogus",),
                                min_intervals=2, max_intervals=2)
