"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper and prints
the same rows/series the paper reports.  Experiments run at one of two
scales, controlled by the ``REPRO_SCALE`` environment variable:

* ``small`` (default): a ~17-minute synthetic trace and reduced sweeps —
  minutes of wall-clock, preserving every qualitative shape;
* ``paper``: the full ~2-hour, 171 000-frame trace and the paper's sweep
  ranges (hours of wall-clock, like the original study).

Heavy intermediates (the trace, the optimal schedules) are cached at
module level so benchmarks share them.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass
from typing import Sequence

from repro.core import OptimalScheduler, granular_rate_levels
from repro.traffic import generate_starwars_trace
from repro.util.units import kbits, kbps


@dataclass(frozen=True)
class Scale:
    name: str
    num_frames: int
    dp_frames_per_slot: int  # DP slot aggregation (1 = per frame)
    smg_sources: Sequence[int]  # N values for Fig. 6
    mbac_capacities: Sequence[float]  # link capacity / mean call rate
    mbac_loads: Sequence[float]  # normalized offered loads
    mbac_max_intervals: int


SCALES = {
    "small": Scale(
        name="small",
        num_frames=24_000,  # ~17 minutes at 24 fps
        dp_frames_per_slot=2,
        smg_sources=(1, 2, 4, 8, 16),
        mbac_capacities=(6.0, 12.0),
        mbac_loads=(0.6, 1.0),
        mbac_max_intervals=10,
    ),
    "paper": Scale(
        name="paper",
        num_frames=171_000,  # the full two-hour movie
        dp_frames_per_slot=2,
        smg_sources=(1, 2, 5, 10, 20, 50, 100),
        mbac_capacities=(5.0, 10.0, 20.0, 50.0),
        mbac_loads=(0.3, 0.5, 0.7, 0.9, 1.1),
        mbac_max_intervals=40,
    ),
}


def scale() -> Scale:
    name = os.environ.get("REPRO_SCALE", "small")
    if name not in SCALES:
        raise ValueError(
            f"REPRO_SCALE must be one of {sorted(SCALES)}, got {name!r}"
        )
    return SCALES[name]


BUFFER_BITS = kbits(300)  # the paper's end-system buffer
LOSS_TARGET = 1e-6  # the paper's QoS for Figs. 5-6
GRANULARITY = kbps(64)  # the paper's Fig. 6 bandwidth granularity
MAX_RATE_LEVEL = kbps(2400)  # the paper's top bandwidth level (IV-A)
TRACE_SEED = 1995


def dp_rate_levels(trace):
    """The renegotiation rate grid: delta-spaced up to ~2.4 Mb/s.

    Matches the paper's choice ("bandwidth levels chosen uniformly within
    48 kb/s and 2.4 Mb/s" at delta granularity); the grid is widened
    automatically if the trace's 1-second peak demands more.
    """
    from repro.analysis.empirical import windowed_peak_rate

    top = max(MAX_RATE_LEVEL, 1.1 * windowed_peak_rate(trace, 1.0))
    return granular_rate_levels(GRANULARITY, top)


@functools.lru_cache(maxsize=2)
def starwars_trace():
    """The benchmark trace at the current scale (cached)."""
    return generate_starwars_trace(
        num_frames=scale().num_frames, seed=TRACE_SEED
    )


@functools.lru_cache(maxsize=4)
def optimal_schedule(alpha: float = 6e6):
    """The trace's optimal RCBR schedule at the paper's parameters.

    delta = 64 kb/s granularity, B = 300 kb; ``alpha`` tunes the
    renegotiation interval (the default lands near the paper's ~12 s on
    the synthetic trace).
    """
    trace = starwars_trace()
    workload = trace.aggregate(scale().dp_frames_per_slot)
    result = OptimalScheduler(dp_rate_levels(trace), alpha=alpha, beta=1.0).solve(
        workload, buffer_bits=BUFFER_BITS
    )
    return result.schedule


def print_table(title: str, headers: Sequence[str], rows) -> None:
    """Uniform plain-text table output for every benchmark."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header)), max((len(str(row[i])) for row in rows), default=0))
        for i, header in enumerate(headers)
    ]
    line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).rjust(w) for cell, w in zip(row, widths)))


def fmt(value: float, digits: int = 3) -> str:
    if value is None:
        return "-"
    if value == 0:
        return "0"
    if abs(value) >= 1e5 or abs(value) < 1e-3:
        return f"{value:.{digits}g}"
    return f"{value:.{digits}f}"


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    These are simulation studies, not microbenchmarks: one round gives
    the wall-clock cost of regenerating the figure without re-running a
    multi-minute experiment five times.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
