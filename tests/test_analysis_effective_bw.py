"""Equivalent bandwidth of Markov sources."""

import numpy as np
import pytest

from repro.analysis.effective_bw import (
    effective_bandwidth,
    equivalent_bandwidth_for_buffer,
    log_mgf_markov,
    log_spectral_radius,
    overflow_probability_estimate,
    theta_for_buffer,
)
from repro.traffic.markov import MarkovChain, MarkovModulatedSource
from repro.traffic.onoff import onoff_source


@pytest.fixture
def onoff():
    return onoff_source(
        peak_rate=100.0, mean_on_slots=10, mean_off_slots=10, slot_duration=1.0
    )


class TestLogSpectralRadius:
    def test_identity(self):
        assert log_spectral_radius(np.eye(3)) == pytest.approx(0.0)

    def test_scaled_identity(self):
        assert log_spectral_radius(2.0 * np.eye(2)) == pytest.approx(np.log(2.0))

    def test_stochastic_matrix_radius_one(self):
        matrix = np.array([[0.3, 0.7], [0.6, 0.4]])
        assert log_spectral_radius(matrix) == pytest.approx(0.0, abs=1e-12)

    def test_zero_matrix_rejected(self):
        with pytest.raises(ValueError):
            log_spectral_radius(np.zeros((2, 2)))


class TestLogMgf:
    def test_zero_theta_is_zero(self, onoff):
        assert log_mgf_markov(
            onoff.chain.transition_matrix, onoff.bits_per_slot_by_state, 0.0
        ) == pytest.approx(0.0)

    def test_iid_case_matches_direct_mgf(self):
        # Rows identical -> emissions are i.i.d.; Lambda is the scalar MGF.
        p = np.array([[0.25, 0.75], [0.25, 0.75]])
        chain = MarkovChain(p)
        emissions = np.array([0.0, 2.0])
        theta = 0.7
        expected = np.log(0.25 + 0.75 * np.exp(theta * 2.0))
        assert log_mgf_markov(
            chain.transition_matrix, emissions, theta
        ) == pytest.approx(expected)

    def test_large_theta_no_overflow(self, onoff):
        value = log_mgf_markov(
            onoff.chain.transition_matrix,
            onoff.bits_per_slot_by_state,
            theta=10.0,
        )
        assert np.isfinite(value)


class TestEffectiveBandwidth:
    def test_between_mean_and_peak(self, onoff):
        for theta in (1e-6, 1e-3, 0.1, 1.0):
            eb = effective_bandwidth(onoff, theta)
            assert onoff.mean_rate() - 1e-6 <= eb <= onoff.peak_rate() + 1e-6

    def test_monotone_in_theta(self, onoff):
        thetas = [1e-5, 1e-4, 1e-3, 1e-2, 1e-1]
        values = [effective_bandwidth(onoff, t) for t in thetas]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_small_theta_approaches_mean(self, onoff):
        assert effective_bandwidth(onoff, 1e-9) == pytest.approx(
            onoff.mean_rate(), rel=1e-3
        )

    def test_large_theta_approaches_peak(self, onoff):
        assert effective_bandwidth(onoff, 50.0) == pytest.approx(
            onoff.peak_rate(), rel=0.05
        )

    def test_zero_theta_returns_mean(self, onoff):
        assert effective_bandwidth(onoff, 0.0) == onoff.mean_rate()

    def test_negative_theta_rejected(self, onoff):
        with pytest.raises(ValueError):
            effective_bandwidth(onoff, -1.0)

    def test_cbr_source_eb_is_its_rate(self):
        chain = MarkovChain([[1.0]])
        source = MarkovModulatedSource(chain, np.array([42.0]), 1.0)
        assert effective_bandwidth(source, 0.5) == pytest.approx(42.0)


class TestThetaForBuffer:
    def test_formula(self):
        assert theta_for_buffer(1000.0, 1e-6) == pytest.approx(
            np.log(1e6) / 1000.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            theta_for_buffer(0.0, 1e-6)
        with pytest.raises(ValueError):
            theta_for_buffer(100.0, 0.0)
        with pytest.raises(ValueError):
            theta_for_buffer(100.0, 1.0)


class TestEbAgainstSimulation:
    def test_large_buffer_asymptotic_is_conservative_estimate(self, onoff):
        """Serving at EB(theta) should give overflow prob near e^{-theta B}
        (same order of magnitude) in a long simulation."""
        from repro.queueing.fluid import simulate_fluid_queue

        buffer_bits = 400.0
        target = 1e-2
        theta = theta_for_buffer(buffer_bits, target)
        rate = equivalent_bandwidth_for_buffer(onoff, buffer_bits, target)
        workload = onoff.sample_workload(400_000, seed=8)
        result = simulate_fluid_queue(
            workload.bits_per_slot,
            rate * onoff.slot_duration,
            buffer_bits=buffer_bits,
        )
        # Within two orders of magnitude (large deviations are exponents,
        # not prefactors).
        assert result.loss_fraction < target * 10
        assert result.loss_fraction > target / 1000


class TestOverflowEstimate:
    def test_unstable_gives_one(self, onoff):
        assert overflow_probability_estimate(onoff, 10.0, 100.0) == 1.0

    def test_peak_gives_zero(self, onoff):
        assert overflow_probability_estimate(onoff, 100.0, 100.0) == 0.0

    def test_monotone_in_rate(self, onoff):
        rates = [55.0, 65.0, 75.0, 85.0]
        probs = [
            overflow_probability_estimate(onoff, rate, 500.0) for rate in rates
        ]
        assert all(a >= b - 1e-12 for a, b in zip(probs, probs[1:]))

    def test_monotone_in_buffer(self, onoff):
        buffers = [100.0, 300.0, 900.0]
        probs = [
            overflow_probability_estimate(onoff, 70.0, b) for b in buffers
        ]
        assert all(a >= b - 1e-12 for a, b in zip(probs, probs[1:]))
