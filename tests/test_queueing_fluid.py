"""Fluid-queue simulation kernels."""

import math

import numpy as np
import pytest

from repro.queueing.fluid import (
    loss_fraction_for_rate,
    min_rate_for_loss,
    required_buffer,
    sigma_rho_curve,
    simulate_fluid_queue,
)
from repro.traffic.trace import SlottedWorkload


class TestSimulateFluidQueue:
    def test_stable_queue_no_loss(self):
        result = simulate_fluid_queue([1.0, 1.0, 1.0], 2.0, buffer_bits=10.0)
        assert result.lost_bits == 0.0
        assert result.loss_fraction == 0.0
        assert result.final_occupancy == 0.0

    def test_conservation(self):
        arrivals = [5.0, 0.0, 7.0, 1.0]
        result = simulate_fluid_queue(arrivals, 2.0, buffer_bits=4.0)
        served = result.arrived_bits - result.lost_bits - result.final_occupancy
        assert served >= 0
        assert result.arrived_bits == pytest.approx(13.0)

    def test_overflow_accounting(self):
        # One slot of 10 bits into a 4-bit buffer: 6 lost immediately.
        result = simulate_fluid_queue([10.0], 0.0, buffer_bits=4.0)
        assert result.lost_bits == pytest.approx(6.0)
        assert result.final_occupancy == pytest.approx(4.0)

    def test_occupancy_never_negative(self):
        result = simulate_fluid_queue(
            [1.0, 0.0, 0.0], 100.0, record_occupancy=True
        )
        assert np.all(result.occupancy >= 0.0)

    def test_occupancy_trajectory(self):
        result = simulate_fluid_queue(
            [3.0, 3.0, 0.0], 1.0, buffer_bits=100.0, record_occupancy=True
        )
        assert np.allclose(result.occupancy, [2.0, 4.0, 3.0])

    def test_max_occupancy_is_post_service(self):
        # Eq. 2/3 convention: the bound applies after the slot's service.
        result = simulate_fluid_queue([5.0, 5.0], 5.0, buffer_bits=100.0)
        assert result.max_occupancy == pytest.approx(0.0)
        result = simulate_fluid_queue([5.0, 5.0], 3.0, buffer_bits=100.0)
        assert result.max_occupancy == pytest.approx(4.0)

    def test_per_slot_drain_schedule(self):
        result = simulate_fluid_queue([4.0, 4.0], [1.0, 7.0], buffer_bits=100.0)
        assert result.final_occupancy == pytest.approx(0.0)
        assert result.lost_bits == 0.0

    def test_initial_occupancy(self):
        result = simulate_fluid_queue([0.0], 1.0, 10.0, initial_occupancy=5.0)
        assert result.final_occupancy == pytest.approx(4.0)

    def test_infinite_buffer_never_loses(self):
        result = simulate_fluid_queue([1e9, 1e9], 0.0)
        assert result.lost_bits == 0.0
        assert result.final_occupancy == pytest.approx(2e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_fluid_queue([], 1.0)
        with pytest.raises(ValueError):
            simulate_fluid_queue([1.0], -1.0)
        with pytest.raises(ValueError):
            simulate_fluid_queue([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            simulate_fluid_queue([1.0], 1.0, buffer_bits=-1.0)
        with pytest.raises(ValueError):
            simulate_fluid_queue([1.0], 1.0, 5.0, initial_occupancy=6.0)


class TestRequiredBuffer:
    def test_matches_envelope_formula(self):
        arrivals = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
        drain = 2.5
        # Brute-force sigma = max over windows of (sum - drain * len).
        best = 0.0
        for start in range(len(arrivals)):
            for end in range(start + 1, len(arrivals) + 1):
                window = arrivals[start:end].sum() - drain * (end - start)
                best = max(best, window)
        assert required_buffer(arrivals, drain) == pytest.approx(best)

    def test_zero_for_fast_drain(self):
        # Drain exceeds per-slot arrivals: queue never builds up.
        assert required_buffer([1.0, 1.0], 10.0) == pytest.approx(0.0)

    def test_monotone_in_drain(self, short_workload):
        arrivals = short_workload.bits_per_slot
        slot = short_workload.slot_duration
        buffers = [
            required_buffer(arrivals, rate * slot)
            for rate in np.linspace(
                short_workload.mean_rate, short_workload.peak_rate, 5
            )
        ]
        assert all(a >= b - 1e-6 for a, b in zip(buffers, buffers[1:]))


class TestMinRateForLoss:
    def test_zero_loss_target_needs_envelope_rate(self):
        workload = SlottedWorkload(np.array([4.0, 0.0, 4.0, 0.0]), 1.0)
        rate = min_rate_for_loss(workload, buffer_bits=2.0, loss_target=0.0)
        # Need to drain 2 bits of each 4-bit burst within its slot.
        assert rate == pytest.approx(2.0, abs=0.01)

    def test_rate_bounded_by_mean_and_peak(self, short_workload):
        rate = min_rate_for_loss(short_workload, 300_000.0, 1e-6)
        assert short_workload.mean_rate <= rate <= short_workload.peak_rate

    def test_achieves_target(self, short_workload):
        rate = min_rate_for_loss(short_workload, 300_000.0, 1e-3)
        loss = loss_fraction_for_rate(short_workload, rate, 300_000.0)
        assert loss <= 1e-3

    def test_bigger_buffer_smaller_rate(self, short_workload):
        small = min_rate_for_loss(short_workload, 100_000.0, 1e-6)
        large = min_rate_for_loss(short_workload, 1_000_000.0, 1e-6)
        assert large <= small + 1.0

    def test_huge_buffer_approaches_mean(self, short_workload):
        rate = min_rate_for_loss(short_workload, 1e9, 1e-6)
        assert rate == pytest.approx(short_workload.mean_rate, rel=0.01)

    def test_validation(self, short_workload):
        with pytest.raises(ValueError):
            min_rate_for_loss(short_workload, 1.0, 1.5)
        with pytest.raises(ValueError):
            loss_fraction_for_rate(short_workload, -1.0, 1.0)


class TestSigmaRhoCurve:
    def test_shape_and_monotonicity(self, short_workload):
        rates = np.linspace(
            short_workload.mean_rate * 1.05, short_workload.peak_rate, 6
        )
        curve = sigma_rho_curve(short_workload, rates)
        assert curve.shape == (6, 2)
        sigmas = curve[:, 1]
        assert all(a >= b - 1e-6 for a, b in zip(sigmas, sigmas[1:]))

    def test_multiple_timescale_traffic_has_long_tail(self, medium_trace):
        """Section II: at drain near the mean, the buffer requirement is
        enormous relative to the 300 kb RCBR buffer."""
        workload = medium_trace.as_workload()
        rate = 1.05 * workload.mean_rate
        sigma = required_buffer(
            workload.bits_per_slot, rate * workload.slot_duration
        )
        assert sigma > 10 * 300_000.0
