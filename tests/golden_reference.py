"""The frozen pre-refactor scalar renegotiation loop — the golden oracle.

This is the general-path body of ``OnlineScheduler.schedule`` exactly as
it stood before the batched kernel extraction (commit e820b7f), kept
verbatim so the kernel-vs-golden regression tests compare today's
:mod:`repro.core.kernel` against the historical float-for-float
behavior rather than against itself.  The old dedicated fast path
(``_schedule_fast``) was itself proven bit-identical to this loop by the
pre-refactor equivalence tests, so this single oracle covers both
deleted implementations.

Do not "fix" or modernize this file: its value is that it does not
change.  (The repo-wide duplication guard that bans reimplementing the
AR(1)/quantiser arithmetic outside ``repro.core.kernel`` deliberately
scans ``src/`` only.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.online import OnlineParams
from repro.traffic.trace import SlottedWorkload

GOLDEN_QUANTIZE_EPSILON = 1e-12


@dataclass(frozen=True)
class GoldenResult:
    """The pre-refactor result fields, minus the RateSchedule wrapper."""

    slot_rates: np.ndarray
    max_buffer: float
    final_buffer: float
    requests_made: int
    requests_denied: int
    bits_lost: float
    drain_slots: int
    requests_suppressed: int


def golden_quantize(
    params: OnlineParams, rate_estimate: float
) -> float:
    delta = params.granularity
    quantized = (
        math.ceil(max(0.0, rate_estimate) / delta - GOLDEN_QUANTIZE_EPSILON)
        * delta
    )
    if params.max_rate is not None:
        quantized = min(quantized, params.max_rate)
    return quantized


def golden_schedule(
    params: OnlineParams,
    workload: SlottedWorkload,
    initial_rate: Optional[float] = None,
    request_fn: Optional[Callable[[float, float], bool]] = None,
    buffer_size: Optional[float] = None,
    recovery=None,
) -> GoldenResult:
    """The pre-refactor general scalar loop, verbatim."""
    if buffer_size is not None and buffer_size <= 0:
        raise ValueError("buffer_size must be positive")
    arrivals = workload.bits_per_slot.tolist()
    slot = workload.slot_duration
    time_constant = params.time_constant_slots * slot

    def quantize(rate_estimate: float) -> float:
        return golden_quantize(params, rate_estimate)

    if initial_rate is None:
        current_rate = quantize(arrivals[0] / slot)
    else:
        if initial_rate < 0:
            raise ValueError("initial_rate must be non-negative")
        current_rate = initial_rate

    if recovery is not None:
        recovery.reset()

    high = params.high_threshold
    low = params.low_threshold

    estimate = current_rate
    buffer_level = 0.0
    max_buffer = 0.0
    requests = 0
    denied = 0
    suppressed = 0
    bits_lost = 0.0
    drain_slots = 0
    slot_rates = np.empty(workload.num_slots)

    for index, amount in enumerate(arrivals):
        slot_rates[index] = current_rate
        if recovery is not None and recovery.in_drain(
            buffer_level, buffer_size
        ):
            bits_lost += amount
            drain_slots += 1
            buffer_level = max(0.0, buffer_level - current_rate * slot)
        else:
            buffer_level = max(
                0.0, buffer_level + amount - current_rate * slot
            )
            if buffer_size is not None and buffer_level > buffer_size:
                bits_lost += buffer_level - buffer_size
                buffer_level = buffer_size
        if buffer_level > max_buffer:
            max_buffer = buffer_level

        incoming_rate = amount / slot
        estimate = (
            params.ar_coefficient * estimate
            + (1.0 - params.ar_coefficient) * incoming_rate
        )
        candidate = quantize(estimate + buffer_level / time_constant)

        wants_up = buffer_level > high and candidate > current_rate
        wants_down = buffer_level < low and candidate < current_rate
        if wants_up or wants_down:
            if recovery is None:
                requests += 1
                granted = True
                if request_fn is not None:
                    granted = bool(
                        request_fn((index + 1) * slot, candidate)
                    )
                if granted:
                    current_rate = candidate
                else:
                    denied += 1
            elif not recovery.allow_request(index):
                suppressed += 1
            else:
                rungs = (
                    recovery.ladder(candidate, current_rate, quantize)
                    if wants_up
                    else (candidate,)
                )
                for rung in rungs:
                    requests += 1
                    granted = True
                    if request_fn is not None:
                        granted = bool(request_fn((index + 1) * slot, rung))
                    if granted:
                        current_rate = rung
                        recovery.on_grant(index, rung)
                        break
                    denied += 1
                    recovery.on_denial(index, rung)

    return GoldenResult(
        slot_rates=slot_rates,
        max_buffer=max_buffer,
        final_buffer=buffer_level,
        requests_made=requests,
        requests_denied=denied,
        bits_lost=bits_lost,
        drain_slots=drain_slots,
        requests_suppressed=suppressed,
    )
